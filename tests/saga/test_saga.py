"""Tests for the SAGA-like interoperability layer."""

import pytest

from repro.cluster import Cluster, JobState as NativeState
from repro.des import Simulation
from repro.saga import (
    AdaptorError,
    JobDescription,
    JobService,
    SagaState,
    map_native_state,
)


@pytest.fixture
def sim():
    return Simulation(seed=0)


def make_cluster(sim, name="res", nodes=4, cpn=16):
    return Cluster(sim, name, nodes=nodes, cores_per_node=cpn,
                   submit_overhead=0.0)


def desc(**kw):
    defaults = dict(
        total_cpu_count=8,
        wall_time_limit=30.0,       # minutes
        simulated_runtime_s=600.0,
        name="test-job",
    )
    defaults.update(kw)
    return JobDescription(**defaults)


class TestStateMapping:
    def test_all_native_states_mapped(self):
        for ns in NativeState:
            assert map_native_state(ns) in SagaState

    def test_timeout_maps_to_failed(self):
        assert map_native_state(NativeState.TIMEOUT) is SagaState.FAILED


class TestDescription:
    def test_validation(self):
        with pytest.raises(ValueError):
            desc(total_cpu_count=0).validate()
        with pytest.raises(ValueError):
            desc(wall_time_limit=0).validate()
        with pytest.raises(ValueError):
            desc(simulated_runtime_s=-1).validate()


class TestJobService:
    def test_url_parsing(self, sim):
        cluster = make_cluster(sim)
        with pytest.raises(ValueError):
            JobService(sim, "not a url", cluster)
        with pytest.raises(ValueError):
            JobService(sim, "warp://res", cluster)
        with pytest.raises(ValueError):
            JobService(sim, "slurm://other-host", cluster)
        svc = JobService(sim, "slurm://res", cluster)
        assert svc.resource_name == "res"

    def test_submit_and_complete(self, sim):
        cluster = make_cluster(sim)
        svc = JobService(sim, "slurm://res", cluster)
        job = svc.submit(desc())
        states = []
        job.add_callback(lambda j, s: states.append(s))
        sim.run()
        assert job.state is SagaState.DONE
        assert states == [SagaState.PENDING, SagaState.RUNNING, SagaState.DONE]
        assert job.started_at is not None
        assert job.ended_at == job.started_at + 600.0
        assert svc.list_jobs() == [job]

    def test_wait_waitable(self, sim):
        cluster = make_cluster(sim)
        svc = JobService(sim, "slurm://res", cluster)
        job = svc.submit(desc())
        got = []

        def waiter():
            j = yield job.wait()
            got.append((sim.now, j.state))

        sim.process(waiter())
        sim.run()
        assert len(got) == 1
        assert got[0][1] is SagaState.DONE

    def test_cancel_pending_job(self, sim):
        cluster = make_cluster(sim, nodes=1, cpn=8)
        svc = JobService(sim, "slurm://res", cluster)
        blocker = svc.submit(desc(total_cpu_count=8, simulated_runtime_s=5000))
        queued = svc.submit(desc(total_cpu_count=8))
        sim.run(until=100)
        assert queued.state is SagaState.PENDING
        queued.cancel()
        sim.run(until=200)
        assert queued.state is SagaState.CANCELED

    def test_walltime_kill_surfaces_as_failed(self, sim):
        cluster = make_cluster(sim)
        svc = JobService(sim, "slurm://res", cluster)
        job = svc.submit(desc(wall_time_limit=1.0, simulated_runtime_s=3600))
        sim.run()
        assert job.state is SagaState.FAILED


class TestDialects:
    def test_slurm_rounds_walltime_up_to_minutes(self, sim):
        cluster = make_cluster(sim)
        svc = JobService(sim, "slurm://res", cluster)
        job = svc.submit(desc(wall_time_limit=10.2))
        assert job.native.walltime == 11 * 60.0

    def test_slurm_partition_limit(self, sim):
        cluster = make_cluster(sim)
        svc = JobService(sim, "slurm://res", cluster)
        with pytest.raises(AdaptorError):
            svc.submit(desc(wall_time_limit=100 * 24 * 60))

    def test_pbs_rounds_cores_to_whole_nodes(self, sim):
        cluster = make_cluster(sim, cpn=16)
        svc = JobService(sim, "pbs://res", cluster)
        job = svc.submit(desc(total_cpu_count=10))
        assert job.native.cores == 16
        job2 = svc.submit(desc(total_cpu_count=17))
        assert job2.native.cores == 32

    def test_pbs_rejects_oversized(self, sim):
        cluster = make_cluster(sim, nodes=2, cpn=16)
        svc = JobService(sim, "pbs://res", cluster)
        with pytest.raises(AdaptorError):
            svc.submit(desc(total_cpu_count=33))

    def test_condor_pads_walltime(self, sim):
        cluster = make_cluster(sim)
        svc = JobService(sim, "condor://res", cluster)
        job = svc.submit(desc(wall_time_limit=10))
        assert job.native.walltime == 10 * 60 * 1.5

    def test_submission_latency_differs_by_dialect(self, sim):
        cluster = make_cluster(sim)
        slurm = JobService(sim, "slurm://res", cluster).submit(desc())
        sim.run()
        t_slurm = slurm.native.submit_time

        sim2 = Simulation()
        cluster2 = make_cluster(sim2)
        condor = JobService(sim2, "condor://res", cluster2).submit(desc())
        sim2.run()
        t_condor = condor.native.submit_time
        assert t_condor > t_slurm  # match-making cycle is slower

    def test_same_description_different_dialects_same_uniform_view(self, sim):
        """The interoperability contract: identical uniform state sequences."""
        sequences = {}
        for scheme in ("slurm", "pbs", "condor"):
            s = Simulation()
            c = make_cluster(s)
            svc = JobService(s, f"{scheme}://res", c)
            job = svc.submit(desc())
            seen = []
            job.add_callback(lambda j, st, seen=seen: seen.append(st))
            s.run()
            sequences[scheme] = seen
        assert (
            sequences["slurm"] == sequences["pbs"] == sequences["condor"]
            == [SagaState.PENDING, SagaState.RUNNING, SagaState.DONE]
        )
