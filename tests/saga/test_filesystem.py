"""Tests for the SAGA-style file service."""

import pytest

from repro.des import Simulation
from repro.net import Network, ORIGIN
from repro.saga import FileService, FileUrlError, TaskState, parse_url


@pytest.fixture
def service():
    sim = Simulation()
    net = Network(sim)
    net.add_site("siteA", bandwidth_bytes_per_s=1000.0, latency_s=0.0)
    net.fs(ORIGIN).write("in.dat", 5000, now=0)
    return sim, net, FileService(sim, net)


def test_parse_url():
    assert parse_url("origin://a/b.dat") == ("origin", "a/b.dat")
    with pytest.raises(FileUrlError):
        parse_url("no-scheme-here")


def test_exists_size_remove(service):
    sim, net, fs = service
    assert fs.exists("origin://in.dat")
    assert fs.size("origin://in.dat") == 5000
    assert not fs.exists("siteA://in.dat")
    fs.remove("origin://in.dat")
    assert not fs.exists("origin://in.dat")


def test_copy_success(service):
    sim, net, fs = service
    task = fs.copy("origin://in.dat", "siteA://in.dat")
    assert task.state is TaskState.RUNNING
    sim.run()
    assert task.state is TaskState.DONE
    assert fs.exists("siteA://in.dat")
    # 5000 B at 1000 B/s
    assert sim.now == pytest.approx(5.0)


def test_copy_wait_waitable(service):
    sim, net, fs = service
    task = fs.copy("origin://in.dat", "siteA://in.dat")
    got = []

    def waiter():
        t = yield task.wait()
        got.append(t.state)

    sim.process(waiter())
    sim.run()
    assert got == [TaskState.DONE]


def test_copy_missing_source_fails_task(service):
    sim, net, fs = service
    task = fs.copy("origin://ghost.dat", "siteA://ghost.dat")
    assert task.state is TaskState.FAILED
    assert task.exception is not None


def test_copy_rename_rejected(service):
    sim, net, fs = service
    task = fs.copy("origin://in.dat", "siteA://renamed.dat")
    assert task.state is TaskState.FAILED


def test_copy_between_sites_fails(service):
    sim, net, fs = service
    net.add_site("siteB")
    net.fs("siteA").write("x.dat", 10, now=0)
    task = fs.copy("siteA://x.dat", "siteB://x.dat")
    assert task.state is TaskState.FAILED  # star topology: origin required


def test_copy_back_to_origin(service):
    sim, net, fs = service
    net.fs("siteA").write("out.dat", 1000, now=0)
    task = fs.copy("siteA://out.dat", "origin://out.dat")
    sim.run()
    assert task.state is TaskState.DONE
    assert fs.exists("origin://out.dat")
