"""Counter/gauge semantics and histogram bucket boundaries."""

import pytest

from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)


def test_counter_only_goes_up():
    c = Counter("n")
    c.inc()
    c.inc(3)
    assert c.value == 4
    with pytest.raises(ValueError):
        c.inc(-1)


def test_gauge_reads_callback_or_set_value():
    g = Gauge("g")
    assert g.read() is None
    g.set(7)
    assert g.read() == 7
    live = Gauge("live", fn=lambda: 42)
    assert live.read() == 42


def test_histogram_le_boundary_semantics():
    h = Histogram("h", boundaries=(1.0, 2.0, 4.0))
    # a value equal to a boundary belongs to that boundary's bucket
    h.observe(1.0)
    assert h.bucket_counts() == (1, 0, 0, 0)
    h.observe(1.5)
    h.observe(2.0)
    assert h.bucket_counts() == (1, 2, 0, 0)
    h.observe(4.0)
    h.observe(4.0001)  # above the last boundary -> overflow bucket
    h.observe(1000.0)
    assert h.bucket_counts() == (1, 2, 1, 2)
    assert h.count == 6
    assert h.total == pytest.approx(1.0 + 1.5 + 2.0 + 4.0 + 4.0001 + 1000.0)


def test_histogram_boundaries_must_be_strictly_increasing():
    with pytest.raises(ValueError):
        Histogram("h", boundaries=())
    with pytest.raises(ValueError):
        Histogram("h", boundaries=(1.0, 1.0, 2.0))
    with pytest.raises(ValueError):
        Histogram("h", boundaries=(2.0, 1.0))


def test_registry_get_or_create_and_boundary_conflict():
    reg = MetricsRegistry()
    assert reg.counter("a") is reg.counter("a")
    assert reg.histogram("h", (1, 2)) is reg.histogram("h", (1, 2))
    with pytest.raises(ValueError, match="different boundaries"):
        reg.histogram("h", (1, 2, 3))


def test_registry_gauge_rebinds_callback():
    reg = MetricsRegistry()
    g = reg.gauge("units.done", fn=lambda: 1)
    assert g.read() == 1
    # a fresh execution rebinds the same name to its own view
    assert reg.gauge("units.done", fn=lambda: 2) is g
    assert g.read() == 2
    assert reg.gauge("units.done").read() == 2  # plain get keeps the fn


def test_snapshot_is_sorted_and_json_stable():
    reg = MetricsRegistry()
    reg.counter("z").inc()
    reg.counter("a").inc(2)
    reg.gauge("m").set(1.5)
    reg.histogram("h", (10.0,)).observe(3.0)
    snap = reg.snapshot()
    assert list(snap) == ["counters", "gauges", "histograms"]
    assert list(snap["counters"]) == ["a", "z"]
    assert snap["histograms"]["h"] == {
        "boundaries": [10.0], "counts": [1, 0], "sum": 3.0, "count": 1,
    }
    assert "counter" in reg.render_table()


def test_render_table_aligns_long_metric_names():
    reg = MetricsRegistry()
    long_name = "scheduler.backfill.passes.with.a.very.long.dotted.name"
    assert len(long_name) > 38
    reg.counter(long_name).inc(3)
    reg.counter("short").inc()
    reg.gauge("mid.sized.gauge").set(1.0)
    lines = reg.render_table().splitlines()
    # every row's first separator sits in the same column, padded from
    # the longest registered name — not the old hardcoded 38.
    columns = {line.index(" | ") for line in lines if " | " in line}
    assert columns == {len(long_name)}


def test_render_prometheus_exposition():
    reg = MetricsRegistry()
    reg.counter("events.processed").inc(5)
    reg.gauge("heap-size").set(7)
    reg.gauge("label").set("text")  # non-numeric: skipped
    reg.histogram("wait_s", (1.0, 2.0)).observe(0.5)
    reg.histogram("wait_s", (1.0, 2.0)).observe(5.0)
    text = render_prometheus(reg.snapshot(), prefix="repro")
    assert "# TYPE repro_events_processed counter" in text
    assert "repro_events_processed 5" in text
    assert "repro_heap_size 7" in text  # [.-] sanitized to _
    assert "label" not in text
    # cumulative le buckets + sum/count
    assert 'repro_wait_s_bucket{le="1.0"} 1' in text
    assert 'repro_wait_s_bucket{le="2.0"} 1' in text
    assert 'repro_wait_s_bucket{le="+Inf"} 2' in text
    assert "repro_wait_s_sum 5.5" in text
    assert "repro_wait_s_count 2" in text
    assert text.endswith("\n")
