"""Kernel profiler attribution on a real simulation."""

from repro.des import Simulation


def test_profiler_attributes_all_kernel_wall_time():
    sim = Simulation(seed=3)
    prof = sim.telemetry.attach_profiler()

    def proc():
        for _ in range(5):
            yield sim.timeout(10.0)

    sim.process(proc())
    sim.call_at(7.0, lambda: None)
    sim.run(until=100.0)

    assert prof.events == sim.events_processed > 0
    assert prof.attributed_fraction() == 1.0
    assert prof.attributed_wall() > 0.0
    assert prof.events_per_sec() > 0.0
    report = prof.report()
    assert "attributed" in report and "events" in report


def test_profiler_groups_by_callback_and_process():
    sim = Simulation(seed=3)
    prof = sim.telemetry.attach_profiler()

    def worker():
        yield sim.timeout(1.0)

    sim.process(worker())
    sim.run(until=10.0)
    assert prof.by_label, "per-callback attribution must not be empty"
    assert all(count > 0 for count, _ in prof.by_label.values())
