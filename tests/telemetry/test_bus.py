"""EventBus contract: fan-out, bounded queues, drop accounting, liveness."""

import threading
import time

import pytest

from repro.telemetry.bus import EventBus, Subscription


def test_fanout_delivers_to_every_subscriber():
    bus = EventBus()
    a, b = bus.subscribe(), bus.subscribe()
    bus.publish({"kind": "x", "i": 1})
    bus.publish({"kind": "x", "i": 2})
    assert [e["i"] for e in a.drain()] == [1, 2]
    assert [e["i"] for e in b.drain()] == [1, 2]
    assert bus.published == 2
    assert bus.dropped == 0


def test_subscribe_sees_only_future_events():
    bus = EventBus()
    bus.publish({"i": 0})
    sub = bus.subscribe()
    bus.publish({"i": 1})
    assert [e["i"] for e in sub.drain()] == [1]


def test_full_queue_drops_oldest_and_counts():
    bus = EventBus()
    sub = bus.subscribe(maxsize=3)
    for i in range(10):
        bus.publish({"i": i})
    # the queue kept the *freshest* three; seven were shed.
    assert [e["i"] for e in sub.drain()] == [7, 8, 9]
    assert sub.dropped == 7
    assert bus.dropped == 7
    stats = bus.stats()
    assert stats["published"] == 10
    assert stats["queues"][0]["dropped"] == 7


def test_slow_subscriber_does_not_stall_other_subscribers():
    bus = EventBus()
    slow = bus.subscribe(maxsize=1)
    fast = bus.subscribe(maxsize=100)
    for i in range(50):
        bus.publish({"i": i})
    assert len(fast.drain()) == 50
    assert slow.dropped == 49
    assert len(slow) == 1


def test_publish_never_blocks_even_with_full_queues():
    bus = EventBus()
    bus.subscribe(maxsize=1)
    t0 = time.monotonic()
    for i in range(10_000):
        bus.publish({"i": i})
    # 10k publishes against a permanently-full queue in well under a
    # second — the shed path is just a popleft, never a wait.
    assert time.monotonic() - t0 < 1.0


def test_get_blocks_until_publish():
    bus = EventBus()
    sub = bus.subscribe()
    got = []

    def consume():
        got.append(sub.get(timeout=5.0))

    t = threading.Thread(target=consume)
    t.start()
    time.sleep(0.05)
    bus.publish({"i": 42})
    t.join(timeout=5.0)
    assert got == [{"i": 42}]


def test_get_times_out_with_none():
    sub = EventBus().subscribe()
    t0 = time.monotonic()
    assert sub.get(timeout=0.05) is None
    assert time.monotonic() - t0 < 2.0


def test_close_wakes_blocked_consumer_and_detaches():
    bus = EventBus()
    sub = bus.subscribe()
    results = []

    def consume():
        results.append(sub.get(timeout=10.0))

    t = threading.Thread(target=consume)
    t.start()
    time.sleep(0.05)
    sub.close()
    t.join(timeout=5.0)
    assert not t.is_alive()
    assert results == [None]
    assert bus.subscribers == 0
    bus.publish({"i": 1})  # no-op against a closed subscription
    assert len(sub) == 0


def test_bus_close_detaches_everyone():
    bus = EventBus()
    subs = [bus.subscribe() for _ in range(3)]
    bus.close()
    assert bus.subscribers == 0
    assert all(s.closed for s in subs)


def test_closed_subscription_still_drains_backlog():
    bus = EventBus()
    sub = bus.subscribe()
    bus.publish({"i": 1})
    sub.close()
    assert sub.get(timeout=0.0) == {"i": 1}
    assert sub.get(timeout=0.0) is None


def test_concurrent_publishers_lose_nothing_within_bounds():
    bus = EventBus()
    sub = bus.subscribe(maxsize=10_000)
    n_threads, per_thread = 8, 500

    def produce(tid):
        for i in range(per_thread):
            bus.publish({"tid": tid, "i": i})

    threads = [
        threading.Thread(target=produce, args=(t,)) for t in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    events = sub.drain()
    assert len(events) == n_threads * per_thread
    assert sub.dropped == 0
    # per-publisher order is preserved through the shared queue
    for tid in range(n_threads):
        seq = [e["i"] for e in events if e["tid"] == tid]
        assert seq == sorted(seq)


def test_zero_maxsize_rejected():
    with pytest.raises(ValueError):
        Subscription(EventBus(), 0)
