"""Perfetto/OTLP export round-trips against a real (small) execution."""

import json

import pytest

from repro.core import Binding, PlannerConfig
from repro.core.analytics import export_trace
from repro.experiments import build_environment
from repro.skeleton import SkeletonAPI, paper_skeleton
from repro.telemetry import (
    chrome_trace,
    otlp_trace,
    save_chrome_trace,
    save_otlp_trace,
)

PID_VIRTUAL, PID_WALL = 1, 2


@pytest.fixture(scope="module")
def telemetered_run():
    env = build_environment(
        seed=9, resources=("stampede-sim", "gordon-sim"), telemetry=True
    )
    env.sim.telemetry.start_sampler(env.sim, interval_s=1800.0)
    env.warm_up(3600.0)
    report = env.execution_manager.execute(
        SkeletonAPI(paper_skeleton(16, gaussian=False), seed=1),
        PlannerConfig(binding=Binding.LATE, n_pilots=2),
    )
    env.sim.telemetry.stop_sampler(env.sim)
    env.sim.telemetry.close_open_spans()
    return env, report


def test_chrome_trace_round_trip(telemetered_run, tmp_path):
    env, _ = telemetered_run
    path = tmp_path / "trace.json"
    save_chrome_trace(env.sim.telemetry, str(path), tracer=env.sim.trace)
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)

    events = doc["traceEvents"]
    assert events, "trace must not be empty"
    for ev in events:
        assert {"ph", "pid", "tid", "name"} <= set(ev)
        if ev["ph"] != "M":  # metadata events carry no timestamp
            assert "ts" in ev and ev["ts"] >= 0
        if ev["ph"] == "X":
            assert ev["dur"] >= 0

    pids = {ev["pid"] for ev in events}
    assert pids == {PID_VIRTUAL, PID_WALL}

    # every span appears on both clock tracks
    n_x = lambda pid: sum(
        1 for ev in events if ev["ph"] == "X" and ev["pid"] == pid
    )
    assert n_x(PID_VIRTUAL) == len(env.sim.telemetry.spans)
    assert n_x(PID_WALL) == len(env.sim.telemetry.spans)

    # process metadata names the two clock groups
    meta = {
        (ev["pid"], ev["args"]["name"])
        for ev in events
        if ev["ph"] == "M" and ev["name"] == "process_name"
    }
    assert len(meta) == 2

    assert doc["otherData"]["digest"] == env.sim.telemetry.digest()


def test_chrome_trace_includes_tracer_instants(telemetered_run):
    env, _ = telemetered_run
    doc = chrome_trace(env.sim.telemetry, tracer=env.sim.trace)
    instants = [ev for ev in doc["traceEvents"] if ev["ph"] == "i"]
    assert instants
    assert all(ev["s"] == "t" for ev in instants)


def test_otlp_trace_shape(telemetered_run, tmp_path):
    env, _ = telemetered_run
    path = tmp_path / "otlp.json"
    save_otlp_trace(env.sim.telemetry, str(path))
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    spans = doc["resourceSpans"][0]["scopeSpans"][0]["spans"]
    assert len(spans) == len(env.sim.telemetry.spans)
    for sp in spans[:20]:
        assert len(sp["traceId"]) == 32
        assert len(sp["spanId"]) == 16
        assert int(sp["endTimeUnixNano"]) >= int(sp["startTimeUnixNano"])
    assert otlp_trace(env.sim.telemetry) == doc


def test_export_trace_shim_still_serves_tracer_records(telemetered_run):
    env, _ = telemetered_run
    with pytest.warns(DeprecationWarning):
        doc = json.loads(export_trace(env.sim.trace, category="pilot"))
    assert doc and all(rec["category"] == "pilot" for rec in doc)
    assert {"time", "category", "entity", "event", "data"} <= set(doc[0])


def test_execution_report_carries_a_telemetry_summary(telemetered_run):
    _, report = telemetered_run
    tel = report.telemetry
    assert tel is not None
    assert tel.n_spans > 0 and tel.n_samples > 0
    assert len(tel.digest) == 64
    assert [name for name, _, _ in tel.em_steps] == [
        "gather-information", "derive-strategy", "prepare-inputs",
        "instantiate-pilots", "execute-units",
    ]
