"""HTML report: self-contained, escaped, and faithful to the data."""

import re

import pytest

from repro.telemetry import render_html, save_html


def _data():
    return {
        "title": "Campaign <2016>",
        "subtitle": "experiments (1, 3), sizes (8, 16)",
        "summary": [("runs", 8), ("errors", 0), ("digest", "ab" * 32)],
        "cells": [
            {
                "label": "exp1 n=8", "ttc": 1000.0,
                "shares": {"tw": 0.1, "tr": 0.0, "tx": 0.8,
                           "ts": 0.05, "trp": 0.04, "idle": 0.01},
            },
            {
                "label": "exp3 n=8", "ttc": 800.0,
                "shares": {"tw": 0.05, "tr": 0.0, "tx": 0.85,
                           "ts": 0.05, "trp": 0.05, "idle": 0.0},
            },
        ],
        "critical_path": [
            {"t0": 0.0, "t1": 100.0, "component": "tw",
             "label": "pilot.0001 queue-wait"},
            {"t0": 100.0, "t1": 1000.0, "component": "tx",
             "label": "unit.0005 executing"},
        ],
        "tw_by_resource": {"stampede-sim": [100.0, 120.0, 90.0]},
        "anomalies": [
            {"kind": "ttc-outlier", "cell": "1:8",
             "detail": "rep 3 TTC 9000s", "z": 4.2},
        ],
        "drift": [
            {"cell": "1:8", "metric": "tw_mean",
             "baseline": 100.0, "current": 130.0, "rel_change": 0.3},
        ],
    }


@pytest.fixture(scope="module")
def html():
    return render_html(_data())


class TestSelfContainment:
    def test_no_scripts(self, html):
        assert "<script" not in html.lower()

    def test_no_external_references(self, html):
        assert "http://" not in html and "https://" not in html
        assert not re.search(r'\bsrc\s*=', html)
        assert "<link" not in html.lower()
        assert "@import" not in html

    def test_single_complete_document(self, html):
        assert html.startswith("<!DOCTYPE html>")
        assert html.rstrip().endswith("</html>")
        assert html.count("<html") == 1

    def test_inline_styling_and_svg(self, html):
        assert "<style>" in html
        assert "<svg" in html


class TestContent:
    def test_title_is_escaped(self, html):
        assert "Campaign &lt;2016&gt;" in html
        assert "Campaign <2016>" not in html

    def test_sections_render(self, html):
        for heading in (
            "Summary", "TTC attribution by cell", "Critical path",
            "Queue-wait distributions by resource", "Anomalies",
            "Baseline comparison",
        ):
            assert heading in html

    def test_cells_and_path_appear(self, html):
        assert "exp1 n=8" in html and "exp3 n=8" in html
        assert "queue-wait" in html
        assert "Tw (queue wait)" in html

    def test_anomaly_and_drift_rows(self, html):
        assert "ttc-outlier" in html
        assert "tw_mean" in html

    def test_empty_data_still_renders(self):
        doc = render_html({})
        assert doc.startswith("<!DOCTYPE html>")
        assert "Anomalies" in doc


def test_save_html(tmp_path):
    path = tmp_path / "report.html"
    save_html(_data(), str(path))
    assert path.read_text(encoding="utf-8") == render_html(_data())
