"""Seed-stability: sampling and digests must not depend on wall clocks."""

from repro.bundle import BundleManager
from repro.cluster import Cluster
from repro.core import Binding, ExecutionManager, PlannerConfig
from repro.des import Simulation
from repro.experiments import build_environment
from repro.faults import FaultInjector, FaultPlan, KillPilot
from repro.net import Network
from repro.skeleton import SkeletonAPI, bag_of_tasks, paper_skeleton


def _sampled_run(seed):
    env = build_environment(
        seed=seed, resources=("stampede-sim", "gordon-sim"), telemetry=True
    )
    env.sim.telemetry.start_sampler(env.sim, interval_s=900.0)
    env.warm_up(3600.0)
    env.execution_manager.execute(
        SkeletonAPI(paper_skeleton(16, gaussian=False), seed=1),
        PlannerConfig(binding=Binding.LATE, n_pilots=2),
    )
    env.sim.telemetry.stop_sampler(env.sim)
    env.sim.telemetry.close_open_spans()
    return env.sim.telemetry


def test_metrics_sampling_is_deterministic_under_fixed_seed():
    a, b = _sampled_run(123), _sampled_run(123)
    assert a.samples == b.samples
    assert a.canonical_json() == b.canonical_json()
    assert a.digest() == b.digest()


def test_different_seed_changes_the_digest():
    assert _sampled_run(123).digest() != _sampled_run(124).digest()


def _chaos_run(seed=0):
    """A faulted execution with telemetry on (mirrors tests/faults idiom)."""
    sim = Simulation(seed=seed)
    sim.telemetry.enable()
    net = Network(sim)
    clusters = {}
    for name in ("alpha", "beta", "gamma"):
        net.add_site(name, bandwidth_bytes_per_s=1e7, latency_s=0.01)
        clusters[name] = Cluster(sim, name, nodes=16, cores_per_node=16,
                                 submit_overhead=1.0)
    bundle = BundleManager(sim, net).create_bundle("pool", clusters)
    em = ExecutionManager(sim, net, bundle)
    plan = FaultPlan(seed=0, actions=(KillPilot(at=600.0, index=0),))
    em.attach_faults(FaultInjector(
        sim, plan, pilot_manager=em.pilot_manager, network=net
    ))
    report = em.execute(
        SkeletonAPI(bag_of_tasks(24, task_duration=900.0), seed=1),
        PlannerConfig(binding=Binding.LATE, n_pilots=3,
                      unit_scheduler="backfill"),
    )
    sim.telemetry.close_open_spans()
    return sim, report


def test_telemetry_digest_is_byte_stable_across_identical_chaos_runs():
    sim_a, rep_a = _chaos_run()
    sim_b, rep_b = _chaos_run()
    assert rep_a.succeeded and rep_b.succeeded
    # the faulted run really diverged from a clean one...
    assert rep_a.decomposition.n_faults == 1
    # ...and still replays byte-for-byte, telemetry included
    assert sim_a.telemetry.canonical_json() == sim_b.telemetry.canonical_json()
    assert sim_a.telemetry.digest() == sim_b.telemetry.digest()
    assert rep_a.fault_log.digest() == rep_b.fault_log.digest()
    assert rep_a.telemetry.digest == rep_b.telemetry.digest
