"""Span nesting, state-machine tracks, and unclosed-span detection."""

import pytest

from repro.telemetry import TelemetryHub, UnclosedSpanError


def make_hub(clock=None):
    times = iter(range(100))
    hub = TelemetryHub(clock=clock or (lambda: float(next(times))), run_id="t")
    hub.enable()
    return hub


def test_disabled_hub_is_a_null_object():
    hub = TelemetryHub()
    with hub.span("a", "b") as sp:
        assert sp is None
    hub.transition("a", "lane", "STATE")
    hub.instant("a", "mark")
    assert hub.spans == [] and hub.instants == []
    hub.require_closed()  # nothing open, nothing raised


def test_span_nesting_sets_parent_from_the_stack():
    hub = make_hub()
    with hub.span("outer", "parent") as outer:
        with hub.span("inner", "child") as inner:
            assert inner.parent == outer.sid
        with hub.span("inner", "sibling") as sibling:
            assert sibling.parent == outer.sid
    with hub.span("outer", "next") as top:
        assert top.parent is None
    assert [s.closed for s in hub.spans] == [True] * 4
    assert all(s.t1 >= s.t0 for s in hub.spans)


def test_out_of_order_close_does_not_corrupt_the_stack():
    hub = make_hub()
    a = hub.span("x", "a")
    sa = a.__enter__()
    b = hub.span("x", "b")
    b.__enter__()
    a.__exit__(None, None, None)  # close parent before child
    with hub.span("x", "c") as sc:
        # b is still the top of the stack, so c nests under it
        assert sc.parent is not None and sc.parent != sa.sid
    b.__exit__(None, None, None)
    hub.require_closed()


def test_require_closed_raises_with_span_names():
    hub = make_hub()
    hub.span("execution", "gather-information").__enter__()
    with pytest.raises(UnclosedSpanError, match="execution/gather-information"):
        hub.require_closed()
    assert hub.close_open_spans() == 1
    hub.require_closed()


def test_transition_closes_the_previous_state_span():
    hub = make_hub(clock=None)
    hub.transition("pilot", "pilot.1", "NEW")
    hub.transition("pilot", "pilot.1", "LAUNCHING")
    hub.transition("pilot", "pilot.1", "ACTIVE")
    new, launching, active = hub.spans
    assert new.closed and new.t1 == launching.t0
    assert launching.closed and launching.t1 == active.t0
    assert not active.closed
    assert hub.open_spans() == [active]


def test_final_transition_is_zero_duration_and_leaves_track_closed():
    hub = make_hub()
    hub.transition("unit", "unit.1", "EXECUTING")
    hub.transition("unit", "unit.1", "DONE", final=True)
    done = hub.spans[-1]
    assert done.closed and done.t0 == done.t1
    hub.require_closed()


def test_tracks_are_independent_per_category_and_lane():
    hub = make_hub()
    hub.transition("pilot", "pilot.1", "NEW")
    hub.transition("pilot", "pilot.2", "NEW")
    hub.transition("pilot", "pilot.1", "ACTIVE")
    # pilot.2 is untouched by pilot.1's progress
    assert len(hub.open_spans()) == 2
    by_track = {s.track: s.name for s in hub.open_spans()}
    assert by_track == {"pilot.1": "ACTIVE", "pilot.2": "NEW"}


def test_span_attrs_survive_into_the_canonical_dict():
    hub = make_hub()
    with hub.span("cluster", "pass", track="cluster/alpha", pending=(1, 2)):
        pass
    d = hub.spans[0].as_dict()
    assert d["attrs"]["pending"] == [1, 2]  # tuples coerced for JSON
    assert "w0" not in d  # wall time excluded from canonical form
    dw = hub.spans[0].as_dict(wall=True)
    assert "w0" in dw and "w1" in dw
