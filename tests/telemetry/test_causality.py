"""Causal attribution: the exact-partition and critical-path contracts.

The acceptance criteria of the attribution engine, verified over the
real Exp.1-Exp.4 grid (small sizes, one repetition each):

* per-component attribution sums to TTC within 1e-9;
* the critical path tiles [t_start, t_end] contiguously, so its total
  equals TTC;
* the attribution digest is byte-identical across serial and parallel
  campaigns of the same seed.
"""

import math

import pytest

from repro.experiments import run_campaign
from repro.experiments.campaign import TABLE1, run_cell_report
from repro.telemetry import COMPONENTS, attribute, attribute_report
from repro.telemetry.causality import build_graph, critical_path

GRID = [
    (exp_id, n_tasks) for exp_id in (1, 2, 3, 4) for n_tasks in (8, 16)
]


@pytest.fixture(scope="module")
def grid_attributions():
    out = {}
    for exp_id, n_tasks in GRID:
        report, _, _ = run_cell_report(
            TABLE1[exp_id], n_tasks, rep=0, campaign_seed=11
        )
        out[(exp_id, n_tasks)] = (report, attribute_report(report))
    return out


class TestExactPartition:
    def test_components_sum_to_ttc_within_1e9(self, grid_attributions):
        for cell, (report, att) in grid_attributions.items():
            total = sum(value for _, value in att.components)
            assert abs(total - att.ttc) < 1e-9, cell
            assert att.ttc == report.decomposition.ttc

    def test_components_are_nonnegative_and_complete(self, grid_attributions):
        for _, att in grid_attributions.values():
            names = [name for name, _ in att.components]
            assert names == list(COMPONENTS)
            assert all(value >= 0 for _, value in att.components)

    def test_shares_sum_to_one(self, grid_attributions):
        for _, att in grid_attributions.values():
            assert sum(att.shares.values()) == pytest.approx(1.0, abs=1e-9)

    def test_work_components_dominate_a_real_run(self, grid_attributions):
        # every experiment spends most of its TTC in identified work,
        # not in the unexplained-idle bucket.
        for cell, (_, att) in grid_attributions.items():
            assert att.shares["idle"] < 0.25, cell
            assert att.by_component["tx"] > 0, cell


class TestCriticalPath:
    def test_path_total_equals_ttc(self, grid_attributions):
        for cell, (_, att) in grid_attributions.items():
            total = sum(seg.duration for seg in att.critical_path)
            assert abs(total - att.ttc) < 1e-9, cell

    def test_path_tiles_the_window_contiguously(self, grid_attributions):
        for cell, (_, att) in grid_attributions.items():
            path = att.critical_path
            assert path, cell
            assert path[0].t0 == pytest.approx(att.t_start, abs=1e-9)
            assert path[-1].t1 == pytest.approx(att.t_end, abs=1e-9)
            for a, b in zip(path, path[1:]):
                assert a.t1 == pytest.approx(b.t0, abs=1e-9), cell

    def test_path_components_are_valid(self, grid_attributions):
        for _, att in grid_attributions.values():
            assert {seg.component for seg in att.critical_path} <= set(
                COMPONENTS
            )

    def test_path_by_component_matches_segments(self, grid_attributions):
        (_, att) = next(iter(grid_attributions.values()))
        by = att.path_by_component()
        assert sum(by.values()) == pytest.approx(att.ttc, abs=1e-9)

    def test_late_binding_path_crosses_the_gating_pilot(
        self, grid_attributions
    ):
        # Exp.3's story: some unit's finish is gated by a pilot's queue
        # wait even though the global Tw partition is small.
        _, att = grid_attributions[(3, 16)]
        labels = " ".join(seg.label for seg in att.critical_path)
        assert "queue-wait" in labels or att.by_component["tw"] == 0


class TestDeterminism:
    def test_digest_stable_across_replays(self):
        digests = set()
        for _ in range(2):
            report, _, _ = run_cell_report(TABLE1[3], 8, rep=0,
                                           campaign_seed=11)
            digests.add(attribute_report(report).digest())
        assert len(digests) == 1

    def test_digest_identical_serial_vs_parallel_campaign(self):
        kw = dict(
            experiments=(1, 3), task_counts=(8,), reps=2, campaign_seed=2016
        )
        serial = run_campaign(**kw)
        parallel = run_campaign(jobs=2, **kw)
        assert [r.attribution_digest for r in serial.runs] == [
            r.attribution_digest for r in parallel.runs
        ]
        assert all(len(r.attribution_digest) == 64 for r in serial.runs)
        assert [r.attribution for r in serial.runs] == [
            r.attribution for r in parallel.runs
        ]

    def test_canonical_json_is_compact_and_sorted(self, grid_attributions):
        _, att = grid_attributions[(1, 8)]
        doc = att.canonical_json()
        assert ": " not in doc and ", " not in doc
        assert doc.index('"components"') < doc.index('"critical_path"')


class TestEdgeCases:
    def test_empty_run_attributes_everything_to_idle(self):
        att = attribute([], [], 0.0, 100.0)
        assert att.by_component["idle"] == pytest.approx(100.0)
        assert sum(v for _, v in att.components) == pytest.approx(100.0)
        assert sum(seg.duration for seg in att.critical_path) == (
            pytest.approx(100.0)
        )

    def test_zero_length_window(self):
        att = attribute([], [], 50.0, 50.0)
        assert att.ttc == 0.0
        assert all(v == 0.0 for _, v in att.components)
        assert all(v == 0.0 for v in att.shares.values())

    def test_graph_sink_is_a_work_activity(self):
        report, _, _ = run_cell_report(TABLE1[1], 8, rep=0, campaign_seed=11)
        d = report.decomposition
        graph = build_graph(report.pilots, report.units, d.t_start, d.t_end)
        assert graph.sink is not None
        sink = graph.by_key(graph.sink)
        assert math.isfinite(sink.t1)
        path = critical_path(graph)
        assert sum(s.duration for s in path) == pytest.approx(
            d.ttc, abs=1e-9
        )

    def test_summary_mentions_ttc(self, grid_attributions):
        _, att = grid_attributions[(1, 8)]
        assert att.summary().startswith("TTC ")
