"""Seeded chaos tests: the middleware under hostile conditions.

Random workloads, short pilot walltimes, mid-run outages, and random
cancellations — the invariants must hold regardless:

* every unit reaches a final state (no zombies);
* accounting conserves units (done + failed + canceled == submitted);
* no agent ends with leaked core commitments;
* the simulation stays deterministic for a given seed.
"""

import numpy as np
import pytest

from repro.bundle import BundleManager
from repro.cluster import Cluster
from repro.core import Binding, ExecutionManager, PlannerConfig
from repro.des import Simulation
from repro.net import Network
from repro.pilot import UnitState
from repro.skeleton import SkeletonAPI, bag_of_tasks


def chaos_run(seed: int):
    """One randomized hostile scenario; returns (report, sim)."""
    rng = np.random.default_rng(seed)
    sim = Simulation(seed=seed)
    net = Network(sim)
    clusters = {}
    n_resources = int(rng.integers(2, 5))
    for i in range(n_resources):
        name = f"r{i}"
        net.add_site(name, bandwidth_bytes_per_s=1e7, latency_s=0.01)
        clusters[name] = Cluster(
            sim, name,
            nodes=int(rng.integers(2, 16)),
            cores_per_node=int(rng.choice([8, 16])),
            submit_overhead=float(rng.uniform(0, 5)),
        )
    bundle = BundleManager(sim, net).create_bundle("pool", clusters)
    em = ExecutionManager(sim, net, bundle, agent_bootstrap_s=0.0)

    # Random outages on random resources.
    for _ in range(int(rng.integers(0, 3))):
        victim = clusters[f"r{int(rng.integers(n_resources))}"]
        at = float(rng.uniform(10, 2000))
        duration = float(rng.uniform(60, 1200))
        sim.call_at(at, victim.set_offline, duration)

    n_tasks = int(rng.integers(4, 40))
    n_pilots = int(rng.integers(1, n_resources + 1))
    # Deliberately tight walltimes so some pilots die mid-run.
    walltime_min = float(rng.uniform(5, 60))
    api = SkeletonAPI(
        bag_of_tasks(
            n_tasks,
            task_duration=f"uniform(30, {rng.integers(120, 900)})",
        ),
        seed=seed,
    )
    config = PlannerConfig(
        binding=Binding.LATE if rng.random() < 0.7 else Binding.EARLY,
        unit_scheduler=None,
        n_pilots=n_pilots,
        pilot_walltime_min=walltime_min,
    )
    report = em.execute(api, config, timeout_s=200_000)
    return report, sim


@pytest.mark.parametrize("seed", range(20))
def test_chaos_invariants(seed):
    report, sim = chaos_run(seed)
    units = report.units
    # 1. no zombies
    assert all(u.is_final for u in units), f"seed {seed}: zombie units"
    # 2. conservation
    done = sum(1 for u in units if u.state is UnitState.DONE)
    failed = sum(1 for u in units if u.state is UnitState.FAILED)
    canceled = sum(1 for u in units if u.state is UnitState.CANCELED)
    assert done + failed + canceled == len(units)
    assert report.decomposition.units_done == done
    # 3. no leaked commitments on surviving agents
    for pilot in report.pilots:
        if pilot.agent is not None:
            assert pilot.agent.capacity.in_use == 0, (
                f"seed {seed}: {pilot.uid} leaked cores"
            )
    # 4. all pilots finalized (canceled at the end of the run)
    assert all(p.is_final for p in report.pilots)
    # 5. timestamps sane
    d = report.decomposition
    assert d.t_end >= d.t_start
    assert d.tw >= 0 and d.ts >= 0 and d.tx >= 0


@pytest.mark.parametrize("seed", [3, 7, 11])
def test_chaos_deterministic(seed):
    r1, _ = chaos_run(seed)
    r2, _ = chaos_run(seed)
    assert r1.ttc == r2.ttc
    assert r1.decomposition.units_done == r2.decomposition.units_done
    assert [u.state for u in r1.units] == [u.state for u in r2.units]
