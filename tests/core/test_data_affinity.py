"""Tests for data-aware resource selection (compute/data affinity)."""

import pytest

from repro.bundle import BundleManager
from repro.cluster import Cluster
from repro.core import PlannerConfig, PlanningError, derive_strategy
from repro.des import Simulation
from repro.net import Network
from repro.skeleton import SkeletonAPI, bag_of_tasks


@pytest.fixture
def env():
    """Two resources: equal queues, wildly different WANs."""
    sim = Simulation(seed=1)
    net = Network(sim)
    clusters = {}
    net.add_site("fatpipe", bandwidth_bytes_per_s=100e6, latency_s=0.01)
    net.add_site("thinpipe", bandwidth_bytes_per_s=1e6, latency_s=0.05)
    for name in ("fatpipe", "thinpipe"):
        clusters[name] = Cluster(sim, name, nodes=32, cores_per_node=16,
                                 submit_overhead=0.0)
        # identical wait history -> identical predicted waits
        for i in range(20):
            clusters[name].wait_history.append((float(i), 300.0, 64))
    bundle = BundleManager(sim, net).create_bundle("b", clusters)
    return sim, bundle


def req(input_mb):
    return SkeletonAPI(
        bag_of_tasks(64, task_duration=600, input_size=input_mb * 1e6),
        seed=0,
    ).requirements()


def test_data_mode_prefers_fat_pipe_for_big_data(env):
    sim, bundle = env
    s = derive_strategy(
        req(input_mb=100), bundle,
        PlannerConfig(n_pilots=1, optimize="data"),
    )
    assert s.resources == ("fatpipe",)
    assert "staging estimate" in s.decision("resources").rationale


def test_ttc_mode_ignores_network(env):
    sim, bundle = env
    s = derive_strategy(
        req(input_mb=100), bundle,
        PlannerConfig(n_pilots=1, optimize="ttc"),
    )
    # equal predicted waits: ranking is by insertion order, network unseen
    assert s.resources == ("fatpipe",)
    assert "staging" not in s.decision("resources").rationale


def test_data_mode_negligible_for_tiny_data(env):
    """With KB-scale data both modes agree: waits dominate the score."""
    sim, bundle = env
    # make thinpipe clearly the better queue
    bundle.cluster("thinpipe").wait_history.clear()
    for i in range(20):
        bundle.cluster("thinpipe").wait_history.append((float(i), 1.0, 64))
    s_data = derive_strategy(
        req(input_mb=0.001), bundle,
        PlannerConfig(n_pilots=1, optimize="data"),
    )
    s_ttc = derive_strategy(
        req(input_mb=0.001), bundle,
        PlannerConfig(n_pilots=1, optimize="ttc"),
    )
    assert s_data.resources == s_ttc.resources == ("thinpipe",)


def test_data_mode_overridden_by_queue_when_wait_gap_is_huge(env):
    sim, bundle = env
    # fatpipe's queue becomes terrible: 10x the staging gap
    bundle.cluster("fatpipe").wait_history.clear()
    for i in range(20):
        bundle.cluster("fatpipe").wait_history.append((float(i), 50_000.0, 64))
    s = derive_strategy(
        req(input_mb=10), bundle,
        PlannerConfig(n_pilots=1, optimize="data"),
    )
    assert s.resources == ("thinpipe",)


def test_unknown_metric_rejected(env):
    sim, bundle = env
    with pytest.raises(PlanningError):
        derive_strategy(
            req(1), bundle, PlannerConfig(n_pilots=1, optimize="energy")
        )
