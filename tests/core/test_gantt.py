"""Tests for the ASCII execution timeline."""

import pytest

from repro.bundle import BundleManager
from repro.cluster import Cluster
from repro.core import (
    ExecutionManager,
    render_report_timeline,
    render_timeline,
)
from repro.des import Simulation
from repro.net import Network
from repro.skeleton import SkeletonAPI, bag_of_tasks


@pytest.fixture(scope="module")
def report():
    sim = Simulation(seed=41)
    net = Network(sim)
    clusters = {}
    for name in ("a", "b"):
        net.add_site(name, bandwidth_bytes_per_s=1e7, latency_s=0.01)
        clusters[name] = Cluster(sim, name, nodes=4, cores_per_node=8,
                                 submit_overhead=0.0)
    bundle = BundleManager(sim, net).create_bundle("pool", clusters)
    em = ExecutionManager(sim, net, bundle, agent_bootstrap_s=0.0)
    api = SkeletonAPI(bag_of_tasks(12, task_duration=300), seed=1)
    return em.execute(api)


def test_timeline_structure(report):
    text = render_report_timeline(report, width=48)
    lines = text.splitlines()
    assert lines[0].startswith("t=")
    # one row per pilot + header + units row + peak line
    pilot_rows = [l for l in lines if l.startswith("pilot.")]
    assert len(pilot_rows) == len(report.pilots)
    for row in pilot_rows:
        assert "#" in row  # every pilot was active at some point
    assert any("units executing" in l for l in lines)
    assert any("peak concurrency" in l for l in lines)


def test_timeline_shows_queueing():
    """A pilot queued for a large share of the window paints '~' cells."""
    from repro.pilot import ComputePilot, ComputePilotDescription, PilotState

    sim = Simulation(seed=0)
    pilot = ComputePilot(
        sim, ComputePilotDescription(resource="r", cores=8, runtime_min=60)
    )
    sim.call_at(0.0, pilot.advance, PilotState.LAUNCHING)
    sim.call_at(500.0, pilot.advance, PilotState.PENDING_ACTIVE)
    sim.call_at(500.0, pilot.advance, PilotState.ACTIVE)
    sim.call_at(900.0, pilot.advance, PilotState.DONE)
    sim.run()
    text = render_timeline([pilot], [], 0.0, 1000.0, width=40)
    assert "~" in text   # queued phase
    assert "#" in text   # active phase
    assert "_" in text   # post-termination tail


def test_validation(report):
    with pytest.raises(ValueError):
        render_timeline(report.pilots, report.units, 10.0, 10.0)
    with pytest.raises(ValueError):
        render_timeline(report.pilots, report.units, 0.0, 1.0, width=2)


def test_empty_units_ok(report):
    text = render_timeline(
        report.pilots, [], report.decomposition.t_start,
        report.decomposition.t_end,
    )
    assert "pilot." in text
    assert "units executing" not in text
