"""Tests for session persistence and energy accounting."""

import json

import pytest

from repro.bundle import BundleManager
from repro.cluster import Cluster
from repro.core import (
    Binding,
    ExecutionManager,
    PlannerConfig,
    allocation_metrics,
    estimate_energy,
    load_session,
    report_energy,
    report_to_session,
    save_session,
    session_from_dict,
    state_durations,
)
from repro.des import Simulation
from repro.net import Network
from repro.skeleton import SkeletonAPI, bag_of_tasks


@pytest.fixture(scope="module")
def executed():
    sim = Simulation(seed=51)
    net = Network(sim)
    clusters = {}
    for name in ("a", "b"):
        net.add_site(name, bandwidth_bytes_per_s=1e7, latency_s=0.01)
        clusters[name] = Cluster(sim, name, nodes=4, cores_per_node=8,
                                 submit_overhead=0.0)
    bundle = BundleManager(sim, net).create_bundle("pool", clusters)
    em = ExecutionManager(sim, net, bundle, agent_bootstrap_s=0.0)
    api = SkeletonAPI(bag_of_tasks(8, task_duration=300), seed=2)
    report = em.execute(
        api, PlannerConfig(binding=Binding.LATE, n_pilots=2)
    )
    return sim, report


class TestSession:
    def test_roundtrip(self, executed, tmp_path):
        sim, report = executed
        path = tmp_path / "session.json"
        save_session(report, str(path))
        session = load_session(str(path))
        assert session.application == report.application
        assert session.n_tasks == 8
        assert session.ttc == pytest.approx(report.ttc)
        assert len(session.pilots) == 2
        assert len(session.units) == 8
        assert session.strategy["binding"] == "late"
        # histories survive intact
        orig = report.units[0].history.as_list()
        loaded = session.units[0].history.as_list()
        assert loaded == [(s, t) for s, t in orig]

    def test_file_is_json(self, executed, tmp_path):
        sim, report = executed
        path = tmp_path / "s.json"
        save_session(report, str(path))
        data = json.loads(path.read_text())
        assert data["format"] == 1
        assert "decisions" in data["strategy"]

    def test_version_check(self, executed):
        sim, report = executed
        data = report_to_session(report)
        data["format"] = 42
        with pytest.raises(ValueError):
            session_from_dict(data)

    def test_analytics_work_on_reloaded_entities(self, executed, tmp_path):
        sim, report = executed
        path = tmp_path / "s.json"
        save_session(report, str(path))
        session = load_session(str(path))
        totals = state_durations(session.units)
        assert totals["EXECUTING"] == pytest.approx(8 * 300, rel=0.05)
        metrics = allocation_metrics(
            session.pilots, session.units,
            final_time=session.decomposition["t_end"],
        )
        assert metrics.used_core_s == pytest.approx(8 * 300, rel=0.05)


class TestEnergy:
    def test_energy_accounting(self, executed):
        sim, report = executed
        est = report_energy(report)
        # 8 tasks x 300 s x 1 core of active burn
        assert est.active_core_s == pytest.approx(2400, rel=0.05)
        assert est.idle_core_s >= 0
        assert est.total_joules == pytest.approx(
            est.active_joules + est.idle_joules
        )
        assert est.total_kwh == pytest.approx(est.total_joules / 3.6e6)
        assert 0 <= est.idle_fraction < 1

    def test_custom_power_model(self, executed):
        sim, report = executed
        est = report_energy(report, active_watts=100.0, idle_watts=0.0)
        assert est.idle_joules == 0
        assert est.active_joules == pytest.approx(est.active_core_s * 100)
        with pytest.raises(ValueError):
            report_energy(report, active_watts=-1)

    def test_empty_execution(self):
        est = estimate_energy([], [])
        assert est.total_joules == 0
        assert est.idle_fraction == 0

    def test_idle_energy_reflects_unused_allocation(self, executed):
        sim, report = executed
        est = report_energy(report)
        metrics = allocation_metrics(
            report.pilots, report.units,
            final_time=report.decomposition.t_end,
        )
        # idle core-seconds = consumed - used, same accounting
        assert est.idle_core_s == pytest.approx(
            metrics.consumed_core_s - metrics.used_core_s, rel=0.01
        )
