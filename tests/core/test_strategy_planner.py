"""Tests for the Execution Strategy model and the planner."""

import pytest

from repro.bundle import BundleManager
from repro.cluster import Cluster
from repro.core import (
    Binding,
    ExecutionStrategy,
    PlannerConfig,
    PlanningError,
    derive_strategy,
    estimate_trp_s,
    estimate_tx_s,
)
from repro.des import Simulation
from repro.net import Network
from repro.skeleton import SkeletonAPI, bag_of_tasks


class TestStrategyModel:
    def make(self, **kw):
        defaults = dict(
            binding=Binding.LATE,
            unit_scheduler="backfill",
            n_pilots=2,
            pilot_cores=32,
            pilot_walltime_min=60,
            resources=("a", "b"),
        )
        defaults.update(kw)
        return ExecutionStrategy(**defaults)

    def test_valid(self):
        s = self.make()
        assert s.total_cores == 64
        assert "late binding" in s.describe()

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make(n_pilots=0, resources=())
        with pytest.raises(ValueError):
            self.make(pilot_cores=0)
        with pytest.raises(ValueError):
            self.make(pilot_walltime_min=0)
        with pytest.raises(ValueError):
            self.make(resources=("a",))  # wrong count
        with pytest.raises(ValueError):
            self.make(binding=Binding.EARLY, unit_scheduler="backfill")
        with pytest.raises(ValueError):
            self.make(binding=Binding.LATE, unit_scheduler="direct")

    def test_early_requires_direct(self):
        s = self.make(
            binding=Binding.EARLY, unit_scheduler="direct",
            n_pilots=1, resources=("a",),
        )
        assert s.binding is Binding.EARLY


@pytest.fixture
def planning_env():
    sim = Simulation(seed=9)
    net = Network(sim)
    clusters = {}
    for name, nodes in (("big", 64), ("mid", 32), ("small", 8)):
        net.add_site(name)
        clusters[name] = Cluster(sim, name, nodes=nodes, cores_per_node=16,
                                 submit_overhead=0.0)
    bundle = BundleManager(sim, net).create_bundle("b", clusters)
    return sim, bundle, clusters


def requirements(n_tasks=128, duration=900):
    return SkeletonAPI(
        bag_of_tasks(n_tasks, task_duration=duration), seed=0
    ).requirements()


class TestPlanner:
    def test_late_binding_defaults(self, planning_env):
        sim, bundle, clusters = planning_env
        s = derive_strategy(requirements(128), bundle)
        assert s.binding is Binding.LATE
        assert s.unit_scheduler == "backfill"
        assert s.n_pilots == 3
        assert s.pilot_cores == pytest.approx(128 / 3, abs=1)
        assert len(s.resources) == 3
        assert len(s.decisions) == 6

    def test_early_binding_defaults(self, planning_env):
        sim, bundle, clusters = planning_env
        s = derive_strategy(
            requirements(128), bundle, PlannerConfig(binding=Binding.EARLY)
        )
        assert s.unit_scheduler == "direct"
        assert s.n_pilots == 1
        assert s.pilot_cores == 128  # full concurrency on the single pilot

    def test_table1_walltime_scaling(self, planning_env):
        """Late-binding walltime ~ (Tx+Ts+Trp) * n_pilots (Table I)."""
        sim, bundle, clusters = planning_env
        early = derive_strategy(
            requirements(96), bundle, PlannerConfig(binding=Binding.EARLY)
        )
        late = derive_strategy(
            requirements(96), bundle,
            PlannerConfig(binding=Binding.LATE, n_pilots=3),
        )
        # the late strategy requests roughly 3x the early walltime
        ratio = late.pilot_walltime_min / early.pilot_walltime_min
        assert 2.0 < ratio < 4.5

    def test_resource_ranking_prefers_short_waits(self, planning_env):
        sim, bundle, clusters = planning_env
        for i in range(20):
            clusters["small"].wait_history.append((float(i), 10.0, 64))
            clusters["mid"].wait_history.append((float(i), 2000.0, 64))
            clusters["big"].wait_history.append((float(i), 4000.0, 64))
        s = derive_strategy(
            requirements(16), bundle, PlannerConfig(n_pilots=1)
        )
        assert s.resources == ("small",)

    def test_pinned_resources(self, planning_env):
        sim, bundle, clusters = planning_env
        s = derive_strategy(
            requirements(16), bundle,
            PlannerConfig(n_pilots=2, resources=("big", "mid")),
        )
        assert s.resources == ("big", "mid")
        with pytest.raises(PlanningError):
            derive_strategy(
                requirements(16), bundle,
                PlannerConfig(n_pilots=1, resources=("big", "mid")),
            )
        with pytest.raises(PlanningError):
            derive_strategy(
                requirements(16), bundle,
                PlannerConfig(n_pilots=1, resources=("ghost",)),
            )

    def test_too_many_pilots_rejected(self, planning_env):
        sim, bundle, clusters = planning_env
        with pytest.raises(PlanningError):
            derive_strategy(requirements(16), bundle, PlannerConfig(n_pilots=9))

    def test_oversized_pilot_rejected(self, planning_env):
        sim, bundle, clusters = planning_env
        with pytest.raises(PlanningError):
            derive_strategy(
                requirements(16), bundle,
                PlannerConfig(n_pilots=1, pilot_cores=100_000),
            )

    def test_estimates(self):
        req = requirements(100, duration=100)
        # 100 tasks x 100 s on 50 cores: 200 s volume + 100 s tail
        assert estimate_tx_s(req, 50) == pytest.approx(300)
        with pytest.raises(ValueError):
            estimate_tx_s(req, 0)
        assert estimate_trp_s(req) > 0

    def test_decision_tree_dependencies(self, planning_env):
        sim, bundle, clusters = planning_env
        s = derive_strategy(requirements(64), bundle)
        assert s.decision("unit_scheduler").depends_on == ("binding",)
        assert s.decision("pilot_cores").depends_on == ("n_pilots",)
        with pytest.raises(KeyError):
            s.decision("nonexistent")


def test_pilot_size_floored_at_widest_task(planning_env):
    """A multi-core task must fit inside a single pilot (regression:
    a 4-core task with width/3 = 3-core pilots could never run)."""
    from repro.skeleton import SkeletonAPI, StageSpec, multistage

    sim, bundle, clusters = planning_env
    app = multistage([
        StageSpec(name="wide", n_tasks=3, task_duration=100.0,
                  cores_per_task=8),
    ])
    req = SkeletonAPI(app, seed=0).requirements()
    assert req.max_task_cores == 8
    s = derive_strategy(req, bundle, PlannerConfig(n_pilots=3))
    assert s.pilot_cores >= 8
