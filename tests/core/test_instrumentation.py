"""Unit tests for the TTC decomposition on hand-driven executions."""

import math

import pytest

from repro.core import decompose, execution_intervals, staging_intervals
from repro.core.instrumentation import IntrospectionError, unit_intervals
from repro.des import Simulation
from repro.pilot import (
    ComputePilot,
    ComputePilotDescription,
    ComputeUnit,
    ComputeUnitDescription,
    PilotState,
    UnitState,
)


def make_pilot(sim, resource="r", submit_at=0.0, active_at=None):
    p = ComputePilot(
        sim, ComputePilotDescription(resource=resource, cores=8, runtime_min=60)
    )
    sim.call_at(submit_at, p.advance, PilotState.LAUNCHING)
    if active_at is not None:
        sim.call_at(active_at, p.advance, PilotState.PENDING_ACTIVE)
        sim.call_at(active_at, p.advance, PilotState.ACTIVE)
    return p


def make_unit(sim, name, schedule):
    """Drive a unit through (state, time) pairs."""
    u = ComputeUnit(sim, ComputeUnitDescription(name=name, duration_s=1))
    for state, t in schedule:
        sim.call_at(t, u.advance, state)
    return u


def full_unit(sim, name, t0):
    """A unit staging 10 s, executing 100 s, staging out 5 s from t0."""
    return make_unit(sim, name, [
        (UnitState.UNSCHEDULED, t0),
        (UnitState.SCHEDULING, t0),
        (UnitState.STAGING_INPUT, t0),
        (UnitState.PENDING_EXECUTION, t0 + 10),
        (UnitState.EXECUTING, t0 + 10),
        (UnitState.STAGING_OUTPUT, t0 + 110),
        (UnitState.DONE, t0 + 115),
    ])


def test_single_pilot_single_unit():
    sim = Simulation()
    pilot = make_pilot(sim, submit_at=0.0, active_at=500.0)
    unit = full_unit(sim, "u0", 500.0)
    sim.run()
    d = decompose([pilot], [unit], t_start=0.0, t_end=615.0)
    assert d.ttc == 615.0
    assert d.tw == 500.0
    assert d.tw_last == 500.0
    assert d.tx == 100.0           # EXECUTING span
    assert d.ts == 15.0            # 10 s in + 5 s out
    assert d.units_done == 1
    assert d.units_failed == 0
    assert d.pilot_waits == (500.0,)


def test_overlapping_units_union_semantics():
    sim = Simulation()
    pilot = make_pilot(sim, submit_at=0.0, active_at=100.0)
    u1 = full_unit(sim, "u1", 100.0)   # executes 110..210
    u2 = full_unit(sim, "u2", 150.0)   # executes 160..260
    sim.run()
    d = decompose([pilot], [u1, u2], t_start=0.0, t_end=265.0)
    # Tx is the span of executions, not the sum
    assert d.tx == 150.0           # 110 .. 260
    # Ts is the union: [100,110] + [150,160] + [210,215] + [260,265]
    assert d.ts == pytest.approx(30.0)


def test_multi_pilot_first_and_last_activation():
    sim = Simulation()
    p1 = make_pilot(sim, submit_at=0.0, active_at=200.0)
    p2 = make_pilot(sim, submit_at=0.0, active_at=900.0)
    unit = full_unit(sim, "u", 200.0)
    sim.run()
    d = decompose([p1, p2], [unit], t_start=0.0, t_end=1000.0)
    assert d.tw == 200.0
    assert d.tw_last == 900.0
    assert d.pilot_waits == (200.0, 900.0)


def test_pilot_never_active():
    sim = Simulation()
    p = make_pilot(sim, submit_at=10.0, active_at=None)
    sim.run()
    d = decompose([p], [], t_start=0.0, t_end=500.0)
    assert d.tw == 490.0           # waited the whole run
    assert math.isnan(d.pilot_waits[0])
    assert d.units_done == 0


def test_trp_counts_uncovered_time():
    sim = Simulation()
    # pilot active immediately; unit starts late -> a gap of pure overhead
    pilot = make_pilot(sim, submit_at=0.0, active_at=10.0)
    unit = full_unit(sim, "u", 300.0)
    sim.run()
    d = decompose([pilot], [unit], t_start=0.0, t_end=415.0)
    # covered: Tw [0,10], staging+exec [300,415] -> uncovered 290
    assert d.trp == pytest.approx(290.0)


def test_failed_units_counted():
    sim = Simulation()
    pilot = make_pilot(sim, submit_at=0.0, active_at=10.0)
    failed = make_unit(sim, "f", [
        (UnitState.UNSCHEDULED, 10.0),
        (UnitState.SCHEDULING, 10.0),
        (UnitState.FAILED, 50.0),
    ])
    failed.restarts = 99  # out of restarts
    sim.run()
    d = decompose([pilot], [failed], t_start=0.0, t_end=100.0)
    assert d.units_failed == 1
    assert d.restarts == 99


def test_invalid_window_rejected():
    sim = Simulation()
    pilot = make_pilot(sim, submit_at=0.0, active_at=10.0)
    sim.run()
    with pytest.raises(IntrospectionError):
        decompose([pilot], [], t_start=100.0, t_end=50.0)
    with pytest.raises(IntrospectionError):
        decompose([], [], t_start=0.0, t_end=1.0)


def test_interval_extraction_helpers():
    sim = Simulation()
    unit = full_unit(sim, "u", 0.0)
    sim.run()
    assert execution_intervals([unit]) == [(10.0, 110.0)]
    assert staging_intervals([unit]) == [(0.0, 10.0), (110.0, 115.0)]
    # a unit that never reached EXECUTING contributes nothing
    sim2 = Simulation()
    young = ComputeUnit(
        sim2, ComputeUnitDescription(name="y", duration_s=1)
    )
    assert execution_intervals([young]) == []
    assert unit_intervals([young], "EXECUTING", ("DONE",)) == []
