"""Integration tests: the Execution Manager over the full stack."""

import math

import pytest

from repro.bundle import BundleManager
from repro.cluster import Cluster
from repro.core import Binding, ExecutionManager, PlannerConfig
from repro.des import Simulation
from repro.net import Network, ORIGIN
from repro.pilot import PilotState, UnitState
from repro.skeleton import SkeletonAPI, bag_of_tasks, map_reduce


def make_env(seed=0, sites=("alpha", "beta", "gamma"), nodes=16, cpn=16):
    sim = Simulation(seed=seed)
    net = Network(sim)
    clusters = {}
    for name in sites:
        net.add_site(name, bandwidth_bytes_per_s=1e7, latency_s=0.01)
        clusters[name] = Cluster(sim, name, nodes=nodes, cores_per_node=cpn,
                                 submit_overhead=1.0)
    bundle = BundleManager(sim, net).create_bundle("pool", clusters)
    em = ExecutionManager(sim, net, bundle)
    return sim, net, clusters, bundle, em


def test_late_binding_execution_completes():
    sim, net, clusters, bundle, em = make_env()
    api = SkeletonAPI(bag_of_tasks(24, task_duration=300), seed=1)
    report = em.execute(api)
    assert report.succeeded
    assert report.n_tasks == 24
    assert report.decomposition.units_done == 24
    assert report.ttc > 300  # at least one task wave
    assert report.strategy.binding is Binding.LATE
    assert len(report.pilots) == 3
    # pilots canceled after the run (no wasted allocation)
    assert all(p.is_final for p in report.pilots)


def test_early_binding_execution_completes():
    sim, net, clusters, bundle, em = make_env(seed=3)
    api = SkeletonAPI(bag_of_tasks(16, task_duration=120), seed=1)
    report = em.execute(api, PlannerConfig(binding=Binding.EARLY))
    assert report.succeeded
    assert report.strategy.n_pilots == 1
    assert report.strategy.pilot_cores == 16


def test_outputs_staged_back_to_origin():
    sim, net, clusters, bundle, em = make_env(seed=5)
    api = SkeletonAPI(bag_of_tasks(8, task_duration=60), seed=2)
    report = em.execute(api)
    fs = net.fs(ORIGIN)
    for task in api.concrete.all_tasks():
        for f in task.outputs:
            assert fs.exists(f.name), f"output {f.name} not staged back"


def test_decomposition_components_sane():
    sim, net, clusters, bundle, em = make_env(seed=7)
    api = SkeletonAPI(bag_of_tasks(32, task_duration=600), seed=3)
    report = em.execute(api)
    d = report.decomposition
    assert d.ttc > 0
    assert 0 <= d.tw <= d.tw_last
    assert d.tx >= 600  # at least one task's duration
    assert d.ts > 0  # staging took real time
    assert d.trp >= 0
    assert d.ttc >= d.tx  # the execution span is inside the TTC
    assert len(d.pilot_waits) == 3
    assert all(not math.isnan(w) and w >= 0 for w in d.pilot_waits)


def test_multistage_with_dependencies():
    sim, net, clusters, bundle, em = make_env(seed=11)
    api = SkeletonAPI(
        map_reduce(n_map_tasks=6, n_reduce_tasks=1,
                   map_duration=100, reduce_duration=50),
        seed=4,
    )
    report = em.execute(api)
    assert report.succeeded
    # the reduce task ran strictly after every map task finished
    reduce_unit = next(
        u for u in report.units if "/reduce/" in u.description.name
    )
    map_units = [u for u in report.units if "/map/" in u.description.name]
    t_reduce_start = reduce_unit.history.timestamp("EXECUTING")
    for mu in map_units:
        assert t_reduce_start >= mu.history.timestamp("DONE")


def test_execution_on_busy_resources_waits_in_queue():
    sim, net, clusters, bundle, em = make_env(seed=13, sites=("alpha",))
    # Occupy the single machine completely for one hour.
    from repro.cluster import BatchJob

    clusters["alpha"].submit(
        BatchJob(cores=256, runtime=3600, walltime=3700)
    )
    sim.run(until=10)
    api = SkeletonAPI(bag_of_tasks(8, task_duration=60), seed=1)
    report = em.execute(
        api, PlannerConfig(binding=Binding.EARLY, resources=("alpha",),
                           n_pilots=1)
    )
    assert report.succeeded
    assert report.decomposition.tw >= 3000  # waited for the blocker


def test_pilot_death_triggers_restart_on_other_pilot():
    sim, net, clusters, bundle, em = make_env(seed=17, sites=("alpha", "beta"))
    api = SkeletonAPI(bag_of_tasks(4, task_duration=1200), seed=1)
    # Tiny walltime: pilots die mid-task; restarts should still finish on
    # later... actually with both pilots dead the run fails cleanly.
    report = em.execute(
        api,
        PlannerConfig(
            binding=Binding.LATE, n_pilots=2,
            resources=("alpha", "beta"), pilot_walltime_min=10.0,
        ),
    )
    # pilots died at 600 s; 1200 s tasks cannot finish
    assert not report.succeeded
    assert report.decomposition.units_done == 0
    assert report.decomposition.restarts > 0
    assert all(p.is_final for p in report.pilots)
    # every unit reached a final state (no zombies)
    assert all(u.is_final for u in report.units)


def test_reports_accumulate():
    sim, net, clusters, bundle, em = make_env(seed=19)
    for seed in (1, 2):
        em.execute(SkeletonAPI(bag_of_tasks(4, task_duration=30), seed=seed))
    assert len(em.reports) == 2
    assert em.reports[0].ttc > 0


def test_trace_records_execution_phases():
    sim, net, clusters, bundle, em = make_env(seed=23)
    api = SkeletonAPI(bag_of_tasks(4, task_duration=30), seed=1)
    em.execute(api)
    events = [
        r.event for r in sim.trace.query(category="execution")
    ]
    assert events == ["START", "STRATEGY", "END"]


def test_access_schema_routing():
    sim, net, clusters, bundle, _ = make_env(seed=29, sites=("alpha",))
    em = ExecutionManager(sim, net, bundle, access_schemas={"alpha": "pbs"})
    api = SkeletonAPI(bag_of_tasks(4, task_duration=30), seed=1)
    report = em.execute(
        api, PlannerConfig(binding=Binding.EARLY, n_pilots=1,
                           resources=("alpha",))
    )
    assert report.succeeded
    # PBS rounds the 4-core pilot up to a whole 16-core node
    assert report.pilots[0].saga_job.native.cores == 16
