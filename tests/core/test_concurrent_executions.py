"""Integration: several applications executing concurrently on one pool."""

import pytest

from repro.bundle import BundleManager
from repro.cluster import Cluster
from repro.core import Binding, ExecutionManager, PlannerConfig
from repro.des import Simulation
from repro.net import Network
from repro.skeleton import SkeletonAPI, bag_of_tasks


@pytest.fixture
def env():
    sim = Simulation(seed=17)
    net = Network(sim)
    clusters = {}
    for name in ("r1", "r2", "r3"):
        net.add_site(name, bandwidth_bytes_per_s=1e7, latency_s=0.01)
        clusters[name] = Cluster(sim, name, nodes=16, cores_per_node=16,
                                 submit_overhead=1.0)
    bundle = BundleManager(sim, net).create_bundle("pool", clusters)
    em = ExecutionManager(sim, net, bundle, agent_bootstrap_s=0.0)
    return sim, net, bundle, em


def test_two_applications_overlap(env):
    sim, net, bundle, em = env
    apps = [
        SkeletonAPI(bag_of_tasks(24, task_duration=300,
                                 name=f"app{i}"), seed=i)
        for i in (1, 2)
    ]
    procs = [em.run(api) for api in apps]
    reports = [sim.run_process(p) for p in procs]
    assert all(r.succeeded for r in reports)
    assert len(em.reports) == 2
    # both executions genuinely overlapped in simulated time
    windows = [
        (r.decomposition.t_start, r.decomposition.t_end) for r in reports
    ]
    (s1, e1), (s2, e2) = windows
    assert max(s1, s2) < min(e1, e2), "executions should overlap"


def test_concurrent_apps_share_resources_without_interference(env):
    sim, net, bundle, em = env
    big = SkeletonAPI(bag_of_tasks(48, task_duration=200, name="big"), seed=3)
    small = SkeletonAPI(bag_of_tasks(6, task_duration=100, name="small"), seed=4)
    p_big = em.run(big, PlannerConfig(binding=Binding.LATE, n_pilots=3))
    p_small = em.run(small, PlannerConfig(binding=Binding.LATE, n_pilots=1))
    r_big = sim.run_process(p_big)
    r_small = sim.run_process(p_small)
    assert r_big.succeeded and r_small.succeeded
    # unit/file namespaces never collided
    names_big = {u.description.name for u in r_big.units}
    names_small = {u.description.name for u in r_small.units}
    assert names_big.isdisjoint(names_small)


def test_staggered_submissions(env):
    sim, net, bundle, em = env
    first = SkeletonAPI(bag_of_tasks(12, task_duration=600, name="first"),
                        seed=5)
    proc_first = em.run(first)
    sim.run(until=300)  # first app is mid-flight
    second = SkeletonAPI(bag_of_tasks(12, task_duration=60, name="second"),
                         seed=6)
    proc_second = em.run(second)
    r2 = sim.run_process(proc_second)
    r1 = sim.run_process(proc_first)
    assert r1.succeeded and r2.succeeded
    assert r2.decomposition.t_start == 300.0
