"""Integration matrix: every legal binding x unit-scheduler combination."""

import pytest

from repro.bundle import BundleManager
from repro.cluster import Cluster
from repro.core import Binding, ExecutionManager, PlannerConfig
from repro.des import Simulation
from repro.net import Network, ORIGIN
from repro.skeleton import SkeletonAPI, bag_of_tasks

COMBINATIONS = [
    (Binding.EARLY, "direct", 1),
    (Binding.LATE, "backfill", 1),
    (Binding.LATE, "backfill", 3),
    (Binding.LATE, "round-robin", 3),
    (Binding.LATE, "locality", 3),
]


@pytest.mark.parametrize("binding,scheduler,n_pilots", COMBINATIONS)
def test_combination_executes_cleanly(binding, scheduler, n_pilots):
    sim = Simulation(seed=71)
    net = Network(sim)
    clusters = {}
    for name in ("r1", "r2", "r3"):
        net.add_site(name, bandwidth_bytes_per_s=1e7, latency_s=0.01)
        clusters[name] = Cluster(sim, name, nodes=8, cores_per_node=8,
                                 submit_overhead=1.0)
    bundle = BundleManager(sim, net).create_bundle("pool", clusters)
    em = ExecutionManager(sim, net, bundle, agent_bootstrap_s=0.0)
    api = SkeletonAPI(bag_of_tasks(18, task_duration=120), seed=4)
    report = em.execute(
        api,
        PlannerConfig(
            binding=binding, unit_scheduler=scheduler, n_pilots=n_pilots,
        ),
    )
    assert report.succeeded, f"{binding}/{scheduler}/{n_pilots} failed"
    d = report.decomposition
    # decomposition invariants hold for every combination
    assert d.ttc > 0
    assert d.tw >= 0 and d.tx > 0 and d.ts >= 0 and d.trp >= 0
    assert d.units_done == 18
    assert len(report.pilots) == n_pilots
    # every output made it home
    fs = net.fs(ORIGIN)
    for task in api.concrete.all_tasks():
        for f in task.outputs:
            assert fs.exists(f.name)
    # pilots were canceled; no cores remain allocated to units
    for p in report.pilots:
        assert p.is_final
        if p.agent is not None:
            assert p.agent.capacity.in_use == 0


@pytest.mark.parametrize("binding,scheduler,n_pilots", COMBINATIONS)
def test_combination_is_deterministic(binding, scheduler, n_pilots):
    def run():
        sim = Simulation(seed=73)
        net = Network(sim)
        clusters = {}
        for name in ("r1", "r2"):
            net.add_site(name, bandwidth_bytes_per_s=1e7, latency_s=0.01)
            clusters[name] = Cluster(sim, name, nodes=4, cores_per_node=8,
                                     submit_overhead=1.0)
        bundle = BundleManager(sim, net).create_bundle("pool", clusters)
        em = ExecutionManager(sim, net, bundle, agent_bootstrap_s=0.0)
        api = SkeletonAPI(bag_of_tasks(8, task_duration=60), seed=4)
        k = min(n_pilots, 2)
        report = em.execute(
            api,
            PlannerConfig(binding=binding, unit_scheduler=scheduler,
                          n_pilots=k),
        )
        return report.ttc, tuple(u.pilot.resource for u in report.units)

    assert run() == run()
