"""Tests for session analytics (state durations, concurrency, allocation)."""

import json

import pytest

from repro.bundle import BundleManager
from repro.cluster import Cluster
from repro.core import (
    ExecutionManager,
    PlannerConfig,
    Binding,
    allocation_metrics,
    concurrency_series,
    export_trace,
    peak_concurrency,
    state_durations,
)
from repro.des import Simulation
from repro.net import Network
from repro.skeleton import SkeletonAPI, bag_of_tasks


@pytest.fixture(scope="module")
def executed():
    sim = Simulation(seed=31)
    net = Network(sim)
    clusters = {}
    for name in ("a", "b"):
        net.add_site(name, bandwidth_bytes_per_s=1e7, latency_s=0.01)
        clusters[name] = Cluster(sim, name, nodes=4, cores_per_node=4,
                                 submit_overhead=0.0)
    bundle = BundleManager(sim, net).create_bundle("pool", clusters)
    em = ExecutionManager(sim, net, bundle, agent_bootstrap_s=0.0)
    # 8 tasks on 2 pilots x 4 cores -> exactly one wave of 8
    api = SkeletonAPI(bag_of_tasks(8, task_duration=300), seed=2)
    report = em.execute(
        api, PlannerConfig(binding=Binding.LATE, n_pilots=2)
    )
    return sim, report


def test_state_durations_units(executed):
    sim, report = executed
    totals = state_durations(report.units)
    # eight units x 300 s of execution each
    assert totals["EXECUTING"] == pytest.approx(8 * 300, rel=0.05)
    assert totals.get("STAGING_INPUT", 0) > 0


def test_state_durations_with_final_time(executed):
    sim, report = executed
    totals = state_durations(report.pilots, final_time=sim.now)
    assert totals.get("ACTIVE", 0) > 0


def test_concurrency_series_shape(executed):
    sim, report = executed
    series = concurrency_series(report.units)
    assert series, "expected a non-empty concurrency series"
    levels = [lvl for _, lvl in series]
    assert max(levels) == 8  # full wave in flight at once
    assert series[-1][1] == 0  # everything drained by the end
    times = [t for t, _ in series]
    assert times == sorted(times)
    assert peak_concurrency(report.units) == 8


def test_allocation_metrics(executed):
    sim, report = executed
    m = allocation_metrics(report.pilots, report.units, final_time=sim.now)
    assert m.used_core_s == pytest.approx(8 * 300, rel=0.05)
    assert m.consumed_core_s >= m.used_core_s
    assert 0 < m.efficiency <= 1


def test_allocation_metrics_empty():
    m = allocation_metrics([], [])
    assert m.consumed_core_s == 0
    assert m.efficiency == 0


def test_export_trace_json(executed):
    sim, report = executed
    doc = json.loads(export_trace(sim.trace.query(category="unit")))
    assert doc, "expected unit trace records"
    assert all(r["category"] == "unit" for r in doc)
    sample = doc[0]
    assert {"time", "category", "entity", "event", "data"} <= set(sample)
    # full dump also parses
    full = json.loads(export_trace(sim.trace.records))
    assert len(full) >= len(doc)


def test_export_trace_tracer_signature_is_deprecated(executed):
    sim, _ = executed
    with pytest.warns(DeprecationWarning):
        doc = json.loads(export_trace(sim.trace, category="unit"))
    assert doc and all(r["category"] == "unit" for r in doc)
    with pytest.raises(TypeError):
        export_trace(sim.trace.records, category="unit")
