"""Tests for interval algebra and metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    merge_intervals,
    overlap_fraction,
    span,
    throughput,
    union_duration,
)


def test_merge_disjoint():
    assert merge_intervals([(0, 1), (2, 3)]) == [(0, 1), (2, 3)]


def test_merge_overlapping_and_touching():
    assert merge_intervals([(0, 2), (1, 3)]) == [(0, 3)]
    assert merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]


def test_merge_unsorted_input():
    assert merge_intervals([(5, 6), (0, 2), (1, 3)]) == [(0, 3), (5, 6)]


def test_merge_drops_inverted():
    assert merge_intervals([(3, 1)]) == []


def test_union_duration():
    assert union_duration([(0, 2), (1, 3), (10, 11)]) == 4.0
    assert union_duration([]) == 0.0


def test_span():
    assert span([(2, 4), (10, 12)]) == 10.0
    assert span([]) == 0.0


def test_overlap_fraction():
    assert overlap_fraction([(0, 10)], [(5, 15)]) == pytest.approx(0.5)
    assert overlap_fraction([(0, 10)], [(20, 30)]) == 0.0
    assert overlap_fraction([(0, 10)], [(0, 10)]) == 1.0
    assert overlap_fraction([], [(0, 1)]) == 0.0


def test_overlap_fraction_multiple_segments():
    a = [(0, 4), (10, 14)]
    b = [(2, 12)]
    # covered of a: [2,4] and [10,12] = 4 of 8
    assert overlap_fraction(a, b) == pytest.approx(0.5)


def test_throughput():
    assert throughput(100, 3600) == pytest.approx(100.0)
    assert throughput(10, 0) == 0.0


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(0, 100), st.floats(0, 100)).map(
            lambda p: (min(p), max(p))
        ),
        max_size=20,
    )
)
def test_union_properties(intervals):
    """Union duration <= sum of durations; merged intervals are disjoint."""
    total = sum(hi - lo for lo, hi in intervals)
    union = union_duration(intervals)
    assert union <= total + 1e-9
    merged = merge_intervals(intervals)
    for (a, b), (c, d) in zip(merged, merged[1:]):
        assert b < c  # strictly disjoint and ordered
    assert union <= span(intervals) + 1e-9 or not intervals
