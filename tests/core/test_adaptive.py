"""Tests for dynamic execution (mid-flight strategy revision)."""

import pytest

from repro.bundle import BundleManager
from repro.cluster import BatchJob, Cluster
from repro.core import (
    AdaptationPolicy,
    Binding,
    ExecutionManager,
    PlannerConfig,
)
from repro.des import Simulation
from repro.net import Network
from repro.skeleton import SkeletonAPI, bag_of_tasks


def make_env(seed=0, sites=("slow", "fast"), nodes=16, cpn=16):
    sim = Simulation(seed=seed)
    net = Network(sim)
    clusters = {}
    for name in sites:
        net.add_site(name, bandwidth_bytes_per_s=1e7, latency_s=0.01)
        clusters[name] = Cluster(sim, name, nodes=nodes, cores_per_node=cpn,
                                 submit_overhead=1.0)
    bundle = BundleManager(sim, net).create_bundle("pool", clusters)
    em = ExecutionManager(sim, net, bundle, agent_bootstrap_s=0.0)
    return sim, net, clusters, bundle, em


def block(cluster, runtime):
    """Occupy every core of a cluster for `runtime` seconds."""
    cluster.submit(
        BatchJob(cores=cluster.total_cores, runtime=runtime,
                 walltime=runtime + 60)
    )


def test_backup_pilot_rescues_stalled_start():
    sim, net, clusters, bundle, em = make_env()
    # "slow" is fully blocked for 4 hours; "fast" is idle.
    block(clusters["slow"], 4 * 3600)
    sim.run(until=10)
    api = SkeletonAPI(bag_of_tasks(8, task_duration=60), seed=1)
    report = em.execute(
        api,
        PlannerConfig(binding=Binding.LATE, n_pilots=1, resources=("slow",)),
        adaptation=AdaptationPolicy(activation_deadline_s=600),
    )
    assert report.succeeded
    assert len(report.adaptations) == 1
    assert report.adaptations[0].resource == "fast"
    # The strategy's decision tree records the revision explicitly.
    assert report.strategy.decision("backup_pilot_1").value == "fast"
    # TTC far below the 4-hour blockade: the backup did the work.
    assert report.ttc < 2 * 3600


def test_no_adaptation_when_pilot_starts_promptly():
    sim, net, clusters, bundle, em = make_env(seed=3)
    api = SkeletonAPI(bag_of_tasks(8, task_duration=60), seed=1)
    report = em.execute(
        api,
        PlannerConfig(binding=Binding.LATE, n_pilots=1, resources=("fast",)),
        adaptation=AdaptationPolicy(activation_deadline_s=600),
    )
    assert report.succeeded
    assert report.adaptations == []
    assert len(report.pilots) == 1


def test_without_policy_execution_rides_out_the_wait():
    sim, net, clusters, bundle, em = make_env(seed=5)
    block(clusters["slow"], 2 * 3600)
    sim.run(until=10)
    api = SkeletonAPI(bag_of_tasks(8, task_duration=60), seed=1)
    report = em.execute(
        api,
        PlannerConfig(binding=Binding.LATE, n_pilots=1, resources=("slow",)),
    )
    assert report.succeeded
    assert report.decomposition.tw > 3600  # no rescue: waits out the blockade


def test_backup_count_capped():
    sim, net, clusters, bundle, em = make_env(
        seed=7, sites=("a", "b", "c", "d")
    )
    for name in ("a", "b", "c", "d"):
        block(clusters[name], 10 * 3600)
    sim.run(until=10)
    api = SkeletonAPI(bag_of_tasks(4, task_duration=60), seed=1)
    report = em.execute(
        api,
        PlannerConfig(binding=Binding.LATE, n_pilots=1, resources=("a",)),
        adaptation=AdaptationPolicy(
            activation_deadline_s=300, redeadline_s=300, max_backup_pilots=2
        ),
    )
    # everything blocked: two backups were tried, then the policy stopped.
    assert len(report.adaptations) == 2
    assert {e.resource for e in report.adaptations} <= {"b", "c", "d"}
    assert report.succeeded  # eventually the blockade ends and pilots run


def test_backup_resources_avoid_in_use_ones():
    sim, net, clusters, bundle, em = make_env(seed=9, sites=("a", "b"))
    block(clusters["a"], 4 * 3600)
    block(clusters["b"], 4 * 3600)
    sim.run(until=10)
    api = SkeletonAPI(bag_of_tasks(4, task_duration=60), seed=1)
    report = em.execute(
        api,
        PlannerConfig(binding=Binding.LATE, n_pilots=1, resources=("a",)),
        adaptation=AdaptationPolicy(
            activation_deadline_s=300, redeadline_s=300, max_backup_pilots=3
        ),
    )
    # only "b" was available to reinforce with; no duplicates on "a"/"b".
    assert len(report.adaptations) == 1
    assert report.adaptations[0].resource == "b"


def test_pilot_renewal_rescues_walltime_exhaustion():
    """Pilot succession: tasks outlasting the pilot walltime hop to a
    successor instead of being stranded."""
    sim, net, clusters, bundle, em = make_env(seed=21, sites=("solo",))
    api = SkeletonAPI(bag_of_tasks(16, task_duration=300), seed=1)
    config = PlannerConfig(
        binding=Binding.LATE, n_pilots=1, resources=("solo",),
        pilot_cores=4, pilot_walltime_min=12.0,  # 16x300s on 4 cores > 720s
    )
    # Without renewal: pilots die with work left; units exhaust restarts
    # or get canceled when every pilot is final.
    baseline = em.execute(api, config)
    assert not baseline.succeeded

    sim2, net2, clusters2, bundle2, em2 = make_env(seed=21, sites=("solo",))
    api2 = SkeletonAPI(bag_of_tasks(16, task_duration=300), seed=1)
    rescued = em2.execute(
        api2, config,
        adaptation=AdaptationPolicy(
            activation_deadline_s=1e9,   # disable backup-pilot arm
            renew_before_s=240.0, max_renewals=3,
        ),
    )
    assert rescued.succeeded
    renewals = [e for e in rescued.adaptations if "successor" in e.reason]
    assert renewals, "expected at least one succession event"
    assert any(
        d.name.startswith("renewal_") for d in rescued.strategy.decisions
    )


def test_renewal_stops_when_no_work_remains():
    sim, net, clusters, bundle, em = make_env(seed=23, sites=("solo",))
    api = SkeletonAPI(bag_of_tasks(4, task_duration=60), seed=1)
    report = em.execute(
        api,
        PlannerConfig(binding=Binding.LATE, n_pilots=1, resources=("solo",),
                      pilot_cores=4, pilot_walltime_min=30.0),
        adaptation=AdaptationPolicy(
            activation_deadline_s=1e9, renew_before_s=1200.0,
        ),
    )
    assert report.succeeded
    # work finished long before the walltime margin: no successors
    assert not [e for e in report.adaptations if "successor" in e.reason]
