"""CLI logging setup: verbosity mapping, idempotence, file handler."""

import io
import logging

import pytest

from repro.logutil import ROOT, setup_logging, verbosity_level


@pytest.fixture(autouse=True)
def _pristine_hierarchy():
    yield
    # leave the hierarchy as the library default: unconfigured.
    logger = logging.getLogger(ROOT)
    for handler in list(logger.handlers):
        logger.removeHandler(handler)
        handler.close()
    logger.setLevel(logging.NOTSET)
    logger.propagate = True


class TestVerbosityLevel:
    def test_mapping(self):
        assert verbosity_level(0) == logging.WARNING
        assert verbosity_level(1) == logging.INFO
        assert verbosity_level(2) == logging.DEBUG
        assert verbosity_level(5) == logging.DEBUG
        assert verbosity_level(-1) == logging.WARNING


class TestSetupLogging:
    def test_default_is_warning_only(self):
        buf = io.StringIO()
        setup_logging(0, stream=buf)
        log = logging.getLogger("repro.test_logutil")
        log.info("quiet")
        log.warning("loud")
        out = buf.getvalue()
        assert "quiet" not in out and "loud" in out

    def test_verbose_shows_info(self):
        buf = io.StringIO()
        setup_logging(1, stream=buf)
        logging.getLogger("repro.test_logutil").info("milestone")
        assert "milestone" in buf.getvalue()
        assert "repro.test_logutil" in buf.getvalue()

    def test_repeated_setup_does_not_stack_handlers(self):
        buf = io.StringIO()
        for _ in range(3):
            setup_logging(1, stream=buf)
        logging.getLogger("repro.test_logutil").info("once")
        assert buf.getvalue().count("once") == 1

    def test_log_file_gets_debug_regardless_of_verbosity(self, tmp_path):
        path = tmp_path / "run.log"
        buf = io.StringIO()
        setup_logging(0, log_file=str(path), stream=buf)
        logging.getLogger("repro.test_logutil").debug("detail")
        assert "detail" in path.read_text(encoding="utf-8")
        assert "detail" not in buf.getvalue()

    def test_no_propagation_to_root(self):
        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(record)

        root_handler = Capture()
        logging.getLogger().addHandler(root_handler)
        try:
            setup_logging(1, stream=io.StringIO())
            logging.getLogger("repro.test_logutil").info("local")
            assert not records
        finally:
            logging.getLogger().removeHandler(root_handler)

    def test_library_is_silent_without_setup(self):
        # a bare import must not configure anything (library etiquette).
        logger = logging.getLogger(ROOT)
        assert logger.handlers == []
