"""Deadline supervision and breaker integration over the full stack."""

import pytest

from repro.bundle import BundleManager
from repro.cluster import Cluster
from repro.core import (
    Binding,
    ExecutionError,
    ExecutionManager,
    PlannerConfig,
    derive_strategy,
)
from repro.des import Simulation
from repro.health import BreakerPolicy, BreakerState, SupervisionPolicy
from repro.net import Network
from repro.pilot import (
    ComputePilotDescription,
    PilotManager,
    PilotState,
)
from repro.saga import FallibleAdaptor, SubmissionFaultModel
from repro.skeleton import SkeletonAPI, bag_of_tasks


def build_stack(seed=0, supervision=None, names=("alpha", "beta", "gamma")):
    sim = Simulation(seed=seed)
    net = Network(sim)
    clusters = {}
    for name in names:
        net.add_site(name, bandwidth_bytes_per_s=1e7, latency_s=0.01)
        clusters[name] = Cluster(sim, name, nodes=16, cores_per_node=16,
                                 submit_overhead=1.0)
    bundle = BundleManager(sim, net).create_bundle("pool", clusters)
    em = ExecutionManager(sim, net, bundle, supervision=supervision)
    return sim, net, bundle, em


def api(n_tasks=12, task_s=600.0):
    return SkeletonAPI(bag_of_tasks(n_tasks, task_duration=task_s), seed=1)


LATE_2P = PlannerConfig(
    binding=Binding.LATE, n_pilots=2, unit_scheduler="backfill"
)


def test_supervision_policy_validation():
    with pytest.raises(ValueError):
        SupervisionPolicy(watchdog_timeout_s=0.0)
    with pytest.raises(ValueError):
        SupervisionPolicy(deadline_s=-1.0)
    with pytest.raises(ValueError):
        SupervisionPolicy(check_interval_s=0.0)
    with pytest.raises(ValueError):
        SupervisionPolicy(max_replans=-1)
    assert SupervisionPolicy().enabled
    assert not SupervisionPolicy(breaker=None).enabled
    assert SupervisionPolicy(breaker=None, deadline_s=60.0).enabled


def test_all_resources_quarantined_is_a_clear_error():
    sim, net, bundle, em = build_stack(supervision=SupervisionPolicy())
    for name in bundle.resources():
        em.health.breaker(name).trip("outage-observed")
    with pytest.raises(ExecutionError, match="quarantined"):
        em.execute(api(), LATE_2P)


def test_explicit_strategy_on_quarantined_resources_is_rejected():
    sim, net, bundle, em = build_stack(supervision=SupervisionPolicy())
    strategy = derive_strategy(api().requirements(), bundle, LATE_2P)
    assert len(strategy.resources) < len(bundle.resources())
    for name in strategy.resources:
        em.health.breaker(name).trip("outage-observed")
    with pytest.raises(ExecutionError, match="strategy"):
        em.execute(api(), strategy=strategy)


def test_quarantined_resources_are_invisible_to_the_planner():
    sim, net, bundle, em = build_stack(supervision=SupervisionPolicy())
    em.health.breaker("alpha").trip("outage-observed")
    report = em.execute(api(), LATE_2P)
    assert report.succeeded
    assert "alpha" not in report.strategy.resources


def test_deadline_expiry_degrades_to_a_partial_result():
    sup = SupervisionPolicy(deadline_s=2500.0, check_interval_s=200.0)
    sim, net, bundle, em = build_stack(supervision=sup)
    # 8 sequential-ish hours of work against a ~40-minute budget
    report = em.execute(api(n_tasks=16, task_s=3600.0), LATE_2P)

    assert report.deadline_expired
    assert not report.succeeded
    assert "DEADLINE EXPIRED" in report.summary()
    d = report.decomposition
    assert d.units_done + d.units_failed + d.units_canceled == 16
    assert d.units_canceled > 0
    assert report.health_log.of_kind("deadline-expired")
    # the run terminated promptly after expiry instead of draining the
    # remaining hours of work
    assert sim.now < 2500.0 + 2 * sup.check_interval_s + 60.0


def test_mid_run_quarantine_triggers_a_replan():
    """A live-but-distrusted resource makes the supervisor re-derive."""
    sup = SupervisionPolicy(
        deadline_s=48 * 3600.0, check_interval_s=300.0, max_replans=2
    )
    sim, net, bundle, em = build_stack(supervision=sup)
    sim.call_in(600.0, lambda: em.health.breaker("alpha").trip(
        "monitor-offline"
    ))
    config = PlannerConfig(
        binding=Binding.LATE, n_pilots=2, unit_scheduler="backfill",
        resources=("alpha", "beta"),
    )
    report = em.execute(api(n_tasks=24, task_s=900.0), config)

    assert report.succeeded
    assert report.replans, "the supervisor never re-planned"
    ev = report.replans[0]
    assert "alpha" in ev.quarantined
    assert "alpha" not in ev.resources
    assert report.health_log.of_kind("replan")
    assert report.decomposition.t_quarantined > 0.0
    # a re-plan never re-pins the original resource set
    assert all("alpha" not in r.resources for r in report.replans)


def test_replan_with_nothing_healthy_fails_soft_then_deadline_rescues():
    """All breakers open mid-run: replanning is impossible, the deadline
    still guarantees termination with honest accounting."""
    sup = SupervisionPolicy(deadline_s=1500.0, check_interval_s=200.0)
    sim, net, bundle, em = build_stack(supervision=sup)

    def trip_everything():
        for name in bundle.resources():
            em.health.breaker(name).trip("outage-observed")

    sim.call_in(400.0, trip_everything)
    report = em.execute(api(n_tasks=32, task_s=1800.0), LATE_2P)

    assert report.deadline_expired
    assert not report.succeeded
    assert report.health_log.of_kind("replan-failed")
    assert not report.replans  # nothing healthy: no revision was enacted


# -- half-open probes at the pilot-manager level -------------------------------


def probe_stack(cooldown_s=50.0):
    from repro.health import HealthRegistry

    sim = Simulation(seed=0)
    clusters = {"alpha": Cluster(sim, "alpha", nodes=4, cores_per_node=8,
                                 submit_overhead=1.0)}
    reg = HealthRegistry(sim, breaker=BreakerPolicy(
        failure_threshold=1, cooldown_s=cooldown_s
    ))
    pm = PilotManager(sim, clusters, health=reg)
    return sim, reg, pm


def desc():
    return ComputePilotDescription(resource="alpha", cores=8, runtime_min=60)


def test_half_open_probe_success_closes_the_breaker():
    sim, reg, pm = probe_stack()
    reg.breaker("alpha").trip("outage-observed")

    # quarantined: submissions fail fast and are NOT held against alpha
    (rejected,) = pm.submit_pilots([desc()])
    assert rejected.state is PilotState.FAILED
    assert rejected.quarantine_rejected
    assert sim.trace.query(event="SUBMIT-QUARANTINED")
    assert reg.breaker_state("alpha") is BreakerState.OPEN

    sim.run(until=60.0)  # cooldown elapses
    assert reg.breaker_state("alpha") is BreakerState.HALF_OPEN

    (probe,) = pm.submit_pilots([desc()])  # takes the single probe slot
    reg.observe_pilot(probe)
    assert not probe.quarantine_rejected
    (second,) = pm.submit_pilots([desc()])  # no second probe
    assert second.quarantine_rejected

    sim.run(until=200.0)
    assert probe.state is PilotState.ACTIVE
    assert reg.breaker_state("alpha") is BreakerState.CLOSED
    (after,) = pm.submit_pilots([desc()])
    assert not after.quarantine_rejected


def test_half_open_probe_failure_reopens_the_breaker():
    sim, reg, pm = probe_stack(cooldown_s=50.0)
    reg.breaker("alpha").trip("outage-observed")
    sim.run(until=60.0)
    assert reg.breaker_state("alpha") is BreakerState.HALF_OPEN

    # the probe submission itself bounces off the SAGA layer
    model = SubmissionFaultModel(sim, sim.rng.get("test-faults"))
    model.add_scripted(1, resource="alpha", permanent=True)
    pm.set_adaptor_wrapper(lambda a: FallibleAdaptor(a, model))

    (probe,) = pm.submit_pilots([desc()])
    assert probe.state is PilotState.FAILED
    assert reg.breaker_state("alpha") is BreakerState.OPEN

    # the cooldown restarted at the probe failure (t=60): half-open at 110
    sim.run(until=112.0)
    assert reg.breaker_state("alpha") is BreakerState.HALF_OPEN
    (retry,) = pm.submit_pilots([desc()])
    reg.observe_pilot(retry)
    sim.run(until=250.0)
    assert retry.state is PilotState.ACTIVE
    assert reg.breaker_state("alpha") is BreakerState.CLOSED
