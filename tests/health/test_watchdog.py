"""UnitWatchdog: hung units are caught and rescheduled, busy ones are not."""

import pytest

from repro.des import Simulation
from repro.health import BreakerPolicy, HealthRegistry, UnitWatchdog
from repro.net import Network, ORIGIN
from repro.cluster import Cluster
from repro.pilot import (
    ComputePilotDescription,
    ComputeUnitDescription,
    PilotManager,
    UnitManager,
    UnitState,
)


def make_stack(sites=("alpha", "beta"), registry=True):
    sim = Simulation(seed=0)
    net = Network(sim)
    clusters = {}
    for name in sites:
        net.add_site(name, bandwidth_bytes_per_s=1e6, latency_s=0.01)
        clusters[name] = Cluster(sim, name, nodes=4, cores_per_node=8,
                                 submit_overhead=1.0)
    reg = (
        HealthRegistry(sim, breaker=BreakerPolicy(failure_threshold=1))
        if registry else None
    )
    pm = PilotManager(sim, clusters, health=reg)
    um = UnitManager(sim, net, scheduler="backfill", health=reg)
    return sim, net, clusters, pm, um, reg


def pilot_desc(resource):
    return ComputePilotDescription(resource=resource, cores=8, runtime_min=120)


def staged_unit(i, size=2e6):
    return ComputeUnitDescription(
        name=f"t{i}", duration_s=60.0, cores=1,
        input_staging=(f"in-{i}.dat",),
    )


def test_watchdog_validation():
    sim = Simulation(seed=0)
    with pytest.raises(ValueError):
        UnitWatchdog(sim, None, [], timeout_s=0.0)


def test_hung_staging_units_are_rescheduled_to_a_healthy_pilot():
    sim, net, clusters, pm, um, reg = make_stack()
    for i in range(4):
        net.fs(ORIGIN).write(f"in-{i}.dat", 2e6, 0.0)
    pilots = pm.submit_pilots([pilot_desc("alpha")])
    um.add_pilots(pilots)
    sim.run(until=30.0)
    assert pilots[0].is_active
    units = um.submit_units([staged_unit(i) for i in range(4)])
    watchdog = UnitWatchdog(sim, um, units, timeout_s=30.0, registry=reg,
                            check_interval_s=10.0)

    def partition_alpha():
        # full partition mid-staging + the breaker learns about it
        net.link_to("alpha").set_degradation(0.0)
        reg.breaker("alpha").trip("link-partition")
        # the survivor joins after the quarantine, so rebinding has a
        # healthy destination
        replacement = pm.submit_pilots([pilot_desc("beta")])
        um.add_pilots(replacement)

    sim.call_in(0.5, partition_alpha)
    sim.run(until=1200.0)
    assert watchdog.rescheduled >= 1
    assert all(u.state is UnitState.DONE for u in units)
    assert all(u.pilot.resource == "beta" for u in units)
    events = reg.log.of_kind("watchdog-reschedule")
    assert events and events[0].details
    # caught within timeout + one check interval of the hang
    assert events[0].time <= 30.5 + 30.0 + 10.0


def test_long_executing_unit_is_not_mistaken_for_a_hang():
    sim, net, clusters, pm, um, reg = make_stack(sites=("alpha",))
    pilots = pm.submit_pilots([pilot_desc("alpha")])
    um.add_pilots(pilots)
    sim.run(until=30.0)
    units = um.submit_units([
        ComputeUnitDescription(name="long", duration_s=500.0, cores=1)
    ])
    watchdog = UnitWatchdog(sim, um, units, timeout_s=30.0, registry=reg,
                            check_interval_s=10.0)
    sim.run(until=1200.0)
    assert watchdog.rescheduled == 0
    assert units[0].state is UnitState.DONE


def test_unit_waiting_for_cores_is_not_watched():
    """PENDING_EXECUTION means the pilot is full, not that the unit hung."""
    sim, net, clusters, pm, um, reg = make_stack(sites=("alpha",))
    pilots = pm.submit_pilots([pilot_desc("alpha")])
    um.add_pilots(pilots)
    sim.run(until=30.0)
    units = um.submit_units([
        ComputeUnitDescription(name=f"wide-{i}", duration_s=100.0, cores=8)
        for i in range(2)
    ])
    watchdog = UnitWatchdog(sim, um, units, timeout_s=30.0, registry=reg,
                            check_interval_s=10.0)
    sim.run(until=1200.0)
    # the second unit waited ~100s for cores, far past the timeout
    assert watchdog.rescheduled == 0
    assert all(u.state is UnitState.DONE for u in units)


def test_unit_queued_behind_an_inactive_pilot_is_left_alone():
    sim, net, clusters, pm, um, reg = make_stack(sites=("alpha",))
    clusters["alpha"].set_offline(600.0)  # pilot cannot start yet
    pilots = pm.submit_pilots([pilot_desc("alpha")])
    um.add_pilots(pilots)
    units = um.submit_units([
        ComputeUnitDescription(name="early", duration_s=50.0, cores=1)
    ])
    watchdog = UnitWatchdog(sim, um, units, timeout_s=30.0, registry=reg,
                            check_interval_s=10.0)
    sim.run(until=300.0)
    assert watchdog.rescheduled == 0  # waiting on the queue, not hung


def test_watchdog_without_registry_traces_directly():
    sim, net, clusters, pm, um, _ = make_stack(registry=False)
    net.fs(ORIGIN).write("in-0.dat", 2e6, 0.0)
    pilots = pm.submit_pilots([pilot_desc("alpha")])
    um.add_pilots(pilots)
    sim.run(until=30.0)
    units = um.submit_units([staged_unit(0)])
    watchdog = UnitWatchdog(sim, um, units, timeout_s=30.0,
                            check_interval_s=10.0)
    sim.call_in(0.5, net.link_to("alpha").set_degradation, 0.0)
    sim.run(until=200.0)
    assert watchdog.rescheduled >= 1
    assert sim.trace.query(event="WATCHDOG-RESCHEDULE")
