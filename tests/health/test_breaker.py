"""CircuitBreaker: the closed/open/half-open state machine."""

import pytest

from repro.des import Simulation
from repro.health import BreakerPolicy, BreakerState, CircuitBreaker


def make_breaker(**policy_kw):
    sim = Simulation(seed=0)
    events = []
    brk = CircuitBreaker(
        sim, "alpha", BreakerPolicy(**policy_kw),
        on_event=lambda kind, resource, **d: events.append((sim.now, kind, d)),
    )
    return sim, brk, events


def test_policy_validation():
    with pytest.raises(ValueError):
        BreakerPolicy(failure_threshold=0)
    with pytest.raises(ValueError):
        BreakerPolicy(cooldown_s=0.0)
    with pytest.raises(ValueError):
        BreakerPolicy(half_open_successes=0)


def test_threshold_opens_the_breaker():
    sim, brk, events = make_breaker(failure_threshold=3)
    brk.record_failure()
    brk.record_failure()
    assert brk.state is BreakerState.CLOSED
    assert brk.allow_submission()
    brk.record_failure()
    assert brk.state is BreakerState.OPEN
    assert brk.is_quarantined
    assert not brk.allow_submission()
    assert [e[1] for e in events] == ["breaker-open"]


def test_success_resets_the_failure_count():
    sim, brk, _ = make_breaker(failure_threshold=2)
    brk.record_failure()
    brk.record_success()
    brk.record_failure()
    assert brk.state is BreakerState.CLOSED  # never two consecutive


def test_trip_opens_immediately():
    sim, brk, events = make_breaker(failure_threshold=5)
    brk.trip("outage-observed")
    assert brk.state is BreakerState.OPEN
    assert events[0][1] == "breaker-open"
    assert events[0][2]["reason"] == "outage-observed"
    # tripping an already-open breaker is a no-op
    brk.trip("outage-observed")
    assert len(events) == 1


def test_cooldown_moves_open_to_half_open():
    sim, brk, events = make_breaker(failure_threshold=1, cooldown_s=100.0)
    brk.record_failure()
    sim.run(until=99.0)
    assert brk.state is BreakerState.OPEN
    sim.run(until=101.0)
    assert brk.state is BreakerState.HALF_OPEN
    assert not brk.is_quarantined  # probing, not quarantined
    assert [e[1] for e in events] == ["breaker-open", "breaker-half-open"]


def test_half_open_hands_out_a_single_probe_slot():
    sim, brk, events = make_breaker(failure_threshold=1, cooldown_s=10.0)
    brk.record_failure()
    sim.run(until=11.0)
    assert brk.allow_submission()       # the probe
    assert not brk.allow_submission()   # no second probe
    assert [e[1] for e in events] == [
        "breaker-open", "breaker-half-open", "breaker-probe"
    ]


def test_probe_success_closes_the_breaker():
    sim, brk, events = make_breaker(failure_threshold=1, cooldown_s=10.0)
    brk.record_failure()
    sim.run(until=11.0)
    assert brk.allow_submission()
    brk.record_success("pilot-active")
    assert brk.state is BreakerState.CLOSED
    assert brk.allow_submission()
    assert events[-1][1] == "breaker-close"


def test_probe_failure_reopens_and_restarts_the_cooldown():
    sim, brk, _ = make_breaker(failure_threshold=1, cooldown_s=10.0)
    brk.record_failure()
    sim.run(until=11.0)
    assert brk.allow_submission()
    brk.record_failure("pilot-failed")
    assert brk.state is BreakerState.OPEN
    sim.run(until=20.0)  # the *old* cooldown callback must not half-open it
    assert brk.state is BreakerState.OPEN
    sim.run(until=22.0)
    assert brk.state is BreakerState.HALF_OPEN


def test_reopened_breaker_probe_can_still_close():
    sim, brk, _ = make_breaker(failure_threshold=1, cooldown_s=10.0)
    brk.record_failure()
    sim.run(until=11.0)
    brk.record_failure()   # probe window failure -> reopen
    sim.run(until=25.0)
    assert brk.allow_submission()
    brk.record_success()
    assert brk.state is BreakerState.CLOSED


def test_quarantined_seconds_accounting():
    sim, brk, _ = make_breaker(failure_threshold=1, cooldown_s=100.0)
    sim.run(until=50.0)
    brk.record_failure()   # open [50, 150)
    sim.run(until=160.0)   # half-open at 150
    assert brk.quarantined_seconds(0.0, 200.0) == pytest.approx(100.0)
    assert brk.quarantined_seconds(0.0, 120.0) == pytest.approx(70.0)
    assert brk.quarantined_seconds(60.0, 100.0) == pytest.approx(40.0)
    assert brk.quarantined_seconds(150.0, 200.0) == 0.0


def test_quarantined_seconds_clips_a_still_open_window():
    sim, brk, _ = make_breaker(failure_threshold=1, cooldown_s=1e6)
    sim.run(until=10.0)
    brk.record_failure()
    sim.run(until=110.0)
    assert brk.quarantined_seconds(0.0, 110.0) == pytest.approx(100.0)
