"""HealthRegistry: fusing monitor, SAGA, pilot, and fault-log signals."""

import pytest

from repro.bundle import BundleManager
from repro.cluster import Cluster
from repro.des import Simulation
from repro.faults import FaultLog
from repro.health import BreakerPolicy, BreakerState, HealthRegistry
from repro.net import Network
from repro.pilot import ComputePilotDescription, PilotManager, PilotState


def make_registry(**reg_kw):
    sim = Simulation(seed=0)
    reg_kw.setdefault("breaker", BreakerPolicy(failure_threshold=2))
    return sim, HealthRegistry(sim, **reg_kw)


def test_scores_start_trusted_and_move_with_outcomes():
    sim, reg = make_registry()
    assert reg.score("alpha") == 1.0
    reg.record_failure("alpha")
    assert reg.score("alpha") < 1.0
    low = reg.score("alpha")
    reg.record_success("alpha")
    assert low < reg.score("alpha") < 1.0


def test_score_decay_validation():
    sim = Simulation(seed=0)
    with pytest.raises(ValueError):
        HealthRegistry(sim, score_decay=1.0)


def test_failures_quarantine_through_the_breaker():
    sim, reg = make_registry()
    reg.record_failure("alpha")
    assert not reg.is_quarantined("alpha")
    reg.record_failure("alpha")
    assert reg.is_quarantined("alpha")
    assert reg.breaker_state("alpha") is BreakerState.OPEN
    assert not reg.allow_submission("alpha")
    assert reg.healthy(("alpha", "beta")) == ("beta",)
    assert reg.quarantined(("alpha", "beta")) == ("alpha",)


def test_no_breaker_policy_means_no_quarantine():
    sim, reg = make_registry(breaker=None)
    for _ in range(10):
        reg.record_failure("alpha")
    assert not reg.is_quarantined("alpha")
    assert reg.allow_submission("alpha")
    assert reg.score("alpha") < 0.1  # scoring still works


def test_submission_acceptance_does_not_close_a_half_open_breaker():
    """A queued placeholder proves nothing; only activation closes."""
    sim, reg = make_registry(
        breaker=BreakerPolicy(failure_threshold=1, cooldown_s=10.0)
    )
    reg.record_failure("alpha")
    sim.run(until=11.0)
    assert reg.breaker_state("alpha") is BreakerState.HALF_OPEN
    assert reg.allow_submission("alpha")  # the probe
    reg.record_submission("alpha", ok=True)
    assert reg.breaker_state("alpha") is BreakerState.HALF_OPEN
    reg.record_success("alpha", "pilot-active")
    assert reg.breaker_state("alpha") is BreakerState.CLOSED


def test_pilot_lifecycle_feeds_the_registry():
    sim = Simulation(seed=0)
    reg = HealthRegistry(sim, breaker=BreakerPolicy(failure_threshold=1))
    clusters = {"alpha": Cluster(sim, "alpha", nodes=4, cores_per_node=8,
                                 submit_overhead=1.0)}
    pm = PilotManager(sim, clusters)
    (pilot,) = pm.submit_pilots(
        ComputePilotDescription(resource="alpha", cores=8, runtime_min=60)
    )
    reg.observe_pilot(pilot)
    sim.run(until=500.0)
    assert pilot.state is PilotState.ACTIVE
    assert reg.score("alpha") > 0.5
    assert not reg.is_quarantined("alpha")


def test_quarantine_rejected_pilot_is_not_counted_as_failure():
    """The breaker's own fail-fast must not feed back into the breaker."""
    sim, reg = make_registry(breaker=BreakerPolicy(failure_threshold=1))

    class FakePilot:
        resource = "alpha"
        quarantine_rejected = True

        def add_callback(self, fn):
            self.fn = fn

    pilot = FakePilot()
    reg.observe_pilot(pilot)
    pilot.fn(pilot, PilotState.FAILED)
    assert not reg.is_quarantined("alpha")
    pilot.quarantine_rejected = False
    pilot.fn(pilot, PilotState.FAILED)
    assert reg.is_quarantined("alpha")


def test_fault_log_listener_trips_on_outage_and_partition():
    sim, reg = make_registry()
    log = FaultLog()
    log.add_listener(reg.on_fault_event)
    log.record(sim.now, "outage", "alpha", duration=600.0)
    assert reg.is_quarantined("alpha")
    # a slowdown is not a partition: no trip
    log.record(sim.now, "link-degrade", "beta", factor=0.5)
    assert not reg.is_quarantined("beta")
    log.record(sim.now, "link-degrade", "beta", factor=0.0)
    assert reg.is_quarantined("beta")
    # and the listener never altered the log's digest inputs
    assert log.by_kind() == {"outage": 1, "link-degrade": 2}


def test_fault_listener_ignores_other_kinds():
    sim, reg = make_registry(breaker=BreakerPolicy(failure_threshold=5))
    log = FaultLog()
    log.add_listener(reg.on_fault_event)
    log.record(sim.now, "pilot-kill", "alpha/pilot#0", cause="scripted")
    assert not reg.is_quarantined("alpha")


def make_bundle(sim, names=("alpha", "beta")):
    net = Network(sim)
    clusters = {}
    for name in names:
        net.add_site(name, bandwidth_bytes_per_s=1e7, latency_s=0.01)
        clusters[name] = Cluster(sim, name, nodes=4, cores_per_node=8,
                                 submit_overhead=1.0)
    return clusters, BundleManager(sim, net).create_bundle("pool", clusters)


def test_bundle_monitor_offline_trips_the_breaker():
    sim = Simulation(seed=0)
    clusters, bundle = make_bundle(sim)
    reg = HealthRegistry(sim, breaker=BreakerPolicy(failure_threshold=5))
    reg.watch(bundle)
    clusters["alpha"].set_offline(3600.0)
    sim.run(until=200.0)  # a couple of monitor ticks
    assert reg.is_quarantined("alpha")
    assert not reg.is_quarantined("beta")
    assert reg.log.of_kind("breaker-open")[0].target == "alpha"


def test_unwatch_releases_the_monitor_and_stops_sampling():
    """Dropping the last subscription must end the sampling loop."""
    sim = Simulation(seed=0)
    clusters, bundle = make_bundle(sim)
    reg = HealthRegistry(sim)
    reg.watch(bundle)
    sim.run(until=120.0)
    assert bundle.monitor._running
    reg.unwatch()
    sim.run(until=300.0)  # past the next sampling tick
    assert not bundle.monitor._running
    assert not bundle.monitor._subs


def test_snapshot_reports_scores_and_states():
    sim, reg = make_registry()
    reg.record_failure("alpha")
    reg.record_failure("alpha")
    reg.record_success("beta")
    snap = reg.snapshot()
    assert snap["alpha"]["state"] == "open"
    assert snap["beta"]["state"] == "closed"
    assert snap["alpha"]["score"] < snap["beta"]["score"]


def test_record_event_reaches_listeners_and_the_trace():
    sim, reg = make_registry()
    seen = []
    reg.add_listener(seen.append)
    reg.record_event("watchdog-reschedule", "unit-1", state="EXECUTING")
    assert len(seen) == 1 and seen[0].kind == "watchdog-reschedule"
    assert sim.trace.query(event="WATCHDOG-RESCHEDULE")
    reg.remove_listener(seen.append)
    reg.record_event("replan", "*")
    assert len(seen) == 1  # removed listeners stay quiet
