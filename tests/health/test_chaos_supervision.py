"""Supervised chaos: the acceptance scenario for health supervision.

Three headline properties:

* a scripted outage opens the resource's breaker and the late-binding
  run completes on the remaining resources;
* a full link partition hangs staging units; the watchdog catches them
  within its timeout and they finish elsewhere;
* the whole supervision timeline is deterministic — two runs of the
  same seeded scenario (jittered backoffs included) produce
  byte-for-byte identical FaultLog *and* health-event traces.
"""

from repro.bundle import BundleManager
from repro.cluster import Cluster
from repro.core import (
    Binding,
    ExecutionManager,
    PlannerConfig,
    RecoveryPolicy,
)
from repro.des import Simulation
from repro.faults import DegradeLink, FaultInjector, FaultPlan, Outage
from repro.health import BreakerPolicy, SupervisionPolicy
from repro.net import Network
from repro.pilot import UnitState
from repro.skeleton import SkeletonAPI, bag_of_tasks


def run_supervised(
    plan,
    supervision,
    seed=0,
    n_tasks=18,
    task_s=900.0,
    input_size=1e6,
    bandwidth=1e7,
    recovery=None,
    submit_jitter=0.0,
):
    """One supervised execution under a fault plan, in a fresh simulation."""
    sim = Simulation(seed=seed)
    net = Network(sim)
    clusters = {}
    for name in ("alpha", "beta", "gamma"):
        net.add_site(name, bandwidth_bytes_per_s=bandwidth, latency_s=0.01)
        clusters[name] = Cluster(sim, name, nodes=16, cores_per_node=16,
                                 submit_overhead=1.0)
    bundle = BundleManager(sim, net).create_bundle("pool", clusters)
    em = ExecutionManager(
        sim, net, bundle, supervision=supervision,
        submit_jitter_frac=submit_jitter,
    )
    em.attach_faults(FaultInjector(
        sim, plan, pilot_manager=em.pilot_manager, network=net
    ))
    config = PlannerConfig(
        binding=Binding.LATE, n_pilots=3, unit_scheduler="backfill"
    )
    api = SkeletonAPI(
        bag_of_tasks(n_tasks, task_duration=task_s, input_size=input_size),
        seed=1,
    )
    return em.execute(api, config, recovery=recovery)


OUTAGE = FaultPlan(seed=0, actions=(
    Outage(at=600.0, resource="alpha", duration=4 * 3600.0),
))

PARTITION = FaultPlan(seed=0, actions=(
    DegradeLink(at=80.0, site="alpha", factor=0.0, duration=2 * 3600.0),
))

BREAKER_4H = BreakerPolicy(failure_threshold=2, cooldown_s=4 * 3600.0)


def test_outage_opens_the_breaker_and_the_run_survives():
    report = run_supervised(
        OUTAGE,
        SupervisionPolicy(breaker=BREAKER_4H),
        recovery=RecoveryPolicy(max_resubmissions=2, jitter_frac=0.1),
    )
    assert report.succeeded
    opened = report.health_log.of_kind("breaker-open")
    assert "alpha" in {e.target for e in opened}
    assert report.decomposition.t_quarantined > 0.0
    # every task landed on a surviving resource
    done = [u for u in report.units if u.state is UnitState.DONE]
    assert done and all(u.pilot.resource in ("beta", "gamma") for u in done)
    assert "quarantined" in report.summary()


def test_watchdog_catches_units_hung_on_a_partitioned_link():
    report = run_supervised(
        PARTITION,
        SupervisionPolicy(breaker=BREAKER_4H, watchdog_timeout_s=120.0),
        n_tasks=12,
        task_s=300.0,
        input_size=1e7,
        bandwidth=1e6,
    )
    assert report.succeeded
    assert report.decomposition.units_rescheduled >= 1
    caught = report.health_log.of_kind("watchdog-reschedule")
    assert caught
    # caught within the timeout plus one check interval of the partition
    # (the watchdog checks every timeout/4 = 30s by default)
    assert caught[0].time <= 80.0 + 120.0 + 30.0 + 1.0
    # the partition was treated as direct evidence against alpha
    opened = report.health_log.of_kind("breaker-open")
    assert any(
        e.target == "alpha" and dict(e.details).get("reason") == "link-partition"
        for e in opened
    )
    # hung units finished on a healthy resource
    done = [u for u in report.units if u.state is UnitState.DONE]
    assert all(u.pilot.resource in ("beta", "gamma") for u in done)


def assert_identical_supervised_runs(plan, supervision, **kw):
    a = run_supervised(plan, supervision, **kw)
    b = run_supervised(plan, supervision, **kw)
    assert a.fault_log.canonical_json() == b.fault_log.canonical_json()
    assert a.fault_log.digest() == b.fault_log.digest()
    assert a.health_log.canonical_json() == b.health_log.canonical_json()
    assert a.health_log.digest() == b.health_log.digest()
    assert repr(a.decomposition) == repr(b.decomposition)
    assert a.succeeded == b.succeeded
    assert len(a.replans) == len(b.replans)
    return a


def test_supervised_outage_run_reproduces_byte_for_byte():
    """Jittered backoffs draw from the kernel's seeded streams, so even
    the full supervision stack replays identically."""
    report = assert_identical_supervised_runs(
        OUTAGE,
        SupervisionPolicy(
            breaker=BREAKER_4H,
            watchdog_timeout_s=600.0,
            deadline_s=24 * 3600.0,
        ),
        recovery=RecoveryPolicy(max_resubmissions=2, jitter_frac=0.1),
        submit_jitter=0.1,
    )
    assert report.health_log.of_kind("breaker-open")


def test_watchdog_partition_run_reproduces_byte_for_byte():
    report = assert_identical_supervised_runs(
        PARTITION,
        SupervisionPolicy(breaker=BREAKER_4H, watchdog_timeout_s=120.0),
        n_tasks=12,
        task_s=300.0,
        input_size=1e7,
        bandwidth=1e6,
    )
    assert report.health_log.of_kind("watchdog-reschedule")


def test_kernel_seed_does_not_leak_into_the_fault_stream():
    """Different run seeds: different substrate, identical scripted faults."""
    sup = SupervisionPolicy(breaker=BREAKER_4H)
    a = run_supervised(OUTAGE, sup, seed=1,
                       recovery=RecoveryPolicy(jitter_frac=0.1))
    b = run_supervised(OUTAGE, sup, seed=2,
                       recovery=RecoveryPolicy(jitter_frac=0.1))
    assert a.fault_log.digest() == b.fault_log.digest()
    assert a.succeeded and b.succeeded
