"""The fault matrix: {binding x scheduler} x {fault plan}, accounting checks.

Every cell runs a full execution and asserts the report's books balance:
each task is counted exactly once across done/failed/canceled, restart
counts agree with the unit histories, and ``succeeded`` means exactly
"every task is done" — under every combination of strategy and fault.
"""

import pytest

from repro.core import Binding, RecoveryPolicy
from repro.faults import (
    DegradeLink,
    FaultPlan,
    KillPilot,
    Outage,
    PilotHazard,
    SubmitFailures,
    SubmitHazard,
)
from repro.pilot import UnitState

from .test_chaos import N_TASKS, run_chaos

STRATEGIES = [
    pytest.param(Binding.EARLY, 1, id="early-direct-1p"),
    pytest.param(Binding.LATE, 3, id="late-backfill-3p"),
]

PLANS = [
    pytest.param(FaultPlan(seed=0), id="no-faults"),
    pytest.param(
        FaultPlan(seed=0, actions=(KillPilot(at=600.0, index=0),)),
        id="kill-first-pilot",
    ),
    pytest.param(
        FaultPlan(seed=7, actions=(PilotHazard(rate_per_s=1.0 / 1800.0),)),
        id="pilot-hazard",
    ),
    pytest.param(
        FaultPlan(seed=3, actions=(
            SubmitFailures(count=1),
            SubmitHazard(p_fail=0.15),
        )),
        id="flaky-submission",
    ),
    pytest.param(
        FaultPlan(seed=0, actions=(
            Outage(at=300.0, resource="alpha", duration=600.0),
        )),
        id="outage",
    ),
    pytest.param(
        FaultPlan(seed=0, actions=(
            DegradeLink(at=100.0, site="alpha", factor=0.1, duration=900.0),
        )),
        id="degraded-wan",
    ),
]


@pytest.mark.parametrize("plan", PLANS)
@pytest.mark.parametrize("binding,n_pilots", STRATEGIES)
def test_accounting_balances_in_every_cell(binding, n_pilots, plan):
    report = run_chaos(
        plan,
        binding=binding,
        n_pilots=n_pilots,
        recovery=RecoveryPolicy(max_resubmissions=1, backoff_s=30.0),
    )
    d = report.decomposition

    # every task counted exactly once across the terminal states
    assert d.units_done + d.units_failed + d.units_canceled == N_TASKS
    assert d.units_done == sum(
        1 for u in report.units if u.state is UnitState.DONE
    )
    assert d.units_failed == sum(
        1 for u in report.units if u.state is UnitState.FAILED
    )
    assert d.units_canceled == sum(
        1 for u in report.units if u.state is UnitState.CANCELED
    )

    # succeeded means exactly "all done" — never true on a partial run
    assert report.succeeded == (d.units_done == N_TASKS)

    # restart bookkeeping: decomposition matches unit histories, and a
    # done unit's history holds one more DONE-reachable attempt than
    # restarts (no attempt is counted twice)
    assert d.restarts == sum(u.restarts for u in report.units)
    for u in report.units:
        executions = sum(
            1 for state, _ in u.history.as_list()
            if state == UnitState.EXECUTING.value
        )
        assert executions <= u.restarts + 1

    # time components stay sane under chaos
    assert d.ttc >= 0
    assert d.tx >= 0 and d.ts >= 0 and d.trp >= 0
    assert d.t_lost >= 0
    assert d.n_faults == len(report.fault_log)

    # a clean cell shows no fault side-effects
    if plan.is_empty:
        assert report.succeeded
        assert d.n_faults == 0 and d.t_lost == 0.0 and d.restarts == 0


@pytest.mark.parametrize("binding,n_pilots", STRATEGIES)
def test_restarts_only_on_pilot_loss(binding, n_pilots):
    """Submission-layer faults never burn executed work."""
    plan = FaultPlan(seed=3, actions=(SubmitFailures(count=2),))
    report = run_chaos(plan, binding=binding, n_pilots=n_pilots)
    d = report.decomposition
    assert d.t_lost == 0.0
    assert d.restarts == 0
