"""Chaos scenarios over the full stack: robustness and reproducibility.

Two headline properties:

* the paper's robustness argument — late binding over several pilots
  survives a pilot death that kills an early-bound single-pilot run;
* determinism — the same seeded FaultPlan yields a byte-for-byte
  identical FaultLog and an identical TTC decomposition on a fresh
  simulation.
"""

from repro.bundle import BundleManager
from repro.cluster import Cluster
from repro.core import Binding, ExecutionManager, PlannerConfig, RecoveryPolicy
from repro.des import Simulation
from repro.faults import (
    FaultInjector,
    FaultPlan,
    KillPilot,
    PilotHazard,
    SubmitHazard,
)
from repro.net import Network
from repro.pilot import UnitState
from repro.skeleton import SkeletonAPI, bag_of_tasks

N_TASKS = 24
TASK_S = 900.0


def run_chaos(
    plan,
    binding=Binding.LATE,
    n_pilots=3,
    seed=0,
    recovery=None,
    n_tasks=N_TASKS,
    task_s=TASK_S,
):
    """One full execution under a fault plan, in a fresh simulation."""
    sim = Simulation(seed=seed)
    net = Network(sim)
    clusters = {}
    for name in ("alpha", "beta", "gamma"):
        net.add_site(name, bandwidth_bytes_per_s=1e7, latency_s=0.01)
        clusters[name] = Cluster(sim, name, nodes=16, cores_per_node=16,
                                 submit_overhead=1.0)
    bundle = BundleManager(sim, net).create_bundle("pool", clusters)
    em = ExecutionManager(sim, net, bundle)
    em.attach_faults(FaultInjector(
        sim, plan, pilot_manager=em.pilot_manager, network=net
    ))
    config = PlannerConfig(
        binding=binding,
        n_pilots=n_pilots,
        unit_scheduler="direct" if binding is Binding.EARLY else "backfill",
    )
    api = SkeletonAPI(bag_of_tasks(n_tasks, task_duration=task_s), seed=1)
    return em.execute(api, config, recovery=recovery)


KILL_FIRST = FaultPlan(seed=0, actions=(KillPilot(at=600.0, index=0),))


# -- the acceptance scenario ---------------------------------------------------


def test_late_binding_survives_the_kill_that_sinks_early_binding():
    """Same fault, opposite outcomes: the paper's robustness claim."""
    late = run_chaos(KILL_FIRST, binding=Binding.LATE, n_pilots=3)
    early = run_chaos(KILL_FIRST, binding=Binding.EARLY, n_pilots=1)

    # late binding: tasks re-bind to the surviving pilots and finish
    assert late.succeeded
    assert late.decomposition.units_done == N_TASKS
    assert late.decomposition.restarts > 0       # work really was re-run
    assert late.decomposition.t_lost > 0.0       # and it cost something
    assert late.decomposition.n_faults == 1

    # early binding: the only pilot died; the run ends in failure
    assert not early.succeeded
    assert early.decomposition.units_done < N_TASKS
    assert early.decomposition.n_faults == 1
    d = early.decomposition
    assert d.units_done + d.units_failed + d.units_canceled == N_TASKS


def test_restarted_units_do_not_double_count():
    report = run_chaos(KILL_FIRST, binding=Binding.LATE, n_pilots=3)
    d = report.decomposition
    # every task is counted exactly once, whatever its journey
    assert d.units_done + d.units_failed + d.units_canceled == N_TASKS
    assert d.units_done == sum(
        1 for u in report.units if u.state is UnitState.DONE
    )
    assert d.restarts == sum(u.restarts for u in report.units)
    # a unit that completed after a restart is done, not done-and-failed
    restarted_and_done = [
        u for u in report.units if u.restarts > 0 and u.state is UnitState.DONE
    ]
    assert restarted_and_done, "the kill should have forced restarts"


# -- byte-for-byte reproducibility --------------------------------------------


def assert_identical_runs(plan, **kw):
    a = run_chaos(plan, **kw)
    b = run_chaos(plan, **kw)
    assert a.fault_log.canonical_json() == b.fault_log.canonical_json()
    assert a.fault_log.digest() == b.fault_log.digest()
    # TTCDecomposition is a frozen dataclass of floats/ints/tuples: repr
    # equality is field-for-field equality (and robust to NaN waits).
    assert repr(a.decomposition) == repr(b.decomposition)
    assert a.succeeded == b.succeeded
    assert len(a.recoveries) == len(b.recoveries)
    return a


def test_scripted_plan_reproduces_exactly():
    report = assert_identical_runs(KILL_FIRST)
    assert report.decomposition.n_faults == 1


def test_hazard_plan_reproduces_exactly():
    plan = FaultPlan(seed=13, actions=(
        PilotHazard(rate_per_s=1.0 / 1200.0),
        SubmitHazard(p_fail=0.2),
    ))
    report = assert_identical_runs(
        plan, recovery=RecoveryPolicy(max_resubmissions=2, backoff_s=30.0)
    )
    assert report.decomposition.n_faults == len(report.fault_log)


def test_fault_seed_changes_the_outcome_but_not_the_substrate():
    """Fault draws come from the plan's seed: same substrate, new chaos."""
    base = FaultPlan(seed=1, actions=(PilotHazard(rate_per_s=1.0 / 1000.0),))
    other = FaultPlan(seed=2, actions=base.actions)
    a = run_chaos(base)
    b = run_chaos(other)
    assert a.fault_log.digest() != b.fault_log.digest()
    # the substrate is untouched by fault draws: with no faults at all,
    # two different plan seeds give identical clean executions.
    clean_a = run_chaos(FaultPlan(seed=1))
    clean_b = run_chaos(FaultPlan(seed=2))
    assert repr(clean_a.decomposition) == repr(clean_b.decomposition)
    assert clean_a.succeeded and clean_b.succeeded


def test_fault_log_flows_into_report_and_summary():
    report = run_chaos(KILL_FIRST)
    assert report.fault_log is not None
    assert report.fault_log.by_kind() == {"pilot-kill": 1}
    assert "faults 1" in report.summary()
    assert "lost" in report.summary()
