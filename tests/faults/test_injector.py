"""FaultInjector: enacting plans against the live stack, and the FaultLog."""

import pytest

from repro.cluster import Cluster
from repro.des import Simulation
from repro.faults import (
    DegradeLink,
    FaultInjectionError,
    FaultInjector,
    FaultLog,
    FaultPlan,
    KillPilot,
    Outage,
    PilotHazard,
)
from repro.net import Network
from repro.pilot import ComputePilotDescription, PilotManager, PilotState


def make_stack(seed=0, sites=("alpha", "beta")):
    sim = Simulation(seed=seed)
    net = Network(sim)
    clusters = {}
    for name in sites:
        net.add_site(name, bandwidth_bytes_per_s=1e7, latency_s=0.01)
        clusters[name] = Cluster(sim, name, nodes=4, cores_per_node=8,
                                 submit_overhead=1.0)
    pm = PilotManager(sim, clusters)
    return sim, net, clusters, pm


def desc(resource="alpha", cores=8, runtime_min=120):
    return ComputePilotDescription(
        resource=resource, cores=cores, runtime_min=runtime_min
    )


# -- pilot kills ---------------------------------------------------------------


def test_scripted_kill_fails_an_active_pilot():
    sim, net, clusters, pm = make_stack()
    (pilot,) = pm.submit_pilots(desc())
    plan = FaultPlan(actions=(KillPilot(at=500.0, index=0),))
    inj = FaultInjector(sim, plan, pilot_manager=pm).arm()
    sim.run(until=1000.0)
    assert pilot.state is PilotState.FAILED
    events = list(inj.log)
    assert len(events) == 1
    assert events[0].kind == "pilot-kill"
    assert events[0].target == "alpha/pilot#0"
    assert events[0].time == 500.0
    assert dict(events[0].details)["cause"] == "scripted"


def test_kill_by_resource_picks_oldest_matching_pilot():
    sim, net, clusters, pm = make_stack()
    pm.submit_pilots([desc("alpha"), desc("beta"), desc("beta")])
    plan = FaultPlan(actions=(KillPilot(at=300.0, resource="beta"),))
    inj = FaultInjector(sim, plan, pilot_manager=pm).arm()
    sim.run(until=1000.0)
    assert pm.pilots[0].state is not PilotState.FAILED
    assert pm.pilots[1].state is PilotState.FAILED
    assert pm.pilots[2].state is not PilotState.FAILED
    assert inj.log.events[0].target == "beta/pilot#1"


def test_kill_with_no_candidate_logs_a_miss():
    sim, net, clusters, pm = make_stack()
    plan = FaultPlan(actions=(KillPilot(at=100.0),))
    inj = FaultInjector(sim, plan, pilot_manager=pm).arm()
    sim.run(until=200.0)
    assert inj.log.events[0].kind == "pilot-kill-miss"
    assert inj.log.events[0].target == "*"


def test_kill_requires_a_pilot_manager():
    sim, net, clusters, _ = make_stack()
    plan = FaultPlan(actions=(KillPilot(at=100.0),))
    FaultInjector(sim, plan, clusters=clusters).arm()
    with pytest.raises(FaultInjectionError, match="pilot manager"):
        sim.run(until=200.0)


def test_plan_times_are_relative_to_arming_epoch():
    """A plan authored as "kill at t=500" works after any warm-up."""
    sim, net, clusters, pm = make_stack()
    sim.run(until=10_000.0)  # warm-up
    (pilot,) = pm.submit_pilots(desc())
    plan = FaultPlan(actions=(KillPilot(at=500.0, index=0),))
    inj = FaultInjector(sim, plan, pilot_manager=pm).arm()
    sim.run(until=12_000.0)
    assert pilot.state is PilotState.FAILED
    assert inj.log.events[0].time == 10_500.0


def test_hazard_kills_are_reproducible_across_fresh_stacks():
    def run_once():
        sim, net, clusters, pm = make_stack(seed=3)
        pm.submit_pilots([desc("alpha"), desc("beta")])
        plan = FaultPlan(
            seed=11, actions=(PilotHazard(rate_per_s=1.0 / 900.0),)
        )
        inj = FaultInjector(sim, plan, pilot_manager=pm).arm()
        sim.run(until=4000.0)
        return inj.log

    log_a, log_b = run_once(), run_once()
    assert len(log_a) > 0
    assert log_a.canonical_json() == log_b.canonical_json()
    assert log_a.digest() == log_b.digest()


def test_different_plan_seeds_give_different_hazard_timelines():
    def run_once(plan_seed):
        sim, net, clusters, pm = make_stack(seed=3)
        pm.submit_pilots([desc("alpha"), desc("beta")])
        plan = FaultPlan(
            seed=plan_seed, actions=(PilotHazard(rate_per_s=1.0 / 600.0),)
        )
        inj = FaultInjector(sim, plan, pilot_manager=pm).arm()
        sim.run(until=4000.0)
        return inj.log

    assert run_once(1).digest() != run_once(2).digest()


def test_disarm_stops_hazards():
    sim, net, clusters, pm = make_stack()
    pm.submit_pilots(desc())
    plan = FaultPlan(seed=5, actions=(PilotHazard(rate_per_s=1.0 / 50.0),))
    inj = FaultInjector(sim, plan, pilot_manager=pm).arm()
    sim.run(until=300.0)
    seen = len(inj.log)
    assert seen > 0
    inj.disarm()
    sim.run(until=5000.0)
    assert len(inj.log) == seen  # nothing fires after disarm


# -- outages -------------------------------------------------------------------


def test_outage_takes_the_cluster_offline_and_is_logged():
    sim, net, clusters, pm = make_stack()
    plan = FaultPlan(actions=(Outage(at=100.0, resource="alpha", duration=500.0),))
    inj = FaultInjector(sim, plan, clusters=clusters).arm()
    sim.run(until=150.0)
    assert clusters["alpha"].is_offline
    assert not clusters["beta"].is_offline
    sim.run(until=1000.0)
    assert not clusters["alpha"].is_offline
    ev = inj.log.events[0]
    assert (ev.kind, ev.target) == ("outage", "alpha")


def test_outage_on_unknown_resource_raises():
    sim, net, clusters, pm = make_stack()
    plan = FaultPlan(actions=(Outage(at=10.0, resource="nowhere", duration=5.0),))
    FaultInjector(sim, plan, clusters=clusters).arm()
    with pytest.raises(FaultInjectionError, match="unknown resource"):
        sim.run(until=20.0)


# -- link degradation ----------------------------------------------------------


def test_degrade_link_throttles_and_restores():
    sim, net, clusters, pm = make_stack()
    link = net.link_to("alpha")
    base = link.bandwidth
    plan = FaultPlan(actions=(
        DegradeLink(at=100.0, site="alpha", factor=0.25, duration=200.0),
    ))
    inj = FaultInjector(sim, plan, network=net).arm()
    sim.run(until=150.0)
    assert link.degradation == 0.25
    assert link.effective_bandwidth == pytest.approx(base * 0.25)
    sim.run(until=400.0)
    assert link.degradation == 1.0
    assert [e.kind for e in inj.log] == ["link-degrade", "link-restore"]


def test_overlapping_windows_compose_by_severity():
    sim, net, clusters, pm = make_stack()
    link = net.link_to("alpha")
    plan = FaultPlan(actions=(
        DegradeLink(at=100.0, site="alpha", factor=0.5, duration=400.0),
        DegradeLink(at=200.0, site="alpha", factor=0.0, duration=100.0),
    ))
    FaultInjector(sim, plan, network=net).arm()
    sim.run(until=150.0)
    assert link.degradation == 0.5
    sim.run(until=250.0)
    assert link.is_partitioned  # the harsher window wins
    sim.run(until=350.0)
    assert link.degradation == 0.5  # back to the milder window
    sim.run(until=600.0)
    assert link.degradation == 1.0


def test_degrade_link_requires_a_network():
    sim, net, clusters, pm = make_stack()
    plan = FaultPlan(actions=(
        DegradeLink(at=1.0, site="alpha", factor=0.5, duration=10.0),
    ))
    with pytest.raises(FaultInjectionError, match="network"):
        FaultInjector(sim, plan).arm()


# -- the log itself ------------------------------------------------------------


def test_fault_log_views_and_digest():
    log = FaultLog()
    log.record(10.0, "pilot-kill", "a/pilot#0", cause="scripted")
    log.record(20.0, "submit-fail", "b", permanent=False)
    log.record(30.0, "pilot-kill", "a/pilot#1", cause="hazard")
    assert len(log) == 3
    assert log.by_kind() == {"pilot-kill": 2, "submit-fail": 1}
    sub = log.between(15.0, 30.0)
    assert [e.time for e in sub] == [20.0, 30.0]
    # digest is order- and content-sensitive, stable across instances
    clone = FaultLog()
    clone.record(10.0, "pilot-kill", "a/pilot#0", cause="scripted")
    clone.record(20.0, "submit-fail", "b", permanent=False)
    clone.record(30.0, "pilot-kill", "a/pilot#1", cause="hazard")
    assert clone.digest() == log.digest()
    assert "3 injected" in log.summary()
    assert FaultLog().summary() == "faults: none injected"


def test_arm_is_idempotent():
    sim, net, clusters, pm = make_stack()
    pm.submit_pilots(desc())
    plan = FaultPlan(actions=(KillPilot(at=100.0, index=0),))
    inj = FaultInjector(sim, plan, pilot_manager=pm)
    inj.arm()
    inj.arm()  # second arm is a no-op, events are not doubled
    sim.run(until=200.0)
    assert len(inj.log) == 1
