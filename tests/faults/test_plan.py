"""FaultPlan: validation, serialization, presets."""

import math

import pytest

from repro.faults import (
    ACTION_KINDS,
    DegradeLink,
    FaultPlan,
    FaultPlanError,
    KillPilot,
    Outage,
    PilotHazard,
    PRESET_NAMES,
    SubmitFailures,
    SubmitHazard,
    preset_plan,
)


def full_plan(seed=42):
    return FaultPlan(
        seed=seed,
        actions=(
            KillPilot(at=3600.0, index=0),
            KillPilot(at=7200.0, resource="stampede-sim"),
            PilotHazard(rate_per_s=1e-4, start=100.0, stop=5000.0),
            SubmitFailures(count=2, resource="comet-sim"),
            SubmitHazard(p_fail=0.25, permanent=True),
            DegradeLink(at=1000.0, site="gordon-sim", factor=0.1, duration=600.0),
            Outage(at=2000.0, resource="stampede-sim", duration=900.0),
        ),
    )


def test_every_action_kind_is_registered():
    plan = full_plan()
    assert {a.kind for a in plan.actions} == set(ACTION_KINDS)


def test_of_kind_filters():
    plan = full_plan()
    assert len(plan.of_kind("kill-pilot")) == 2
    assert len(plan.of_kind("outage")) == 1
    assert plan.of_kind("nonexistent") == ()
    assert not plan.is_empty
    assert FaultPlan().is_empty


def test_json_round_trip_preserves_everything(tmp_path):
    plan = full_plan(seed=7)
    clone = FaultPlan.from_json(plan.to_json())
    assert clone == plan
    path = tmp_path / "plan.json"
    plan.save(str(path))
    assert FaultPlan.load(str(path)) == plan


def test_open_hazard_window_survives_json():
    plan = FaultPlan(actions=(PilotHazard(rate_per_s=0.001),))
    text = plan.to_json()
    assert "Infinity" not in text  # inf encoded as null, valid JSON
    clone = FaultPlan.from_json(text)
    assert clone.actions[0].stop == math.inf


def test_unknown_kind_rejected():
    with pytest.raises(FaultPlanError, match="unknown fault kind"):
        FaultPlan.from_dict({"seed": 0, "actions": [{"kind": "meteor"}]})
    with pytest.raises(FaultPlanError, match="unknown fault action"):
        FaultPlan(actions=("not-an-action",))


def test_malformed_action_rejected():
    with pytest.raises(FaultPlanError, match="malformed"):
        FaultPlan.from_dict(
            {"seed": 0, "actions": [{"kind": "kill-pilot", "at": -1.0}]}
        )


@pytest.mark.parametrize(
    "bad",
    [
        lambda: KillPilot(at=-5.0),
        lambda: PilotHazard(rate_per_s=0.0),
        lambda: PilotHazard(rate_per_s=1.0, start=10.0, stop=5.0),
        lambda: SubmitFailures(count=0),
        lambda: SubmitHazard(p_fail=0.0),
        lambda: SubmitHazard(p_fail=1.5),
        lambda: DegradeLink(at=0.0, site="x", factor=1.0, duration=10.0),
        lambda: DegradeLink(at=0.0, site="x", factor=0.5, duration=0.0),
        lambda: Outage(at=0.0, resource="x", duration=-1.0),
    ],
)
def test_action_validation(bad):
    with pytest.raises(ValueError):
        bad()


def test_presets_resolve_and_carry_the_seed():
    for name in PRESET_NAMES:
        plan = preset_plan(name, seed=99)
        assert plan.seed == 99
        assert not plan.is_empty
    with pytest.raises(FaultPlanError, match="unknown fault preset"):
        preset_plan("apocalypse")
