"""Consumer hardening: submission retries and pilot resubmission budgets."""

import pytest

from repro.bundle import BundleManager
from repro.cluster import Cluster
from repro.core import ExecutionManager, RecoveryPolicy
from repro.des import RngStreams, Simulation
from repro.faults import (
    FaultInjector,
    FaultPlan,
    KillPilot,
    SubmitFailures,
)
from repro.pilot import ComputePilotDescription, PilotManager, PilotState
from repro.saga import FallibleAdaptor, SubmissionFaultModel
from repro.skeleton import SkeletonAPI, bag_of_tasks


def make_pm(seed=0, sites=("alpha",), **pm_kw):
    sim = Simulation(seed=seed)
    clusters = {
        name: Cluster(sim, name, nodes=4, cores_per_node=8, submit_overhead=1.0)
        for name in sites
    }
    pm = PilotManager(sim, clusters, **pm_kw)
    return sim, clusters, pm


def install_model(sim, pm, **model_kw):
    model = SubmissionFaultModel(sim, RngStreams(0).get("test"), **model_kw)
    pm.set_adaptor_wrapper(lambda a: FallibleAdaptor(a, model))
    return model


def desc(resource="alpha"):
    return ComputePilotDescription(resource=resource, cores=8, runtime_min=60)


# -- PilotManager: transient retry with exponential backoff --------------------


def test_transient_failures_are_retried_until_success():
    sim, clusters, pm = make_pm(submit_retries=3, submit_backoff_s=10.0)
    model = install_model(sim, pm)
    model.add_scripted(2)  # first two submission attempts fail transiently
    (pilot,) = pm.submit_pilots(desc())
    sim.run(until=2000.0)
    assert pilot.state is PilotState.ACTIVE
    assert pm.submit_faults == 2
    # exponential backoff: retries traced at 10s and 10+20=30s
    retries = sim.trace.query(event="SUBMIT-RETRY")
    assert [r.time for r in retries] == [0.0, 10.0]
    assert pilot.history.timestamp("PENDING_ACTIVE") >= 30.0


def test_retry_budget_exhaustion_fails_the_pilot():
    sim, clusters, pm = make_pm(submit_retries=2, submit_backoff_s=5.0)
    model = install_model(sim, pm)
    model.add_scripted(10)  # more failures than the budget
    (pilot,) = pm.submit_pilots(desc())
    sim.run(until=2000.0)
    assert pilot.state is PilotState.FAILED
    assert pm.submit_faults == 3  # initial try + 2 retries
    assert sim.trace.query(event="SUBMIT-EXHAUSTED")


def test_permanent_failure_fails_the_pilot_without_retry():
    sim, clusters, pm = make_pm(submit_retries=5)
    model = install_model(sim, pm)
    model.add_scripted(1, permanent=True)
    (pilot,) = pm.submit_pilots(desc())
    sim.run(until=2000.0)
    assert pilot.state is PilotState.FAILED
    assert pm.submit_faults == 1
    assert not sim.trace.query(event="SUBMIT-RETRY")
    assert sim.trace.query(event="SUBMIT-REJECTED")


def test_scripted_failures_target_one_resource():
    sim, clusters, pm = make_pm(sites=("alpha", "beta"), submit_retries=0)
    model = install_model(sim, pm)
    model.add_scripted(5, resource="alpha")
    a, b = pm.submit_pilots([desc("alpha"), desc("beta")])
    sim.run(until=2000.0)
    assert a.state is PilotState.FAILED
    assert b.state is PilotState.ACTIVE


def test_cancel_during_backoff_stops_retrying():
    sim, clusters, pm = make_pm(submit_retries=3, submit_backoff_s=100.0)
    model = install_model(sim, pm)
    model.add_scripted(1)
    (pilot,) = pm.submit_pilots(desc())
    sim.call_at(50.0, pm.cancel_pilots, [pilot])  # mid-backoff
    sim.run(until=2000.0)
    assert pilot.state is PilotState.CANCELED
    assert pm.submit_faults == 1  # the retry never re-submitted


# -- RecoveryPolicy ------------------------------------------------------------


def test_recovery_policy_validation_and_delay():
    policy = RecoveryPolicy(max_resubmissions=3, backoff_s=60.0, backoff_factor=2.0)
    assert [policy.delay(i) for i in range(3)] == [60.0, 120.0, 240.0]
    with pytest.raises(ValueError):
        RecoveryPolicy(max_resubmissions=-1)
    with pytest.raises(ValueError):
        RecoveryPolicy(backoff_factor=0.5)


# -- ExecutionManager: pilot resubmission --------------------------------------


def make_em(seed=0, sites=("alpha", "beta", "gamma"), **em_kw):
    sim = Simulation(seed=seed)
    from repro.net import Network

    net = Network(sim)
    clusters = {}
    for name in sites:
        net.add_site(name, bandwidth_bytes_per_s=1e7, latency_s=0.01)
        clusters[name] = Cluster(sim, name, nodes=16, cores_per_node=16,
                                 submit_overhead=1.0)
    bundle = BundleManager(sim, net).create_bundle("pool", clusters)
    em = ExecutionManager(sim, net, bundle, **em_kw)
    return sim, net, clusters, bundle, em


def test_failed_pilot_is_replaced_within_budget():
    sim, net, clusters, bundle, em = make_em()
    plan = FaultPlan(actions=(KillPilot(at=400.0, index=0),))
    em.attach_faults(FaultInjector(
        sim, plan, pilot_manager=em.pilot_manager, network=net
    ))
    api = SkeletonAPI(bag_of_tasks(24, task_duration=600), seed=1)
    report = em.execute(
        api, recovery=RecoveryPolicy(max_resubmissions=2, backoff_s=30.0)
    )
    assert report.succeeded
    assert len(report.recoveries) == 1
    rec = report.recoveries[0]
    assert rec.attempt == 1
    assert rec.backoff_s == 30.0
    assert rec.time >= 400.0 + 30.0
    # the replacement pilot is part of the report
    assert len(report.pilots) == report.strategy.n_pilots + 1
    assert report.decomposition.n_faults == 1


def test_resubmission_budget_is_respected():
    sim, net, clusters, bundle, em = make_em(sites=("alpha",))
    # every pilot dies shortly after activation, forever
    plan = FaultPlan(actions=tuple(
        KillPilot(at=300.0 + 200.0 * i, resource="alpha") for i in range(8)
    ))
    em.attach_faults(FaultInjector(
        sim, plan, pilot_manager=em.pilot_manager, network=net
    ))
    api = SkeletonAPI(bag_of_tasks(8, task_duration=3000), seed=1)
    report = em.execute(
        api, recovery=RecoveryPolicy(max_resubmissions=2, backoff_s=10.0)
    )
    assert not report.succeeded
    assert len(report.recoveries) == 2  # budget, not the number of kills
    d = report.decomposition
    assert d.units_done + d.units_failed + d.units_canceled == 8


def test_no_recovery_policy_means_no_resubmission():
    sim, net, clusters, bundle, em = make_em(sites=("alpha",))
    plan = FaultPlan(actions=(KillPilot(at=400.0, index=0),))
    em.attach_faults(FaultInjector(
        sim, plan, pilot_manager=em.pilot_manager, network=net
    ))
    api = SkeletonAPI(bag_of_tasks(8, task_duration=3000), seed=1)
    report = em.execute(api)
    assert not report.succeeded
    assert report.recoveries == []


def test_manager_level_recovery_policy_is_the_default():
    sim, net, clusters, bundle, em = make_em(
        recovery=RecoveryPolicy(max_resubmissions=1, backoff_s=20.0)
    )
    plan = FaultPlan(actions=(KillPilot(at=400.0, index=0),))
    em.attach_faults(FaultInjector(
        sim, plan, pilot_manager=em.pilot_manager, network=net
    ))
    api = SkeletonAPI(bag_of_tasks(24, task_duration=600), seed=1)
    report = em.execute(api)  # no per-call policy: manager default applies
    assert report.succeeded
    assert len(report.recoveries) == 1


def test_submission_faults_ride_through_execution():
    """An execution under scripted submit failures still completes."""
    sim, net, clusters, bundle, em = make_em()
    plan = FaultPlan(actions=(SubmitFailures(count=2),))
    em.attach_faults(FaultInjector(
        sim, plan, pilot_manager=em.pilot_manager, network=net
    ))
    api = SkeletonAPI(bag_of_tasks(16, task_duration=300), seed=2)
    report = em.execute(api)
    assert report.succeeded
    assert em.pilot_manager.submit_faults == 2
    assert report.decomposition.n_faults == 2
    assert report.fault_log.by_kind() == {"submit-fail": 2}
