"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import math

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    BatchJob,
    ConservativeBackfillScheduler,
    EasyBackfillScheduler,
    FcfsScheduler,
    SchedulerView,
)
from repro.des import Simulation
from repro.net import Link
from repro.pilot.states import (
    IllegalUnitTransition,
    UNIT_FINAL,
    UnitState,
    check_unit_transition,
)
from repro.skeleton import (
    SkeletonApp,
    StageSpec,
    to_dag,
)

# ---------------------------------------------------------------------------
# batch scheduler invariants
# ---------------------------------------------------------------------------

job_strategy = st.builds(
    lambda cores, walltime: BatchJob(
        cores=cores, runtime=walltime, walltime=walltime
    ),
    cores=st.integers(1, 64),
    walltime=st.floats(60, 86_400),
)


@st.composite
def scheduler_views(draw):
    total = 128
    pending = draw(st.lists(job_strategy, min_size=0, max_size=20))
    running_jobs = draw(st.lists(job_strategy, min_size=0, max_size=10))
    used = sum(j.cores for j in running_jobs)
    # clip the running set so it fits the machine
    kept, acc = [], 0
    for j in running_jobs:
        if acc + j.cores <= total:
            kept.append(j)
            acc += j.cores
    running = tuple((j, float(j.walltime)) for j in kept)
    # drop pending jobs that can never fit at all
    pending = tuple(j for j in pending if j.cores <= total)
    return SchedulerView(
        now=0.0,
        free_cores=total - acc,
        total_cores=total,
        pending=pending,
        running=running,
    )


@settings(max_examples=150, deadline=None)
@given(view=scheduler_views())
@pytest.mark.parametrize(
    "scheduler_cls",
    [FcfsScheduler, EasyBackfillScheduler, ConservativeBackfillScheduler],
)
def test_scheduler_picks_fit_and_are_unique(scheduler_cls, view):
    picks = scheduler_cls().select(view)
    # no duplicates, all from the pending set
    uids = [j.uid for j in picks]
    assert len(set(uids)) == len(uids)
    pending_uids = {j.uid for j in view.pending}
    assert set(uids) <= pending_uids
    # total started cores never exceed the free cores
    assert sum(j.cores for j in picks) <= view.free_cores


@settings(max_examples=150, deadline=None)
@given(view=scheduler_views())
def test_fcfs_is_a_prefix(view):
    picks = FcfsScheduler().select(view)
    assert picks == list(view.pending[: len(picks)])


@settings(max_examples=150, deadline=None)
@given(view=scheduler_views())
def test_backfill_starts_at_least_fcfs_head_run(view):
    """EASY starts a superset of FCFS's picks (it only adds backfills)."""
    fcfs = FcfsScheduler().select(view)
    easy = EasyBackfillScheduler().select(view)
    assert {j.uid for j in fcfs} <= {j.uid for j in easy}


@settings(max_examples=100, deadline=None)
@given(view=scheduler_views())
def test_easy_never_skips_startable_head(view):
    picks = EasyBackfillScheduler().select(view)
    picked = {j.uid for j in picks}
    if view.pending and view.pending[0].cores <= view.free_cores:
        assert view.pending[0].uid in picked


# ---------------------------------------------------------------------------
# unit state machine
# ---------------------------------------------------------------------------

_ALL_STATES = list(UnitState)


@settings(max_examples=300, deadline=None)
@given(
    old=st.sampled_from(_ALL_STATES),
    new=st.sampled_from(_ALL_STATES),
)
def test_unit_transitions_match_model(old, new):
    nominal = [
        UnitState.NEW, UnitState.UNSCHEDULED, UnitState.SCHEDULING,
        UnitState.STAGING_INPUT, UnitState.PENDING_EXECUTION,
        UnitState.EXECUTING, UnitState.STAGING_OUTPUT, UnitState.DONE,
    ]
    allowed = False
    # next nominal step
    if old in nominal and new in nominal:
        if nominal.index(new) == nominal.index(old) + 1:
            allowed = True
    # cancellation from any non-final state
    if new is UnitState.CANCELED and old not in UNIT_FINAL:
        allowed = True
    # failure from any non-final state; restart from failure
    if new is UnitState.FAILED and old not in UNIT_FINAL:
        allowed = True
    if old is UnitState.FAILED and new is UnitState.UNSCHEDULED:
        allowed = True
    try:
        check_unit_transition(old, new)
        ok = True
    except IllegalUnitTransition:
        ok = False
    assert ok == allowed, f"{old} -> {new}: model={ok} reference={allowed}"


# ---------------------------------------------------------------------------
# fair-share link
# ---------------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(
    sizes=st.lists(st.floats(1, 1e6), min_size=1, max_size=12),
    starts=st.lists(st.floats(0, 100), min_size=1, max_size=12),
    bandwidth=st.floats(10, 1e6),
)
def test_link_conserves_work(sizes, starts, bandwidth):
    sim = Simulation()
    link = Link(sim, "l", bandwidth, latency_s=0.0)
    n = min(len(sizes), len(starts))
    transfers = []
    for size, start in zip(sizes[:n], starts[:n]):
        sim.call_at(start, lambda s=size: transfers.append(link.transfer(s)))
    sim.run()
    assert all(t.triggered and t.ok for t in transfers)
    total = sum(sizes[:n])
    makespan_end = max(t.end_time for t in transfers)
    first_start = min(starts[:n])
    # the link can never beat its full bandwidth
    assert makespan_end - first_start >= total / bandwidth - 1e-6
    # per-flow: no transfer beats bandwidth either
    for t in transfers:
        assert t.duration >= t.size_bytes / bandwidth - 1e-9
    assert link.bytes_moved == pytest.approx(total)


# ---------------------------------------------------------------------------
# skeleton materialization
# ---------------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(
    widths=st.lists(st.integers(1, 12), min_size=1, max_size=4),
    mappings=st.lists(
        st.sampled_from(["external", "one_to_one", "all_to_one", "none"]),
        min_size=1, max_size=4,
    ),
    iterations=st.integers(1, 3),
    seed=st.integers(0, 2**31),
)
def test_skeleton_materialization_invariants(widths, mappings, iterations, seed):
    n = min(len(widths), len(mappings))
    stages = []
    for i in range(n):
        mapping = mappings[i] if i > 0 or iterations > 1 else (
            "external" if mappings[i] in ("one_to_one", "all_to_one")
            else mappings[i]
        )
        stages.append(
            StageSpec(
                name=f"s{i}",
                n_tasks=widths[i],
                task_duration=60.0,
                input_mapping=mapping,
            )
        )
    try:
        app = SkeletonApp("prop", stages, iterations=iterations)
    except Exception:
        return  # invalid combination rejected at construction: fine
    concrete = app.materialize(np.random.default_rng(seed))
    tasks = concrete.all_tasks()
    # counts
    assert len(tasks) == sum(widths[:n]) * iterations
    # uids unique
    assert len({t.uid for t in tasks}) == len(tasks)
    # all attributes sane
    for t in tasks:
        assert t.duration >= 0
        assert t.cores >= 1
        assert all(f.size_bytes >= 0 for f in t.inputs + t.outputs)
    # dependency graph is a DAG and dependencies point backwards in stages
    dag = to_dag(concrete)
    assert nx.is_directed_acyclic_graph(dag)
    by_uid = {t.uid: t for t in tasks}
    for t in tasks:
        for dep in t.depends_on:
            assert by_uid[dep].stage_index < t.stage_index


# ---------------------------------------------------------------------------
# kernel determinism
# ---------------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 1000),
    delays=st.lists(st.floats(0.001, 100), min_size=1, max_size=30),
)
def test_simulation_replay_identical(seed, delays):
    def run():
        sim = Simulation(seed=seed)
        log = []
        for i, d in enumerate(delays):
            jitter = sim.rng.get("jitter").exponential(1.0)
            sim.call_in(d + jitter, lambda i=i: log.append((sim.now, i)))
        sim.run()
        return log

    assert run() == run()
