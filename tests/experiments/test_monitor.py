"""CampaignMonitor folding, the watch renderer, and live-file re-reads."""

import json
import threading
import time

from repro.experiments import (
    CampaignStore,
    CellProgress,
    RunLedger,
    ledger_progress,
    render_dashboard,
    run_campaign,
    state_from_path,
)
from repro.experiments.monitor import CampaignMonitor, host_sample
from repro.telemetry.bus import EventBus

from .test_ledger import _run


def _feed_basic(monitor):
    """One started campaign: 1 ok cell, 1 error, 1 running, 1 pending."""
    monitor.feed({
        "kind": "campaign-start", "total": 4, "wall": 100.0,
        "meta": {"experiments": [1], "task_counts": [8, 16], "reps": 2},
    })
    monitor.feed({
        "kind": "attempt_started", "exp": 1, "n": 8, "rep": 0,
        "attempt": 1, "worker": 11, "wall": 100.5,
    })
    monitor.feed({
        "kind": "cell", "exp": 1, "n": 8, "rep": 0, "ok": True,
        "done": 1, "total": 4, "wall_s": 2.0, "worker": 11, "ttc": 100.0,
        "wall": 102.5, "components": {"tx": 70.0, "tw": 30.0},
    })
    monitor.feed({
        "kind": "cell", "exp": 1, "n": 8, "rep": 1, "ok": False,
        "done": 2, "total": 4, "wall_s": 1.0, "error": "boom",
        "wall": 103.0, "anomalies": ["error"],
    })
    monitor.feed({
        "kind": "attempt_started", "exp": 1, "n": 16, "rep": 0,
        "attempt": 1, "worker": 12, "wall": 103.5,
    })


class TestFolding:
    def test_state_counts_eta_and_throughput(self):
        monitor = CampaignMonitor(clock=lambda: 110.0)
        _feed_basic(monitor)
        state = monitor.state()
        assert state["total"] == 4 and state["done"] == 2
        assert state["errors"] == 1
        assert not state["finished"]
        # mean wall 1.5s x 2 remaining
        assert state["eta_s"] == 1.5 * 2
        assert state["elapsed_s"] == 10.0
        assert state["throughput_cps"] == 2 / 10.0
        assert state["last_event_id"] == 5

    def test_grid_statuses(self):
        monitor = CampaignMonitor(clock=lambda: 110.0)
        _feed_basic(monitor)
        rows = {tuple(r["cell"]): r["status"] for r in monitor.state()["grid"]}
        assert rows == {
            (1, 8, 0): "ok",
            (1, 8, 1): "error",
            (1, 16, 0): "running",
            (1, 16, 1): "pending",
        }

    def test_component_shares_sum_to_one(self):
        monitor = CampaignMonitor()
        _feed_basic(monitor)
        components = monitor.state()["components"]
        assert components["tx"]["share"] == 0.7
        assert components["tw"]["share"] == 0.3

    def test_worker_liveness_from_cells_and_heartbeats(self):
        monitor = CampaignMonitor(clock=lambda: 110.0)
        _feed_basic(monitor)
        monitor.feed({
            "kind": "heartbeat", "cells": [[1, 16, 0]], "workers": [12],
            "wall": 108.0,
        })
        state = monitor.state()
        ages = {w["pid"]: w["age_s"] for w in state["workers"]}
        assert ages[11] == 110.0 - 102.5
        assert ages[12] == 110.0 - 108.0  # heartbeat refreshed it
        assert state["heartbeats"] == 1
        # heartbeats are ephemeral: no replay id, not retained
        assert monitor.last_event_id == 5
        assert all(
            e["kind"] != "heartbeat" for _id, e in monitor.events_after(0)
        )

    def test_resumed_retry_supersedes_earlier_cell(self):
        monitor = CampaignMonitor()
        _feed_basic(monitor)
        # the error cell re-runs in a resumed session and commits
        monitor.feed({
            "kind": "cell", "exp": 1, "n": 8, "rep": 1, "ok": True,
            "done": 2, "total": 4, "wall_s": 3.0, "wall": 200.0,
            "components": {"tx": 10.0},
        })
        state = monitor.state()
        assert state["done"] == 2  # still one cell, deduped by coords
        assert state["errors"] == 0
        # old wall/components backed out, new ones in
        assert state["wall_spent_s"] == 2.0 + 3.0
        assert state["components"]["tx"]["total"] == 70.0 + 10.0

    def test_campaign_end_clears_running(self):
        monitor = CampaignMonitor()
        _feed_basic(monitor)
        monitor.feed({
            "kind": "campaign-end", "completed": 3, "errors": 1,
            "wall_s": 9.0, "interrupted": True, "wall": 109.0,
        })
        state = monitor.state()
        assert state["finished"] and state["interrupted"]
        assert state["running"] == []

    def test_matches_ledger_progress_fold(self):
        """The live fold agrees with the post-hoc one on shared fields."""
        records = [
            {"kind": "campaign-start", "total": 3, "meta": {}},
            {"kind": "attempt_started", "exp": 1, "n": 8, "rep": 0,
             "attempt": 1},
            {"kind": "cell", "exp": 1, "n": 8, "rep": 0, "ok": True,
             "wall_s": 2.0},
            {"kind": "cell_retried", "exp": 1, "n": 8, "rep": 1,
             "attempt": 2, "backoff_s": 0.5},
            {"kind": "cell", "exp": 1, "n": 8, "rep": 1, "ok": False,
             "wall_s": 1.0, "anomalies": ["error"]},
        ]
        snap = ledger_progress(records)
        monitor = CampaignMonitor()
        monitor.feed_many(records)
        state = monitor.state()
        for key in ("total", "done", "errors", "finished", "retries"):
            assert state[key] == snap[key], key
        assert state["eta_s"] == snap["eta_s"]

    def test_metrics_snapshot_carries_live_gauges(self):
        monitor = CampaignMonitor(clock=lambda: 110.0)
        _feed_basic(monitor)
        snap = monitor.metrics_snapshot()
        assert snap["counters"]["monitor.cells"] == 2
        assert snap["counters"]["monitor.cell_errors"] == 1
        assert snap["gauges"]["monitor.cells_done"] == 2
        assert snap["gauges"]["monitor.cells_running"] == 1
        assert snap["gauges"]["monitor.component_share.tx"] == 0.7


class TestEventLog:
    def test_events_after_and_ids_are_one_based(self):
        monitor = CampaignMonitor()
        _feed_basic(monitor)
        tail = monitor.events_after(3)
        assert [event_id for event_id, _ in tail] == [4, 5]
        assert monitor.events_after(5) == []

    def test_wait_events_blocks_until_feed(self):
        monitor = CampaignMonitor()
        got = []

        def wait():
            got.extend(monitor.wait_events(0, timeout=5.0))

        t = threading.Thread(target=wait)
        t.start()
        time.sleep(0.05)
        monitor.feed({"kind": "campaign-start", "total": 1, "meta": {}})
        t.join(timeout=5.0)
        assert [event_id for event_id, _ in got] == [1]

    def test_wait_events_times_out_empty(self):
        assert CampaignMonitor().wait_events(0, timeout=0.05) == []


class TestBusAttachment:
    def test_attach_drains_bus_on_background_thread(self):
        bus = EventBus()
        monitor = CampaignMonitor()
        monitor.attach(bus)
        try:
            bus.publish({"kind": "campaign-start", "total": 2, "meta": {}})
            bus.publish({"kind": "cell", "exp": 1, "n": 8, "rep": 0,
                         "ok": True, "wall_s": 0.1})
            deadline = time.monotonic() + 5.0
            while monitor.last_event_id < 2:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            assert monitor.state()["done"] == 1
        finally:
            monitor.stop()
            bus.close()

    def test_campaign_with_bus_ledger_feeds_monitor(self):
        """End to end in-process: runner -> ledger -> bus -> monitor."""
        bus = EventBus()
        monitor = CampaignMonitor()
        monitor.attach(bus)
        try:
            with RunLedger(bus=bus) as ledger:
                result = run_campaign(
                    experiments=(3,), task_counts=(8,), reps=2,
                    campaign_seed=21, ledger=ledger,
                )
            deadline = time.monotonic() + 10.0
            while not monitor.state()["finished"]:
                assert time.monotonic() < deadline
                time.sleep(0.01)
        finally:
            monitor.stop()
            bus.close()
        state = monitor.state()
        assert state["done"] == len(result.runs) == 2
        assert state["errors"] == 0
        # component shares flowed through the cell records
        assert state["components"]


class TestHostSample:
    def test_host_sample_shape(self):
        sample = host_sample()
        # Linux: both fields; elsewhere an empty dict is the contract.
        for key, value in sample.items():
            assert key in ("cpu_s", "rss_kb")
            assert value >= 0


class TestDashboard:
    def _state(self):
        monitor = CampaignMonitor(clock=lambda: 110.0)
        _feed_basic(monitor)
        return monitor.state()

    def test_render_plain_frame(self):
        frame = render_dashboard(self._state(), color=False)
        assert "2/4 cells" in frame
        assert "1 errors" in frame
        assert "exp1 n=8     #E" in frame
        assert "exp1 n=16    r." in frame
        assert "tx" in frame and "70.0%" in frame
        assert "\x1b[" not in frame

    def test_render_color_frame_paints_statuses(self):
        frame = render_dashboard(self._state(), color=True)
        assert "\x1b[32m#\x1b[0m" in frame  # green ok
        assert "\x1b[31m" in frame          # red error

    def test_finished_and_interrupted_phases(self):
        monitor = CampaignMonitor()
        _feed_basic(monitor)
        monitor.feed({"kind": "campaign-end", "completed": 3, "errors": 1,
                      "wall_s": 9.0, "interrupted": True})
        assert "interrupted (resumable)" in render_dashboard(
            monitor.state(), color=False
        )
        assert "waiting" in render_dashboard(
            CampaignMonitor().state(), color=False
        )

    def test_retry_glyph(self):
        monitor = CampaignMonitor()
        _feed_basic(monitor)
        monitor.feed({"kind": "attempt_started", "exp": 1, "n": 8,
                      "rep": 0, "attempt": 2})
        frame = render_dashboard(monitor.state(), color=False)
        assert "+E" in frame  # ok-after-retry glyph


class TestStateFromPath:
    def test_ndjson_and_store_agree(self, tmp_path):
        ndjson = str(tmp_path / "l.ndjson")
        sqlite_path = str(tmp_path / "l.sqlite")
        with CampaignStore(sqlite_path) as store:
            with RunLedger(ndjson, store=store) as ledger:
                ledger.campaign_start(total=1, meta={})
                ledger.cell(
                    CellProgress(1, 1, (1, 8, 0), wall_s=0.5, ttc=9.0),
                    run=_run(), worker=5,
                )
                ledger.campaign_end(completed=1, errors=0, wall_s=0.5)
        a, b = state_from_path(ndjson), state_from_path(sqlite_path)
        for key in ("total", "done", "errors", "finished", "grid"):
            assert a[key] == b[key], key
        assert a["finished"] and a["done"] == 1

    def test_follow_tolerates_torn_concurrent_writes(self, tmp_path):
        """Satellite: live follow across a writer appending torn lines.

        A writer thread appends whole records *byte by byte* (so the
        reader almost always lands mid-line) while the watcher re-folds
        the file. Progress must be monotone and crash-free throughout.
        """
        path = str(tmp_path / "live.ndjson")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(
                {"kind": "campaign-start", "total": 30, "meta": {}}
            ) + "\n")
        stop = threading.Event()

        def write_slowly():
            with open(path, "a", encoding="utf-8") as fh:
                for i in range(30):
                    line = json.dumps({
                        "kind": "cell", "exp": 1, "n": 8, "rep": i,
                        "ok": True, "wall_s": 0.01, "error": "é" * 3,
                    }) + "\n"
                    for ch in line:
                        fh.write(ch)
                        fh.flush()
                    if stop.is_set():
                        return

        writer = threading.Thread(target=write_slowly)
        writer.start()
        try:
            last_done = 0
            for _ in range(200):
                state = state_from_path(path)
                assert state["done"] >= last_done
                last_done = state["done"]
                if state["done"] >= 30:
                    break
                time.sleep(0.002)
        finally:
            stop.set()
            writer.join(timeout=10.0)
        assert state_from_path(path)["done"] == 30
