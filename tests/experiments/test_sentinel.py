"""The regression sentinel: fingerprints, drift detection, robust z."""

import copy

import pytest

from repro.experiments import (
    campaign_fingerprint,
    compare_fingerprints,
    detect_anomalies,
    robust_z,
    run_campaign,
)
from repro.experiments.sentinel import Drift, _components_of
from repro.experiments.campaign import CampaignResult, RunResult


@pytest.fixture(scope="module")
def small_campaign():
    return run_campaign(
        experiments=(1, 3), task_counts=(8, 16), reps=2, campaign_seed=2016
    )


def _run(**over):
    base = dict(
        exp_id=1, n_tasks=8, rep=0, resources=("stampede-sim",),
        ttc=1000.0, tw=100.0, tw_last=100.0, tx=800.0, ts=50.0, trp=50.0,
        pilot_waits=(100.0,), units_done=8, restarts=0, events=500,
        attribution=(
            ("tw", 100.0), ("tr", 0.0), ("tx", 800.0),
            ("ts", 50.0), ("trp", 40.0), ("idle", 10.0),
        ),
        attribution_digest="ab" * 32,
    )
    base.update(over)
    return RunResult(**base)


class TestRobustZ:
    def test_empty(self):
        assert robust_z([]) == []

    def test_single_value_has_no_outliers(self):
        assert robust_z([42.0]) == [0.0]

    def test_zero_variance_yields_zeros(self):
        assert robust_z([5.0, 5.0, 5.0, 5.0]) == [0.0] * 4

    def test_obvious_outlier_scores_high(self):
        zs = robust_z([10.0, 11.0, 9.0, 10.5, 9.5, 100.0])
        assert abs(zs[-1]) > 3.5
        assert all(abs(z) < 3.5 for z in zs[:-1])

    def test_symmetric_signs(self):
        zs = robust_z([1.0, 2.0, 3.0])
        assert zs[0] < 0 < zs[2] and zs[1] == 0.0


class TestComponentsOf:
    def test_prefers_exact_attribution(self):
        comps = _components_of(_run())
        assert comps["idle"] == 10.0
        assert sum(comps.values()) == pytest.approx(1000.0)

    def test_legacy_fallback(self):
        comps = _components_of(_run(attribution=()))
        assert comps["tw"] == 100.0 and comps["idle"] == 0.0


class TestFingerprint:
    def test_shape_and_determinism(self, small_campaign):
        fp = campaign_fingerprint(small_campaign)
        assert set(fp["cells"]) == {"1:8", "1:16", "3:8", "3:16"}
        for cell in fp["cells"].values():
            assert cell["n"] == 2
            assert cell["ttc_mean"] > 0
            assert sum(cell["shares"].values()) == pytest.approx(1.0)
            assert len(cell["attribution_digest"]) == 64
        assert fp["digest"] == campaign_fingerprint(small_campaign)["digest"]

    def test_identical_campaigns_fingerprint_identically(self, small_campaign):
        again = run_campaign(
            experiments=(1, 3), task_counts=(8, 16), reps=2,
            campaign_seed=2016,
        )
        assert campaign_fingerprint(again) == (
            campaign_fingerprint(small_campaign)
        )

    def test_clean_self_comparison_is_empty(self, small_campaign):
        fp = campaign_fingerprint(small_campaign)
        assert compare_fingerprints(fp, fp) == []


class TestDrift:
    def _fingerprints(self, small_campaign):
        baseline = campaign_fingerprint(small_campaign)
        current = copy.deepcopy(baseline)
        return baseline, current

    def test_injected_tw_regression_trips(self, small_campaign):
        # the acceptance scenario: a >= 20% Tw regression must fail.
        baseline, current = self._fingerprints(small_campaign)
        for cell in current["cells"].values():
            grown = cell["components"]["tw"] * 1.25 + 50.0
            delta = grown - cell["components"]["tw"]
            cell["components"]["tw"] = grown
            cell["ttc_mean"] += delta
        findings = compare_fingerprints(current, baseline)
        assert findings, "expected the Tw regression to be flagged"
        assert any(f.metric == "tw_mean" for f in findings)

    def test_speedup_is_not_a_regression(self, small_campaign):
        baseline, current = self._fingerprints(small_campaign)
        for cell in current["cells"].values():
            cell["ttc_mean"] *= 0.5
            for name in cell["components"]:
                cell["components"][name] *= 0.5
        findings = compare_fingerprints(current, baseline)
        assert all(not f.metric.endswith("_mean") for f in findings)

    def test_throughput_drop_trips(self, small_campaign):
        baseline, current = self._fingerprints(small_campaign)
        for cell in current["cells"].values():
            cell["throughput"] *= 0.5
        findings = compare_fingerprints(current, baseline)
        assert any(f.metric == "throughput" for f in findings)

    def test_missing_cell_is_reported(self, small_campaign):
        baseline, current = self._fingerprints(small_campaign)
        current["cells"].pop("3:16")
        findings = compare_fingerprints(current, baseline)
        assert any(f.metric == "missing-from-current" for f in findings)

    def test_small_noise_passes(self, small_campaign):
        baseline, current = self._fingerprints(small_campaign)
        for cell in current["cells"].values():
            cell["ttc_mean"] *= 1.01
        assert compare_fingerprints(current, baseline) == []

    def test_drift_describe(self):
        d = Drift("1:8", "tw_mean", 100.0, 130.0)
        assert "+30.0%" in d.describe()
        assert d.rel_change == pytest.approx(0.3)


class TestAnomalies:
    def test_clean_campaign_is_quiet(self, small_campaign):
        assert detect_anomalies(small_campaign) == []

    def test_ttc_outlier_is_flagged(self):
        runs = [
            _run(rep=i, ttc=1000.0 + i) for i in range(5)
        ] + [_run(rep=5, ttc=9000.0)]
        result = CampaignResult(runs=tuple(runs))
        found = detect_anomalies(result)
        assert any(
            a.kind == "ttc-outlier" and "rep 5" in a.detail for a in found
        )
