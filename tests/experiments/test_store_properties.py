"""Property-based round-trip tests for the campaign store.

Hypothesis drives adversarial campaigns — NaN/inf timings, unicode
experiment names and error messages, empty campaigns, zero-rep cells —
through the full chain the repository layer promises to preserve:

    store write -> store read -> JSON export -> JSON import

and asserts nothing changes at any hop. A fast, low-example version
runs in tier-1; the heavy randomized sweep is marked ``slow`` and runs
in the dedicated CI store job (``pytest -m slow``).
"""

import dataclasses
import json
import math
import os
import tempfile

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.experiments import CampaignStore
from repro.experiments.campaign import CampaignResult, CellError, RunResult
from repro.experiments.io import (
    campaign_from_dict,
    campaign_to_dict,
    run_from_dict,
    run_to_dict,
)

# -- strategies -------------------------------------------------------------

#: all floats, including NaN, +inf, -inf, signed zero, subnormals.
wild_floats = st.floats(allow_nan=True, allow_infinity=True)
finite_floats = st.floats(allow_nan=False, allow_infinity=False)
#: printable unicode without surrogates (sqlite TEXT + JSON both reject
#: lone surrogates, and the legacy JSON path never produced them either).
unicode_text = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), max_size=24
)

run_results = st.builds(
    RunResult,
    exp_id=st.integers(min_value=1, max_value=4),
    n_tasks=st.integers(min_value=0, max_value=4096),
    rep=st.integers(min_value=0, max_value=64),
    resources=st.lists(unicode_text, max_size=3).map(tuple),
    ttc=wild_floats,
    tw=wild_floats,
    tw_last=wild_floats,
    tx=wild_floats,
    ts=wild_floats,
    trp=wild_floats,
    pilot_waits=st.lists(finite_floats, max_size=4).map(tuple),
    units_done=st.integers(min_value=0, max_value=4096),
    restarts=st.integers(min_value=0, max_value=8),
    events=st.integers(min_value=0, max_value=10**6),
    digest=st.sampled_from(["", "ab" * 32]),
    attribution=st.lists(
        st.tuples(unicode_text, wild_floats), max_size=4
    ).map(tuple),
    attribution_digest=st.sampled_from(["", "cd" * 32]),
)

cell_errors = st.builds(
    CellError,
    exp_id=st.integers(min_value=1, max_value=4),
    n_tasks=st.integers(min_value=0, max_value=4096),
    rep=st.integers(min_value=0, max_value=64),
    error=unicode_text,
)

#: campaign meta with unicode keys/values, like a hostile config file.
metas = st.dictionaries(
    st.sampled_from(
        ["campaign_seed", "experiments", "task_counts", "reps", "note"]
    ),
    st.one_of(
        st.integers(min_value=-10, max_value=10**6),
        st.lists(st.integers(min_value=0, max_value=99), max_size=4),
        unicode_text,
        st.none(),
    ),
    max_size=5,
)


def _dedupe(items):
    # distinct (exp, n, rep) coordinates: the store keys on them, and the
    # real runner never emits duplicates for one campaign.
    seen, unique = set(), []
    for item in items:
        key = (item.exp_id, item.n_tasks, item.rep)
        if key not in seen:
            seen.add(key)
            unique.append(item)
    return unique


@st.composite
def campaigns(draw):
    """Whole campaigns: possibly empty, possibly error-only (zero runs)."""
    result = CampaignResult(meta=draw(metas))
    for run in _dedupe(draw(st.lists(run_results, max_size=6))):
        result.add(run)
    result.errors.extend(_dedupe(draw(st.lists(cell_errors, max_size=3))))
    return result


# -- helpers ----------------------------------------------------------------


def canon(result):
    """Order-insensitive canonical rendering.

    Arbitrary hypothesis meta may describe a grid that legitimately
    reorders ``load_campaign`` output relative to insertion order, so
    runs/errors compare as sorted multisets; field content must still
    match exactly. (Order preservation under *real* campaign meta is
    pinned by the differential harness and the unit tests.)
    """
    def render(items):
        return sorted(
            json.dumps(dataclasses.asdict(i), sort_keys=True, default=str)
            for i in items
        )

    return json.dumps(
        {
            "runs": render(result.runs),
            "errors": render(result.errors),
            "meta": result.meta,
        },
        sort_keys=True,
        default=str,
    )


def through_store(result):
    """result -> sqlite -> CampaignResult (fresh handle each time)."""
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "c.sqlite")
        with CampaignStore(path) as store:
            store.ingest(result)
        with CampaignStore(path, readonly=True) as store:
            return store.load_campaign()


def through_json(result):
    """result -> JSON codec -> CampaignResult."""
    return campaign_from_dict(json.loads(json.dumps(campaign_to_dict(result))))


FAST = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
HEAVY = settings(
    max_examples=300,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# -- properties -------------------------------------------------------------


class TestRunCodec:
    @FAST
    @given(run=run_results)
    def test_run_dict_roundtrip(self, run):
        assert canon_run(run) == canon_run(run_from_dict(run_to_dict(run)))

    @FAST
    @given(run=run_results)
    def test_nan_identity_preserved(self, run):
        back = run_from_dict(json.loads(json.dumps(run_to_dict(run))))
        for field in ("ttc", "tw", "tx"):
            a, b = getattr(run, field), getattr(back, field)
            if math.isnan(a):
                assert math.isnan(b)
            else:
                assert a == b


def canon_run(run):
    return json.dumps(dataclasses.asdict(run), sort_keys=True, default=str)


class TestStoreRoundTrip:
    @FAST
    @given(result=campaigns())
    def test_store_then_json_export_import(self, result):
        """The whole promised chain, field for field."""
        from_store = through_store(result)
        assert canon(from_store) == canon(result)
        assert canon(through_json(from_store)) == canon(result)

    @FAST
    @given(result=campaigns())
    def test_counts_survive(self, result):
        from_store = through_store(result)
        assert len(from_store.runs) == len(result.runs)
        assert len(from_store.errors) == len(result.errors)

    def test_empty_campaign(self):
        result = CampaignResult(meta={})
        assert canon(through_store(result)) == canon(result)

    def test_zero_rep_cell_survives(self):
        # a cell whose every repetition failed: errors but no runs
        result = CampaignResult(meta={"campaign_seed": 1, "reps": 2})
        result.errors.append(CellError(1, 8, 0, "lost"))
        result.errors.append(CellError(1, 8, 1, "lost again"))
        from_store = through_store(result)
        assert from_store.runs == []
        assert from_store.errors == result.errors

    def test_unicode_experiment_note(self):
        result = CampaignResult(
            meta={"note": "expérience n°1 — 実験 ✓", "campaign_seed": 5}
        )
        result.add(
            RunResult(
                exp_id=1, n_tasks=8, rep=0, resources=("ressource-é",),
                ttc=float("nan"), tw=float("inf"), tw_last=-0.0, tx=1.0,
                ts=0.0, trp=0.0, pilot_waits=(), units_done=8, restarts=0,
                events=1, digest="", attribution=(("tw", float("inf")),),
                attribution_digest="",
            )
        )
        from_store = through_store(result)
        assert canon(from_store) == canon(result)
        assert canon(through_json(from_store)) == canon(result)


@pytest.mark.slow
class TestHeavyRandomizedSweep:
    """The same properties at CI depth (300 examples each)."""

    @HEAVY
    @given(result=campaigns())
    def test_store_then_json_export_import(self, result):
        from_store = through_store(result)
        assert canon(from_store) == canon(result)
        assert canon(through_json(from_store)) == canon(result)

    @HEAVY
    @given(run=run_results)
    def test_run_codec_roundtrip(self, run):
        assert canon_run(run) == canon_run(run_from_dict(run_to_dict(run)))
