"""Tests for the parallel campaign runner.

The headline property: a parallel campaign is indistinguishable from a
serial one — same RunResults, same order, same digests — because every
repetition seeds itself from its grid coordinates alone.
"""

import dataclasses
import json
import os

import pytest

from repro.experiments import run_campaign
from repro.experiments.campaign import CampaignResult, CellError, RunResult
from repro.experiments.runner import (
    RunnerStats,
    cell_cost,
    parallel_map,
    plan_chunks,
    resolve_jobs,
    run_parallel_campaign,
)


def _canon(runs):
    """NaN-tolerant canonical form (NaN != NaN breaks plain ==)."""
    return json.dumps(
        [dataclasses.asdict(r) for r in runs], sort_keys=True, default=str
    )


# -- module-level run functions (workers import them by path) ------------------

_FAKE_FIELDS = dict(
    resources=("r",), ttc=1.0, tw=0.0, tw_last=0.0, tx=0.0, ts=0.0,
    trp=0.0, pilot_waits=(0.0,), restarts=0,
)


def _fake_run(cell, campaign_seed, resource_pool, collect_digests):
    exp_id, n_tasks, rep = cell
    return RunResult(
        exp_id=exp_id, n_tasks=n_tasks, rep=rep,
        units_done=n_tasks, **_FAKE_FIELDS,
    )


def _error_run(cell, campaign_seed, resource_pool, collect_digests):
    if cell[2] == 1:  # every rep-1 repetition blows up
        raise ValueError("injected failure")
    return _fake_run(cell, campaign_seed, resource_pool, collect_digests)


def _crash_run(cell, campaign_seed, resource_pool, collect_digests):
    if cell == (1, 16, 1):
        os._exit(13)  # simulate a segfaulting worker
    return _fake_run(cell, campaign_seed, resource_pool, collect_digests)


def _double(x):
    return 2 * x


# -- scheduling helpers --------------------------------------------------------


class TestResolveJobs:
    def test_explicit_count_passes_through(self):
        assert resolve_jobs(3) == 3

    def test_zero_and_none_mean_usable_cpus(self):
        cpus = len(os.sched_getaffinity(0))
        assert resolve_jobs(0) == max(1, cpus)
        assert resolve_jobs(None) == max(1, cpus)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1)


class TestPlanChunks:
    GRID = [
        (e, n, r)
        for e in (1, 3)
        for n in (8, 64, 512, 2048)
        for r in range(3)
    ]

    def test_covers_every_cell_exactly_once(self):
        chunks = plan_chunks(self.GRID, jobs=4)
        flat = [c for chunk in chunks for c in chunk]
        assert sorted(flat) == sorted(self.GRID)

    def test_biggest_cells_dispatch_first(self):
        chunks = plan_chunks(self.GRID, jobs=4)
        assert chunks[0][0][1] == 2048
        costs = [cell_cost(c) for chunk in chunks for c in chunk]
        assert costs == sorted(costs, reverse=True)

    def test_deterministic(self):
        assert plan_chunks(self.GRID, jobs=4) == plan_chunks(self.GRID, 4)

    def test_empty_grid(self):
        assert plan_chunks([], jobs=4) == []

    def test_single_worker_still_chunks(self):
        chunks = plan_chunks(self.GRID, jobs=1)
        assert sum(len(c) for c in chunks) == len(self.GRID)


# -- the determinism contract --------------------------------------------------


class TestParallelEqualsSerial:
    def test_field_by_field_with_digests(self):
        kwargs = dict(
            experiments=(1, 3), task_counts=(8,), reps=2,
            campaign_seed=7, collect_digests=True,
        )
        serial = run_campaign(**kwargs)
        stats = RunnerStats()
        par = run_parallel_campaign(jobs=4, stats=stats, **kwargs)
        assert not par.errors
        assert stats.completed == len(serial.runs) == 4
        # Field-by-field, in the same grid order, including the
        # telemetry/fault/health digest of every repetition.
        assert _canon(par.runs) == _canon(serial.runs)
        assert all(r.digest for r in par.runs)
        assert [r.digest for r in par.runs] == [
            r.digest for r in serial.runs
        ]
        assert all(r.events > 0 for r in par.runs)

    def test_jobs_param_on_run_campaign_delegates(self):
        kwargs = dict(
            experiments=(1,), task_counts=(8,), reps=2, campaign_seed=3,
        )
        serial = run_campaign(**kwargs)
        par = run_campaign(jobs=2, **kwargs)
        assert _canon(par.runs) == _canon(serial.runs)


# -- containment and reporting -------------------------------------------------


class TestContainment:
    GRID_KW = dict(
        experiments=(1,), task_counts=(8, 16), reps=2, campaign_seed=0,
    )

    def test_cell_exception_recorded_not_fatal(self):
        result = run_parallel_campaign(
            jobs=2, run_fn="tests.experiments.test_runner:_error_run",
            **self.GRID_KW,
        )
        assert len(result.runs) == 2  # rep 0 of each size survives
        assert len(result.errors) == 2
        assert all(isinstance(e, CellError) for e in result.errors)
        assert all("injected failure" in e.error for e in result.errors)
        assert {(e.exp_id, e.n_tasks, e.rep) for e in result.errors} == {
            (1, 8, 1), (1, 16, 1),
        }

    def test_worker_crash_contained_to_one_cell(self):
        stats = RunnerStats()
        result = run_parallel_campaign(
            jobs=2, run_fn="tests.experiments.test_runner:_crash_run",
            stats=stats, **self.GRID_KW,
        )
        # the crashing repetition is reported, the other three survive
        assert {(e.exp_id, e.n_tasks, e.rep) for e in result.errors} == {
            (1, 16, 1),
        }
        assert "crashed" in result.errors[0].error
        assert len(result.runs) == 3
        assert stats.pool_restarts >= 1

    def test_progress_callback_counts_to_total(self):
        seen = []
        result = run_parallel_campaign(
            jobs=2, run_fn="tests.experiments.test_runner:_fake_run",
            on_progress=seen.append,
            **self.GRID_KW,
        )
        assert len(result.runs) == 4
        assert seen[-1].done == 4 and seen[-1].total == 4
        assert [p.done for p in seen] == sorted(p.done for p in seen)
        assert {p.cell for p in seen} == {
            (1, 8, 0), (1, 8, 1), (1, 16, 0), (1, 16, 1),
        }
        assert all(p.ok and p.error is None for p in seen)
        assert all(p.wall_s >= 0 for p in seen)

    def test_results_in_grid_order_regardless_of_completion(self):
        result = run_parallel_campaign(
            jobs=2, run_fn="tests.experiments.test_runner:_fake_run",
            **self.GRID_KW,
        )
        assert [(r.exp_id, r.n_tasks, r.rep) for r in result.runs] == [
            (1, 8, 0), (1, 8, 1), (1, 16, 0), (1, 16, 1),
        ]


# -- parallel_map --------------------------------------------------------------


class TestParallelMap:
    def test_serial_fallback_preserves_order(self):
        assert parallel_map(_double, [3, 1, 2], jobs=1) == [6, 2, 4]

    def test_parallel_preserves_order(self):
        items = list(range(20))
        assert parallel_map(_double, items, jobs=4) == [
            2 * i for i in items
        ]

    def test_single_item_runs_in_process(self):
        assert parallel_map(_double, [21], jobs=8) == [42]
