"""Unit tests for the indexed campaign result store (repository layer)."""

import json
import sqlite3

import pytest

from repro.experiments import CampaignStore, is_store, store_summary
from repro.experiments.campaign import CampaignResult, CellError, RunResult
from repro.experiments.store import STORE_FORMAT


def _run(**over):
    base = dict(
        exp_id=1, n_tasks=8, rep=0, resources=("stampede-sim",),
        ttc=1000.0, tw=100.0, tw_last=100.0, tx=800.0, ts=50.0, trp=50.0,
        pilot_waits=(100.0,), units_done=8, restarts=0, events=500,
        digest="cd" * 32,
        attribution=(
            ("tw", 100.0), ("tr", 0.0), ("tx", 800.0),
            ("ts", 50.0), ("trp", 40.0), ("idle", 10.0),
        ),
        attribution_digest="ab" * 32,
    )
    base.update(over)
    return RunResult(**base)


@pytest.fixture
def store(tmp_path):
    with CampaignStore(str(tmp_path / "c.sqlite")) as st:
        yield st


class TestBasics:
    def test_wal_mode_is_on(self, store):
        mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
        assert mode == "wal"

    def test_is_store_sniffs_the_magic(self, store, tmp_path):
        assert is_store(store.path)
        json_path = tmp_path / "c.json"
        json_path.write_text('{"format": 1, "runs": []}')
        assert not is_store(str(json_path))
        assert not is_store(str(tmp_path / "missing"))

    def test_put_get_single_run(self, store):
        run = _run()
        store.put_run(run)
        assert store.run_count() == 1
        assert store.get_run(1, 8, 0) == run
        assert store.get_run(1, 8, 99) is None

    def test_put_is_idempotent_by_coordinates(self, store):
        store.put_run(_run(ttc=1000.0))
        store.put_run(_run(ttc=2000.0))  # same (exp, n, rep): replace
        assert store.run_count() == 1
        assert store.get_run(1, 8, 0).ttc == 2000.0

    def test_cell_runs_ordered_by_rep(self, store):
        store.put_runs([_run(rep=2), _run(rep=0), _run(rep=1)])
        assert [r.rep for r in store.cell_runs(1, 8)] == [0, 1, 2]
        assert store.cell_runs(9, 9) == []

    def test_cells_sorted(self, store):
        store.put_runs([
            _run(exp_id=3, n_tasks=16), _run(exp_id=1, n_tasks=8),
            _run(exp_id=3, n_tasks=8),
        ])
        assert store.cells() == [(1, 8), (3, 8), (3, 16)]

    def test_errors_roundtrip(self, store):
        err = CellError(3, 16, 1, "boom: unicode résumé ✓")
        store.put_error(err)
        assert store.error_count() == 1
        assert store.errors() == [err]

    def test_meta_roundtrip(self, store):
        meta = {"campaign_seed": 7, "experiments": [1, 3],
                "task_counts": [8], "reps": 2, "resource_pool": None}
        store.set_campaign_meta(meta)
        assert store.campaign_meta() == meta

    def test_fingerprint_roundtrip(self, store):
        assert store.fingerprint() is None
        fp = {"digest": "x" * 64, "cells": {}}
        store.set_fingerprint("campaign", fp)
        assert store.fingerprint("campaign") == fp

    def test_ledger_mirror_roundtrip(self, store):
        store.append_ledger({"kind": "campaign-start", "total": 2})
        store.append_ledger({"kind": "cell", "exp": 1, "n": 8, "rep": 0})
        records = store.ledger_records()
        assert [r["kind"] for r in records] == ["campaign-start", "cell"]

    def test_slowest_run_served_by_index(self, store):
        store.put_runs([
            _run(rep=0, ttc=10.0), _run(rep=1, ttc=5000.0),
            _run(rep=2, ttc=70.0),
        ])
        assert store.slowest_run().rep == 1

    def test_nan_ttc_survives_via_payload(self, store):
        store.put_run(_run(ttc=float("nan")))
        got = store.get_run(1, 8, 0)
        assert got.ttc != got.ttc  # NaN round-trips through the payload
        # and the scalar column holds NULL, not a bogus number
        row = store._conn.execute("SELECT ttc FROM runs").fetchone()
        assert row[0] is None

    def test_store_summary_counts(self, store):
        store.put_runs([_run(rep=0), _run(rep=1)])
        store.put_error(CellError(1, 8, 2, "x"))
        summary = store_summary(store)
        assert summary["runs"] == 2 and summary["errors"] == 1
        assert summary["cells"] == 1 and summary["size_bytes"] > 0


class TestLoadCampaign:
    def test_grid_order_restored_from_meta(self, store):
        # insert out of grid order; meta defines the loop nest
        store.set_campaign_meta({
            "experiments": [3, 1], "task_counts": [16, 8], "reps": 2,
        })
        grid = [(3, 16, 0), (3, 16, 1), (3, 8, 0), (3, 8, 1),
                (1, 16, 0), (1, 16, 1), (1, 8, 0), (1, 8, 1)]
        for exp, n, rep in reversed(grid):
            store.put_run(_run(exp_id=exp, n_tasks=n, rep=rep))
        result = store.load_campaign()
        assert [(r.exp_id, r.n_tasks, r.rep) for r in result.runs] == grid

    def test_no_meta_falls_back_to_insertion_order(self, store):
        store.put_run(_run(exp_id=3, n_tasks=16, rep=1))
        store.put_run(_run(exp_id=1, n_tasks=8, rep=0))
        result = store.load_campaign()
        assert [(r.exp_id, r.n_tasks) for r in result.runs] == [
            (3, 16), (1, 8),
        ]

    def test_empty_store_loads_empty_campaign(self, store):
        result = store.load_campaign()
        assert result.runs == [] and result.errors == [] and result.meta == {}

    def test_ingest_campaign_result(self, store):
        result = CampaignResult(meta={"campaign_seed": 1})
        result.add(_run(rep=0))
        result.add(_run(rep=1))
        result.errors.append(CellError(1, 8, 2, "lost"))
        assert store.ingest(result) == (2, 1)
        again = store.load_campaign()
        assert again.runs == result.runs
        assert again.errors == result.errors
        assert again.meta == result.meta


class TestReadonlyAndVersioning:
    def test_readonly_handle_reads_but_cannot_write(self, store):
        store.put_run(_run())
        ro = CampaignStore(store.path, readonly=True)
        assert ro.run_count() == 1
        assert ro.get_run(1, 8, 0) == _run()
        with pytest.raises(sqlite3.OperationalError):
            ro.put_run(_run(rep=5))
        ro.close()

    def test_future_format_rejected(self, store, tmp_path):
        store._conn.execute(
            "UPDATE store_meta SET value=? WHERE key='format'",
            (str(STORE_FORMAT + 1),),
        )
        with pytest.raises(ValueError, match="unsupported store format"):
            CampaignStore(store.path)

    def test_reopen_preserves_rows(self, tmp_path):
        path = str(tmp_path / "c.sqlite")
        with CampaignStore(path) as st:
            st.put_run(_run())
        with CampaignStore(path) as st:
            assert st.run_count() == 1


class TestRowReadAccounting:
    def test_counts_only_materialized_rows(self, store):
        store.put_runs([_run(rep=r) for r in range(5)])
        assert store.rows_read == 0
        store.get_run(1, 8, 3)
        assert store.rows_read == 1
        store.cell_runs(1, 8)
        assert store.rows_read == 6
        store.run_count()  # counting never materializes rows
        assert store.rows_read == 6
