"""Chaos-resume suite: kill the campaign, resume it, prove nothing changed.

The correctness oracle throughout: a campaign that is killed (SIGKILL,
SIGINT drain, hung worker, quarantined error) and then resumed must
produce a store whose ``campaign_fingerprint_from_store`` digest is
byte-identical to the store of an uninterrupted run. Per-cell seeding
(``SeedSequence`` over the grid coordinates) is what makes that
provable; these tests are what keep it true.
"""

import os
import signal
import sqlite3
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.experiments import (
    EXIT_RESUMABLE,
    CampaignInterrupted,
    CampaignStore,
    IncompatibleResumeError,
    ResiliencePolicy,
    RunLedger,
    campaign_fingerprint_from_store,
    campaign_meta,
    config_digest,
    ledger_progress,
    meta_diff,
    prepare_resume,
    read_ledger_any,
    render_tail,
    run_campaign,
    store_summary,
)
from repro.experiments.runner import RunnerStats, run_parallel_campaign

# reuse the module-level worker hooks the runner tests ship (workers
# import them by dotted path, so they must live at module scope).
from tests.experiments.test_runner import _error_run, _fake_run  # noqa: F401

REPO = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _hang_run(cell, campaign_seed, resource_pool, collect_digests):
    if cell == (1, 16, 1):
        time.sleep(120)  # simulate a wedged worker; the parent kills us
    return _fake_run(cell, campaign_seed, resource_pool, collect_digests)


GRID_KW = dict(
    experiments=(1,), task_counts=(8, 16), reps=2, campaign_seed=0,
)


def _digest(path: str) -> str:
    with CampaignStore(path, readonly=True) as store:
        return campaign_fingerprint_from_store(store)["digest"]


# -- store attempt records -----------------------------------------------------


class TestAttemptRecords:
    def test_begin_finish_roundtrip(self, tmp_path):
        with CampaignStore(str(tmp_path / "a.sqlite")) as store:
            att = store.begin_attempt(1, 8, 0, worker=123)
            assert att == 1
            rows = store.attempt_rows(1, 8, 0)
            assert rows[0]["state"] == "leased"
            assert rows[0]["worker"] == 123
            store.finish_attempt(1, 8, 0, attempt=att, state="committed")
            rows = store.attempt_rows(1, 8, 0)
            assert rows[0]["state"] == "committed"
            assert rows[0]["wall_end"] is not None

    def test_attempt_numbers_are_durable_per_cell(self, tmp_path):
        path = str(tmp_path / "a.sqlite")
        with CampaignStore(path) as store:
            assert store.begin_attempt(1, 8, 0) == 1
            store.finish_attempt(1, 8, 0, attempt=1, state="failed",
                                 error="boom")
        with CampaignStore(path) as store:  # a later session continues
            assert store.begin_attempt(1, 8, 0) == 2
            assert store.begin_attempt(2, 8, 0) == 1

    def test_reclaim_stale_leases(self, tmp_path):
        with CampaignStore(str(tmp_path / "a.sqlite")) as store:
            store.begin_attempt(1, 8, 0)
            store.begin_attempt(1, 16, 0)
            att = store.begin_attempt(1, 16, 1)
            store.finish_attempt(1, 16, 1, attempt=att, state="committed")
            assert store.lease_count() == 2
            assert store.reclaim_stale_leases() == 2
            assert store.lease_count() == 0
            states = {r["state"] for r in store.attempt_rows()}
            assert states == {"reclaimed", "committed"}

    def test_summary_surfaces_history(self, tmp_path):
        with CampaignStore(str(tmp_path / "a.sqlite")) as store:
            store.begin_attempt(1, 8, 0)
            store.set_interrupted(True)
            summary = store_summary(store)
            assert summary["attempts"] == 1
            assert summary["stale_leases"] == 1
            assert summary["interrupted"] is True


# -- resume planning -----------------------------------------------------------


class TestPrepareResume:
    GRID = [(1, 8, 0), (1, 8, 1), (1, 16, 0), (1, 16, 1)]

    def _meta(self, seed=0):
        return campaign_meta(
            experiments=(1,), task_counts=(8, 16), reps=2,
            campaign_seed=seed,
        )

    def test_incompatible_config_refused_with_diff(self, tmp_path):
        with CampaignStore(str(tmp_path / "a.sqlite")) as store:
            store.set_campaign_meta(self._meta(seed=7))
            with pytest.raises(IncompatibleResumeError) as err:
                prepare_resume(store, self._meta(seed=8), self.GRID)
            assert "campaign_seed" in str(err.value)
            assert "refusing to resume" in str(err.value)
            assert err.value.diff == [("campaign_seed", 7, 8)]

    def test_meta_diff_and_config_digest(self):
        a, b = self._meta(seed=7), self._meta(seed=8)
        assert meta_diff(a, dict(a)) == []
        assert meta_diff(a, b) == [("campaign_seed", 7, 8)]
        assert config_digest(a) != config_digest(b)
        assert config_digest(a) == config_digest(dict(a))

    def test_committed_cells_skipped_in_grid_order(self, tmp_path):
        with CampaignStore(str(tmp_path / "a.sqlite")) as store:
            store.set_campaign_meta(self._meta())
            store.put_run(_fake_run((1, 8, 1), 0, None, False))
            plan = prepare_resume(store, self._meta(), self.GRID)
            assert plan.committed == {(1, 8, 1)}
            assert plan.remaining == [(1, 8, 0), (1, 16, 0), (1, 16, 1)]

    def test_empty_store_resumes_into_full_run(self, tmp_path):
        with CampaignStore(str(tmp_path / "a.sqlite")) as store:
            plan = prepare_resume(store, self._meta(), self.GRID)
            assert plan.remaining == self.GRID


# -- serial interrupt atomicity ------------------------------------------------


class TestSerialInterrupt:
    def test_interrupt_commits_prefix_and_resume_matches_clean(self, tmp_path):
        kwargs = dict(
            experiments=(1,), task_counts=(8,), reps=3, campaign_seed=7,
        )
        clean = str(tmp_path / "clean.sqlite")
        with CampaignStore(clean) as store:
            run_campaign(store=store, **kwargs)

        chaos = str(tmp_path / "chaos.sqlite")

        def boom(progress):
            if progress.done >= 1:
                raise KeyboardInterrupt

        store = CampaignStore(chaos)
        with pytest.raises(CampaignInterrupted) as err:
            run_campaign(store=store, on_progress=boom, **kwargs)
        # cell-atomic: the poisoned callback fired after the commit, so
        # exactly the completed prefix is on disk — whole cells only.
        assert err.value.result is not None
        assert store.run_count() == len(err.value.result.runs) == 1
        assert store.interrupted() is True
        store.close()

        with CampaignStore(chaos) as store:
            result = run_campaign(store=store, resume=True, **kwargs)
        assert len(result.runs) == 3
        assert not result.errors
        assert _digest(chaos) == _digest(clean)
        with CampaignStore(chaos, readonly=True) as store:
            assert store.interrupted() is False


# -- parallel resume (in-process paths) ----------------------------------------


class TestParallelResume:
    def test_resume_skips_committed_and_matches_clean(self, tmp_path):
        clean = str(tmp_path / "clean.sqlite")
        with CampaignStore(clean) as store:
            run_parallel_campaign(
                jobs=1, run_fn="tests.experiments.test_runner:_fake_run",
                store=store, **GRID_KW,
            )

        partial = str(tmp_path / "partial.sqlite")
        with CampaignStore(partial) as store:
            store.set_campaign_meta(campaign_meta(**GRID_KW))
            store.put_run(_fake_run((1, 8, 0), 0, None, False))
            store.begin_attempt(1, 16, 0)  # a lease that died in flight
            store.set_interrupted(True)
        with CampaignStore(partial) as store:
            stats = RunnerStats()
            result = run_parallel_campaign(
                jobs=1, run_fn="tests.experiments.test_runner:_fake_run",
                store=store, resume=True, stats=stats, **GRID_KW,
            )
            assert store.lease_count() == 0  # stale lease reclaimed
            assert store.interrupted() is False
        assert len(result.runs) == 4  # committed cells fold back in
        assert stats.completed == 3  # only the remainder was executed
        assert _digest(partial) == _digest(clean)

    def test_resume_requires_store(self):
        with pytest.raises(ValueError, match="requires a store"):
            run_parallel_campaign(jobs=1, resume=True, **GRID_KW)

    def test_retry_errors_roundtrip(self, tmp_path):
        clean = str(tmp_path / "clean.sqlite")
        with CampaignStore(clean) as store:
            run_parallel_campaign(
                jobs=1, run_fn="tests.experiments.test_runner:_fake_run",
                store=store, **GRID_KW,
            )

        chaos = str(tmp_path / "chaos.sqlite")
        with CampaignStore(chaos) as store:
            result = run_parallel_campaign(
                jobs=1, run_fn="tests.experiments.test_runner:_error_run",
                store=store, **GRID_KW,
            )
            assert len(result.errors) == 2
        # plain resume skips quarantined cells: nothing to do, errors stay
        with CampaignStore(chaos) as store:
            result = run_parallel_campaign(
                jobs=1, run_fn="tests.experiments.test_runner:_fake_run",
                store=store, resume=True, **GRID_KW,
            )
            assert len(result.errors) == 2
        # --retry-errors re-attempts them; with the failure gone the
        # store converges to the clean run, digest-identical.
        with CampaignStore(chaos) as store:
            result = run_parallel_campaign(
                jobs=1, run_fn="tests.experiments.test_runner:_fake_run",
                store=store, resume=True,
                resilience=ResiliencePolicy(retry_errors=True),
                **GRID_KW,
            )
            assert not result.errors
            assert store.error_count() == 0
        assert _digest(chaos) == _digest(clean)


# -- hung-worker supervision ---------------------------------------------------


class TestHungWorker:
    def test_timeout_kill_retry_quarantine(self, tmp_path):
        policy = ResiliencePolicy(
            cell_timeout_s=0.5, max_attempts=2,
            backoff_base_s=0.01, poll_s=0.05,
        )
        stats = RunnerStats()
        with CampaignStore(str(tmp_path / "c.sqlite")) as store:
            result = run_parallel_campaign(
                jobs=2, run_fn="tests.experiments.test_resume:_hang_run",
                resilience=policy, stats=stats, store=store, **GRID_KW,
            )
            rows = store.attempt_rows(1, 16, 1)
        # the hung cell timed out max_attempts times, then quarantined;
        # every other cell survived the pool teardowns.
        assert {(e.exp_id, e.n_tasks, e.rep) for e in result.errors} == {
            (1, 16, 1),
        }
        assert "timed out" in result.errors[0].error
        assert len(result.runs) == 3
        assert stats.timeouts >= 2
        assert stats.retried >= 1
        assert [r["state"] for r in rows].count("timeout") >= 2

    def test_backoff_is_deterministic(self):
        policy = ResiliencePolicy(backoff_base_s=0.5)
        a = policy.backoff_s((1, 16, 1), 2, campaign_seed=7)
        assert a == policy.backoff_s((1, 16, 1), 2, campaign_seed=7)
        assert a != policy.backoff_s((1, 16, 1), 3, campaign_seed=7)
        assert 0.5 * 2 * 0.5 <= a <= 0.5 * 2 * 1.5


# -- ledger events and tail rendering ------------------------------------------


class TestResumeLedger:
    def test_attempt_and_resume_events_reach_both_sinks(self, tmp_path):
        path = str(tmp_path / "c.sqlite")
        ndjson = str(tmp_path / "c.ndjson")
        with CampaignStore(path) as store:
            ledger = RunLedger(ndjson, store=store)
            run_parallel_campaign(
                jobs=1, run_fn="tests.experiments.test_runner:_fake_run",
                store=store, ledger=ledger, **GRID_KW,
            )
            ledger.close()
        with CampaignStore(path) as store:
            ledger = RunLedger(ndjson, store=store, append=True)
            run_parallel_campaign(
                jobs=1, run_fn="tests.experiments.test_runner:_fake_run",
                store=store, ledger=ledger, resume=True, **GRID_KW,
            )
            ledger.close()
        for source in (path, ndjson):
            records = read_ledger_any(source)
            kinds = {r["kind"] for r in records}
            assert "attempt_started" in kinds
            assert "campaign_resumed" in kinds
            snap = ledger_progress(records)
            assert snap["done"] == 4  # deduped across both sessions
            assert snap["resumed"]["committed"] == 4
            text = render_tail(records)
            assert "resumed:" in text
            assert "4/4" in text

    def test_interrupted_tail_state(self, tmp_path):
        ndjson = str(tmp_path / "c.ndjson")
        ledger = RunLedger(ndjson)
        ledger.campaign_start(4, {})
        ledger.campaign_end(2, 0, 1.0, interrupted=True)
        ledger.close()
        assert "interrupted (resumable)" in render_tail(read_ledger_any(ndjson))


# -- CLI guards and exit codes -------------------------------------------------


class TestCliGuards:
    ARGS = ["campaign", "--experiments", "1", "--sizes", "8",
            "--reps", "1", "--seed", "3", "-q"]

    def test_resume_requires_store_flag(self, capsys):
        assert main(self.ARGS + ["--resume"]) == 2
        assert "--resume requires --store" in capsys.readouterr().err

    def test_resume_without_existing_store(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.sqlite")
        assert main(self.ARGS + ["--store", missing, "--resume"]) == 2
        assert "nothing to resume" in capsys.readouterr().err

    def test_nonempty_store_without_resume_refused(self, tmp_path, capsys):
        path = str(tmp_path / "c.sqlite")
        assert main(self.ARGS + ["--store", path]) == 0
        assert main(self.ARGS + ["--store", path]) == 2
        assert "pass --resume" in capsys.readouterr().err

    def test_non_store_file_refused(self, tmp_path, capsys):
        path = str(tmp_path / "c.sqlite")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("not a database")
        assert main(self.ARGS + ["--store", path]) == 2
        assert "not a campaign store" in capsys.readouterr().err

    def test_incompatible_resume_exits_2(self, tmp_path, capsys):
        path = str(tmp_path / "c.sqlite")
        assert main(self.ARGS + ["--store", path]) == 0
        rc = main(["campaign", "--experiments", "1", "--sizes", "8",
                   "--reps", "1", "--seed", "4", "-q",
                   "--store", path, "--resume"])
        assert rc == 2
        assert "refusing to resume" in capsys.readouterr().err

    def test_completed_store_resume_is_a_noop(self, tmp_path, capsys):
        path = str(tmp_path / "c.sqlite")
        assert main(self.ARGS + ["--store", path]) == 0
        before = _digest(path)
        assert main(self.ARGS + ["--store", path, "--resume"]) == 0
        assert _digest(path) == before


# -- kill-proof subprocess chaos -----------------------------------------------


def _spawn_campaign(store_path, extra=(), seed=5):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign",
         "--experiments", "1", "--sizes", "8", "--reps", "8",
         "--seed", str(seed), "-q", "-j", "2",
         "--store", store_path, *extra],
        cwd=REPO, env=env, start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def _poll_runs(store_path, at_least, proc, timeout_s=60.0):
    """Wait until the live store holds >= ``at_least`` committed runs."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            return -1  # campaign finished before we could interfere
        try:
            conn = sqlite3.connect(
                f"file:{store_path}?mode=ro", uri=True, timeout=0.2
            )
            try:
                n = conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]
            finally:
                conn.close()
            if n >= at_least:
                return n
        except sqlite3.Error:
            pass  # store not created / schema not there yet
        time.sleep(0.01)
    raise AssertionError(f"store never reached {at_least} committed runs")


def _cli_campaign(store_path, extra=(), seed=5):
    return main([
        "campaign", "--experiments", "1", "--sizes", "8", "--reps", "8",
        "--seed", str(seed), "-q", "-j", "2", "--store", store_path,
        *extra,
    ])


class TestKillProofResume:
    def test_sigkill_then_resume_matches_uninterrupted(self, tmp_path):
        clean = str(tmp_path / "clean.sqlite")
        assert _cli_campaign(clean) == 0

        chaos = str(tmp_path / "chaos.sqlite")
        proc = _spawn_campaign(chaos)
        try:
            seen = _poll_runs(chaos, 2, proc)
            if seen >= 0:
                os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
            rc = proc.wait(timeout=60)
            if seen >= 0:
                assert rc == -signal.SIGKILL
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup only
                os.killpg(os.getpgid(proc.pid), signal.SIGKILL)

        if seen >= 0:
            # SIGKILL left whole committed rows only, plus stale leases.
            with CampaignStore(chaos, readonly=True) as store:
                assert store.run_count() < 8
        assert _cli_campaign(chaos, extra=["--resume"]) == 0
        assert _digest(chaos) == _digest(clean)

    def test_sigint_drains_to_exit_75_then_resumes(self, tmp_path):
        clean = str(tmp_path / "clean.sqlite")
        assert _cli_campaign(clean) == 0

        chaos = str(tmp_path / "chaos.sqlite")
        proc = _spawn_campaign(chaos)
        try:
            seen = _poll_runs(chaos, 1, proc)
            if seen >= 0:
                proc.send_signal(signal.SIGINT)
            rc = proc.wait(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup only
                os.killpg(os.getpgid(proc.pid), signal.SIGKILL)

        if seen >= 0:
            assert rc == EXIT_RESUMABLE
            with CampaignStore(chaos, readonly=True) as store:
                assert store.interrupted() is True
                assert store.lease_count() == 0  # drain closed every lease
        else:  # raced to completion before the signal landed
            assert rc == 0
        assert _cli_campaign(chaos, extra=["--resume"]) == 0
        assert _digest(chaos) == _digest(clean)
        with CampaignStore(chaos, readonly=True) as store:
            assert store.interrupted() is False
