"""Chaos for the observability plane: watch a SIGKILL'd campaign live.

The satellite contract: a ``-j`` campaign served live, SIGKILL'd in
flight, and resumed must leave observers and the store in agreement —
the watch fold over the store equals what ``repro analyze`` (the
fingerprint oracle) sees, and the digests match an uninterrupted run's.
The plane observes everything and perturbs nothing, even under chaos.
"""

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.request

from repro.cli import main
from repro.experiments import (
    CampaignStore,
    campaign_fingerprint_from_store,
    state_from_path,
)

from .test_resume import _digest, _poll_runs

REPO = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


def _spawn_served_campaign(store_path, seed=5):
    """Start a `-j 2 --serve :0` campaign; returns (proc, monitor_url)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign",
         "--experiments", "1", "--sizes", "8", "--reps", "8",
         "--seed", str(seed), "-q", "-j", "2",
         "--store", store_path, "--serve", "127.0.0.1:0"],
        cwd=REPO, env=env, start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.PIPE,
    )
    # the bound ephemeral URL is announced on stderr before the run
    deadline = time.monotonic() + 30.0
    line = ""
    while time.monotonic() < deadline:
        line = proc.stderr.readline().decode("utf-8", "replace")
        match = re.search(r"serving on (http://[\d.]+:\d+)", line)
        if match:
            return proc, match.group(1)
        if proc.poll() is not None:
            break
    raise AssertionError(f"campaign never announced its monitor: {line!r}")


class TestWatchThroughSigkill:
    def test_served_campaign_survives_sigkill_and_matches_analyze(
        self, tmp_path
    ):
        # the uninterrupted oracle (no server: also proves --serve is
        # observation-only when the digests come out identical).
        clean = str(tmp_path / "clean.sqlite")
        assert main([
            "campaign", "--experiments", "1", "--sizes", "8",
            "--reps", "8", "--seed", "5", "-q", "-j", "2",
            "--store", clean,
        ]) == 0

        chaos = str(tmp_path / "chaos.sqlite")
        proc, url = _spawn_served_campaign(chaos)
        try:
            seen = _poll_runs(chaos, at_least=2, proc=proc)
            if seen >= 0:
                # live endpoints answer mid-run with coherent state
                with urllib.request.urlopen(
                    url + "/state.json", timeout=10
                ) as r:
                    live = json.loads(r.read())
                assert live["total"] == 8
                assert 0 <= live["done"] <= 8
                with urllib.request.urlopen(url + "/metrics", timeout=10) as r:
                    metrics = r.read().decode()
                assert "repro_monitor_cells_total 8" in metrics
                # a live file watcher agrees with the store, mid-flight
                watched = state_from_path(chaos)
                assert watched["total"] == 8
                # SIGKILL the process group: parent, workers, server
                os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
            proc.wait(timeout=60)
        finally:
            proc.stderr.close()
            if proc.poll() is None:  # pragma: no cover - cleanup path
                os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
                proc.wait(timeout=30)

        if seen >= 0:
            # the dead monitor took nothing with it: the store folds
            # cleanly and shows the interruption
            mid = state_from_path(chaos)
            assert not mid["finished"]
            assert mid["done"] < 8

        # resume serverless; the final state must equal the oracle's
        assert main([
            "campaign", "--experiments", "1", "--sizes", "8",
            "--reps", "8", "--seed", "5", "-q", "-j", "2",
            "--store", chaos, "--resume",
        ]) == 0
        final = state_from_path(chaos)
        assert final["done"] == 8 and final["errors"] == 0
        # watch-fold and analyze-oracle agree on the same store
        with CampaignStore(chaos, readonly=True) as store:
            fingerprint = campaign_fingerprint_from_store(store)
            assert store.run_count() == final["done"]
        assert fingerprint["digest"] == _digest(clean)
