"""The monitor's HTTP face: /metrics, /state.json, SSE replay + resume."""

import json
import threading
import time
import urllib.request

import pytest

from repro.experiments.monitor import CampaignMonitor
from repro.experiments.serve import MonitorServer, parse_serve_spec


@pytest.fixture()
def plane():
    """A monitor with history behind a live ephemeral-port server."""
    monitor = CampaignMonitor()
    monitor.feed({
        "kind": "campaign-start", "total": 2, "wall": 100.0,
        "meta": {"experiments": [1], "task_counts": [8], "reps": 2},
    })
    monitor.feed({
        "kind": "cell", "exp": 1, "n": 8, "rep": 0, "ok": True,
        "done": 1, "total": 2, "wall_s": 0.5, "ttc": 10.0, "wall": 101.0,
    })
    server = MonitorServer(monitor).start()
    yield monitor, server
    server.stop()


def _get(url, timeout=5.0):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, dict(resp.headers), resp.read().decode("utf-8")


def _sse_frames(resp, want, timeout=5.0):
    """Read SSE frames: [(id, record), ...] until `want` data frames."""
    frames, event_id = [], None
    deadline = time.monotonic() + timeout
    while len(frames) < want and time.monotonic() < deadline:
        line = resp.readline().decode("utf-8")
        if line.startswith("id: "):
            event_id = int(line[4:].strip())
        elif line.startswith("data: "):
            frames.append((event_id, json.loads(line[6:])))
    return frames


class TestEndpoints:
    def test_ephemeral_port_and_index(self, plane):
        _monitor, server = plane
        assert server.port != 0
        status, _headers, body = _get(server.url + "/")
        assert status == 200
        assert "/metrics" in body and "/events" in body

    def test_state_json(self, plane):
        _monitor, server = plane
        status, headers, body = _get(server.url + "/state.json")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        state = json.loads(body)
        assert state["total"] == 2 and state["done"] == 1
        assert {tuple(r["cell"]): r["status"] for r in state["grid"]} == {
            (1, 8, 0): "ok", (1, 8, 1): "pending",
        }

    def test_metrics_prometheus_text(self, plane):
        _monitor, server = plane
        status, headers, body = _get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "# TYPE repro_monitor_cells counter" in body
        assert "repro_monitor_cells_done 1" in body
        assert "repro_monitor_cells_total 2" in body

    def test_unknown_path_404(self, plane):
        _monitor, server = plane
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server.url + "/nope")
        assert err.value.code == 404

    def test_server_is_observation_only_context_manager(self):
        monitor = CampaignMonitor()
        with MonitorServer(monitor) as server:
            status, _h, _b = _get(server.url + "/state.json")
            assert status == 200
        # stopped on exit: a fresh connection must fail
        with pytest.raises(OSError):
            _get(server.url + "/state.json", timeout=0.5)


class TestSSE:
    def test_replay_then_follow(self, plane):
        monitor, server = plane
        resp = urllib.request.urlopen(server.url + "/events", timeout=5)
        assert resp.headers["Content-Type"] == "text/event-stream"
        # replay: the 2 retained events, ids 1..2
        replay = _sse_frames(resp, want=2)
        assert [i for i, _ in replay] == [1, 2]
        assert [r["kind"] for _, r in replay] == ["campaign-start", "cell"]
        # follow: a live event lands on the open stream
        monitor.feed({
            "kind": "cell", "exp": 1, "n": 8, "rep": 1, "ok": True,
            "done": 2, "total": 2, "wall_s": 0.4, "wall": 102.0,
        })
        live = _sse_frames(resp, want=1)
        assert live and live[0][0] == 3
        assert live[0][1]["rep"] == 1
        resp.close()

    def test_last_event_id_resumes_mid_stream(self, plane):
        """Satellite: a reconnecting client resumes exactly after its id."""
        monitor, server = plane
        # first connection reads both events, then "disconnects" at id 2
        first = urllib.request.urlopen(server.url + "/events", timeout=5)
        assert len(_sse_frames(first, want=2)) == 2
        first.close()
        # events arrive while the client is away
        monitor.feed({"kind": "cell", "exp": 1, "n": 8, "rep": 1,
                      "ok": False, "wall_s": 0.1, "error": "boom"})
        monitor.feed({"kind": "campaign-end", "completed": 1, "errors": 1,
                      "wall_s": 1.0})
        # reconnect with Last-Event-ID: 2 -> only ids 3 and 4
        req = urllib.request.Request(
            server.url + "/events", headers={"Last-Event-ID": "2"}
        )
        second = urllib.request.urlopen(req, timeout=5)
        frames = _sse_frames(second, want=2)
        assert [i for i, _ in frames] == [3, 4]
        assert [r["kind"] for _, r in frames] == ["cell", "campaign-end"]
        second.close()

    def test_after_query_param_resumes_too(self, plane):
        _monitor, server = plane
        resp = urllib.request.urlopen(
            server.url + "/events?after=1", timeout=5
        )
        frames = _sse_frames(resp, want=1)
        assert frames[0][0] == 2
        resp.close()

    def test_idle_stream_sends_keepalives(self, plane, monkeypatch):
        monkeypatch.setattr(
            "repro.experiments.serve.KEEPALIVE_S", 0.1
        )
        _monitor, server = plane
        resp = urllib.request.urlopen(
            server.url + "/events?after=2", timeout=5
        )
        deadline = time.monotonic() + 5.0
        line = ""
        while time.monotonic() < deadline:
            line = resp.readline().decode("utf-8")
            if line.startswith(":"):
                break
        assert line.startswith(": keepalive")
        resp.close()

    def test_many_concurrent_sse_clients(self, plane):
        monitor, server = plane
        results = []

        def client():
            resp = urllib.request.urlopen(server.url + "/events", timeout=5)
            results.append(_sse_frames(resp, want=3))
            resp.close()

        threads = [threading.Thread(target=client) for _ in range(4)]
        for t in threads:
            t.start()
        time.sleep(0.2)
        monitor.feed({"kind": "campaign-end", "completed": 2, "errors": 0,
                      "wall_s": 1.0})
        for t in threads:
            t.join(timeout=10.0)
        assert len(results) == 4
        for frames in results:
            assert [i for i, _ in frames] == [1, 2, 3]


class TestServeSpec:
    def test_accepted_forms(self):
        assert parse_serve_spec(":0") == ("127.0.0.1", 0)
        assert parse_serve_spec("8765") == ("127.0.0.1", 8765)
        assert parse_serve_spec("0.0.0.0:9000") == ("0.0.0.0", 9000)

    def test_rejected_forms(self):
        for bad in ("", "host:", "nope", ":-1", ":70000", "a:b:c"):
            with pytest.raises(ValueError):
                parse_serve_spec(bad)
