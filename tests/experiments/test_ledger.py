"""The campaign observatory: NDJSON run ledger, progress, and tail view."""

import json

import pytest

from repro.experiments import (
    CellProgress,
    RunLedger,
    flag_anomalies,
    ledger_progress,
    read_ledger,
    render_tail,
    run_campaign,
)
from repro.experiments.campaign import RunResult


def _run(**over):
    base = dict(
        exp_id=1, n_tasks=8, rep=0, resources=("stampede-sim",),
        ttc=1000.0, tw=100.0, tw_last=100.0, tx=800.0, ts=50.0, trp=50.0,
        pilot_waits=(100.0,), units_done=8, restarts=0, events=500,
        attribution=(
            ("tw", 100.0), ("tr", 0.0), ("tx", 800.0),
            ("ts", 50.0), ("trp", 40.0), ("idle", 10.0),
        ),
        attribution_digest="ab" * 32,
    )
    base.update(over)
    return RunResult(**base)


class TestFlagAnomalies:
    def test_clean_run_has_no_flags(self):
        assert flag_anomalies(_run()) == []

    def test_incomplete_and_restarts(self):
        flags = flag_anomalies(_run(units_done=5, restarts=2))
        assert "incomplete" in flags and "restarts" in flags

    def test_idle_heavy(self):
        run = _run(attribution=(
            ("tw", 100.0), ("tr", 0.0), ("tx", 700.0),
            ("ts", 50.0), ("trp", 40.0), ("idle", 110.0),
        ))
        assert "idle-heavy" in flag_anomalies(run)


class TestRunLedger:
    def test_stream_and_read_back(self, tmp_path):
        path = str(tmp_path / "campaign.ndjson")
        with RunLedger(path) as ledger:
            ledger.campaign_start(total=2, meta={"seed": 7})
            ledger.cell(
                CellProgress(1, 2, (1, 8, 0), wall_s=0.5, ttc=1000.0),
                run=_run(), worker=123,
            )
            ledger.cell(
                CellProgress(2, 2, (1, 8, 1), wall_s=0.4,
                             error="boom"),
            )
            ledger.campaign_end(completed=1, errors=1, wall_s=0.9)
        records = read_ledger(path)
        kinds = [r["kind"] for r in records]
        assert kinds == ["campaign-start", "cell", "cell", "campaign-end"]
        ok_cell = records[1]
        assert ok_cell["ok"] and ok_cell["worker"] == 123
        assert ok_cell["attribution_digest"] == "ab" * 32
        bad_cell = records[2]
        assert not bad_cell["ok"] and bad_cell["error"] == "boom"
        assert bad_cell["anomalies"] == ["error"]

    def test_lines_are_valid_ndjson(self, tmp_path):
        path = str(tmp_path / "l.ndjson")
        with RunLedger(path) as ledger:
            ledger.campaign_start(total=1, meta={})
        for line in open(path, encoding="utf-8"):
            json.loads(line)

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        path = str(tmp_path / "l.ndjson")
        with RunLedger(path) as ledger:
            ledger.campaign_start(total=4, meta={})
            ledger.cell(CellProgress(1, 4, (1, 8, 0), wall_s=0.1))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "cell", "exp": 1, "n": 8,')  # writer mid-line
        records = read_ledger(path)
        assert [r["kind"] for r in records] == ["campaign-start", "cell"]

    def test_line_torn_mid_utf8_character_is_tolerated(self, tmp_path):
        """Regression: a tail cut through a multi-byte UTF-8 character.

        The old text-mode reader decoded the whole file up front, so a
        torn trailing line split *inside* one character ('é' is two
        bytes) raised UnicodeDecodeError and lost every earlier record.
        The reader now decodes per line and treats the torn tail like
        any other partial write: ignored.
        """
        path = str(tmp_path / "l.ndjson")
        with RunLedger(path) as ledger:
            ledger.campaign_start(total=4, meta={"note": "expérience"})
            ledger.cell(CellProgress(1, 4, (1, 8, 0), wall_s=0.1))
        torn = '{"kind": "cell", "error": "é'.encode("utf-8")[:-1]
        with open(path, "ab") as fh:
            fh.write(torn)  # writer died one byte into 'é'
        records = read_ledger(path)
        assert [r["kind"] for r in records] == ["campaign-start", "cell"]
        assert records[0]["meta"]["note"] == "expérience"

    def test_mirrors_into_store(self, tmp_path):
        from repro.experiments import CampaignStore, read_ledger_any

        ndjson = str(tmp_path / "l.ndjson")
        sqlite_path = str(tmp_path / "l.sqlite")
        with CampaignStore(sqlite_path) as store:
            with RunLedger(ndjson, store=store) as ledger:
                ledger.campaign_start(total=1, meta={"seed": 7})
                ledger.cell(
                    CellProgress(1, 1, (1, 8, 0), wall_s=0.5, ttc=9.0),
                    run=_run(), worker=5,
                )
                ledger.campaign_end(completed=1, errors=0, wall_s=0.5)
            # both representations carry the identical event stream
            assert store.ledger_records() == read_ledger(ndjson)
        # and read_ledger_any dispatches on the artifact kind
        assert read_ledger_any(sqlite_path) == read_ledger_any(ndjson)

    def test_store_only_ledger_needs_no_file(self, tmp_path):
        from repro.experiments import CampaignStore, read_ledger_any

        sqlite_path = str(tmp_path / "l.sqlite")
        with CampaignStore(sqlite_path) as store:
            with RunLedger(store=store) as ledger:
                ledger.campaign_start(total=0, meta={})
            records = store.ledger_records()
        assert [r["kind"] for r in records] == ["campaign-start"]
        assert read_ledger_any(sqlite_path) == records

    def test_ledger_requires_some_sink(self):
        with pytest.raises(ValueError):
            RunLedger()

    def test_bus_only_ledger_publishes_every_record(self):
        from repro.telemetry.bus import EventBus

        bus = EventBus()
        sub = bus.subscribe()
        with RunLedger(bus=bus) as ledger:
            ledger.campaign_start(total=1, meta={"seed": 7})
            ledger.cell(
                CellProgress(1, 1, (1, 8, 0), wall_s=0.5, ttc=9.0),
                run=_run(), worker=5,
            )
            ledger.campaign_end(completed=1, errors=0, wall_s=0.5)
        events = sub.drain()
        assert [e["kind"] for e in events] == [
            "campaign-start", "cell", "campaign-end",
        ]
        # cell records carry the attribution components for live views
        assert events[1]["components"] == dict(_run().attribution)

    def test_heartbeat_is_bus_only(self, tmp_path):
        from repro.telemetry.bus import EventBus

        path = str(tmp_path / "l.ndjson")
        bus = EventBus()
        sub = bus.subscribe()
        with RunLedger(path, bus=bus) as ledger:
            ledger.campaign_start(total=1, meta={})
            ledger.heartbeat([(1, 8, 0)], workers=(42,))
        pulses = [e for e in sub.drain() if e["kind"] == "heartbeat"]
        assert len(pulses) == 1
        assert pulses[0]["cells"] == [[1, 8, 0]]
        assert pulses[0]["workers"] == [42]
        # the durable file never sees the pulse
        kinds = [r["kind"] for r in read_ledger(path)]
        assert kinds == ["campaign-start"]


class TestLedgerProgress:
    def _records(self):
        return [
            {"kind": "campaign-start", "total": 4},
            {"kind": "cell", "ok": True, "wall_s": 2.0},
            {"kind": "cell", "ok": False, "wall_s": 1.0,
             "anomalies": ["error"]},
        ]

    def test_progress_snapshot(self):
        snap = ledger_progress(self._records())
        assert snap["total"] == 4 and snap["done"] == 2
        assert snap["errors"] == 1 and not snap["finished"]
        assert snap["eta_s"] == pytest.approx(1.5 * 2)
        assert len(snap["anomalies"]) == 1

    def test_finished_campaign(self):
        records = self._records() + [
            {"kind": "cell", "ok": True, "wall_s": 1.0},
            {"kind": "cell", "ok": True, "wall_s": 1.0},
            {"kind": "campaign-end", "completed": 3, "errors": 1,
             "wall_s": 5.0},
        ]
        snap = ledger_progress(records)
        assert snap["finished"] and snap["done"] == 4
        assert snap["eta_s"] == 0.0

    def test_render_tail(self):
        text = render_tail(self._records())
        assert "2/4" in text
        assert "running" in text


class TestEndToEnd:
    def test_campaign_streams_a_ledger(self, tmp_path):
        path = str(tmp_path / "c.ndjson")
        with RunLedger(path) as ledger:
            result = run_campaign(
                experiments=(3,), task_counts=(8,), reps=2,
                campaign_seed=21, ledger=ledger,
            )
        records = read_ledger(path)
        cells = [r for r in records if r["kind"] == "cell"]
        assert len(cells) == len(result.runs) == 2
        assert records[0]["kind"] == "campaign-start"
        assert records[0]["meta"]["campaign_seed"] == 21
        assert records[-1]["kind"] == "campaign-end"
        for rec, run in zip(cells, result.runs):
            assert rec["attribution_digest"] == run.attribution_digest
            assert rec["ttc"] == run.ttc
        assert "finished" in render_tail(records)

    def test_parallel_campaign_streams_a_ledger(self, tmp_path):
        path = str(tmp_path / "p.ndjson")
        with RunLedger(path) as ledger:
            result = run_campaign(
                experiments=(3,), task_counts=(8,), reps=2,
                campaign_seed=21, jobs=2, ledger=ledger,
            )
        records = read_ledger(path)
        cells = [r for r in records if r["kind"] == "cell"]
        assert len(cells) == len(result.runs) == 2
        assert all("worker" in rec for rec in cells)
        assert ledger_progress(records)["finished"]
