"""Tests for the experiment harness (small, fast configurations)."""

import math

import pytest

from repro.core import Binding
from repro.experiments import (
    TABLE1,
    build_environment,
    cell_stats,
    run_campaign,
    run_single,
    success_rate,
    tw_range,
    win_fraction,
)
from repro.experiments.campaign import CampaignResult, RunResult


class TestEnvironment:
    def test_build_environment_wires_everything(self):
        env = build_environment(seed=1, resources=("gordon-sim", "comet-sim"))
        assert set(env.pool) == {"gordon-sim", "comet-sim"}
        assert set(env.bundle.resources()) == {"gordon-sim", "comet-sim"}
        assert env.network.sites() == ("gordon-sim", "comet-sim")
        # primed machines are busy shortly after start
        env.warm_up(600)
        assert env.pool["comet-sim"].cluster.utilization > 0.5

    def test_environment_reproducible(self):
        def probe():
            env = build_environment(seed=5, resources=("gordon-sim",))
            env.warm_up(3600)
            c = env.pool["gordon-sim"].cluster
            return (c.completed_jobs, c.queue_length, c.free_cores)

        assert probe() == probe()


class TestTable1Specs:
    def test_four_experiments(self):
        assert sorted(TABLE1) == [1, 2, 3, 4]

    def test_experiment_structure(self):
        assert TABLE1[1].binding is Binding.EARLY
        assert TABLE1[1].n_pilots == 1
        assert not TABLE1[1].gaussian
        assert TABLE1[2].gaussian
        assert TABLE1[3].binding is Binding.LATE
        assert TABLE1[3].n_pilots == 3
        assert TABLE1[3].unit_scheduler == "backfill"
        assert TABLE1[4].gaussian
        assert "Late" in TABLE1[4].label


class TestRunSingle:
    def test_early_binding_run(self):
        r = run_single(TABLE1[1], 8, rep=0, campaign_seed=3)
        assert r.succeeded
        assert r.n_tasks == 8
        assert len(r.resources) == 1
        assert len(r.pilot_waits) == 1
        assert r.ttc > 900  # at least one 15-min task wave
        assert r.tx >= 900

    def test_late_binding_run(self):
        r = run_single(TABLE1[3], 8, rep=0, campaign_seed=3)
        assert r.succeeded
        assert len(r.resources) == 3
        assert len(set(r.resources)) == 3  # three distinct resources

    def test_repetition_determinism(self):
        a = run_single(TABLE1[3], 8, rep=1, campaign_seed=5)
        b = run_single(TABLE1[3], 8, rep=1, campaign_seed=5)
        assert a.ttc == b.ttc
        assert a.resources == b.resources

    def test_repetitions_differ(self):
        a = run_single(TABLE1[3], 8, rep=0, campaign_seed=5)
        b = run_single(TABLE1[3], 8, rep=1, campaign_seed=5)
        assert a.ttc != b.ttc


class TestCampaignAggregation:
    @pytest.fixture(scope="class")
    def small_campaign(self):
        return run_campaign(
            experiments=(1, 3), task_counts=(8, 32), reps=2, campaign_seed=9
        )

    def test_grid_complete(self, small_campaign):
        assert len(small_campaign.runs) == 2 * 2 * 2
        for exp in (1, 3):
            for n in (8, 32):
                assert len(small_campaign.cell(exp, n)) == 2

    def test_all_runs_succeed(self, small_campaign):
        assert success_rate(small_campaign) == 1.0

    def test_cell_stats(self, small_campaign):
        s = cell_stats(small_campaign, 1, 8, "ttc")
        assert s.n_runs == 2
        assert s.minimum <= s.mean <= s.maximum
        assert s.std >= 0

    def test_empty_cell_is_nan(self, small_campaign):
        s = cell_stats(small_campaign, 2, 8)
        assert s.n_runs == 0
        assert math.isnan(s.mean)

    def test_series(self, small_campaign):
        series = small_campaign.series(3, "ttc", task_counts=(8, 32))
        assert len(series) == 2
        assert series[0][0] == 8

    def test_tw_range(self, small_campaign):
        lo, hi = tw_range(small_campaign, [1, 3])
        assert 0 <= lo <= hi


class TestCellIndex:
    @staticmethod
    def _run(exp, n, rep, ttc=100.0):
        return RunResult(
            exp_id=exp, n_tasks=n, rep=rep, resources=("x",),
            ttc=ttc, tw=0, tw_last=0, tx=0, ts=0, trp=0,
            pilot_waits=(0,), units_done=n, restarts=0,
        )

    def test_add_keeps_index_incremental(self):
        result = CampaignResult()
        result.add(self._run(1, 8, 0))
        assert len(result.cell(1, 8)) == 1  # builds the index
        result.add(self._run(1, 8, 1))  # incremental update, no rebuild
        assert len(result.cell(1, 8)) == 2
        assert result.cell(3, 8) == []

    def test_direct_runs_mutation_invalidates_index(self):
        result = CampaignResult()
        result.add(self._run(1, 8, 0))
        assert len(result.cell(1, 8)) == 1
        # Bypassing add() — the public dataclass field — must still be
        # picked up via the length check.
        result.runs.append(self._run(1, 8, 1))
        assert len(result.cell(1, 8)) == 2

    def test_aggregate_uses_index(self):
        result = CampaignResult()
        for rep, ttc in enumerate((100.0, 300.0)):
            result.add(self._run(2, 16, rep, ttc))
        mean, std = result.aggregate(2, 16, "ttc")
        assert mean == 200.0 and std == 100.0
        nan_mean, _ = result.aggregate(2, 99)
        assert math.isnan(nan_mean)

    def test_cell_returns_copy(self):
        result = CampaignResult()
        result.add(self._run(1, 8, 0))
        result.cell(1, 8).clear()  # mutating the copy
        assert len(result.cell(1, 8)) == 1


def test_win_fraction_synthetic():
    result = CampaignResult()

    def run(exp, n, ttc):
        return RunResult(
            exp_id=exp, n_tasks=n, rep=0, resources=("x",),
            ttc=ttc, tw=0, tw_last=0, tx=0, ts=0, trp=0,
            pilot_waits=(0,), units_done=n, restarts=0,
        )

    for n in (8, 16):
        result.runs.append(run(1, n, 1000))
        result.runs.append(run(3, n, 500))
    assert win_fraction(result, 3, 1) == 1.0
    assert win_fraction(result, 1, 3) == 0.0


class TestQueueBackendEquivalence:
    """The event-queue backend is invisible to simulated history: the
    same cell yields byte-identical results and attribution digests on
    the heap, the calendar, and the adaptive queue."""

    def _cell(self, monkeypatch, backend):
        monkeypatch.setenv("REPRO_DES_QUEUE", backend)
        run = run_single(
            TABLE1[3], 32, 0, campaign_seed=2016, collect_digests=True
        )
        return (
            run.events,
            run.attribution_digest,
            run.digest,
            run.ttc,
            run.tw,
        )

    def test_backends_byte_identical(self, monkeypatch):
        heap = self._cell(monkeypatch, "heap")
        assert self._cell(monkeypatch, "calendar") == heap
        assert self._cell(monkeypatch, "auto") == heap
