"""Campaign statistics: significance tests and component shares.

The statistical helpers must be safe on degenerate inputs — single
repetitions, zero-variance cells, identical samples — because tiny smoke
campaigns in CI hit exactly those shapes.
"""

import math

import pytest

from repro.experiments.analysis import (
    cell_stats,
    component_shares,
    paired_significance,
    significance,
)
from repro.experiments.campaign import CampaignResult, RunResult


def _run(exp_id=1, n_tasks=8, rep=0, ttc=1000.0, attribution=True, **over):
    att = ()
    if attribution:
        att = (
            ("tw", 0.1 * ttc), ("tr", 0.0), ("tx", 0.8 * ttc),
            ("ts", 0.05 * ttc), ("trp", 0.04 * ttc), ("idle", 0.01 * ttc),
        )
    base = dict(
        exp_id=exp_id, n_tasks=n_tasks, rep=rep,
        resources=("stampede-sim",),
        ttc=ttc, tw=0.1 * ttc, tw_last=0.1 * ttc, tx=0.8 * ttc,
        ts=0.05 * ttc, trp=0.04 * ttc,
        pilot_waits=(0.1 * ttc,), units_done=n_tasks, restarts=0,
        events=100, attribution=att,
    )
    base.update(over)
    return RunResult(**base)


def _campaign(runs):
    return CampaignResult(runs=tuple(runs))


class TestSignificance:
    def test_empty_experiment_is_nan(self):
        result = _campaign([_run(exp_id=1)])
        assert math.isnan(significance(result, 1, 2))

    def test_single_run_per_side(self):
        result = _campaign([
            _run(exp_id=1, ttc=500.0), _run(exp_id=2, ttc=1000.0),
        ])
        p = significance(result, 1, 2)
        assert 0.0 <= p <= 1.0

    def test_identical_samples_are_not_significant(self):
        runs = [_run(exp_id=e, rep=i, ttc=1000.0)
                for e in (1, 2) for i in range(4)]
        p = significance(_campaign(runs), 1, 2)
        assert p > 0.4  # no evidence either way

    def test_clear_winner_is_significant(self):
        runs = [_run(exp_id=1, rep=i, ttc=100.0 + i) for i in range(8)]
        runs += [_run(exp_id=2, rep=i, ttc=1000.0 + i) for i in range(8)]
        assert significance(_campaign(runs), 1, 2) < 0.01


class TestPairedSignificance:
    def _grid(self, ttc_a, ttc_b, sizes=(8, 16, 32, 64, 128)):
        runs = []
        for n in sizes:
            runs.append(_run(exp_id=1, n_tasks=n, ttc=ttc_a(n)))
            runs.append(_run(exp_id=2, n_tasks=n, ttc=ttc_b(n)))
        return _campaign(runs)

    def test_too_few_sizes_is_nan(self):
        result = self._grid(lambda n: n, lambda n: 2 * n, sizes=(8, 16))
        assert math.isnan(paired_significance(result, 1, 2))

    def test_identical_samples_are_nan_not_an_error(self):
        # scipy's wilcoxon raises on an all-zero difference vector; the
        # wrapper must answer "no evidence" instead of crashing.
        result = self._grid(lambda n: 10.0 * n, lambda n: 10.0 * n)
        assert math.isnan(paired_significance(result, 1, 2))

    def test_consistent_winner_is_significant(self):
        result = self._grid(
            lambda n: 10.0 * n, lambda n: 20.0 * n,
            sizes=(8, 16, 32, 64, 128, 256),
        )
        assert paired_significance(result, 1, 2) < 0.05


class TestComponentShares:
    def test_raw_mode_reports_means(self):
        result = _campaign([_run(n_tasks=8), _run(n_tasks=8, rep=1)])
        shares = component_shares(result, 1)
        assert shares[8]["ttc"] == pytest.approx(1000.0)
        assert shares[8]["tw"] == pytest.approx(100.0)

    def test_normalized_shares_sum_to_one(self):
        result = _campaign([
            _run(n_tasks=8), _run(n_tasks=8, rep=1, ttc=2000.0),
            _run(n_tasks=16, ttc=4000.0),
        ])
        shares = component_shares(result, 1, normalize=True)
        for n, by in shares.items():
            assert sum(by.values()) == pytest.approx(1.0, abs=1e-9), n

    def test_normalized_legacy_runs_sum_to_one(self):
        # pre-attribution campaign files: remainder becomes idle.
        result = _campaign([_run(n_tasks=8, attribution=False)])
        by = component_shares(result, 1, normalize=True)[8]
        assert sum(by.values()) == pytest.approx(1.0, abs=1e-9)
        assert by["idle"] == pytest.approx(0.01, abs=1e-9)

    def test_zero_ttc_runs_are_skipped(self):
        result = _campaign([
            _run(n_tasks=8), _run(n_tasks=8, rep=1, ttc=0.0),
        ])
        by = component_shares(result, 1, normalize=True)[8]
        assert sum(by.values()) == pytest.approx(1.0, abs=1e-9)


def test_cell_stats_single_run_has_zero_std():
    result = _campaign([_run()])
    stats = cell_stats(result, 1, 8)
    assert stats.n_runs == 1
    assert stats.std == 0.0
    assert stats.mean == stats.minimum == stats.maximum
