"""Tests for figure/table rendering and analysis helpers."""

import pytest

from repro.experiments import (
    render_all,
    render_figure2,
    render_figure3,
    render_figure4,
    render_table1,
    variability_ratio,
    component_shares,
)
from repro.experiments.campaign import CampaignResult, RunResult


def synthetic_result():
    """A hand-built campaign with known statistics."""
    result = CampaignResult()
    base = {
        1: (4000, 3000, 900, 50),   # exp 1: big variable Tw
        3: (1500, 300, 1200, 50),   # exp 3: small Tw, longer Tx
    }
    for exp, (ttc, tw, tx, ts) in base.items():
        for n in (8, 64):
            for rep in range(3):
                jitter = rep * (500 if exp == 1 else 50)
                result.runs.append(
                    RunResult(
                        exp_id=exp, n_tasks=n, rep=rep,
                        resources=("r",) * (1 if exp == 1 else 3),
                        ttc=ttc + jitter, tw=tw + jitter, tw_last=tw + jitter,
                        tx=tx, ts=ts, trp=10.0,
                        pilot_waits=(tw,), units_done=n, restarts=0,
                    )
                )
    return result


def test_render_table1_lists_all_rows():
    text = render_table1()
    assert "Table I" in text
    for token in ("early", "late", "direct", "backfill", "2^n, n=3..11",
                  "(Tx+Ts+Trp)*3", "trunc. Gaussian"):
        assert token in text, token


def test_render_figure2_contains_means():
    text = render_figure2(synthetic_result(), task_counts=(8, 64))
    assert "Exp.1" in text and "Exp.3" in text
    # exp1 mean = 4000 + 500 = 4500
    assert "4500" in text
    # exp3 mean = 1500 + 50 = 1550
    assert "1550" in text


def test_render_figure3_decomposition():
    text = render_figure3(synthetic_result(), 1, task_counts=(8, 64))
    assert "Tw(s)" in text and "Tx(s)" in text and "Ts(s)" in text
    assert "Tw range over runs" in text


def test_render_figure4_stds():
    text = render_figure4(
        synthetic_result(), early_exp=1, late_exp=3, task_counts=(8, 64)
    )
    assert "Early std" in text and "Late std" in text


def test_render_all_concatenates():
    text = render_all(synthetic_result())
    assert "Table I" in text
    assert "Figure 2" in text
    assert "Figure 4" in text


def test_variability_ratio_early_exceeds_late():
    # early jitter 500/run vs late 50/run -> ratio ~10
    ratio = variability_ratio(synthetic_result(), early_exp=1, late_exp=3)
    assert ratio == pytest.approx(10.0, rel=0.01)


def test_component_shares():
    shares = component_shares(synthetic_result(), 3)
    assert set(shares) == {8, 64}
    assert shares[8]["tx"] == 1200
    assert shares[8]["ttc"] == pytest.approx(1550)


def test_throughput_series():
    from repro.experiments import throughput_series

    result = synthetic_result()
    series = throughput_series(result, 3)
    assert [n for n, _, _ in series] == [8, 64]
    n8 = series[0]
    # ttc ~1550 s for 8 tasks -> ~18.6 tasks/hour
    assert n8[1] == pytest.approx(8 / (1550 / 3600), rel=0.05)
    assert n8[2] >= 0


def test_significance():
    from repro.experiments import significance

    result = synthetic_result()
    # exp 3 values (~1500s) are clearly below exp 1 (~4000s)
    p = significance(result, 3, 1)
    assert p < 0.01
    # the reverse direction is not significant
    assert significance(result, 1, 3) > 0.5
    # missing experiment -> nan
    import math
    assert math.isnan(significance(result, 9, 1))


def test_paired_significance():
    import math

    from repro.experiments import paired_significance
    from repro.experiments.campaign import CampaignResult, RunResult

    result = CampaignResult()

    def add(exp, n, ttc, rep):
        result.runs.append(RunResult(
            exp_id=exp, n_tasks=n, rep=rep, resources=("x",),
            ttc=ttc, tw=0, tw_last=0, tx=0, ts=0, trp=0,
            pilot_waits=(0,), units_done=n, restarts=0,
        ))

    sizes = [8, 16, 32, 64, 128, 256, 512]
    for n in sizes:
        for rep in range(2):
            add(1, n, 1000 * (1 + sizes.index(n)), rep)   # slower at every size
            add(3, n, 400 * (1 + sizes.index(n)), rep)    # faster at every size
    p = paired_significance(result, 3, 1)
    assert p < 0.01
    # too few common sizes -> nan
    small = CampaignResult()
    small.runs = [r for r in result.runs if r.n_tasks in (8, 16)]
    assert math.isnan(paired_significance(small, 3, 1))
