"""Tests for substrate calibration validation."""

import math

import pytest

from repro.experiments import (
    calibrate_resource,
    render_calibration,
)


@pytest.fixture(scope="module")
def gordon_cal():
    # short horizon keeps the test fast; gordon is the smallest-job preset
    return calibrate_resource("gordon-sim", seed=4, hours=8, n_probes=2)


def test_report_fields_sane(gordon_cal):
    cal = gordon_cal
    assert 0 <= cal.mean_utilization <= 1
    assert cal.mean_queue_length >= 0
    assert 0 <= cal.fraction_time_queued <= 1
    assert 0 <= cal.short_job_fraction <= 1
    assert cal.jobs_finished > 0
    assert len(cal.probe_waits) == 2
    assert all(w >= 0 for w in cal.probe_waits)


def test_machine_is_busy(gordon_cal):
    """A saturated preset must sustain high utilization over the horizon."""
    assert gordon_cal.mean_utilization > 0.6


def test_probes_eventually_start(gordon_cal):
    assert all(math.isfinite(w) for w in gordon_cal.probe_waits)


def test_render(gordon_cal):
    text = render_calibration({"gordon-sim": gordon_cal})
    assert "gordon-sim" in text
    assert "probe waits" in text


def test_deterministic():
    a = calibrate_resource("gordon-sim", seed=9, hours=4, n_probes=1)
    b = calibrate_resource("gordon-sim", seed=9, hours=4, n_probes=1)
    assert a.mean_utilization == b.mean_utilization
    assert a.probe_waits == b.probe_waits
