"""Concurrent access: one writer, live readers, crashing workers.

The store's concurrency contract (module docstring of
:mod:`repro.experiments.store`): exactly one writer — the campaign
runner's parent process — and any number of readers, each on its own
handle. WAL mode means a reader only ever sees committed whole rows:
``repro tail`` pointed at a live ``-j`` campaign can never observe a
torn or partial row, and a worker crash mid-campaign leaves no orphan
rows — whatever committed is complete, the in-flight cell simply is
not there yet.
"""

import json
import threading

import pytest

from repro.experiments import CampaignStore
from repro.experiments.campaign import CellError, RunResult
from repro.experiments.runner import run_parallel_campaign

# reuse the module-level worker hooks the runner tests ship (workers
# import them by dotted path, so they must live at module scope).
from tests.experiments.test_runner import _FAKE_FIELDS

GRID_KW = dict(
    experiments=(1,), task_counts=(8, 16), reps=2, campaign_seed=0,
)

#: every field a stored run payload must carry — a reader that can
#: parse the payload and see all of these saw a whole row.
RUN_FIELDS = set(RunResult.__dataclass_fields__)


def _run(rep=0, **over):
    base = dict(
        exp_id=1, n_tasks=8, rep=rep, units_done=8, events=3,
        digest="", attribution=(), attribution_digest="", **_FAKE_FIELDS,
    )
    base.update(over)
    return RunResult(**base)


class TestWALSnapshotIsolation:
    """Deterministic isolation checks — no timing, no threads."""

    def test_reader_never_sees_an_open_transaction(self, tmp_path):
        path = str(tmp_path / "c.sqlite")
        with CampaignStore(path) as writer:
            writer.put_run(_run(rep=0))
            reader = CampaignStore(path, readonly=True)
            try:
                writer._conn.execute("BEGIN IMMEDIATE")
                writer.put_run(_run(rep=1))
                writer.put_run(_run(rep=2))
                # mid-transaction: the reader still sees exactly one
                # committed row, not a partial batch
                assert reader.run_count() == 1
                writer._conn.execute("COMMIT")
                assert reader.run_count() == 3
            finally:
                reader.close()

    def test_rollback_leaves_no_orphan_rows(self, tmp_path):
        path = str(tmp_path / "c.sqlite")
        with CampaignStore(path) as store:
            with pytest.raises(RuntimeError):
                with store.transaction():
                    store.put_run(_run(rep=0))
                    store.put_error(CellError(1, 8, 1, "half-written"))
                    raise RuntimeError("writer dies mid-batch")
            assert store.run_count() == 0
            assert store.error_count() == 0


class TestLiveCampaignReaders:
    def test_tail_reader_never_sees_torn_rows(self, tmp_path):
        """A reader polling its own handle during a live -j campaign.

        Every row it observes at any instant must parse as JSON and
        carry the complete RunResult field set — a torn write would
        fail one of those.
        """
        path = str(tmp_path / "c.sqlite")
        snapshots, torn = [], []
        stop = threading.Event()

        def tail():
            reader = CampaignStore(path, readonly=True)
            try:
                while not stop.is_set():
                    rows = reader._conn.execute(
                        "SELECT payload FROM runs"
                    ).fetchall()
                    for (payload,) in rows:
                        try:
                            raw = json.loads(payload)
                        except json.JSONDecodeError:
                            torn.append(payload)
                            continue
                        if set(raw) != RUN_FIELDS:
                            torn.append(payload)
                    snapshots.append(len(rows))
            finally:
                reader.close()

        with CampaignStore(path) as store:
            reader_thread = threading.Thread(target=tail)
            reader_thread.start()
            try:
                result = run_parallel_campaign(
                    jobs=2,
                    run_fn="tests.experiments.test_runner:_fake_run",
                    store=store,
                    **GRID_KW,
                )
            finally:
                stop.set()
                reader_thread.join(timeout=30)
            assert torn == []
            assert len(result.runs) == 4
            assert store.run_count() == 4
            # row counts only ever grow: committed snapshots, no tears
            assert snapshots == sorted(snapshots)

    def test_worker_crash_leaves_error_row_and_no_orphans(self, tmp_path):
        """os._exit in a worker: the cell becomes an error row, the
        surviving cells commit whole, and nothing half-written exists."""
        path = str(tmp_path / "c.sqlite")
        with CampaignStore(path) as store:
            result = run_parallel_campaign(
                jobs=2,
                run_fn="tests.experiments.test_runner:_crash_run",
                store=store,
                **GRID_KW,
            )
            assert store.run_count() == len(result.runs) == 3
            assert store.error_count() == 1
            (err,) = store.errors()
            assert (err.exp_id, err.n_tasks, err.rep) == (1, 16, 1)
            assert "crashed" in err.error
            # no runs row shadows the crashed repetition
            assert store.get_run(1, 16, 1) is None
            # and every committed payload is whole
            for run in store.iter_runs():
                assert set(RunResult.__dataclass_fields__) == set(
                    run.__dataclass_fields__
                )

    def test_cell_exceptions_mirrored_to_store(self, tmp_path):
        path = str(tmp_path / "c.sqlite")
        with CampaignStore(path) as store:
            result = run_parallel_campaign(
                jobs=2,
                run_fn="tests.experiments.test_runner:_error_run",
                store=store,
                **GRID_KW,
            )
            assert store.run_count() == len(result.runs) == 2
            assert store.error_count() == len(result.errors) == 2
            assert {
                (e.exp_id, e.n_tasks, e.rep) for e in store.errors()
            } == {(1, 8, 1), (1, 16, 1)}
