"""The differential harness: legacy JSON path vs store path, field for field.

The store is only allowed to exist because it is *provably* transparent:
the same seeded campaign, run through the legacy JSON pipeline and
through the sqlite repository, must produce field-for-field equal
``RunResult``s and byte-identical telemetry/attribution digests —
serial and ``-j`` parallel, after a store round-trip, and after a
legacy-artifact migration. This module is that proof, plus the
O(cell)-not-O(campaign) row-read accounting for single-cell fetches.
"""

import dataclasses
import json

import pytest

from repro.experiments import (
    CampaignStore,
    campaign_fingerprint,
    campaign_fingerprint_from_store,
    migrate_json,
    run_campaign,
)
from repro.experiments.campaign import RunResult
from repro.experiments.io import load_campaign, save_campaign

#: one small seeded grid shared by every differential check; digests on
#: so the telemetry/fault/health digest of every repetition is compared.
GRID = dict(
    experiments=(1, 3), task_counts=(8,), reps=2,
    campaign_seed=2016, collect_digests=True,
)


def canon(runs):
    """NaN-tolerant canonical rendering (NaN != NaN breaks plain ==)."""
    return json.dumps(
        [dataclasses.asdict(r) for r in runs], sort_keys=True, default=str
    )


@pytest.fixture(scope="module")
def legacy(tmp_path_factory):
    """The legacy path: run -> JSON file -> loaded back."""
    tmp = tmp_path_factory.mktemp("legacy")
    path = tmp / "campaign.json"
    result = run_campaign(**GRID)
    save_campaign(result, str(path))
    return load_campaign(str(path)), str(path)


@pytest.fixture(scope="module")
def stored(tmp_path_factory):
    """The store path: run -> sqlite rows -> loaded back."""
    tmp = tmp_path_factory.mktemp("store")
    path = tmp / "campaign.sqlite"
    with CampaignStore(str(path)) as store:
        run_campaign(**GRID, store=store)
        return store.load_campaign(), str(path)


class TestSerialDifferential:
    def test_field_for_field_equal(self, legacy, stored):
        legacy_result, _ = legacy
        store_result, _ = stored
        assert len(store_result.runs) == len(legacy_result.runs) == 4
        assert canon(store_result.runs) == canon(legacy_result.runs)

    def test_digests_byte_identical(self, legacy, stored):
        legacy_result, _ = legacy
        store_result, _ = stored
        for a, b in zip(legacy_result.runs, store_result.runs):
            assert a.digest and a.digest == b.digest
            assert a.attribution_digest and (
                a.attribution_digest == b.attribution_digest
            )

    def test_meta_and_errors_equal(self, legacy, stored):
        legacy_result, _ = legacy
        store_result, _ = stored
        assert store_result.meta == legacy_result.meta
        assert store_result.errors == legacy_result.errors == []

    def test_fingerprints_identical_both_implementations(
        self, legacy, stored
    ):
        """In-memory fingerprint == streamed store fingerprint, bytewise."""
        legacy_result, _ = legacy
        _, store_path = stored
        fp_memory = campaign_fingerprint(legacy_result)
        with CampaignStore(store_path, readonly=True) as store:
            fp_store = campaign_fingerprint_from_store(store)
        assert fp_memory == fp_store
        assert fp_memory["digest"] == fp_store["digest"]


class TestParallelDifferential:
    def test_parallel_store_equals_serial_legacy(self, legacy, tmp_path):
        legacy_result, _ = legacy
        with CampaignStore(str(tmp_path / "par.sqlite")) as store:
            run_campaign(**GRID, jobs=2, store=store)
            par = store.load_campaign()
        assert canon(par.runs) == canon(legacy_result.runs)
        assert [r.attribution_digest for r in par.runs] == [
            r.attribution_digest for r in legacy_result.runs
        ]
        assert [r.digest for r in par.runs] == [
            r.digest for r in legacy_result.runs
        ]


class TestRoundTrips:
    def test_store_to_json_export_import(self, stored, tmp_path):
        """store -> JSON codec -> back: the codec loses nothing."""
        store_result, _ = stored
        path = tmp_path / "export.json"
        save_campaign(store_result, str(path))
        reimported = load_campaign(str(path))
        assert canon(reimported.runs) == canon(store_result.runs)
        assert reimported.meta == store_result.meta

    def test_legacy_artifact_migration(self, legacy, stored, tmp_path):
        """JSON artifact -> `migrate` -> store reads back identically."""
        legacy_result, json_path = legacy
        _, store_path = stored
        with migrate_json(json_path, str(tmp_path / "m.sqlite")) as migrated:
            result = migrated.load_campaign()
            fp = campaign_fingerprint_from_store(migrated)
        assert canon(result.runs) == canon(legacy_result.runs)
        assert fp == campaign_fingerprint(legacy_result)
        with CampaignStore(store_path, readonly=True) as store:
            assert fp == campaign_fingerprint_from_store(store)

    def test_store_reload_is_stable(self, stored):
        """Loading twice from the same store is deterministic."""
        _, store_path = stored
        with CampaignStore(store_path, readonly=True) as store:
            a = store.load_campaign()
            b = store.load_campaign()
        assert canon(a.runs) == canon(b.runs)


class TestSingleCellIsOCell:
    """Fetching one cell of a big campaign must not deserialize the rest."""

    REPS = 3

    @pytest.fixture(scope="class")
    def big_store(self, tmp_path_factory):
        # 1080 synthetic repetitions: 4 experiments x 90 sizes x 3 reps.
        # Fabricated rows (no simulation) keep this fast; the accounting
        # argument only needs row counts, not real physics.
        path = tmp_path_factory.mktemp("big") / "big.sqlite"
        fields = dict(
            resources=("r",), tw=1.0, tw_last=1.0, tx=2.0, ts=0.5,
            trp=0.25, pilot_waits=(1.0,), restarts=0, events=10,
            digest="", attribution=(), attribution_digest="",
        )
        with CampaignStore(str(path)) as store:
            store.put_runs(
                RunResult(
                    exp_id=exp, n_tasks=size, rep=rep, ttc=100.0 + size,
                    units_done=size, **fields,
                )
                for exp in (1, 2, 3, 4)
                for size in range(8, 98)
                for rep in range(self.REPS)
            )
        return str(path)

    def test_store_holds_over_1000_cells(self, big_store):
        with CampaignStore(big_store, readonly=True) as store:
            assert store.run_count() == 1080

    def test_single_run_fetch_reads_one_row(self, big_store):
        with CampaignStore(big_store, readonly=True) as store:
            run = store.get_run(3, 42, 1)
            assert run is not None and run.n_tasks == 42
            assert store.rows_read == 1

    def test_cell_fetch_reads_reps_rows(self, big_store):
        with CampaignStore(big_store, readonly=True) as store:
            runs = store.cell_runs(2, 57)
            assert len(runs) == self.REPS
            assert store.rows_read == self.REPS

    def test_slowest_fetch_reads_one_row(self, big_store):
        with CampaignStore(big_store, readonly=True) as store:
            slowest = store.slowest_run()
            assert slowest.n_tasks == 97
            assert store.rows_read == 1
