"""Smoke tests for the ablation studies (minimal repetitions)."""

import pytest

from repro.experiments import (
    data_affinity_ablation,
    heterogeneity_ablation,
    nonuniform_tasks_study,
    pilot_count_sweep,
    pool_scaling_study,
    render_ablation,
    scheduler_ablation,
)


def test_pilot_count_sweep_structure():
    points = pilot_count_sweep(n_tasks=8, pilot_counts=(1, 3), reps=1, seed=1)
    assert [p.label for p in points] == ["1 pilot(s)", "3 pilot(s)"]
    assert all(p.n_runs == 1 for p in points)
    assert all(p.ttc_mean > 0 for p in points)
    assert all(p.aux_name == "Tw" for p in points)


def test_scheduler_ablation_structure():
    points = scheduler_ablation(n_tasks=8, reps=1, seed=2)
    assert {p.label for p in points} == {"backfill", "round-robin"}


def test_heterogeneity_ablation_structure():
    points = heterogeneity_ablation(n_tasks=8, reps=1, seed=3)
    assert len(points) == 2
    assert points[0].label.startswith("diverse")


def test_data_affinity_structure():
    points = data_affinity_ablation(n_tasks=8, input_mb=10, reps=1, seed=4)
    assert {p.label for p in points} == {"optimize=ttc", "optimize=data"}
    assert all(p.aux_name == "Ts" for p in points)
    assert all(p.aux_mean > 0 for p in points)  # staging took time


def test_pool_scaling_structure():
    points = pool_scaling_study(
        n_tasks=8, pool_size=5, pilot_counts=(1, 3, 9), reps=1, seed=5
    )
    # a 9-pilot config cannot run on a 5-resource pool and is skipped
    assert [p.label for p in points] == ["1/5 pilots", "3/5 pilots"]


def test_nonuniform_structure():
    points = nonuniform_tasks_study(n_tasks=8, reps=1, seed=6)
    assert len(points) == 2
    assert all("mixed cores" in p.label for p in points)


def test_render_handles_aux_names():
    points = data_affinity_ablation(n_tasks=8, input_mb=10, reps=1, seed=7)
    text = render_ablation("t", points)
    assert "Ts mean" in text
    assert "Tw mean" not in text


def test_determinism():
    a = pilot_count_sweep(n_tasks=8, pilot_counts=(1,), reps=1, seed=9)
    b = pilot_count_sweep(n_tasks=8, pilot_counts=(1,), reps=1, seed=9)
    assert a[0].ttc_mean == b[0].ttc_mean


def test_binding_rationale_structure():
    from repro.experiments import binding_rationale_study

    points = binding_rationale_study(n_tasks=8, reps=1, seed=10)
    labels = [p.label for p in points]
    assert len(points) == 3
    assert any("discarded" in l for l in labels)
    assert all(p.ttc_mean > 0 for p in points)


def test_emergent_vs_sampled_structure():
    from repro.experiments import emergent_vs_sampled_study

    cmp = emergent_vs_sampled_study(n_pairs=4, seed=12)
    assert cmp.n_pairs == 4
    assert -1 <= cmp.emergent_corr <= 1
    assert -1 <= cmp.sampled_corr <= 1
    assert cmp.emergent_mean >= 0 and cmp.sampled_mean >= 0
    assert "emergent model" in cmp.render()


def test_energy_study_structure():
    from repro.experiments import energy_study

    points = energy_study(n_tasks=8, reps=1, seed=14)
    assert len(points) == 2
    assert all(p.aux_name == "kJ" for p in points)
    assert all(p.aux_mean > 0 for p in points)


def test_locality_study_structure():
    from repro.experiments import locality_study

    points = locality_study(n_map_tasks=8, intermediate_mb=5, reps=1, seed=18)
    assert {p.label for p in points} == {"backfill", "locality"}
    assert all(p.aux_name == "Ts" for p in points)
