"""Tests for campaign persistence and the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments import run_campaign
from repro.experiments.io import (
    campaign_from_dict,
    campaign_to_dict,
    load_campaign,
    save_campaign,
)


@pytest.fixture(scope="module")
def tiny_campaign():
    return run_campaign(
        experiments=(3,), task_counts=(8,), reps=2, campaign_seed=21
    )


class TestIO:
    def test_roundtrip_dict(self, tiny_campaign):
        rebuilt = campaign_from_dict(campaign_to_dict(tiny_campaign))
        assert len(rebuilt.runs) == len(tiny_campaign.runs)
        for a, b in zip(rebuilt.runs, tiny_campaign.runs):
            assert a == b

    def test_roundtrip_file(self, tiny_campaign, tmp_path):
        path = tmp_path / "campaign.json"
        save_campaign(tiny_campaign, str(path))
        rebuilt = load_campaign(str(path))

        def normalize(run):
            # NaN pilot waits (pilots canceled before activation) survive
            # the JSON roundtrip but NaN != NaN; compare via repr.
            import dataclasses

            d = dataclasses.asdict(run)
            d["pilot_waits"] = tuple(repr(w) for w in run.pilot_waits)
            return d

        assert [normalize(r) for r in rebuilt.runs] == [
            normalize(r) for r in tiny_campaign.runs
        ]
        # the file is real JSON
        data = json.loads(path.read_text())
        assert data["format"] == 1

    def test_version_check(self, tiny_campaign):
        data = campaign_to_dict(tiny_campaign)
        data["format"] = 99
        with pytest.raises(ValueError):
            campaign_from_dict(data)

    def test_errors_roundtrip(self, tiny_campaign):
        from repro.experiments.campaign import CellError

        tiny = campaign_from_dict(campaign_to_dict(tiny_campaign))
        tiny.errors.append(CellError(3, 8, 7, "worker process crashed"))
        rebuilt = campaign_from_dict(campaign_to_dict(tiny))
        assert rebuilt.errors == tiny.errors
        # campaigns without errors serialize without the key
        assert "errors" not in campaign_to_dict(tiny_campaign)

    def test_pre_runner_files_load(self, tiny_campaign):
        # Files written before the events/digest fields existed.
        data = campaign_to_dict(tiny_campaign)
        for raw in data["runs"]:
            raw.pop("events", None)
            raw.pop("digest", None)
        rebuilt = campaign_from_dict(data)
        assert all(r.events == 0 and r.digest == "" for r in rebuilt.runs)
        assert len(rebuilt.runs) == len(tiny_campaign.runs)


class TestCLI:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "backfill" in out

    def test_campaign_to_file_and_figures(self, tmp_path, capsys):
        path = tmp_path / "c.json"
        rc = main([
            "campaign", "--experiments", "3", "--sizes", "8",
            "--reps", "1", "--seed", "5", "-q", "-o", str(path),
        ])
        assert rc == 0
        assert path.exists()
        capsys.readouterr()
        assert main(["figures", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out

    def test_campaign_inline_render(self, capsys):
        rc = main([
            "campaign", "--experiments", "3", "--sizes", "8",
            "--reps", "1", "--seed", "5", "-q",
        ])
        assert rc == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_campaign_jobs_flag_matches_serial(self, tmp_path):
        base = ["campaign", "--experiments", "3", "--sizes", "8",
                "--reps", "2", "--seed", "5", "-q", "--digests"]
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        assert main(base + ["-o", str(serial_path)]) == 0
        assert main(base + ["-j", "2", "-o", str(parallel_path)]) == 0
        serial = json.loads(serial_path.read_text())
        parallel = json.loads(parallel_path.read_text())
        assert serial["runs"] == parallel["runs"]
        assert all(r["digest"] for r in parallel["runs"])

    def test_run_command(self, capsys):
        rc = main([
            "run", "--tasks", "8", "--binding", "late", "--pilots", "2",
            "--seed", "3", "--warmup-hours", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ExecutionStrategy" in out
        assert "TTC" in out

    def test_run_rejects_non_paper_size(self):
        with pytest.raises(SystemExit):
            main(["run", "--tasks", "100"])

    def test_probe_command(self, capsys):
        rc = main([
            "probe", "--resources", "gordon-sim", "--cores", "64",
            "--warmup-hours", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "gordon-sim" in out
        assert "Measured wait" in out

    def test_ablation_command(self, capsys):
        rc = main(["ablation", "scheduler", "--reps", "1"])
        assert rc == 0
        assert "Ablation" in capsys.readouterr().out

    def test_calibrate_command(self, capsys):
        rc = main(["calibrate", "--hours", "2", "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "calibration" in out
        assert "stampede-sim" in out

    def test_run_with_timeline_and_save(self, tmp_path, capsys):
        path = tmp_path / "session.json"
        rc = main([
            "run", "--tasks", "8", "--pilots", "1", "--seed", "3",
            "--warmup-hours", "1", "--timeline", "--save", str(path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "pilot." in out  # timeline rows
        assert path.exists()
        from repro.core import load_session

        session = load_session(str(path))
        assert session.n_tasks == 8


class TestObservatoryCLI:
    """analyze / report / tail — the observability loop end to end."""

    @pytest.fixture(scope="class")
    def campaign_file(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("observatory")
        path = tmp / "campaign.json"
        ledger = tmp / "campaign.ndjson"
        rc = main([
            "campaign", "--experiments", "1", "3", "--sizes", "8",
            "--reps", "2", "--seed", "2016", "-q",
            "-o", str(path), "--ledger", str(ledger),
        ])
        assert rc == 0
        return path, ledger

    def test_analyze_needs_a_baseline(self, campaign_file, tmp_path, capsys):
        path, _ = campaign_file
        baseline = tmp_path / "bench.json"
        rc = main(["analyze", str(path), "--baseline", str(baseline)])
        assert rc == 2
        assert "--update-baseline" in capsys.readouterr().err

    def test_analyze_update_then_clean_pass(
        self, campaign_file, tmp_path, capsys
    ):
        path, _ = campaign_file
        baseline = tmp_path / "bench.json"
        baseline.write_text(json.dumps({"other-bench": {"keep": 1}}))
        rc = main([
            "analyze", str(path), "--baseline", str(baseline),
            "--update-baseline",
        ])
        assert rc == 0
        merged = json.loads(baseline.read_text())
        assert merged["other-bench"] == {"keep": 1}  # merge, not clobber
        assert "campaign-attribution" in merged
        capsys.readouterr()
        rc = main(["analyze", str(path), "--baseline", str(baseline)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "no drift" in out
        assert "dominant" in out

    def test_analyze_flags_injected_tw_regression(
        self, campaign_file, tmp_path, capsys
    ):
        path, _ = campaign_file
        baseline = tmp_path / "bench.json"
        assert main([
            "analyze", str(path), "--baseline", str(baseline),
            "--update-baseline",
        ]) == 0
        doc = json.loads(path.read_text())
        for run in doc["runs"]:  # inject a 25% queue-wait regression
            att = dict(run["attribution"])
            grown = att["tw"] * 1.25 + 100.0
            run["ttc"] += grown - att["tw"]
            att["tw"] = grown
            run["attribution"] = [[k, v] for k, v in att.items()]
            run["tw"] = grown
        bad = tmp_path / "regressed.json"
        bad.write_text(json.dumps(doc))
        capsys.readouterr()
        rc = main(["analyze", str(bad), "--baseline", str(baseline)])
        assert rc == 1
        err = capsys.readouterr().err
        assert "DRIFT" in err and "tw" in err

    def test_report_is_self_contained_html(
        self, campaign_file, tmp_path, capsys
    ):
        path, ledger = campaign_file
        out_html = tmp_path / "report.html"
        rc = main([
            "report", str(path), "-o", str(out_html),
            "--ledger", str(ledger),
        ])
        assert rc == 0
        html = out_html.read_text(encoding="utf-8")
        assert html.startswith("<!DOCTYPE html>")
        assert "<script" not in html.lower()
        assert "http://" not in html and "https://" not in html
        assert "Critical path" in html
        assert "Tw (queue wait)" in html

    def test_tail_renders_the_ledger(self, campaign_file, capsys):
        _, ledger = campaign_file
        rc = main(["tail", str(ledger)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "finished" in out and "4/4" in out

    def test_tail_missing_ledger(self, tmp_path, capsys):
        rc = main(["tail", str(tmp_path / "nope.ndjson")])
        assert rc == 2

    def test_tail_json_is_machine_readable(self, campaign_file, capsys):
        _, ledger = campaign_file
        rc = main(["tail", str(ledger), "--json"])
        assert rc == 0
        lines = capsys.readouterr().out.splitlines()
        records = [json.loads(line) for line in lines]  # every line parses
        assert records[0]["kind"] == "campaign-start"
        assert records[-1]["kind"] == "campaign-end"
        assert sum(1 for r in records if r["kind"] == "cell") == 4
        # stable key order per line (scripts can diff the stream)
        assert all(list(r) == sorted(r) for r in records)

    def test_watch_once_renders_dashboard(self, campaign_file, capsys):
        _, ledger = campaign_file
        rc = main(["watch", str(ledger), "--once", "--no-color"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "campaign finished" in out
        assert "4/4 cells" in out
        assert "legend" in out

    def test_watch_follows_to_completion_then_exits(
        self, campaign_file, capsys
    ):
        _, ledger = campaign_file
        rc = main(["watch", str(ledger), "--interval", "0.01", "--no-color"])
        assert rc == 0  # finished source: one frame, clean exit
        assert "campaign finished" in capsys.readouterr().out

    def test_watch_needs_exactly_one_source(self, tmp_path, capsys):
        assert main(["watch"]) == 2
        assert main([
            "watch", str(tmp_path / "x.ndjson"), "--url", "http://x/",
        ]) == 2
        assert main(["watch", str(tmp_path / "nope.ndjson")]) == 2
