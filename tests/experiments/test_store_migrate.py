"""End-to-end migration: legacy JSON artifact -> `repro migrate` -> store.

The committed baseline ``benchmarks/BENCH_campaign.json`` pins the
fingerprint of the seeded grid ``--experiments 1 3 --sizes 8 16
--reps 2 --seed 2016`` (the CI analyze-smoke grid). A legacy artifact
of that campaign, migrated into a store, must ``repro analyze`` clean
against that baseline — byte-for-byte fingerprint equality, exit 0 —
and migrating twice must be a no-op.
"""

import json
import pathlib

import pytest

from repro.cli import main
from repro.experiments import (
    CampaignStore,
    campaign_fingerprint,
    campaign_fingerprint_from_store,
)
from repro.experiments.io import load_campaign

REPO = pathlib.Path(__file__).resolve().parents[2]
BASELINE = REPO / "benchmarks" / "BENCH_campaign.json"

#: the exact grid the committed baseline fingerprints.
BASELINE_GRID = [
    "--experiments", "1", "3", "--sizes", "8", "16",
    "--reps", "2", "--seed", "2016", "-q",
]


@pytest.fixture(scope="module")
def legacy_json(tmp_path_factory):
    path = tmp_path_factory.mktemp("legacy") / "campaign_2016.json"
    assert main(["campaign", *BASELINE_GRID, "-o", str(path)]) == 0
    return str(path)


@pytest.fixture(scope="module")
def migrated(legacy_json, tmp_path_factory):
    path = tmp_path_factory.mktemp("migrated") / "campaign.sqlite"
    assert main(["migrate", legacy_json, str(path)]) == 0
    return str(path)


class TestMigrateMatchesCommittedBaseline:
    def test_baseline_grid_is_what_we_think(self):
        baseline = json.loads(BASELINE.read_text())
        meta = baseline["campaign-attribution"]["meta"]
        assert meta["campaign_seed"] == 2016
        assert meta["experiments"] == [1, 3]
        assert meta["task_counts"] == [8, 16]
        assert meta["reps"] == 2

    def test_analyze_store_against_committed_baseline(self, migrated):
        assert (
            main(["analyze", migrated, "--baseline", str(BASELINE)]) == 0
        )

    def test_analyze_source_json_agrees(self, legacy_json):
        # sanity: the source artifact itself also matches the baseline,
        # so the store passing is not vacuous
        assert (
            main(["analyze", legacy_json, "--baseline", str(BASELINE)]) == 0
        )

    def test_fingerprint_digest_matches_baseline_exactly(self, migrated):
        baseline = json.loads(BASELINE.read_text())
        committed = baseline["campaign-attribution"]["digest"]
        with CampaignStore(migrated, readonly=True) as store:
            streamed = campaign_fingerprint_from_store(store)
            persisted = store.fingerprint()
        assert streamed["digest"] == committed
        # `repro migrate` also persisted the fingerprint into the store
        assert persisted is not None and persisted["digest"] == committed


class TestMigrateIdempotent:
    def test_migrating_twice_changes_nothing(self, legacy_json, migrated):
        with CampaignStore(migrated, readonly=True) as store:
            before = campaign_fingerprint_from_store(store)
            runs_before = store.run_count()
        assert main(["migrate", legacy_json, migrated]) == 0
        with CampaignStore(migrated, readonly=True) as store:
            after = campaign_fingerprint_from_store(store)
            assert store.run_count() == runs_before
        assert after == before

    def test_store_and_json_fingerprints_identical(
        self, legacy_json, migrated
    ):
        fp_json = campaign_fingerprint(load_campaign(legacy_json))
        with CampaignStore(migrated, readonly=True) as store:
            fp_store = campaign_fingerprint_from_store(store)
        assert fp_json == fp_store


class TestMigrateRejectsBadInput:
    def test_store_source_rejected(self, migrated, tmp_path):
        rc = main(["migrate", migrated, str(tmp_path / "out.sqlite")])
        assert rc == 2

    def test_missing_source_rejected(self, tmp_path):
        rc = main(
            ["migrate", str(tmp_path / "nope.json"),
             str(tmp_path / "out.sqlite")]
        )
        assert rc == 2

    def test_garbage_source_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        rc = main(["migrate", str(bad), str(tmp_path / "out.sqlite")])
        assert rc == 2


class TestCampaignStoreCli:
    def test_campaign_writes_both_artifacts(self, tmp_path):
        json_path = tmp_path / "c.json"
        store_path = tmp_path / "c.sqlite"
        grid = [
            "--experiments", "1", "--sizes", "8", "--reps", "1",
            "--seed", "3", "-q",
        ]
        assert main(
            ["campaign", *grid, "-o", str(json_path),
             "--store", str(store_path)]
        ) == 0
        result = load_campaign(str(json_path))
        with CampaignStore(str(store_path), readonly=True) as store:
            assert store.load_campaign().runs == result.runs
            # the campaign command persists the sentinel fingerprint
            fp = store.fingerprint()
        assert fp == campaign_fingerprint(result)

    def test_tail_reads_store_ledger(self, tmp_path, capsys):
        store_path = tmp_path / "c.sqlite"
        grid = [
            "--experiments", "1", "--sizes", "8", "--reps", "1",
            "--seed", "3", "-q",
        ]
        assert main(
            ["campaign", *grid, "--store", str(store_path)]
        ) == 0
        assert main(["tail", str(store_path)]) == 0
        out = capsys.readouterr().out
        assert "campaign" in out
