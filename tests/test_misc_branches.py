"""Mop-up tests for branches not reached by the module suites."""

import pytest

from repro.bundle import BundleManager
from repro.cluster import Cluster
from repro.core import Binding, ExecutionManager, ExecutionStrategy
from repro.des import Simulation
from repro.net import Network
from repro.skeleton import (
    SkeletonAPI,
    StageSpec,
    bag_of_tasks,
    multistage,
    to_shell,
)


def make_env(seed=0):
    sim = Simulation(seed=seed)
    net = Network(sim)
    clusters = {}
    for name in ("x", "y"):
        net.add_site(name, bandwidth_bytes_per_s=1e7, latency_s=0.01)
        clusters[name] = Cluster(sim, name, nodes=8, cores_per_node=8,
                                 submit_overhead=0.0)
    bundle = BundleManager(sim, net).create_bundle("pool", clusters)
    em = ExecutionManager(sim, net, bundle, agent_bootstrap_s=0.0)
    return sim, net, bundle, em


def test_execute_with_explicit_strategy():
    """The planner can be bypassed entirely with a hand-built strategy."""
    sim, net, bundle, em = make_env(seed=61)
    strategy = ExecutionStrategy(
        binding=Binding.LATE,
        unit_scheduler="round-robin",
        n_pilots=2,
        pilot_cores=8,
        pilot_walltime_min=60,
        resources=("x", "y"),
    )
    api = SkeletonAPI(bag_of_tasks(8, task_duration=60), seed=1)
    report = em.execute(api, strategy=strategy)
    assert report.succeeded
    assert report.strategy is strategy
    assert {p.resource for p in report.pilots} == {"x", "y"}


def test_shell_emitter_handles_inputless_tasks():
    app = multistage([
        StageSpec(name="noin", n_tasks=2, task_duration=5.0,
                  input_mapping="none"),
    ])
    import numpy as np

    script = to_shell(app.materialize(np.random.default_rng(0)))
    assert "/dev/null" in script  # tasks with no inputs still read something


def test_render_figures_with_partial_campaign():
    from repro.experiments import render_figure2, render_figure3
    from repro.experiments.campaign import CampaignResult, RunResult

    result = CampaignResult()
    result.runs.append(
        RunResult(
            exp_id=1, n_tasks=8, rep=0, resources=("r",),
            ttc=100, tw=10, tw_last=10, tx=80, ts=5, trp=5,
            pilot_waits=(10,), units_done=8, restarts=0,
        )
    )
    fig2 = render_figure2(result, task_counts=(8, 16))
    assert "--" not in fig2.splitlines()[3]  # 8-task row has data
    assert "--" in fig2.splitlines()[4]      # 16-task row is empty
    fig3 = render_figure3(result, 1, task_counts=(8, 16))
    assert "8" in fig3


def test_wait_any_active_fails_when_all_pilots_die():
    from repro.pilot import ComputePilotDescription, PilotManager

    sim = Simulation(seed=3)
    net = Network(sim)
    net.add_site("z")
    cluster = Cluster(sim, "z", nodes=1, cores_per_node=8, submit_overhead=0.0)
    pm = PilotManager(sim, {"z": cluster})
    pilots = pm.submit_pilots(
        ComputePilotDescription(resource="z", cores=8, runtime_min=10)
    )
    # cancel before activation is possible: fill the machine first
    from repro.cluster import BatchJob

    sim2_blocker = BatchJob(cores=8, runtime=5000, walltime=6000)
    # (submitted after the pilot, so the pilot actually activates; instead
    # cancel the pilot while pending)
    outcome = []

    def waiter():
        try:
            yield pm.wait_any_active(pilots)
            outcome.append("active")
        except RuntimeError:
            outcome.append("failed")

    sim.process(waiter())
    pm.cancel_pilots(pilots)
    sim.run()
    assert outcome == ["failed"]


def test_monitor_loop_stops_when_last_subscription_removed():
    sim, net, bundle, em = make_env(seed=5)
    sub = bundle.subscribe(
        "x", predicate=lambda s: False, callback=lambda uid, s: None
    )
    sim.run(until=120)
    bundle.monitor.unsubscribe(sub)
    sim.run(until=600)
    # loop has wound down; a fresh subscription restarts it cleanly
    fired = []
    bundle.subscribe(
        "x", predicate=lambda s: True,
        callback=lambda uid, s: fired.append(sim.now),
    )
    sim.run(until=900)
    assert fired


def test_strategy_total_cores_and_repr():
    s = ExecutionStrategy(
        binding=Binding.LATE, unit_scheduler="backfill",
        n_pilots=3, pilot_cores=10, pilot_walltime_min=30,
        resources=("a", "b", "c"),
    )
    assert s.total_cores == 30
    text = s.describe()
    assert "3 pilot(s) x 10 cores" in text
