"""Unit tests for the event queue and tracer."""

import pytest

from repro.des.errors import SchedulingError
from repro.des.events import EventQueue, Tracer


def test_push_pop_orders_by_time():
    q = EventQueue()
    fired = []
    q.push(5.0, fired.append, ("b",))
    q.push(1.0, fired.append, ("a",))
    q.push(9.0, fired.append, ("c",))
    times = []
    while q:
        ev = q.pop()
        times.append(ev.time)
        ev.callback(*ev.args)
    assert times == [1.0, 5.0, 9.0]
    assert fired == ["a", "b", "c"]


def test_same_time_fifo_tiebreak():
    q = EventQueue()
    order = []
    for i in range(10):
        q.push(3.0, order.append, (i,))
    while q:
        ev = q.pop()
        ev.callback(*ev.args)
    assert order == list(range(10))


def test_priority_breaks_ties_before_sequence():
    q = EventQueue()
    order = []
    q.push(1.0, order.append, ("low",), priority=10)
    q.push(1.0, order.append, ("high",), priority=0)
    while q:
        ev = q.pop()
        ev.callback(*ev.args)
    assert order == ["high", "low"]


def test_cancel_removes_from_live_count():
    q = EventQueue()
    ev = q.push(1.0, lambda: None)
    assert len(q) == 1
    q.cancel(ev)
    assert len(q) == 0
    assert not q
    # double cancel is a no-op
    q.cancel(ev)
    assert len(q) == 0


def test_cancelled_event_skipped_by_pop():
    q = EventQueue()
    ev1 = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    q.cancel(ev1)
    assert q.pop().time == 2.0


def test_peek_time_skips_cancelled():
    q = EventQueue()
    ev1 = q.push(1.0, lambda: None)
    q.push(4.0, lambda: None)
    q.cancel(ev1)
    assert q.peek_time() == 4.0


def test_peek_empty_returns_none():
    assert EventQueue().peek_time() is None


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        EventQueue().pop()


def test_nan_time_rejected():
    with pytest.raises(SchedulingError):
        EventQueue().push(float("nan"), lambda: None)


def test_tracer_record_and_query():
    t = Tracer()
    t.record(0.0, "pilot", "p1", "NEW")
    t.record(1.0, "pilot", "p1", "ACTIVE", cores=32)
    t.record(2.0, "unit", "u1", "DONE")
    assert len(t.records) == 3
    assert [r.event for r in t.query(category="pilot")] == ["NEW", "ACTIVE"]
    assert t.first(entity="p1").event == "NEW"
    assert t.last(entity="p1").event == "ACTIVE"
    assert t.last(entity="p1").data["cores"] == 32
    assert t.query(event="MISSING") == []
    assert t.first(event="MISSING") is None


def test_tracer_query_event_filter_fall_through():
    t = Tracer()
    t.record(0.0, "pilot", "p1", "NEW")
    t.record(1.0, "pilot", "p2", "NEW")
    t.record(2.0, "pilot", "p1", "ACTIVE")
    t.record(3.0, "unit", "u1", "NEW")
    # the event filter alone spans categories and entities
    assert [r.entity for r in t.query(event="NEW")] == ["p1", "p2", "u1"]
    # all provided filters must hold simultaneously
    assert [r.time for r in t.query(category="pilot", entity="p1",
                                    event="ACTIVE")] == [2.0]
    assert t.query(category="unit", entity="p1") == []
    assert t.query(category="pilot", event="DONE") == []
    t.clear()
    assert t.records == [] and t.query(event="NEW") == []


def test_tracer_disable_enable():
    t = Tracer()
    t.disable()
    t.record(0.0, "x", "y", "z")
    assert t.records == []
    t.enable()
    t.record(0.0, "x", "y", "z")
    assert len(t.records) == 1
    t.clear()
    assert t.records == []


# -- lazy cancellation bounds (compaction) ------------------------------------


def test_cancel_after_fire_is_noop():
    q = EventQueue()
    ev = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    popped = q.pop()
    assert popped is ev and popped.fired
    q.cancel(ev)  # fired events must not perturb the live count
    assert len(q) == 1 and bool(q)
    assert q.pop().time == 2.0
    assert len(q) == 0 and not q


def test_compaction_bounds_cancelled_backlog():
    q = EventQueue()
    events = [q.push(float(i), lambda: None) for i in range(200)]
    for ev in events[:150]:
        q.cancel(ev)
        # Invariant: dead entries never outnumber live ones on a big
        # heap, so retention is bounded at 2x the live count.
        assert q._cancelled <= max(len(q), 32)
    assert len(q) == 50
    assert len(q._heap) <= 2 * len(q)
    # Draining pops every live event exactly once, in order.
    times = []
    while q:
        times.append(q.pop().time)
    assert times == [float(i) for i in range(150, 200)]


def test_small_heaps_never_compact():
    q = EventQueue()
    events = [q.push(float(i), lambda: None) for i in range(10)]
    for ev in events[:9]:
        q.cancel(ev)
    # Below the compaction floor dead entries drain lazily on pop.
    assert len(q._heap) == 10
    assert len(q) == 1
    assert q.pop().time == 9.0


def test_compaction_preserves_pop_order():
    import random

    rng = random.Random(42)
    q = EventQueue()
    handles = []
    for i in range(500):
        handles.append(
            q.push(float(rng.choice([1, 2, 3, 5, 8])), lambda: None, (),
                   priority=rng.choice([0, 1]))
        )
    cancelled = set(rng.sample(range(500), 430))
    for i in cancelled:
        q.cancel(handles[i])  # triggers at least one compaction
    expected = sorted(
        (ev for i, ev in enumerate(handles) if i not in cancelled),
        key=lambda e: (e.time, e.priority, e.seq),
    )
    popped = []
    while q:
        popped.append(q.pop())
    assert popped == expected
