"""Unit tests for CapacityResource and Store."""

import pytest

from repro.des import CapacityResource, ProcessError, Simulation, Store


def test_capacity_validation():
    sim = Simulation()
    with pytest.raises(ValueError):
        CapacityResource(sim, 0)
    res = CapacityResource(sim, 4)
    with pytest.raises(ValueError):
        res.acquire(0)
    with pytest.raises(ValueError):
        res.acquire(5)


def test_acquire_release_accounting():
    sim = Simulation()
    res = CapacityResource(sim, 4)
    a = res.acquire(3)
    assert a.triggered and a.granted
    assert res.available == 1
    a.release()
    assert res.available == 4


def test_fifo_blocking_grant():
    sim = Simulation()
    res = CapacityResource(sim, 2)
    log = []

    def worker(name, amount, hold):
        req = res.acquire(amount)
        yield req
        log.append((sim.now, name, "got"))
        yield sim.timeout(hold)
        req.release()

    sim.process(worker("a", 2, 5))
    sim.process(worker("b", 1, 5))
    sim.process(worker("c", 1, 5))
    sim.run()
    # a holds both units until t=5; b and c then run concurrently
    assert log == [(0, "a", "got"), (5, "b", "got"), (5, "c", "got")]


def test_no_bypass_of_head_request():
    """A small request behind a large one must wait (strict FIFO)."""
    sim = Simulation()
    res = CapacityResource(sim, 4)
    log = []

    def holder():
        req = res.acquire(3)
        yield req
        yield sim.timeout(10)
        req.release()

    def big_then_small():
        big = res.acquire(4)  # cannot fit while holder holds 3
        small = res.acquire(1)  # could fit, but must not bypass

        def watch(name, r):
            yield r
            log.append((sim.now, name))
            r.release()

        sim.process(watch("big", big))
        sim.process(watch("small", small))
        yield sim.timeout(0)

    sim.process(holder())
    sim.process(big_then_small())
    sim.run()
    assert log == [(10, "big"), (10, "small")]


def test_release_ungranted_raises():
    sim = Simulation()
    res = CapacityResource(sim, 1)
    res.acquire(1)
    pending = res.acquire(1)
    with pytest.raises(ProcessError):
        pending.release()


def test_cancel_pending_request():
    sim = Simulation()
    res = CapacityResource(sim, 1)
    first = res.acquire(1)
    second = res.acquire(1)
    second.cancel()
    first.release()
    assert not second.granted
    assert res.available == 1


def test_cancel_granted_raises():
    sim = Simulation()
    res = CapacityResource(sim, 1)
    a = res.acquire(1)
    with pytest.raises(ProcessError):
        a.cancel()


def test_store_fifo_order():
    sim = Simulation()
    store = Store(sim)
    store.put("a")
    store.put("b")
    got = []

    def consumer():
        for _ in range(2):
            item = yield store.get()
            got.append(item)

    sim.process(consumer())
    sim.run()
    assert got == ["a", "b"]


def test_store_get_blocks_until_put():
    sim = Simulation()
    store = Store(sim)
    got = []

    def consumer():
        item = yield store.get()
        got.append((sim.now, item))

    sim.process(consumer())
    sim.call_in(5, store.put, "late")
    sim.run()
    assert got == [(5, "late")]


def test_store_multiple_getters_fifo():
    sim = Simulation()
    store = Store(sim)
    got = []

    def consumer(name):
        item = yield store.get()
        got.append((name, item))

    sim.process(consumer("first"))
    sim.process(consumer("second"))
    sim.call_in(1, store.put, "x")
    sim.call_in(2, store.put, "y")
    sim.run()
    assert got == [("first", "x"), ("second", "y")]


def test_store_len_and_peek():
    sim = Simulation()
    store = Store(sim)
    assert len(store) == 0
    store.put(1)
    store.put(2)
    assert len(store) == 2
    assert store.peek_all() == [1, 2]
    assert len(store) == 2  # peek does not consume
