"""Calendar and adaptive event queues: equivalence with the binary heap.

The kernel's determinism contract says the queue backend is invisible:
for any push/cancel/pop interleaving, every backend yields the same
``(time, priority, seq)`` pop sequence. The hypothesis properties here
drive all three backends through generated interleavings — tie-heavy
times, cancel-after-fire, cancel-interleaved-with-push — and require
identical histories.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des import Simulation
from repro.des.calendar import (
    AdaptiveEventQueue,
    CalendarEventQueue,
    QUEUE_BACKENDS,
    make_event_queue,
)
from repro.des.errors import SchedulingError
from repro.des.events import EventQueue


def _noop() -> None:  # events need a callback; ordering ignores it
    pass


def _backends():
    # A tiny promotion threshold so adaptive runs actually cross it.
    return (
        EventQueue(),
        CalendarEventQueue(),
        AdaptiveEventQueue(promote_at=8),
    )


# ---------------------------------------------------------------------------
# unit behaviour
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "factory", [EventQueue, CalendarEventQueue, AdaptiveEventQueue]
)
def test_orders_by_time_priority_seq(factory):
    q = factory()
    q.push(5.0, _noop)
    q.push(1.0, _noop)
    q.push(5.0, _noop, priority=-1)
    q.push(1.0, _noop)
    got = [(ev.time, ev.priority, ev.seq) for ev in (q.pop() for _ in range(4))]
    # time first, then priority, then seq FIFO on full ties
    assert got == [(1.0, 0, 1), (1.0, 0, 3), (5.0, -1, 2), (5.0, 0, 0)]
    assert len(q) == 0


@pytest.mark.parametrize(
    "factory", [EventQueue, CalendarEventQueue, AdaptiveEventQueue]
)
def test_nan_rejected_inf_allowed(factory):
    q = factory()
    with pytest.raises(SchedulingError):
        q.push(float("nan"), _noop)
    q.push(float("inf"), _noop)
    q.push(float("-inf"), _noop)
    q.push(0.0, _noop)
    times = [q.pop().time for _ in range(3)]
    assert times == [float("-inf"), 0.0, float("inf")]


@pytest.mark.parametrize(
    "factory", [EventQueue, CalendarEventQueue, AdaptiveEventQueue]
)
def test_cancel_after_fire_is_noop(factory):
    q = factory()
    ev = q.push(1.0, _noop)
    q.push(2.0, _noop)
    assert q.pop() is ev
    q.cancel(ev)  # fired: must not decrement live or perturb counters
    assert len(q) == 1
    assert q.pop().time == 2.0


def test_calendar_resizes_and_compacts():
    q = CalendarEventQueue()
    events = [q.push(float(i), _noop) for i in range(200)]
    assert q.resizes > 0  # growth doublings happened
    for ev in events[:120]:  # cancelled must outnumber live to compact
        q.cancel(ev)
    assert q.compactions > 0  # cancel majority triggered a sweep
    out = [q.pop().time for _ in range(len(q))]
    assert out == [float(i) for i in range(120, 200)]


def test_calendar_insert_behind_cursor_not_orphaned():
    q = CalendarEventQueue()
    q.push(1000.0, _noop)  # cursor will skip far ahead to this sparse day
    assert q.pop().time == 1000.0
    q.push(1.0, _noop)  # behind the cursor: must rewind, not orphan
    assert q.peek_time() == 1.0
    assert q.pop().time == 1.0


# ---------------------------------------------------------------------------
# adaptive promotion
# ---------------------------------------------------------------------------


def test_adaptive_promotes_and_keeps_order():
    q = AdaptiveEventQueue(promote_at=10)
    times = [float(t) for t in (9, 3, 7, 1, 8, 2, 6, 0, 5, 4, 11, 10)]
    for t in times:
        q.push(t, _noop)
    assert q.promotions == 1
    assert isinstance(q._impl, CalendarEventQueue)
    assert q.pushed == len(times)  # counters migrated
    assert [q.pop().time for _ in range(len(q))] == sorted(times)


def test_adaptive_promotion_redirects_hoisted_pop_until():
    """The kernel hoists ``queue.pop_until`` once per run; a promotion
    mid-run must keep that stale bound method working."""
    q = AdaptiveEventQueue(promote_at=4)
    hoisted = q.pop_until  # heap-bound, grabbed before promotion
    for t in (3.0, 1.0, 2.0, 4.0):
        q.push(t, _noop)
    assert q.promotions == 1
    got = []
    while True:
        ev = hoisted(float("inf"))
        if ev is None:
            break
        got.append(ev.time)
    assert got == [1.0, 2.0, 3.0, 4.0]


def test_adaptive_seq_continues_across_promotion():
    q = AdaptiveEventQueue(promote_at=3)
    a = q.push(1.0, _noop)
    b = q.push(1.0, _noop)
    c = q.push(1.0, _noop)  # triggers promotion
    d = q.push(1.0, _noop)  # calendar push: seq must continue, not restart
    assert [ev.seq for ev in (a, b, c, d)] == [0, 1, 2, 3]
    assert [q.pop() for _ in range(4)] == [a, b, c, d]


# ---------------------------------------------------------------------------
# backend factory / kernel flag
# ---------------------------------------------------------------------------


def test_make_event_queue_backends():
    assert isinstance(make_event_queue("heap"), EventQueue)
    assert isinstance(make_event_queue("calendar"), CalendarEventQueue)
    assert isinstance(make_event_queue("auto"), AdaptiveEventQueue)
    with pytest.raises(ValueError, match="unknown event queue backend"):
        make_event_queue("splay")


def test_simulation_event_queue_param():
    for backend, cls in (
        ("heap", EventQueue),
        ("calendar", CalendarEventQueue),
        ("auto", AdaptiveEventQueue),
    ):
        sim = Simulation(seed=1, event_queue=backend)
        assert sim.queue_backend == backend
        assert isinstance(sim._queue, cls)
    assert backend in QUEUE_BACKENDS


def test_simulation_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_DES_QUEUE", "calendar")
    sim = Simulation(seed=1)
    assert isinstance(sim._queue, CalendarEventQueue)
    # an explicit argument wins over the environment
    sim = Simulation(seed=1, event_queue="heap")
    assert isinstance(sim._queue, EventQueue)


def test_run_identical_across_backends():
    """A small but real simulation plays out identically per backend."""

    def history(backend):
        sim = Simulation(seed=42, event_queue=backend)
        fired = []
        rng = sim.rng.get("t").bit_generator.state["state"]["state"]
        x = rng
        handles = []
        for i in range(600):
            x = (x * 6364136223846793005 + 1442695040888963407) % 2**64
            t = (x >> 16) % 10_000 / 7.0
            handles.append(
                sim.call_at(t, fired.append, (t, i), priority=i % 3 - 1)
            )
        for h in handles[::5]:
            sim.cancel(h)
        sim.run(until=2000.0)
        return fired

    base = history("heap")
    assert history("calendar") == base
    assert history("auto") == base


# ---------------------------------------------------------------------------
# hypothesis: interleaving equivalence
# ---------------------------------------------------------------------------

# Times drawn from a tiny grid => heavy ties; priorities collide too.
_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("push"),
            st.integers(0, 12),  # time on a coarse grid
            st.integers(-1, 1),  # priority
        ),
        st.tuples(st.just("pop"), st.just(0), st.just(0)),
        st.tuples(
            st.just("cancel"),
            st.integers(0, 40),  # index into pushed handles (mod len)
            st.just(0),
        ),
    ),
    min_size=1,
    max_size=80,
)


def _replay(queue, ops):
    """Apply an op script; return the pop history (None for empty pops)."""
    handles = []
    history = []
    for op, a, b in ops:
        if op == "push":
            handles.append(queue.push(float(a), _noop, (), b))
        elif op == "cancel" and handles:
            # may hit live, fired, or already-cancelled events: all legal
            queue.cancel(handles[a % len(handles)])
        elif op == "pop":
            ev = queue.pop_until(float("inf"))
            history.append(
                None if ev is None else (ev.time, ev.priority, ev.seq)
            )
    while True:
        ev = queue.pop_until(float("inf"))
        if ev is None:
            break
        history.append((ev.time, ev.priority, ev.seq))
    return history


@given(ops=_ops)
@settings(max_examples=300, deadline=None)
def test_property_backends_pop_identically(ops):
    heap, cal, adaptive = _backends()
    base = _replay(heap, ops)
    assert _replay(cal, ops) == base
    assert _replay(adaptive, ops) == base


@given(
    times=st.lists(
        st.floats(
            min_value=0.0,
            max_value=1e6,
            allow_nan=False,
            allow_infinity=False,
        ),
        min_size=1,
        max_size=120,
    )
)
@settings(max_examples=200, deadline=None)
def test_property_float_times_pop_sorted_everywhere(times):
    heap, cal, adaptive = _backends()
    for q in (heap, cal, adaptive):
        for t in times:
            q.push(t, _noop)
    expect = sorted(times)
    for q in (heap, cal, adaptive):
        assert [q.pop().time for _ in range(len(times))] == expect


@given(ops=_ops, promote_at=st.integers(1, 16))
@settings(max_examples=150, deadline=None)
def test_property_promotion_threshold_invisible(ops, promote_at):
    base = _replay(EventQueue(), ops)
    assert _replay(AdaptiveEventQueue(promote_at=promote_at), ops) == base


def test_len_counts_live_only():
    for q in _backends():
        a = q.push(1.0, _noop)
        q.push(2.0, _noop)
        q.cancel(a)
        assert len(q) == 1
        assert bool(q)
        q.pop()
        assert len(q) == 0
        assert not bool(q)
        assert math.isinf(float("inf"))  # keep math import honest
