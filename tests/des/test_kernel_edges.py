"""Edge-case tests for kernel semantics not covered elsewhere."""

import numpy as np
import pytest

from repro.des import Interrupt, Simulation, SimulationError


def test_run_is_not_reentrant():
    sim = Simulation()
    errors = []

    def evil():
        try:
            sim.run()
        except SimulationError as e:
            errors.append(str(e))

    sim.call_in(1.0, evil)
    sim.run()
    assert errors and "re-entrant" in errors[0]


def test_run_process_until_deadline():
    sim = Simulation()

    def slow():
        yield sim.timeout(1000)

    # external events keep the queue non-empty past the deadline
    for i in range(200):
        sim.call_in(float(i), lambda: None)
    p = sim.process(slow())
    with pytest.raises(SimulationError, match="did not finish"):
        sim.run_process(p, until=100.0)


def test_tracer_disabled_during_simulation():
    sim = Simulation()
    sim.trace.disable()
    sim.call_in(1.0, lambda: sim.trace.record(sim.now, "c", "e", "EV"))
    sim.run()
    assert sim.trace.records == []


def test_timeout_zero_fires_immediately_in_order():
    sim = Simulation()
    order = []

    def a():
        yield sim.timeout(0)
        order.append("a")

    def b():
        yield sim.timeout(0)
        order.append("b")

    sim.process(a())
    sim.process(b())
    sim.run()
    assert order == ["a", "b"]  # deterministic FIFO at equal time
    assert sim.now == 0.0


def test_deeply_chained_processes_do_not_recurse():
    """1000 already-triggered waits resume via the queue, not the stack."""
    sim = Simulation()
    done = []

    def chain(n):
        if n > 0:
            yield sim.process(chain(n - 1))
        done.append(n)
        return n

    sim.process(chain(1000))
    sim.run()
    assert len(done) == 1001
    assert done[0] == 0 and done[-1] == 1000


# -- seeded-random property tests ---------------------------------------------
#
# The fault-injection subsystem leans hard on three kernel guarantees:
# the clock never goes backwards, a canceled event never fires, and an
# interrupted process resumes exactly once with the Interrupt. These
# loops drive randomized interleavings of schedule/cancel/interrupt
# (seeded, so a failure is a reproducible counterexample).


@pytest.mark.parametrize("seed", range(8))
def test_random_schedule_cancel_interleaving(seed):
    rng = np.random.default_rng(seed)
    sim = Simulation()
    n = 200
    times = rng.uniform(0.0, 1000.0, size=n)
    fired = []
    events = [
        sim.call_at(float(t), lambda i=i: fired.append((i, sim.now)))
        for i, t in enumerate(times)
    ]
    # cancel a random subset up-front...
    canceled = set(int(i) for i in rng.choice(n, size=n // 4, replace=False))
    for i in canceled:
        sim.cancel(events[i])
    # ...and cancel some future events *from inside* the run
    live = [i for i in range(n) if i not in canceled]
    dynamic = [i for i in live if rng.random() < 0.2]
    for i in dynamic:
        cancel_at = float(rng.uniform(0.0, times[i]))
        if cancel_at < times[i]:  # strictly before: must not fire
            sim.call_at(cancel_at, sim.cancel, events[i])
            canceled.add(i)
    sim.run()

    fired_ids = [i for i, _ in fired]
    assert set(fired_ids) == set(range(n)) - canceled
    # each callback fired at its scheduled time, in non-decreasing order
    for i, t in fired:
        assert t == float(times[i])
    assert all(a <= b for (_, a), (_, b) in zip(fired, fired[1:]))
    # double-cancel (including of already-fired events) is harmless
    for ev in events:
        sim.cancel(ev)


@pytest.mark.parametrize("seed", range(8))
def test_random_interrupt_interleaving(seed):
    rng = np.random.default_rng(seed)
    sim = Simulation()
    n = 60
    sleeps = rng.uniform(10.0, 500.0, size=n)
    outcomes = {}

    def sleeper(i, duration):
        t0 = sim.now
        try:
            yield sim.timeout(duration)
            outcomes[i] = ("slept", sim.now - t0)
        except Interrupt as itr:
            outcomes[i] = ("interrupted", itr.cause)

    procs = [sim.process(sleeper(i, float(s))) for i, s in enumerate(sleeps)]
    interrupted = {}
    for i in range(n):
        if rng.random() < 0.5:
            at = float(rng.uniform(0.0, 600.0))
            interrupted[i] = at
            sim.call_at(
                at,
                lambda i=i: procs[i].interrupt(i) if procs[i].is_alive else None,
            )
    sim.run()

    assert set(outcomes) == set(range(n))  # every process finished
    assert all(p.triggered for p in procs)
    for i in range(n):
        kind, value = outcomes[i]
        hit = i in interrupted and interrupted[i] < sleeps[i]
        if kind == "interrupted":
            assert value == i  # the cause round-trips
            assert interrupted[i] <= sleeps[i]
        else:
            assert not hit or interrupted[i] == sleeps[i]
            assert value == float(sleeps[i])  # slept exactly as asked


@pytest.mark.parametrize("seed", range(4))
def test_random_interleaving_is_deterministic(seed):
    """The same seed drives byte-identical event sequences."""

    def run_once():
        rng = np.random.default_rng(seed)
        sim = Simulation()
        trail = []
        stop = [False]

        def actor(i):
            while not stop[0]:
                gap = float(rng.exponential(20.0))
                yield sim.timeout(gap)
                trail.append((i, sim.now))

        procs = [sim.process(actor(i)) for i in range(5)]
        sim.call_at(500.0, lambda: stop.__setitem__(0, True))
        for p in procs:
            sim.call_at(
                float(rng.uniform(100.0, 400.0)),
                lambda p=p: p.interrupt("chaos") if p.is_alive else None,
            )
        sim.run(until=1000.0)
        return trail

    assert run_once() == run_once()


def test_run_until_now_fires_due_events_only():
    sim = Simulation()
    fired = []
    sim.call_at(0.0, fired.append, "now")
    sim.call_at(1.0, fired.append, "later")
    end = sim.run(until=0.0)
    assert end == 0.0 and sim.now == 0.0
    assert fired == ["now"]
    sim.run()
    assert fired == ["now", "later"]


def test_run_until_past_raises():
    from repro.des.errors import SchedulingError

    sim = Simulation()
    sim.call_in(5.0, lambda: None)
    sim.run()
    assert sim.now == 5.0
    with pytest.raises(SchedulingError, match="cannot run until"):
        sim.run(until=1.0)


def test_run_process_deadlock_detected():
    sim = Simulation()

    def waiter():
        yield sim.event()  # nobody ever triggers it

    p = sim.process(waiter())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_process(p)


def test_cancel_after_fire_keeps_kernel_consistent():
    sim = Simulation()
    fired = []
    ev = sim.call_in(1.0, fired.append, "a")
    sim.call_in(2.0, fired.append, "b")
    sim.run(until=1.5)
    sim.cancel(ev)  # already dispatched: must be a no-op
    sim.run()
    assert fired == ["a", "b"]
    assert sim.events_processed == 2


@pytest.mark.parametrize("seed", [3, 17])
def test_event_order_deterministic_under_interleaved_cancel_push(seed):
    def drive(entropy):
        rng = np.random.default_rng(entropy)
        sim = Simulation(seed=0)
        log = []

        def note(i):
            log.append((sim.now, i))

        handles = []
        for i in range(400):
            op = int(rng.integers(3))
            if op == 0 or not handles:
                handles.append(
                    sim.call_in(float(rng.integers(10)), note, i)
                )
            elif op == 1:
                sim.cancel(handles[int(rng.integers(len(handles)))])
            else:
                sim.step()
        sim.run()
        return log

    assert drive(seed) == drive(seed)
