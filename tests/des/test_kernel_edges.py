"""Edge-case tests for kernel semantics not covered elsewhere."""

import pytest

from repro.des import Simulation, SimulationError


def test_run_is_not_reentrant():
    sim = Simulation()
    errors = []

    def evil():
        try:
            sim.run()
        except SimulationError as e:
            errors.append(str(e))

    sim.call_in(1.0, evil)
    sim.run()
    assert errors and "re-entrant" in errors[0]


def test_run_process_until_deadline():
    sim = Simulation()

    def slow():
        yield sim.timeout(1000)

    # external events keep the queue non-empty past the deadline
    for i in range(200):
        sim.call_in(float(i), lambda: None)
    p = sim.process(slow())
    with pytest.raises(SimulationError, match="did not finish"):
        sim.run_process(p, until=100.0)


def test_tracer_disabled_during_simulation():
    sim = Simulation()
    sim.trace.disable()
    sim.call_in(1.0, lambda: sim.trace.record(sim.now, "c", "e", "EV"))
    sim.run()
    assert sim.trace.records == []


def test_timeout_zero_fires_immediately_in_order():
    sim = Simulation()
    order = []

    def a():
        yield sim.timeout(0)
        order.append("a")

    def b():
        yield sim.timeout(0)
        order.append("b")

    sim.process(a())
    sim.process(b())
    sim.run()
    assert order == ["a", "b"]  # deterministic FIFO at equal time
    assert sim.now == 0.0


def test_deeply_chained_processes_do_not_recurse():
    """1000 already-triggered waits resume via the queue, not the stack."""
    sim = Simulation()
    done = []

    def chain(n):
        if n > 0:
            yield sim.process(chain(n - 1))
        done.append(n)
        return n

    sim.process(chain(1000))
    sim.run()
    assert len(done) == 1001
    assert done[0] == 0 and done[-1] == 1000
