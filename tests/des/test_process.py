"""Unit tests for generator-based processes and waitable combinators."""

import pytest

from repro.des import (
    CancelledError,
    Interrupt,
    ProcessError,
    Simulation,
)


def test_timeout_sequence():
    sim = Simulation()
    log = []

    def proc():
        yield sim.timeout(1)
        log.append(sim.now)
        yield sim.timeout(2)
        log.append(sim.now)

    sim.process(proc())
    sim.run()
    assert log == [1, 3]


def test_timeout_value_passed_to_process():
    sim = Simulation()
    got = []

    def proc():
        v = yield sim.timeout(1, value="payload")
        got.append(v)

    sim.process(proc())
    sim.run()
    assert got == ["payload"]


def test_negative_timeout_rejected():
    sim = Simulation()
    with pytest.raises(ValueError):
        sim.timeout(-1)


def test_timeout_cancel_raises_in_waiter():
    sim = Simulation()
    outcome = []

    def proc():
        try:
            yield t
        except CancelledError:
            outcome.append("cancelled")

    t = sim.timeout(10)
    sim.process(proc())
    sim.call_in(1, t.cancel)
    sim.run()
    assert outcome == ["cancelled"]


def test_signal_wakes_waiter_with_value():
    sim = Simulation()
    sig = sim.event()
    got = []

    def waiter():
        v = yield sig
        got.append((sim.now, v))

    sim.process(waiter())
    sim.call_in(4, sig.succeed, 123)
    sim.run()
    assert got == [(4, 123)]


def test_signal_fail_raises_in_waiter():
    sim = Simulation()
    sig = sim.event()
    got = []

    def waiter():
        try:
            yield sig
        except RuntimeError as e:
            got.append(str(e))

    sim.process(waiter())
    sim.call_in(1, sig.fail, RuntimeError("bad"))
    sim.run()
    assert got == ["bad"]


def test_signal_double_trigger_rejected():
    sim = Simulation()
    sig = sim.event()
    sig.succeed()
    with pytest.raises(ProcessError):
        sig.succeed()


def test_fail_requires_exception_instance():
    sim = Simulation()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_wait_on_already_triggered_waitable():
    sim = Simulation()
    sig = sim.event()
    sig.succeed("early")
    got = []

    def proc():
        v = yield sig
        got.append(v)

    sim.process(proc())
    sim.run()
    assert got == ["early"]


def test_process_waits_for_process():
    sim = Simulation()
    log = []

    def child():
        yield sim.timeout(5)
        return "child-result"

    def parent():
        result = yield sim.process(child())
        log.append((sim.now, result))

    sim.process(parent())
    sim.run()
    assert log == [(5, "child-result")]


def test_process_exception_propagates_to_parent():
    sim = Simulation()
    log = []

    def child():
        yield sim.timeout(1)
        raise ValueError("from child")

    def parent():
        try:
            yield sim.process(child())
        except ValueError as e:
            log.append(str(e))

    sim.process(parent())
    sim.run()
    assert log == ["from child"]


def test_yield_non_waitable_fails_process():
    sim = Simulation()

    def proc():
        yield 42

    p = sim.process(proc())
    sim.run()
    assert p.triggered and not p.ok
    assert isinstance(p.exception, ProcessError)


def test_process_requires_generator():
    sim = Simulation()
    with pytest.raises(ProcessError):
        sim.process(lambda: None)  # type: ignore[arg-type]


def test_interrupt_during_wait():
    sim = Simulation()
    log = []

    def sleeper():
        try:
            yield sim.timeout(100)
        except Interrupt as i:
            log.append((sim.now, i.cause))

    p = sim.process(sleeper())
    sim.call_in(3, p.interrupt, "wake up")
    sim.run()
    assert log == [(3, "wake up")]


def test_interrupt_finished_process_raises():
    sim = Simulation()

    def proc():
        yield sim.timeout(1)

    p = sim.process(proc())
    sim.run()
    with pytest.raises(ProcessError):
        p.interrupt()


def test_interrupted_wait_does_not_double_resume():
    sim = Simulation()
    log = []

    def sleeper():
        t = sim.timeout(10)
        try:
            yield t
        except Interrupt:
            log.append("interrupted")
        yield sim.timeout(20)
        log.append(sim.now)

    p = sim.process(sleeper())
    sim.call_in(1, p.interrupt)
    sim.run()
    # the original 10s timeout firing at t=10 must not resume the process
    assert log == ["interrupted", 21]


def test_any_of_first_wins():
    sim = Simulation()
    got = []

    def proc():
        t1 = sim.timeout(5, value="fast")
        t2 = sim.timeout(9, value="slow")
        which, value = yield sim.any_of([t1, t2])
        got.append((sim.now, value))

    sim.process(proc())
    sim.run()
    assert got == [(5, "fast")]


def test_all_of_collects_values_in_order():
    sim = Simulation()
    got = []

    def proc():
        t1 = sim.timeout(9, value="a")
        t2 = sim.timeout(2, value="b")
        values = yield sim.all_of([t1, t2])
        got.append((sim.now, values))

    sim.process(proc())
    sim.run()
    assert got == [(9, ["a", "b"])]


def test_all_of_empty_succeeds_immediately():
    sim = Simulation()
    w = sim.all_of([])
    assert w.triggered and w.ok and w.value == []


def test_any_of_empty_rejected():
    sim = Simulation()
    with pytest.raises(ValueError):
        sim.any_of([])


def test_all_of_propagates_failure():
    sim = Simulation()
    got = []

    def failing():
        yield sim.timeout(1)
        raise RuntimeError("nope")

    def proc():
        try:
            yield sim.all_of([sim.timeout(10), sim.process(failing())])
        except RuntimeError as e:
            got.append((sim.now, str(e)))

    sim.process(proc())
    sim.run()
    assert got == [(1, "nope")]


def test_deterministic_interleaving():
    """Two identical simulations produce identical event interleavings."""

    def run_once():
        sim = Simulation(seed=1)
        log = []

        def worker(name, delays):
            for d in delays:
                yield sim.timeout(d)
                log.append((sim.now, name))

        sim.process(worker("a", [1, 1, 1]))
        sim.process(worker("b", [1, 1, 1]))
        sim.run()
        return log

    assert run_once() == run_once()
