"""Unit tests for the simulation kernel."""

import pytest

from repro.des import SchedulingError, Simulation, SimulationError


def test_clock_starts_at_zero():
    sim = Simulation()
    assert sim.now == 0.0


def test_clock_custom_start():
    sim = Simulation(start_time=100.0)
    assert sim.now == 100.0


def test_call_in_advances_clock():
    sim = Simulation()
    seen = []
    sim.call_in(10.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [10.0]
    assert sim.now == 10.0


def test_call_at_absolute():
    sim = Simulation()
    seen = []
    sim.call_at(7.5, seen.append, "x")
    sim.run()
    assert seen == ["x"]
    assert sim.now == 7.5


def test_cannot_schedule_in_past():
    sim = Simulation()
    sim.call_in(5.0, lambda: None)
    sim.run()
    with pytest.raises(SchedulingError):
        sim.call_at(1.0, lambda: None)
    with pytest.raises(SchedulingError):
        sim.call_in(-1.0, lambda: None)


def test_run_until_stops_clock_exactly():
    sim = Simulation()
    fired = []
    sim.call_in(5.0, fired.append, "a")
    sim.call_in(15.0, fired.append, "b")
    sim.run(until=10.0)
    assert fired == ["a"]
    assert sim.now == 10.0
    sim.run()
    assert fired == ["a", "b"]
    assert sim.now == 15.0


def test_run_until_in_past_raises():
    sim = Simulation()
    sim.call_in(5.0, lambda: None)
    sim.run()
    with pytest.raises(SchedulingError):
        sim.run(until=1.0)


def test_events_scheduled_during_run_are_executed():
    sim = Simulation()
    seen = []

    def first():
        seen.append(("first", sim.now))
        sim.call_in(3.0, second)

    def second():
        seen.append(("second", sim.now))

    sim.call_in(1.0, first)
    sim.run()
    assert seen == [("first", 1.0), ("second", 4.0)]


def test_step_returns_false_when_empty():
    sim = Simulation()
    assert sim.step() is False


def test_cancel_scheduled_event():
    sim = Simulation()
    fired = []
    ev = sim.call_in(1.0, fired.append, "x")
    sim.cancel(ev)
    sim.run()
    assert fired == []


def test_rng_streams_reproducible():
    a = Simulation(seed=42).rng.get("workload")
    b = Simulation(seed=42).rng.get("workload")
    assert a.random() == b.random()


def test_rng_streams_independent_of_creation_order():
    s1 = Simulation(seed=7)
    s1.rng.get("a")
    x = s1.rng.get("b").random()
    s2 = Simulation(seed=7)
    y = s2.rng.get("b").random()  # created first this time
    assert x == y


def test_rng_different_names_differ():
    sim = Simulation(seed=0)
    assert sim.rng.get("a").random() != sim.rng.get("b").random()


def test_rng_spawn_indexed():
    sim = Simulation(seed=0)
    g0 = sim.rng.spawn("rep", 0)
    g1 = sim.rng.spawn("rep", 1)
    assert g0.random() != g1.random()


def test_run_process_returns_value():
    sim = Simulation()

    def proc():
        yield sim.timeout(5)
        return "done"

    p = sim.process(proc())
    assert sim.run_process(p) == "done"
    assert sim.now == 5


def test_run_process_deadlock_detected():
    sim = Simulation()

    def proc():
        yield sim.event()  # never triggered

    p = sim.process(proc())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_process(p)


def test_run_process_raises_process_error():
    sim = Simulation()

    def proc():
        yield sim.timeout(1)
        raise ValueError("boom")

    p = sim.process(proc())
    with pytest.raises(ValueError, match="boom"):
        sim.run_process(p)
