"""Additional link-model tests: rates, durations, trace consistency."""

import pytest

from repro.des import Simulation
from repro.net import Link


def test_current_rate_per_flow():
    sim = Simulation()
    link = Link(sim, "l", 100.0, latency_s=0.0)
    assert link.current_rate_per_flow == 100.0  # idle: full bandwidth
    link.transfer(1000)
    link.transfer(1000)
    sim.run(until=1.0)
    assert link.active_flows == 2
    assert link.current_rate_per_flow == 50.0


def test_duration_none_while_in_flight():
    sim = Simulation()
    link = Link(sim, "l", 100.0, latency_s=0.0)
    t = link.transfer(1000)
    sim.run(until=1.0)
    assert t.duration is None
    sim.run()
    assert t.duration == pytest.approx(10.0)


def test_transfer_labels_default_and_custom():
    sim = Simulation()
    link = Link(sim, "wan", 100.0, latency_s=0.0)
    t1 = link.transfer(10)
    t2 = link.transfer(10, label="special")
    sim.run()
    assert "wan" in t1.label
    assert t2.label == "special"


def test_many_simultaneous_tiny_transfers_terminate():
    """Regression: float residue must never starve the clock."""
    sim = Simulation()
    link = Link(sim, "l", 1e7, latency_s=0.001)
    transfers = [link.transfer(2_000.0) for _ in range(500)]
    sim.run(until=3600)
    assert all(t.triggered for t in transfers)
    assert link.active_flows == 0


def test_interleaved_starts_and_finishes_are_causal():
    sim = Simulation()
    link = Link(sim, "l", 1000.0, latency_s=0.0)
    finished = []
    for i, (start, size) in enumerate([(0, 100), (0.05, 5000), (0.2, 100)]):
        def go(size=size, i=i):
            t = link.transfer(size)
            t.add_callback(lambda w: finished.append(i))
        sim.call_at(start, go)
    sim.run()
    # the two small transfers finish before the big one
    assert finished[-1] == 1
