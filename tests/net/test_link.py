"""Unit tests for the fair-share link model."""

import pytest

from repro.des import Simulation
from repro.net import Link


def test_validation():
    sim = Simulation()
    with pytest.raises(ValueError):
        Link(sim, "l", 0)
    with pytest.raises(ValueError):
        Link(sim, "l", 100, latency_s=-1)
    link = Link(sim, "l", 100, latency_s=0)
    with pytest.raises(ValueError):
        link.transfer(-5)


def test_single_transfer_time():
    sim = Simulation()
    link = Link(sim, "l", bandwidth_bytes_per_s=100.0, latency_s=1.0)
    t = link.transfer(1000)
    sim.run()
    assert t.triggered and t.ok
    # 1 s latency + 1000 B / 100 B/s = 11 s
    assert t.end_time == pytest.approx(11.0)


def test_zero_byte_transfer_takes_latency_only():
    sim = Simulation()
    link = Link(sim, "l", 100.0, latency_s=0.5)
    t = link.transfer(0)
    sim.run()
    assert t.end_time == pytest.approx(0.5)


def test_two_equal_flows_halve_throughput():
    sim = Simulation()
    link = Link(sim, "l", 100.0, latency_s=0.0)
    t1 = link.transfer(1000)
    t2 = link.transfer(1000)
    sim.run()
    # both share 50 B/s -> 20 s each
    assert t1.end_time == pytest.approx(20.0)
    assert t2.end_time == pytest.approx(20.0)


def test_late_joiner_slows_first_flow():
    sim = Simulation()
    link = Link(sim, "l", 100.0, latency_s=0.0)
    t1 = link.transfer(1000)
    sim.call_in(5.0, link.transfer, 1000)
    sim.run()
    # t1: 5 s at 100 B/s (500 B) then shares 50 B/s for remaining 500 B
    # -> ends at 5 + 10 = 15 s
    assert t1.end_time == pytest.approx(15.0)


def test_flow_departure_speeds_up_remaining():
    sim = Simulation()
    link = Link(sim, "l", 100.0, latency_s=0.0)
    small = link.transfer(250)
    big = link.transfer(1000)
    sim.run()
    # both at 50 B/s; small done at 5 s (250 B). big then has 750 B left
    # at 100 B/s -> done at 5 + 7.5 = 12.5 s
    assert small.end_time == pytest.approx(5.0)
    assert big.end_time == pytest.approx(12.5)


def test_n_concurrent_flows_aggregate_time_scales_linearly():
    """Total time for N equal simultaneous files ~ N * single-file time."""
    def total_time(n):
        sim = Simulation()
        link = Link(sim, "l", 1000.0, latency_s=0.0)
        ts = [link.transfer(1000) for _ in range(n)]
        sim.run()
        return max(t.end_time for t in ts)

    assert total_time(1) == pytest.approx(1.0)
    assert total_time(4) == pytest.approx(4.0)
    assert total_time(16) == pytest.approx(16.0)


def test_counters_and_trace():
    sim = Simulation()
    link = Link(sim, "l", 100.0, latency_s=0.0)
    link.transfer(100, label="f1")
    link.transfer(300, label="f2")
    sim.run()
    assert link.completed_transfers == 2
    assert link.bytes_moved == 400
    assert link.active_flows == 0
    starts = sim.trace.query(category="transfer", event="START")
    dones = sim.trace.query(category="transfer", event="DONE")
    assert len(starts) == 2 and len(dones) == 2


def test_conservation_of_bytes_under_churn():
    """Work conservation: with churn, finish order respects sizes and the
    link never moves more than bandwidth * elapsed bytes."""
    sim = Simulation()
    bw = 100.0
    link = Link(sim, "l", bw, latency_s=0.0)
    sizes = [100, 500, 900, 300, 700]
    transfers = []
    for i, s in enumerate(sizes):
        sim.call_in(2.0 * i, lambda s=s: transfers.append(link.transfer(s)))
    sim.run()
    total = sum(sizes)
    makespan = max(t.end_time for t in transfers)
    assert makespan >= total / bw - 1e-9  # can't beat full bandwidth
    assert link.bytes_moved == total
