"""Tests for site filesystems and the star network."""

import pytest

from repro.des import Simulation
from repro.net import (
    FileExists,
    FileNotFound,
    Network,
    ORIGIN,
    SharedFilesystem,
    UnknownSite,
)


class TestFilesystem:
    def test_write_stat_roundtrip(self):
        fs = SharedFilesystem("site")
        fs.write("in.dat", 1024, now=3.0)
        rec = fs.stat("in.dat")
        assert rec.size_bytes == 1024
        assert rec.created_at == 3.0
        assert "in.dat" in fs
        assert fs.exists("in.dat")
        assert len(fs) == 1

    def test_missing_file_raises(self):
        fs = SharedFilesystem("site")
        with pytest.raises(FileNotFound):
            fs.stat("nope")
        with pytest.raises(FileNotFound):
            fs.delete("nope")
        assert not fs.exists("nope")

    def test_exclusive_write(self):
        fs = SharedFilesystem("site")
        fs.write("f", 1, now=0, exclusive=True)
        with pytest.raises(FileExists):
            fs.write("f", 1, now=0, exclusive=True)
        fs.write("f", 2, now=1)  # non-exclusive overwrite is fine
        assert fs.stat("f").size_bytes == 2

    def test_negative_size_rejected(self):
        fs = SharedFilesystem("site")
        with pytest.raises(ValueError):
            fs.write("f", -1, now=0)

    def test_listing_and_totals(self):
        fs = SharedFilesystem("site")
        fs.write("b", 10, now=0)
        fs.write("a", 5, now=0)
        assert list(fs.listdir()) == ["a", "b"]
        assert fs.total_bytes() == 15
        fs.delete("b")
        assert fs.total_bytes() == 5


class TestNetwork:
    def make(self):
        sim = Simulation()
        net = Network(sim)
        net.add_site("siteA", bandwidth_bytes_per_s=100.0, latency_s=0.0)
        net.add_site("siteB", bandwidth_bytes_per_s=200.0, latency_s=1.0)
        return sim, net

    def test_origin_exists_implicitly(self):
        sim, net = self.make()
        assert net.fs(ORIGIN).site == ORIGIN
        with pytest.raises(ValueError):
            net.add_site(ORIGIN)

    def test_duplicate_site_rejected(self):
        sim, net = self.make()
        with pytest.raises(ValueError):
            net.add_site("siteA")

    def test_unknown_site_raises(self):
        sim, net = self.make()
        with pytest.raises(UnknownSite):
            net.fs("nowhere")
        with pytest.raises(UnknownSite):
            net.link_to("nowhere")

    def test_sites_listed(self):
        sim, net = self.make()
        assert net.sites() == ("siteA", "siteB")

    def test_stage_out_and_back(self):
        sim, net = self.make()
        net.fs(ORIGIN).write("input.dat", 500, now=0)
        t = net.stage(ORIGIN, "siteA", "input.dat")
        sim.run()
        assert net.fs("siteA").exists("input.dat")
        assert t.end_time == pytest.approx(5.0)  # 500 B / 100 B/s
        # produce an output at the site and stage it home
        net.fs("siteA").write("out.dat", 200, now=sim.now)
        t2 = net.stage("siteA", ORIGIN, "out.dat")
        sim.run()
        assert net.fs(ORIGIN).exists("out.dat")
        assert t2.duration == pytest.approx(2.0)

    def test_stage_missing_file_raises(self):
        sim, net = self.make()
        with pytest.raises(FileNotFound):
            net.stage(ORIGIN, "siteA", "ghost.dat")

    def test_stage_requires_origin_endpoint(self):
        sim, net = self.make()
        net.fs("siteA").write("f", 1, now=0)
        with pytest.raises(ValueError):
            net.stage("siteA", "siteB", "f")
        net.fs(ORIGIN).write("g", 1, now=0)
        with pytest.raises(ValueError):
            net.stage(ORIGIN, ORIGIN, "g")

    def test_file_not_visible_until_transfer_done(self):
        sim, net = self.make()
        net.fs(ORIGIN).write("slow.dat", 1000, now=0)
        net.stage(ORIGIN, "siteA", "slow.dat")  # takes 10 s
        sim.run(until=5.0)
        assert not net.fs("siteA").exists("slow.dat")
        sim.run()
        assert net.fs("siteA").exists("slow.dat")

    def test_estimate_transfer_time(self):
        sim, net = self.make()
        assert net.estimate_transfer_time("siteB", 400) == pytest.approx(1 + 2.0)

    def test_per_site_links_are_independent(self):
        sim, net = self.make()
        net.fs(ORIGIN).write("a", 1000, now=0)
        net.fs(ORIGIN).write("b", 1000, now=0)
        ta = net.stage(ORIGIN, "siteA", "a")
        tb = net.stage(ORIGIN, "siteB", "b")
        sim.run()
        # siteA link: 10 s; siteB link: 1 s latency + 5 s = 6 s; no sharing
        assert ta.end_time == pytest.approx(10.0)
        assert tb.end_time == pytest.approx(6.0)
