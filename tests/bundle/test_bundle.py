"""Tests for the resource bundle: query, predictive, monitoring interfaces."""

import pytest

from repro.bundle import BundleManager, ResourceBundle, UnknownResource
from repro.cluster import BatchJob, Cluster
from repro.des import Simulation
from repro.net import Network


@pytest.fixture
def substrate():
    sim = Simulation(seed=4)
    net = Network(sim)
    clusters = {}
    for name, nodes in (("alpha", 8), ("beta", 4)):
        net.add_site(name, bandwidth_bytes_per_s=1e6, latency_s=0.01)
        clusters[name] = Cluster(sim, name, nodes=nodes, cores_per_node=8,
                                 submit_overhead=0.0)
    manager = BundleManager(sim, net)
    bundle = manager.create_bundle("main", clusters)
    return sim, net, clusters, manager, bundle


def test_bundle_requires_resources():
    sim = Simulation()
    net = Network(sim)
    with pytest.raises(ValueError):
        ResourceBundle("empty", sim, net, {})


def test_membership(substrate):
    sim, net, clusters, manager, bundle = substrate
    assert bundle.resources() == ("alpha", "beta")
    assert "alpha" in bundle
    assert "gamma" not in bundle
    with pytest.raises(UnknownResource):
        bundle.cluster("gamma")
    with pytest.raises(UnknownResource):
        bundle.query("gamma")


def test_query_snapshot_reflects_state(substrate):
    sim, net, clusters, manager, bundle = substrate
    snap = bundle.query("alpha")
    assert snap.compute.total_cores == 64
    assert snap.compute.free_cores == 64
    assert snap.compute.utilization == 0.0
    assert snap.compute.scheduler_policy == "easy-backfill"
    assert snap.network.bandwidth_bytes_per_s == 1e6
    assert snap.storage.files == 0

    clusters["alpha"].submit(BatchJob(cores=32, runtime=100, walltime=200))
    sim.run(until=1)
    snap2 = bundle.query("alpha")
    assert snap2.compute.free_cores == 32
    assert snap2.compute.utilization == 0.5
    assert snap2.timestamp == 1


def test_query_all(substrate):
    sim, net, clusters, manager, bundle = substrate
    snaps = bundle.query_all()
    assert [s.name for s in snaps] == ["alpha", "beta"]


def test_transfer_estimate(substrate):
    sim, net, clusters, manager, bundle = substrate
    est = bundle.estimate_transfer_time("alpha", 1e6)
    assert est == pytest.approx(0.01 + 1.0)
    with pytest.raises(UnknownResource):
        bundle.estimate_transfer_time("gamma", 1.0)


def test_predictive_interface_uses_history(substrate):
    sim, net, clusters, manager, bundle = substrate
    # Manufacture history: alpha fast, beta slow.
    for i in range(20):
        clusters["alpha"].wait_history.append((float(i), 30.0, 64))
        clusters["beta"].wait_history.append((float(i), 3000.0, 64))
    assert bundle.predict_wait("alpha") == pytest.approx(30.0)
    assert bundle.predict_wait("beta") == pytest.approx(3000.0)
    ranked = bundle.rank_by_expected_wait()
    assert ranked[0][0] == "alpha"
    assert ranked[0][1] < ranked[1][1]


def test_prediction_modes(substrate):
    sim, net, clusters, manager, bundle = substrate
    for i in range(20):
        clusters["alpha"].wait_history.append((float(i), 100.0, 8))
    assert bundle.predict_wait("alpha", mode="ewma") == pytest.approx(100.0)
    with pytest.raises(ValueError):
        bundle.predict_wait("alpha", mode="oracle")


def test_setup_time_estimate_in_snapshot(substrate):
    sim, net, clusters, manager, bundle = substrate
    for i in range(20):
        clusters["beta"].wait_history.append((float(i), 500.0, 16))
    snap = bundle.query("beta")
    assert snap.compute.setup_time_estimate == pytest.approx(500.0)


def test_monitoring_threshold_fires(substrate):
    sim, net, clusters, manager, bundle = substrate
    fired = []
    bundle.subscribe(
        "alpha",
        predicate=lambda snap: snap.compute.utilization > 0.4,
        callback=lambda uid, snap: fired.append(sim.now),
    )
    # idle: no notification for a while
    sim.run(until=300)
    assert fired == []
    clusters["alpha"].submit(BatchJob(cores=32, runtime=10_000, walltime=20_000))
    sim.run(until=600)
    assert len(fired) == 1  # notified once, no renotify by default


def test_monitoring_dwell_and_renotify(substrate):
    sim, net, clusters, manager, bundle = substrate
    fired = []
    bundle.subscribe(
        "alpha",
        predicate=lambda snap: snap.compute.utilization > 0.4,
        callback=lambda uid, snap: fired.append(sim.now),
        dwell_s=120,
        renotify_s=180,
    )
    clusters["alpha"].submit(BatchJob(cores=64, runtime=10_000, walltime=20_000))
    sim.run(until=1000)
    assert len(fired) >= 2
    assert fired[0] >= 120  # dwell respected
    assert fired[1] - fired[0] >= 180  # renotify interval respected


def test_unsubscribe_stops_notifications(substrate):
    sim, net, clusters, manager, bundle = substrate
    fired = []
    sub = bundle.subscribe(
        "alpha",
        predicate=lambda snap: True,
        callback=lambda uid, snap: fired.append(sim.now),
        renotify_s=60,
    )
    sim.run(until=200)
    count = len(fired)
    assert count >= 1
    bundle.monitor.unsubscribe(sub)
    sim.run(until=600)
    assert len(fired) == count


def test_manager_registry(substrate):
    sim, net, clusters, manager, bundle = substrate
    assert manager.bundles() == ("main",)
    assert manager.get("main") is bundle
    with pytest.raises(UnknownResource):
        manager.get("other")
    with pytest.raises(ValueError):
        manager.create_bundle("main", clusters)
    sub = manager.create_bundle("alpha-only", {"alpha": clusters["alpha"]})
    assert sub.resources() == ("alpha",)
    # the same cluster may appear in several bundles (bundles don't own)
    assert sub.cluster("alpha") is bundle.cluster("alpha")


def test_queue_composition_in_snapshot(substrate):
    sim, net, clusters, manager, bundle = substrate
    # fill alpha, then queue a background job and a pilot job behind it
    clusters["alpha"].submit(BatchJob(cores=64, runtime=5000, walltime=6000))
    clusters["alpha"].submit(
        BatchJob(cores=64, runtime=100, walltime=200, kind="background")
    )
    clusters["alpha"].submit(
        BatchJob(cores=64, runtime=100, walltime=200, kind="pilot")
    )
    sim.run(until=5)
    snap = bundle.query("alpha")
    comp = dict(snap.compute.queue_composition)
    assert comp == {"background": 1, "pilot": 1}
