"""Tests for predictor backtesting (rolling forecast evaluation)."""

import numpy as np
import pytest

from repro.bundle import BacktestResult, QuantilePredictor, backtest_predictor


def history(waits, cores=64):
    return [(float(i), float(w), cores) for i, w in enumerate(waits)]


def test_needs_enough_samples():
    with pytest.raises(ValueError):
        backtest_predictor(history([1, 2, 3]), warmup=16)


def test_constant_waits_perfect_coverage():
    result = backtest_predictor(history([300] * 60), warmup=16)
    assert result.n_forecasts == 44
    assert result.coverage == 1.0
    assert result.mean_tightness == pytest.approx(1.0)
    assert result.mean_bound == pytest.approx(300)
    assert result.mean_realized == pytest.approx(300)


def test_quantile_bound_achieves_target_coverage():
    """On stationary exponential waits, a q=0.75/conf=0.95 bound should
    cover well over 75% of realized waits."""
    rng = np.random.default_rng(3)
    waits = rng.exponential(600, size=300)
    predictor = QuantilePredictor(quantile=0.75, confidence=0.95)
    result = backtest_predictor(history(waits), predictor, warmup=30)
    assert result.coverage >= 0.75
    assert result.mean_tightness < 50  # not absurdly loose


def test_low_quantile_gives_lower_coverage():
    rng = np.random.default_rng(4)
    waits = rng.exponential(600, size=300)
    hi = backtest_predictor(
        history(waits), QuantilePredictor(quantile=0.9), warmup=30
    )
    lo = backtest_predictor(
        history(waits), QuantilePredictor(quantile=0.25, confidence=0.5),
        warmup=30,
    )
    assert hi.coverage > lo.coverage


def test_on_emergent_simulated_waits():
    """End to end: the default predictor backtested on a real (simulated)
    resource's wait history achieves its nominal coverage."""
    from repro.cluster import PRESETS, build_resource
    from repro.des import Simulation

    sim = Simulation(seed=13)
    res = build_resource(sim, PRESETS["gordon-sim"])
    sim.run(until=36 * 3600)
    samples = list(res.cluster.wait_history)
    assert len(samples) > 100
    result = backtest_predictor(samples, warmup=32)
    assert result.coverage >= 0.70  # q=0.75 bound, heavy-tailed reality
    assert "coverage" in result.render()
