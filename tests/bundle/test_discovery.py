"""Tests for the bundle discovery interface (requirement language)."""

import pytest

from repro.bundle import (
    BundleManager,
    Constraint,
    RequirementError,
    matches,
    parse_requirements,
)
from repro.cluster import Cluster
from repro.des import Simulation
from repro.net import Network


@pytest.fixture
def substrate():
    sim = Simulation(seed=2)
    net = Network(sim)
    clusters = {}
    specs = {
        "big": (64, 1e7),      # nodes, bandwidth
        "mid": (16, 5e6),
        "tiny": (4, 1e6),
    }
    for name, (nodes, bw) in specs.items():
        net.add_site(name, bandwidth_bytes_per_s=bw, latency_s=0.01)
        clusters[name] = Cluster(sim, name, nodes=nodes, cores_per_node=16,
                                 submit_overhead=0.0)
    manager = BundleManager(sim, net)
    bundle = manager.create_bundle("all", clusters)
    return sim, manager, bundle


class TestParsing:
    def test_parse_basic(self):
        cs = parse_requirements("compute.total_cores >= 4096")
        assert cs == [Constraint("compute.total_cores", ">=", 4096.0)]

    def test_parse_multiple(self):
        cs = parse_requirements(
            "compute.total_cores >= 256; "
            "compute.scheduler_policy == easy-backfill; "
            "network.bandwidth_bytes_per_s > 2e6"
        )
        assert len(cs) == 3
        assert cs[1].literal == "easy-backfill"
        assert cs[2].literal == 2e6

    def test_quoted_strings(self):
        cs = parse_requirements("name == 'big'")
        assert cs[0].literal == "big"

    def test_rejects_garbage(self):
        for bad in ("", ";;", "cores ~ 5", "compute.total_cores >="):
            with pytest.raises(RequirementError):
                parse_requirements(bad)


class TestEvaluation:
    def test_numeric_and_string_ops(self, substrate):
        sim, manager, bundle = substrate
        snap = bundle.query("big")
        assert matches(snap, parse_requirements("compute.total_cores == 1024"))
        assert matches(snap, parse_requirements("compute.total_cores >= 1000"))
        assert not matches(snap, parse_requirements("compute.total_cores < 1000"))
        assert matches(snap, parse_requirements("name == big"))
        assert matches(snap, parse_requirements("name != mid"))

    def test_unknown_attribute(self, substrate):
        sim, manager, bundle = substrate
        snap = bundle.query("big")
        with pytest.raises(RequirementError):
            matches(snap, parse_requirements("compute.flux_capacity > 1"))
        with pytest.raises(RequirementError):
            matches(snap, parse_requirements("secrets.key == x"))

    def test_ordering_on_string_rejected(self, substrate):
        sim, manager, bundle = substrate
        snap = bundle.query("big")
        with pytest.raises(RequirementError):
            matches(snap, parse_requirements("name >= big"))

    def test_numeric_comparison_on_string_attr_rejected(self, substrate):
        sim, manager, bundle = substrate
        snap = bundle.query("big")
        with pytest.raises(RequirementError):
            matches(snap, parse_requirements("compute.scheduler_policy > 5"))


class TestDiscover:
    def test_tailored_bundle(self, substrate):
        sim, manager, bundle = substrate
        tailored = manager.discover(
            "fast", "compute.total_cores >= 256; "
            "network.bandwidth_bytes_per_s >= 5e6",
            from_bundle=bundle,
        )
        assert set(tailored.resources()) == {"big", "mid"}
        # the new bundle shares (does not own) the clusters
        assert tailored.cluster("big") is bundle.cluster("big")

    def test_discovery_reflects_live_state(self, substrate):
        sim, manager, bundle = substrate
        from repro.cluster import BatchJob

        # load "big" so its utilization disqualifies it
        bundle.cluster("big").submit(
            BatchJob(cores=1024, runtime=5000, walltime=6000)
        )
        sim.run(until=10)
        tailored = manager.discover(
            "idle", "compute.utilization < 0.5", from_bundle=bundle
        )
        assert "big" not in tailored.resources()
        assert set(tailored.resources()) == {"mid", "tiny"}

    def test_no_match_raises(self, substrate):
        sim, manager, bundle = substrate
        with pytest.raises(ValueError):
            manager.discover(
                "impossible", "compute.total_cores > 1e9", from_bundle=bundle
            )
