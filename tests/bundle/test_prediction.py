"""Tests for the predictive query mode (queue-wait forecasting)."""

import numpy as np
import pytest

from repro.bundle import EwmaPredictor, QuantilePredictor


def hist(waits, cores=64, t0=0.0):
    return [(t0 + i, w, cores) for i, w in enumerate(waits)]


class TestQuantilePredictor:
    def test_validation(self):
        with pytest.raises(ValueError):
            QuantilePredictor(quantile=0)
        with pytest.raises(ValueError):
            QuantilePredictor(quantile=1)
        with pytest.raises(ValueError):
            QuantilePredictor(confidence=1.5)

    def test_prior_on_thin_history(self):
        p = QuantilePredictor(prior_seconds=1234, min_samples=8)
        assert p.predict(hist([10, 20, 30])) == 1234
        assert p.predict([]) == 1234

    def test_bound_covers_quantile(self):
        rng = np.random.default_rng(0)
        waits = rng.exponential(600, size=200)
        p = QuantilePredictor(quantile=0.75, confidence=0.95)
        bound = p.predict(hist(list(waits)))
        true_q = np.quantile(waits, 0.75)
        assert bound >= true_q * 0.9  # upper bound (allow sampling slack)
        assert bound <= waits.max()

    def test_monotone_in_quantile(self):
        rng = np.random.default_rng(1)
        h = hist(list(rng.exponential(600, size=100)))
        lo = QuantilePredictor(quantile=0.5).predict(h)
        hi = QuantilePredictor(quantile=0.9).predict(h)
        assert lo <= hi

    def test_core_filtering_prefers_similar_jobs(self):
        # Small jobs waited 10 s, big jobs 5000 s.
        history = hist([10] * 20, cores=1) + hist([5000] * 20, cores=1024)
        p = QuantilePredictor(min_samples=5)
        small = p.predict(history, cores=2)
        big = p.predict(history, cores=512)
        assert small < 100
        assert big > 1000

    def test_core_filter_falls_back_when_sparse(self):
        history = hist([100] * 20, cores=64)
        p = QuantilePredictor(min_samples=5)
        # no jobs near 4096 cores -> uses full history rather than the prior
        assert p.predict(history, cores=4096) == pytest.approx(100)

    def test_constant_history(self):
        p = QuantilePredictor()
        assert p.predict(hist([300] * 50)) == 300


class TestEwmaPredictor:
    def test_validation(self):
        with pytest.raises(ValueError):
            EwmaPredictor(alpha=0)
        with pytest.raises(ValueError):
            EwmaPredictor(alpha=1.5)

    def test_prior_on_empty(self):
        assert EwmaPredictor(prior_seconds=777).predict([]) == 777

    def test_tracks_recent_values(self):
        p = EwmaPredictor(alpha=0.5)
        rising = p.predict(hist([100] * 10 + [1000] * 10))
        assert 500 < rising <= 1000

    def test_constant_history_exact(self):
        assert EwmaPredictor().predict(hist([250] * 30)) == pytest.approx(250)
