"""Unit tests for the pilot agent's bookkeeping."""

import pytest

from repro.des import Simulation
from repro.pilot import (
    Agent,
    AgentError,
    ComputePilot,
    ComputePilotDescription,
    ComputeUnit,
    ComputeUnitDescription,
)


@pytest.fixture
def agent():
    sim = Simulation()
    pilot = ComputePilot(
        sim, ComputePilotDescription(resource="r", cores=8, runtime_min=60)
    )
    return Agent(sim, pilot, site="r")


def unit(sim, cores=1):
    return ComputeUnit(
        sim, ComputeUnitDescription(name=f"u{cores}", duration_s=1, cores=cores)
    )


def test_initial_state(agent):
    assert agent.cores == 8
    assert agent.uncommitted_cores == 8
    assert agent.bound_units == 0
    assert not agent.stopped


def test_commit_uncommit_cycle(agent):
    u = unit(agent.sim, cores=3)
    agent.commit(u)
    assert agent.committed_cores == 3
    assert agent.uncommitted_cores == 5
    assert agent.bound_units == 1
    agent.uncommit(u, completed=True)
    assert agent.committed_cores == 0
    assert agent.units_completed == 1


def test_double_commit_rejected(agent):
    u = unit(agent.sim)
    agent.commit(u)
    with pytest.raises(AgentError):
        agent.commit(u)


def test_uncommit_is_idempotent(agent):
    u = unit(agent.sim)
    agent.commit(u)
    agent.uncommit(u, completed=False)
    agent.uncommit(u, completed=False)  # no error, no double count
    assert agent.committed_cores == 0
    assert agent.units_completed == 0


def test_overcommit_clamps_uncommitted_to_zero(agent):
    """Capacity-blind schedulers may commit beyond capacity."""
    for i in range(3):
        agent.commit(unit(agent.sim, cores=4))
    assert agent.committed_cores == 12
    assert agent.uncommitted_cores == 0  # not negative


def test_commit_after_stop_rejected(agent):
    agent.stop()
    with pytest.raises(AgentError):
        agent.commit(unit(agent.sim))


def test_launch_slots_serialize(agent):
    # agent launch_rate is 20/s -> slots 0.05 s apart
    delays = [agent.reserve_launch_slot() for _ in range(4)]
    assert delays[0] == 0.0
    assert delays[1] == pytest.approx(0.05)
    assert delays[2] == pytest.approx(0.10)
    assert delays[3] == pytest.approx(0.15)


def test_launch_slots_respect_elapsed_time(agent):
    agent.reserve_launch_slot()
    agent.sim.call_in(10.0, lambda: None)
    agent.sim.run()
    # cursor is far in the past: the next slot is immediate
    assert agent.reserve_launch_slot() == 0.0
