"""Tests for pilot launching, activation, and cancellation."""

import pytest

from repro.pilot import (
    ComputePilotDescription,
    PilotManagerError,
    PilotState,
)


def desc(resource="resA", cores=16, runtime_min=60, schema="slurm"):
    return ComputePilotDescription(
        resource=resource, cores=cores, runtime_min=runtime_min,
        access_schema=schema,
    )


def test_description_validation():
    with pytest.raises(ValueError):
        ComputePilotDescription(resource="r", cores=0, runtime_min=10)
    with pytest.raises(ValueError):
        ComputePilotDescription(resource="r", cores=1, runtime_min=0)
    d = desc(runtime_min=30)
    assert d.runtime_s == 1800.0


def test_unknown_resource_rejected(substrate):
    with pytest.raises(PilotManagerError):
        substrate.pilot_manager.submit_pilots(desc(resource="nowhere"))


def test_pilot_activates_on_idle_machine(substrate):
    (pilot,) = substrate.pilot_manager.submit_pilots(desc())
    assert pilot.state is PilotState.LAUNCHING
    substrate.sim.run(until=60)
    assert pilot.state is PilotState.ACTIVE
    assert pilot.agent is not None
    assert pilot.agent.cores == 16
    assert pilot.queue_wait is not None and pilot.queue_wait < 10


def test_pilot_history_timestamps_ordered(substrate):
    (pilot,) = substrate.pilot_manager.submit_pilots(desc())
    substrate.sim.run(until=60)
    states = [s for s, _ in pilot.history.as_list()]
    assert states == ["NEW", "LAUNCHING", "PENDING_ACTIVE", "ACTIVE"]
    times = [t for _, t in pilot.history.as_list()]
    assert times == sorted(times)


def test_pilot_dies_at_walltime(substrate):
    (pilot,) = substrate.pilot_manager.submit_pilots(desc(runtime_min=10))
    substrate.sim.run()
    assert pilot.is_final
    assert pilot.state is PilotState.DONE  # clean end at walltime
    assert pilot.agent.stopped
    # activated ~immediately, ended at walltime
    assert pilot.history.timestamp("DONE") == pytest.approx(
        pilot.activated_at + 600, abs=5
    )


def test_cancel_active_pilot(substrate):
    (pilot,) = substrate.pilot_manager.submit_pilots(desc(runtime_min=600))
    substrate.sim.run(until=100)
    assert pilot.is_active
    substrate.pilot_manager.cancel_pilots([pilot])
    substrate.sim.run(until=200)
    assert pilot.state is PilotState.CANCELED
    assert pilot.agent.stopped
    # the placeholder job must have released the resource
    assert substrate.clusters["resA"].free_cores == 64


def test_cancel_all_defaults(substrate):
    pilots = substrate.pilot_manager.submit_pilots(
        [desc(), desc(resource="resB")]
    )
    substrate.sim.run(until=50)
    substrate.pilot_manager.cancel_pilots()
    substrate.sim.run(until=100)
    assert all(p.state is PilotState.CANCELED for p in pilots)


def test_wait_any_active_fires_for_first(substrate):
    # resA is blocked by a fat pilot; resB is free.
    blocker = desc(resource="resA", cores=64, runtime_min=60)
    substrate.pilot_manager.submit_pilots(blocker)
    substrate.sim.run(until=5)
    pilots = substrate.pilot_manager.submit_pilots(
        [desc(resource="resA", cores=64), desc(resource="resB", cores=16)]
    )
    got = []

    def waiter():
        which, value = yield substrate.pilot_manager.wait_any_active(pilots)
        got.append(value.resource)

    substrate.sim.process(waiter())
    substrate.sim.run(until=600)
    assert got == ["resB"]


def test_pilot_waits_in_queue_behind_load(substrate):
    # Fill resA with a 64-core pilot, then submit another: it must queue.
    first, second = substrate.pilot_manager.submit_pilots(
        [desc(cores=64, runtime_min=30), desc(cores=64, runtime_min=30)]
    )
    substrate.sim.run(until=60)
    assert first.state is PilotState.ACTIVE
    assert second.state is PilotState.PENDING_ACTIVE
    substrate.sim.run()
    assert second.queue_wait == pytest.approx(30 * 60, abs=10)


def test_access_schema_dialects(substrate):
    (pbs_pilot,) = substrate.pilot_manager.submit_pilots(
        desc(cores=10, schema="pbs")
    )
    substrate.sim.run(until=60)
    # PBS rounds to whole nodes: 10 cores -> 16
    assert pbs_pilot.saga_job.native.cores == 16
    # but the agent's capacity is what was *described*
    assert pbs_pilot.agent.cores == 10
