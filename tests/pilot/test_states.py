"""Tests for the pilot/unit state models and histories."""

import pytest

from repro.pilot import (
    IllegalUnitTransition,
    StateHistory,
    UnitState,
    check_unit_transition,
)


def test_nominal_unit_path_legal():
    path = [
        UnitState.NEW,
        UnitState.UNSCHEDULED,
        UnitState.SCHEDULING,
        UnitState.STAGING_INPUT,
        UnitState.PENDING_EXECUTION,
        UnitState.EXECUTING,
        UnitState.STAGING_OUTPUT,
        UnitState.DONE,
    ]
    for old, new in zip(path, path[1:]):
        check_unit_transition(old, new)


def test_failed_reachable_from_any_nonfinal():
    for state in (
        UnitState.NEW,
        UnitState.UNSCHEDULED,
        UnitState.SCHEDULING,
        UnitState.STAGING_INPUT,
        UnitState.PENDING_EXECUTION,
        UnitState.EXECUTING,
        UnitState.STAGING_OUTPUT,
    ):
        check_unit_transition(state, UnitState.FAILED)


def test_failed_not_reachable_from_final():
    with pytest.raises(IllegalUnitTransition):
        check_unit_transition(UnitState.DONE, UnitState.FAILED)
    with pytest.raises(IllegalUnitTransition):
        check_unit_transition(UnitState.CANCELED, UnitState.FAILED)


def test_restart_transition_allowed():
    check_unit_transition(UnitState.FAILED, UnitState.UNSCHEDULED)


def test_skipping_states_rejected():
    with pytest.raises(IllegalUnitTransition):
        check_unit_transition(UnitState.NEW, UnitState.EXECUTING)
    with pytest.raises(IllegalUnitTransition):
        check_unit_transition(UnitState.STAGING_INPUT, UnitState.EXECUTING)
    with pytest.raises(IllegalUnitTransition):
        check_unit_transition(UnitState.DONE, UnitState.UNSCHEDULED)


def test_state_history_queries():
    h = StateHistory()
    h.append("NEW", 0.0)
    h.append("ACTIVE", 10.0)
    h.append("ACTIVE", 20.0)  # re-entry
    assert h.timestamp("NEW") == 0.0
    assert h.timestamp("ACTIVE") == 10.0
    assert h.last_timestamp("ACTIVE") == 20.0
    assert h.timestamp("MISSING") is None
    assert h.duration_between("NEW", "ACTIVE") == 10.0
    assert h.duration_between("NEW", "MISSING") is None
    assert h.as_list() == [("NEW", 0.0), ("ACTIVE", 10.0), ("ACTIVE", 20.0)]
