"""Tests for unit binding, execution, staging, restarts, and dependencies."""

import pytest

from repro.net import ORIGIN
from repro.pilot import (
    ComputePilotDescription,
    ComputeUnitDescription,
    UnitState,
)


def pilot_desc(resource="resA", cores=16, runtime_min=120):
    return ComputePilotDescription(
        resource=resource, cores=cores, runtime_min=runtime_min,
    )


def unit_desc(name, duration=100.0, cores=1, inputs=(), outputs=(), max_restarts=3):
    return ComputeUnitDescription(
        name=name, duration_s=duration, cores=cores,
        input_staging=tuple(inputs), output_staging=tuple(outputs),
        max_restarts=max_restarts,
    )


def test_unit_description_validation():
    with pytest.raises(ValueError):
        ComputeUnitDescription(name="u", duration_s=-1)
    with pytest.raises(ValueError):
        ComputeUnitDescription(name="u", duration_s=1, cores=0)
    with pytest.raises(ValueError):
        ComputeUnitDescription(name="u", duration_s=1, max_restarts=-1)


def test_simple_unit_executes(substrate):
    um = substrate.unit_manager("backfill")
    pilots = substrate.pilot_manager.submit_pilots(pilot_desc())
    um.add_pilots(pilots)
    (unit,) = um.submit_units(unit_desc("t0", duration=300))
    substrate.sim.run()
    assert unit.state is UnitState.DONE
    assert unit.executed_for == pytest.approx(300)
    states = [s for s, _ in unit.history.as_list()]
    assert states == [
        "NEW", "UNSCHEDULED", "SCHEDULING", "STAGING_INPUT",
        "PENDING_EXECUTION", "EXECUTING", "STAGING_OUTPUT", "DONE",
    ]


def test_late_binding_waits_for_active_pilot(substrate):
    um = substrate.unit_manager("backfill")
    (unit,) = um.submit_units(unit_desc("t0"))
    substrate.sim.run(until=10)
    assert unit.state is UnitState.UNSCHEDULED  # no pilot yet
    pilots = substrate.pilot_manager.submit_pilots(pilot_desc())
    um.add_pilots(pilots)
    substrate.sim.run()
    assert unit.state is UnitState.DONE


def test_early_binding_binds_before_activation(substrate):
    um = substrate.unit_manager("direct")
    pilots = substrate.pilot_manager.submit_pilots(
        pilot_desc(cores=64, runtime_min=30)
    )
    # resA jammed by the first pilot; second pilot queues behind it.
    queued = substrate.pilot_manager.submit_pilots(
        pilot_desc(cores=64, runtime_min=60)
    )
    um.add_pilots(queued)
    (unit,) = um.submit_units(unit_desc("t0"))
    substrate.sim.run(until=60)
    # bound (SCHEDULING) even though its pilot is still queued
    assert unit.state is UnitState.SCHEDULING
    assert unit.pilot is queued[0]
    substrate.sim.run()
    assert unit.state is UnitState.DONE


def test_input_staging_moves_files(substrate):
    um = substrate.unit_manager("backfill")
    substrate.network.fs(ORIGIN).write("in.dat", 1_000_000, now=0)
    pilots = substrate.pilot_manager.submit_pilots(pilot_desc())
    um.add_pilots(pilots)
    (unit,) = um.submit_units(
        unit_desc("t0", inputs=["in.dat"], outputs=[("out.dat", 2000)])
    )
    substrate.sim.run()
    assert unit.state is UnitState.DONE
    assert substrate.network.fs("resA").exists("in.dat")
    assert substrate.network.fs("resA").exists("out.dat")
    assert substrate.network.fs(ORIGIN).exists("out.dat")
    # staging took real simulated time
    t_staging = unit.history.duration_between("STAGING_INPUT", "PENDING_EXECUTION")
    assert t_staging > 0


def test_input_already_at_site_not_restaged(substrate):
    um = substrate.unit_manager("backfill")
    substrate.network.fs(ORIGIN).write("in.dat", 1_000_000, now=0)
    substrate.network.fs("resA").write("in.dat", 1_000_000, now=0)
    pilots = substrate.pilot_manager.submit_pilots(pilot_desc())
    um.add_pilots(pilots)
    (unit,) = um.submit_units(unit_desc("t0", inputs=["in.dat"]))
    substrate.sim.run()
    assert substrate.network.link_to("resA").completed_transfers == 0


def test_units_share_pilot_cores(substrate):
    """More units than cores: execution serializes on the agent."""
    um = substrate.unit_manager("backfill")
    pilots = substrate.pilot_manager.submit_pilots(pilot_desc(cores=2))
    um.add_pilots(pilots)
    units = um.submit_units([unit_desc(f"t{i}", duration=100) for i in range(6)])
    substrate.sim.run()
    assert all(u.state is UnitState.DONE for u in units)
    # 6 tasks x 100 s on 2 cores = 3 waves
    ends = sorted(u.history.timestamp("DONE") for u in units)
    span = ends[-1] - pilots[0].activated_at
    assert span >= 300


def test_backfill_prefers_earliest_active_pilot(substrate):
    um = substrate.unit_manager("backfill")
    # resB pilot activates immediately; resA pilot is behind a blocker.
    blocker = substrate.pilot_manager.submit_pilots(
        pilot_desc(resource="resA", cores=64, runtime_min=60)
    )
    pilots = substrate.pilot_manager.submit_pilots([
        pilot_desc(resource="resA", cores=8, runtime_min=120),
        pilot_desc(resource="resB", cores=8, runtime_min=120),
    ])
    um.add_pilots(pilots)
    units = um.submit_units([unit_desc(f"t{i}", duration=50) for i in range(4)])
    substrate.sim.run(until=600)
    assert all(u.state is UnitState.DONE for u in units)
    assert all(u.pilot.resource == "resB" for u in units)


def test_round_robin_spreads_units(substrate):
    um = substrate.unit_manager("round-robin")
    pilots = substrate.pilot_manager.submit_pilots([
        pilot_desc(resource="resA", cores=8),
        pilot_desc(resource="resB", cores=8),
    ])
    um.add_pilots(pilots)
    substrate.sim.run(until=30)  # both active
    units = um.submit_units([unit_desc(f"t{i}", duration=50) for i in range(8)])
    substrate.sim.run()
    by_resource = {"resA": 0, "resB": 0}
    for u in units:
        by_resource[u.pilot.resource] += 1
    assert by_resource["resA"] == 4
    assert by_resource["resB"] == 4


def test_unit_restarts_when_pilot_dies(substrate):
    um = substrate.unit_manager("backfill")
    # short-walltime pilot dies mid-task; longer pilot on resB survives.
    doomed = substrate.pilot_manager.submit_pilots(
        pilot_desc(resource="resA", cores=16, runtime_min=5)
    )
    um.add_pilots(doomed)
    (unit,) = um.submit_units(unit_desc("t0", duration=600))
    substrate.sim.run(until=200)
    assert unit.state is UnitState.EXECUTING
    substrate.sim.run(until=400)  # pilot walltime (300 s) has passed
    assert unit.restarts == 1
    assert unit.state is UnitState.UNSCHEDULED  # requeued, waiting
    survivor = substrate.pilot_manager.submit_pilots(
        pilot_desc(resource="resB", cores=16, runtime_min=60)
    )
    um.add_pilots(survivor)
    substrate.sim.run()
    assert unit.state is UnitState.DONE
    assert unit.pilot is survivor[0]


def test_unit_fails_permanently_after_max_restarts(substrate):
    um = substrate.unit_manager("backfill")
    (unit,) = um.submit_units(unit_desc("t0", duration=600, max_restarts=1))
    for _ in range(3):
        doomed = substrate.pilot_manager.submit_pilots(
            pilot_desc(resource="resA", cores=16, runtime_min=5)
        )
        um.add_pilots(doomed)
        substrate.sim.run(until=substrate.sim.now + 1200)
    assert unit.state is UnitState.FAILED
    assert unit.is_final
    assert not unit.can_restart


def test_cancel_units(substrate):
    um = substrate.unit_manager("backfill")
    pilots = substrate.pilot_manager.submit_pilots(pilot_desc(cores=1))
    um.add_pilots(pilots)
    units = um.submit_units([unit_desc(f"t{i}", duration=500) for i in range(3)])
    substrate.sim.run(until=100)
    um.cancel_units()
    substrate.sim.run(until=200)
    assert all(u.state is UnitState.CANCELED for u in units)
    # agent cores all released
    assert pilots[0].agent.capacity.available == 1


def test_dependencies_hold_units(substrate):
    um = substrate.unit_manager("backfill")
    pilots = substrate.pilot_manager.submit_pilots(pilot_desc())
    um.add_pilots(pilots)
    producer = unit_desc("prod", duration=200, outputs=[("inter.dat", 500)])
    consumer = unit_desc("cons", duration=100, inputs=["inter.dat"])
    units = um.submit_units(
        [producer, consumer], depends_on={"cons": ["prod"]}
    )
    substrate.sim.run(until=100)
    assert units[0].state is UnitState.EXECUTING
    assert units[1].state is UnitState.UNSCHEDULED  # held by dependency
    substrate.sim.run()
    assert units[1].state is UnitState.DONE
    t_prod_done = units[0].history.timestamp("DONE")
    t_cons_start = units[1].history.timestamp("SCHEDULING")
    assert t_cons_start >= t_prod_done


def test_wait_units_waitable(substrate):
    um = substrate.unit_manager("backfill")
    pilots = substrate.pilot_manager.submit_pilots(pilot_desc())
    um.add_pilots(pilots)
    units = um.submit_units([unit_desc(f"t{i}", duration=100) for i in range(3)])
    got = []

    def waiter():
        yield um.wait_units(units)
        got.append(substrate.sim.now)

    substrate.sim.process(waiter())
    substrate.sim.run()
    assert len(got) == 1
    assert got[0] >= 100
    assert um.completed_units == 3


def test_trace_contains_full_unit_lifecycle(substrate):
    um = substrate.unit_manager("backfill")
    pilots = substrate.pilot_manager.submit_pilots(pilot_desc())
    um.add_pilots(pilots)
    (unit,) = um.submit_units(unit_desc("t0", duration=100))
    substrate.sim.run()
    events = [
        r.event for r in substrate.sim.trace.query(category="unit", entity=unit.uid)
    ]
    assert events[0] == "NEW"
    assert events[-1] == "DONE"
    assert "EXECUTING" in events


def test_unit_wider_than_pilot_fails_fast_and_restarts(substrate):
    """A capacity-blind binding onto a too-small pilot must not deadlock."""
    um = substrate.unit_manager("round-robin")
    small = substrate.pilot_manager.submit_pilots(
        pilot_desc(resource="resA", cores=2)
    )
    um.add_pilots(small)
    substrate.sim.run(until=30)  # small pilot active
    (unit,) = um.submit_units(unit_desc("wide", duration=100, cores=4))
    substrate.sim.run(until=120)
    # never bound to the too-small pilot, and never burned restarts on it
    assert unit.restarts == 0
    assert unit.state is UnitState.UNSCHEDULED
    big = substrate.pilot_manager.submit_pilots(
        pilot_desc(resource="resB", cores=8)
    )
    um.add_pilots(big)
    substrate.sim.run()
    assert unit.state is UnitState.DONE
    assert unit.pilot is big[0]


def test_locality_scheduler_prefers_site_with_inputs(substrate):
    """Data/compute affinity: a unit whose input already sits at resB
    is bound there even though resA's pilot activated first."""
    um = substrate.unit_manager("locality")
    pilots = substrate.pilot_manager.submit_pilots([
        pilot_desc(resource="resA", cores=8),
        pilot_desc(resource="resB", cores=8),
    ])
    um.add_pilots(pilots)
    substrate.sim.run(until=30)  # both active; resA first (submitted first)
    substrate.network.fs(ORIGIN).write("hot.dat", 1_000_000, now=0)
    substrate.network.fs("resB").write("hot.dat", 1_000_000, now=0)
    (unit,) = um.submit_units(unit_desc("t0", inputs=["hot.dat"]))
    substrate.sim.run()
    assert unit.state is UnitState.DONE
    assert unit.pilot.resource == "resB"
    # and nothing was re-staged over the WAN
    assert substrate.network.link_to("resB").completed_transfers == 0


def test_locality_scheduler_falls_back_to_activation_order(substrate):
    """Without resident inputs anywhere, locality behaves like backfill."""
    um = substrate.unit_manager("locality")
    pilots = substrate.pilot_manager.submit_pilots([
        pilot_desc(resource="resA", cores=8),
        pilot_desc(resource="resB", cores=8),
    ])
    um.add_pilots(pilots)
    substrate.sim.run(until=30)
    units = um.submit_units([unit_desc(f"t{i}", duration=50) for i in range(4)])
    substrate.sim.run()
    assert all(u.state is UnitState.DONE for u in units)
    # 4 one-core units fit in resA's 8 free cores: earliest-active wins
    assert all(u.pilot.resource == "resA" for u in units)
