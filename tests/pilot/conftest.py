"""Shared fixtures for pilot-layer tests: a small two-resource substrate."""

import pytest

from repro.cluster import Cluster
from repro.des import Simulation
from repro.net import Network
from repro.pilot import PilotManager, UnitManager


class Substrate:
    """A kernel, two idle clusters, and the star network between them."""

    def __init__(self, seed=0, nodes=4, cpn=16):
        self.sim = Simulation(seed=seed)
        self.network = Network(self.sim)
        self.clusters = {}
        for name in ("resA", "resB"):
            self.network.add_site(name, bandwidth_bytes_per_s=1e7, latency_s=0.01)
            self.clusters[name] = Cluster(
                self.sim, name, nodes=nodes, cores_per_node=cpn,
                submit_overhead=0.0,
            )
        self.pilot_manager = PilotManager(self.sim, self.clusters)

    def unit_manager(self, scheduler="backfill"):
        return UnitManager(self.sim, self.network, scheduler=scheduler)


@pytest.fixture
def substrate():
    return Substrate()
