"""Tests for workflow (DAG) import and execution."""

import networkx as nx
import pytest

from repro.bundle import BundleManager
from repro.cluster import Cluster
from repro.core import ExecutionManager
from repro.des import Simulation
from repro.net import Network, ORIGIN
from repro.skeleton import (
    SkeletonError,
    WorkflowAPI,
    from_dag,
    partition_levels,
)


def diamond():
    """a -> (b, c) -> d."""
    g = nx.DiGraph()
    g.add_node("a", duration=100, input_bytes=1e6)
    g.add_node("b", duration=200)
    g.add_node("c", duration=50)
    g.add_node("d", duration=75, output_bytes=5_000)
    g.add_edges_from([("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
    return g


class TestPartitionLevels:
    def test_diamond_levels(self):
        levels = partition_levels(diamond())
        assert levels == [["a"], ["b", "c"], ["d"]]

    def test_depth_is_longest_path(self):
        g = nx.DiGraph()
        for n in "abcd":
            g.add_node(n, duration=1)
        # a->b->c and a->c: c's depth is 2 (via b), d independent
        g.add_edges_from([("a", "b"), ("b", "c"), ("a", "c")])
        levels = partition_levels(g)
        assert levels == [["a", "d"], ["b"], ["c"]]

    def test_cycle_rejected(self):
        g = nx.DiGraph()
        g.add_node("a", duration=1)
        g.add_node("b", duration=1)
        g.add_edges_from([("a", "b"), ("b", "a")])
        with pytest.raises(SkeletonError):
            partition_levels(g)


class TestFromDag:
    def test_structure(self):
        concrete = from_dag(diamond(), name="wf")
        assert concrete.n_tasks == 4
        assert len(concrete.stages) == 3
        by_uid = {t.uid: t for t in concrete.all_tasks()}
        d = by_uid["wf/d"]
        assert set(d.depends_on) == {"wf/b", "wf/c"}
        # d reads b's and c's outputs
        assert {f.name for f in d.inputs} == {"wf/b.out", "wf/c.out"}
        assert d.outputs[0].size_bytes == 5_000

    def test_root_external_input(self):
        concrete = from_dag(diamond(), name="wf")
        assert [f.name for f in concrete.preparation_files] == ["wf/a.in"]

    def test_validation(self):
        with pytest.raises(SkeletonError):
            from_dag(nx.DiGraph())
        g = nx.DiGraph()
        g.add_node("x")  # no duration
        with pytest.raises(SkeletonError):
            from_dag(g)
        g2 = nx.DiGraph()
        g2.add_node("x", duration=-1)
        with pytest.raises(SkeletonError):
            from_dag(g2)
        g3 = nx.DiGraph()
        g3.add_node("x", duration=1, cores=0)
        with pytest.raises(SkeletonError):
            from_dag(g3)


class TestWorkflowExecution:
    def make_env(self):
        sim = Simulation(seed=13)
        net = Network(sim)
        clusters = {}
        for name in ("siteA", "siteB"):
            net.add_site(name, bandwidth_bytes_per_s=1e7, latency_s=0.01)
            clusters[name] = Cluster(sim, name, nodes=8, cores_per_node=16,
                                     submit_overhead=0.0)
        bundle = BundleManager(sim, net).create_bundle("pool", clusters)
        em = ExecutionManager(sim, net, bundle, agent_bootstrap_s=0.0)
        return sim, net, em

    def test_requirements(self):
        api = WorkflowAPI(diamond(), name="wf")
        req = api.requirements()
        assert req.n_tasks == 4
        assert req.n_stages == 3
        assert req.max_stage_width == 2  # b and c in parallel
        assert req.estimated_compute_seconds == 425
        assert req.total_input_bytes == 1e6

    def test_end_to_end_execution_respects_dag(self):
        sim, net, em = self.make_env()
        api = WorkflowAPI(diamond(), name="wf")
        report = em.execute(api)
        assert report.succeeded
        units = {u.description.name: u for u in report.units}
        t = lambda n, s: units[f"wf/{n}"].history.timestamp(s)  # noqa: E731
        assert t("b", "EXECUTING") >= t("a", "DONE")
        assert t("c", "EXECUTING") >= t("a", "DONE")
        assert t("d", "EXECUTING") >= max(t("b", "DONE"), t("c", "DONE"))
        # final output staged home
        assert net.fs(ORIGIN).exists("wf/d.out")

    def test_parallel_level_overlaps(self):
        sim, net, em = self.make_env()
        api = WorkflowAPI(diamond(), name="wf")
        report = em.execute(api)
        units = {u.description.name: u for u in report.units}
        b = units["wf/b"]
        c = units["wf/c"]
        # b runs 200 s, c 50 s; they started close together (same level)
        assert abs(
            b.history.timestamp("EXECUTING") - c.history.timestamp("EXECUTING")
        ) < 60
