"""Unit and property tests for attribute samplers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.skeleton import (
    Constant,
    DistributionError,
    LogNormal,
    Polynomial,
    TruncatedGaussian,
    Uniform,
    parse_sampler,
)

RNG = np.random.default_rng(0)


class TestConstant:
    def test_sample_and_mean(self):
        c = Constant(42.0)
        assert c.sample(RNG) == 42.0
        assert c.mean() == 42.0

    def test_negative_rejected(self):
        with pytest.raises(DistributionError):
            Constant(-1)


class TestUniform:
    def test_bounds_respected(self):
        u = Uniform(10, 20)
        xs = [u.sample(RNG) for _ in range(500)]
        assert all(10 <= x <= 20 for x in xs)
        assert u.mean() == 15

    def test_invalid_bounds(self):
        with pytest.raises(DistributionError):
            Uniform(20, 10)
        with pytest.raises(DistributionError):
            Uniform(-5, 10)


class TestTruncatedGaussian:
    def test_paper_parameters(self):
        g = TruncatedGaussian(mu=900, sigma=300, low=60, high=1800)
        xs = np.array([g.sample(RNG) for _ in range(2000)])
        assert xs.min() >= 60
        assert xs.max() <= 1800
        assert abs(xs.mean() - 900) < 30  # symmetric truncation keeps the mean
        assert g.mean() == 900

    def test_validation(self):
        with pytest.raises(DistributionError):
            TruncatedGaussian(900, -1, 60, 1800)
        with pytest.raises(DistributionError):
            TruncatedGaussian(900, 300, 1800, 60)
        with pytest.raises(DistributionError):
            TruncatedGaussian(5000, 300, 60, 1800)

    def test_degenerate_sigma_zero(self):
        g = TruncatedGaussian(900, 0, 60, 1800)
        assert g.sample(RNG) == 900


class TestLogNormal:
    def test_bounds_and_mean(self):
        ln = LogNormal(mu=np.log(100), sigma=0.5, low=10, high=1000)
        xs = [ln.sample(RNG) for _ in range(500)]
        assert all(10 <= x <= 1000 for x in xs)
        expected = np.exp(np.log(100) + 0.125)
        assert ln.mean() == pytest.approx(expected)


class TestPolynomial:
    def test_evaluates_context(self):
        p = Polynomial("input_size", (10.0, 2.0))  # 10 + 2x
        assert p.sample(RNG, {"input_size": 5.0}) == 20.0

    def test_quadratic(self):
        p = Polynomial("duration", (0.0, 0.0, 1.0))  # x^2
        assert p.sample(RNG, {"duration": 3.0}) == 9.0

    def test_negative_clamped_to_zero(self):
        p = Polynomial("x", (-100.0,))
        assert p.sample(RNG, {"x": 1.0}) == 0.0

    def test_missing_context_raises(self):
        p = Polynomial("x", (1.0,))
        with pytest.raises(DistributionError):
            p.sample(RNG)
        with pytest.raises(DistributionError):
            p.sample(RNG, {"y": 1.0})

    def test_empty_coefficients_rejected(self):
        with pytest.raises(DistributionError):
            Polynomial("x", ())


class TestParseSampler:
    def test_passthrough(self):
        c = Constant(5)
        assert parse_sampler(c) is c
        assert parse_sampler(7).value == 7.0
        assert parse_sampler("42").value == 42.0

    def test_specs(self):
        assert isinstance(parse_sampler("uniform(1, 2)"), Uniform)
        g = parse_sampler("gauss(900, 300, 60, 1800)")
        assert isinstance(g, TruncatedGaussian)
        assert g.mu == 900
        assert isinstance(parse_sampler("lognormal(6.8, 0.7)"), LogNormal)
        p = parse_sampler("poly(input_size, 0.5, 10)")
        assert isinstance(p, Polynomial)
        assert p.variable == "input_size"
        assert p.coefficients == (0.5, 10.0)
        assert isinstance(parse_sampler("constant(3)"), Constant)
        assert isinstance(parse_sampler("normal(0, 1, -1, 1)"), TruncatedGaussian)

    def test_bad_specs(self):
        for bad in ("nope(1)", "uniform(1)", "gauss(1,2)", "poly(x)",
                    "uniform(a, b)", "wibble"):
            with pytest.raises(DistributionError):
                parse_sampler(bad)


@settings(max_examples=50, deadline=None)
@given(
    mu=st.floats(100, 1000),
    sigma=st.floats(0, 500),
    pad=st.floats(1, 500),
)
def test_truncated_gaussian_always_within_bounds(mu, sigma, pad):
    low, high = mu - pad, mu + pad
    g = TruncatedGaussian(mu=mu, sigma=sigma, low=low, high=high)
    rng = np.random.default_rng(1)
    for _ in range(20):
        x = g.sample(rng)
        assert low <= x <= high
