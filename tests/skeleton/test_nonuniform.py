"""Tests for non-uniform task sizes (mixed core counts, paper §V)."""

import numpy as np
import pytest

from repro.skeleton import (
    SkeletonApp,
    SkeletonError,
    StageSpec,
    Uniform,
    parse_config,
)

RNG = np.random.default_rng(11)


def test_int_cores_behave_as_before():
    spec = StageSpec(name="s", n_tasks=4, task_duration=60.0, cores_per_task=8)
    app = SkeletonApp("uniform-cores", [spec])
    concrete = app.materialize(RNG)
    assert all(t.cores == 8 for t in concrete.all_tasks())
    assert app.max_stage_width() == 32
    assert spec.max_cores() == 8


def test_invalid_int_cores_rejected():
    with pytest.raises(SkeletonError):
        StageSpec(name="s", n_tasks=1, task_duration=60.0, cores_per_task=0)


def test_sampled_cores_vary_and_floor_at_one():
    spec = StageSpec(
        name="s", n_tasks=64, task_duration=60.0,
        cores_per_task=Uniform(0.0, 16.0),
    )
    app = SkeletonApp("mixed", [spec])
    concrete = app.materialize(np.random.default_rng(3))
    cores = [t.cores for t in concrete.all_tasks()]
    assert min(cores) >= 1
    assert max(cores) <= 16
    assert len(set(cores)) > 4  # genuinely non-uniform
    assert concrete.max_task_cores == max(cores)


def test_spec_string_cores():
    spec = StageSpec(
        name="s", n_tasks=8, task_duration=60.0,
        cores_per_task="uniform(1, 4)",
    )
    assert spec.max_cores() >= 2


def test_planning_estimates_use_mean_cores():
    spec = StageSpec(
        name="s", n_tasks=10, task_duration=100.0,
        cores_per_task=Uniform(2.0, 6.0),  # mean 4
    )
    app = SkeletonApp("mixed", [spec])
    assert app.max_stage_width() == 40
    assert app.estimated_compute_seconds() == pytest.approx(10 * 100 * 4)


def test_config_parser_accepts_cores_spec():
    app = parse_config(
        "[application]\nname = m\nstages = a\n"
        "[stage:a]\ntasks = 8\nduration = 60\ncores = uniform(1, 8)\n"
    )
    concrete = app.materialize(np.random.default_rng(5))
    assert {t.cores for t in concrete.all_tasks()} <= set(range(1, 9))


def test_materialization_deterministic_with_sampled_cores():
    spec = lambda: StageSpec(  # noqa: E731
        name="s", n_tasks=32, task_duration="gauss(600, 100, 60, 1200)",
        cores_per_task="uniform(1, 8)",
    )
    a = SkeletonApp("m", [spec()]).materialize(np.random.default_rng(7))
    b = SkeletonApp("m", [spec()]).materialize(np.random.default_rng(7))
    assert [(t.cores, t.duration) for t in a.all_tasks()] == [
        (t.cores, t.duration) for t in b.all_tasks()
    ]
