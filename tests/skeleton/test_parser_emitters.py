"""Tests for the config parser, output emitters, and the Skeleton API."""

import json

import networkx as nx
import numpy as np
import pytest

from repro.des import Simulation
from repro.net import Network, ORIGIN
from repro.skeleton import (
    SkeletonAPI,
    SkeletonError,
    bag_of_tasks,
    map_reduce,
    parse_config,
    to_dag,
    to_dax,
    to_json,
    to_preparation_script,
    to_shell,
)

CONFIG = """
[application]
name = sample
iterations = 1
stages = map reduce

[stage:map]
tasks = 4
duration = gauss(900, 300, 60, 1800)
input = external
input_size = 1000000
output_size = 100000

[stage:reduce]
tasks = 1
duration = 300
input = all_to_one
output_size = 2000
"""


class TestParser:
    def test_roundtrip(self):
        app = parse_config(CONFIG)
        assert app.name == "sample"
        assert [s.name for s in app.stages] == ["map", "reduce"]
        assert app.stages[0].n_tasks == 4
        assert app.stages[1].input_mapping == "all_to_one"
        concrete = app.materialize(np.random.default_rng(0))
        assert concrete.n_tasks == 5

    def test_missing_application_section(self):
        with pytest.raises(SkeletonError):
            parse_config("[stage:a]\ntasks = 1\nduration = 5\n")

    def test_missing_stage_section(self):
        with pytest.raises(SkeletonError):
            parse_config("[application]\nstages = ghost\n")

    def test_missing_required_keys(self):
        with pytest.raises(SkeletonError):
            parse_config(
                "[application]\nstages = a\n[stage:a]\nduration = 5\n"
            )
        with pytest.raises(SkeletonError):
            parse_config(
                "[application]\nstages = a\n[stage:a]\ntasks = 2\n"
            )

    def test_empty_stage_list(self):
        with pytest.raises(SkeletonError):
            parse_config("[application]\nname = x\n")

    def test_malformed_ini(self):
        with pytest.raises(SkeletonError):
            parse_config("this is not ini at all [[[")


@pytest.fixture
def concrete():
    return map_reduce(n_map_tasks=3, n_reduce_tasks=1).materialize(
        np.random.default_rng(1)
    )


class TestEmitters:
    def test_shell_script_structure(self, concrete):
        script = to_shell(concrete)
        assert script.startswith("#!/bin/sh")
        assert script.count("sleep") == concrete.n_tasks
        assert "stage map" in script and "stage reduce" in script

    def test_preparation_script(self, concrete):
        script = to_preparation_script(concrete)
        assert script.count("dd if=") == len(concrete.preparation_files)

    def test_json_structure(self, concrete):
        doc = json.loads(to_json(concrete))
        sk = doc["skeleton"]
        assert sk["n_tasks"] == concrete.n_tasks
        assert len(sk["stages"]) == 2
        reduce_tasks = sk["stages"][1]["tasks"]
        assert len(reduce_tasks[0]["depends_on"]) == 3

    def test_dag(self, concrete):
        g = to_dag(concrete)
        assert isinstance(g, nx.DiGraph)
        assert g.number_of_nodes() == 4
        assert g.number_of_edges() == 3
        assert nx.is_directed_acyclic_graph(g)
        # reduce is reachable from every map task
        reduce_uid = concrete.tasks_of_stage(1)[0].uid
        for t in concrete.tasks_of_stage(0):
            assert nx.has_path(g, t.uid, reduce_uid)

    def test_dax(self, concrete):
        xml = to_dax(concrete)
        assert xml.startswith("<?xml")
        assert xml.count("<job ") == 4
        assert "<child " in xml and "<parent " in xml


class TestSkeletonAPI:
    def test_requirements(self):
        api = SkeletonAPI(bag_of_tasks(32, task_duration=900), seed=3)
        req = api.requirements()
        assert req.n_tasks == 32
        assert req.n_stages == 1
        assert req.max_stage_width == 32
        assert req.estimated_compute_seconds == 32 * 900
        assert req.total_input_bytes == 32 * 1_000_000

    def test_concrete_cached(self):
        api = SkeletonAPI(bag_of_tasks(8), seed=1)
        assert api.concrete is api.concrete

    def test_seed_determines_materialization(self):
        from repro.skeleton import paper_skeleton

        a = SkeletonAPI(paper_skeleton(8, gaussian=True), seed=1)
        b = SkeletonAPI(paper_skeleton(8, gaussian=True), seed=1)
        c = SkeletonAPI(paper_skeleton(8, gaussian=True), seed=2)
        da = [t.duration for t in a.concrete.all_tasks()]
        db = [t.duration for t in b.concrete.all_tasks()]
        dc = [t.duration for t in c.concrete.all_tasks()]
        assert da == db != dc

    def test_prepare_writes_origin_files(self):
        sim = Simulation()
        net = Network(sim)
        api = SkeletonAPI(bag_of_tasks(8), seed=0)
        n = api.prepare(net)
        assert n == 8
        fs = net.fs(ORIGIN)
        for f in api.concrete.preparation_files:
            assert fs.exists(f.name)
