"""Tests for the skeleton application model and materialization."""

import numpy as np
import pytest

from repro.skeleton import (
    Constant,
    SkeletonApp,
    SkeletonError,
    StageSpec,
    bag_of_tasks,
    map_reduce,
    multistage,
    paper_skeleton,
)

RNG = np.random.default_rng(7)


def test_stage_spec_validation():
    with pytest.raises(SkeletonError):
        StageSpec(name="s", n_tasks=0, task_duration=Constant(1))
    with pytest.raises(SkeletonError):
        StageSpec(name="s", n_tasks=1, task_duration=Constant(1), cores_per_task=0)
    with pytest.raises(SkeletonError):
        StageSpec(name="s", n_tasks=1, task_duration=Constant(1),
                  input_mapping="sideways")
    with pytest.raises(SkeletonError):
        StageSpec(name="s", n_tasks=1, task_duration=Constant(1),
                  outputs_per_task=0)


def test_app_validation():
    with pytest.raises(SkeletonError):
        SkeletonApp("empty", [])
    s = StageSpec(name="s", n_tasks=1, task_duration=Constant(1))
    with pytest.raises(SkeletonError):
        SkeletonApp("bad-iter", [s], iterations=0)
    dup = StageSpec(name="s", n_tasks=1, task_duration=Constant(1))
    with pytest.raises(SkeletonError):
        SkeletonApp("dup", [s, dup])
    mapped = StageSpec(name="m", n_tasks=1, task_duration=Constant(1),
                       input_mapping="one_to_one")
    with pytest.raises(SkeletonError):
        SkeletonApp("headless", [mapped])


def test_bag_of_tasks_materialization():
    app = bag_of_tasks(16, task_duration=900, input_size=1_000_000,
                       output_size=2_000)
    concrete = app.materialize(RNG)
    assert concrete.n_tasks == 16
    assert len(concrete.stages) == 1
    tasks = concrete.all_tasks()
    assert all(t.duration == 900 for t in tasks)
    assert all(t.input_bytes == 1_000_000 for t in tasks)
    assert all(t.output_bytes == 2_000 for t in tasks)
    assert all(t.depends_on == () for t in tasks)
    assert len(concrete.preparation_files) == 16
    assert concrete.total_compute_seconds == 16 * 900
    assert concrete.max_task_cores == 1


def test_unique_uids_and_file_names():
    concrete = bag_of_tasks(64).materialize(RNG)
    uids = [t.uid for t in concrete.all_tasks()]
    assert len(set(uids)) == 64
    fnames = [f.name for t in concrete.all_tasks() for f in t.inputs + t.outputs]
    assert len(set(fnames)) == len(fnames)


def test_map_reduce_dependencies():
    app = map_reduce(n_map_tasks=8, n_reduce_tasks=1)
    concrete = app.materialize(RNG)
    assert concrete.n_tasks == 9
    maps = concrete.tasks_of_stage(0)
    reduce_task = concrete.tasks_of_stage(1)[0]
    assert set(reduce_task.depends_on) == {t.uid for t in maps}
    # reduce inputs are exactly the map outputs
    map_outputs = {f.name for t in maps for f in t.outputs}
    assert {f.name for f in reduce_task.inputs} == map_outputs


def test_one_to_one_mapping():
    stages = [
        StageSpec(name="a", n_tasks=4, task_duration=Constant(10)),
        StageSpec(name="b", n_tasks=4, task_duration=Constant(5),
                  input_mapping="one_to_one"),
    ]
    concrete = multistage(stages).materialize(RNG)
    a_tasks = concrete.tasks_of_stage(0)
    b_tasks = concrete.tasks_of_stage(1)
    for i, t in enumerate(b_tasks):
        assert t.depends_on == (a_tasks[i].uid,)
        assert t.inputs == a_tasks[i].outputs


def test_none_mapping():
    stages = [StageSpec(name="a", n_tasks=3, task_duration=Constant(10),
                        input_mapping="none")]
    concrete = multistage(stages).materialize(RNG)
    assert all(t.inputs == () for t in concrete.all_tasks())
    assert concrete.preparation_files == []


def test_iterations_replicate_stages():
    app = map_reduce(n_map_tasks=4, n_reduce_tasks=1, iterations=3)
    assert app.n_tasks == 15
    concrete = app.materialize(RNG)
    assert concrete.n_tasks == 15
    assert len(concrete.stages) == 6
    # iteration 2's map stage consumes iteration 1's reduce outputs:
    # its input mapping is "external" only in the very first stage.
    second_map = concrete.stages[2].tasks
    first_reduce = concrete.stages[1].tasks
    for t in second_map:
        assert t.depends_on == (first_reduce[0].uid,)


def test_iterative_first_stage_falls_back_to_external():
    stages = [
        StageSpec(name="solve", n_tasks=2, task_duration=Constant(10),
                  input_mapping="one_to_one"),
    ]
    app = SkeletonApp("iter", stages, iterations=2)
    concrete = app.materialize(RNG)
    first = concrete.stages[0].tasks
    second = concrete.stages[1].tasks
    assert all(t.depends_on == () for t in first)  # external fallback
    assert all(len(t.depends_on) == 1 for t in second)


def test_outputs_per_task():
    stages = [StageSpec(name="a", n_tasks=2, task_duration=Constant(1),
                        outputs_per_task=3)]
    concrete = multistage(stages).materialize(RNG)
    for t in concrete.all_tasks():
        assert len(t.outputs) == 3
        assert len({f.name for f in t.outputs}) == 3


def test_planning_estimates():
    app = bag_of_tasks(32, task_duration=900)
    assert app.n_tasks == 32
    assert app.estimated_compute_seconds() == 32 * 900
    assert app.estimated_longest_task() == 900
    assert app.max_stage_width() == 32


def test_paper_skeleton_variants():
    uni = paper_skeleton(128, gaussian=False)
    concrete = uni.materialize(np.random.default_rng(0))
    assert all(t.duration == 900 for t in concrete.all_tasks())

    gauss = paper_skeleton(128, gaussian=True)
    concrete_g = gauss.materialize(np.random.default_rng(0))
    durations = [t.duration for t in concrete_g.all_tasks()]
    assert all(60 <= d <= 1800 for d in durations)
    assert len(set(durations)) > 10  # actually random

    with pytest.raises(ValueError):
        paper_skeleton(100, gaussian=False)  # not a power of two in range


def test_materialization_reproducible():
    app = paper_skeleton(64, gaussian=True)
    c1 = app.materialize(np.random.default_rng(5))
    c2 = app.materialize(np.random.default_rng(5))
    assert [t.duration for t in c1.all_tasks()] == [
        t.duration for t in c2.all_tasks()
    ]
