"""Tests for the fairshare priority policy."""

import pytest

from repro.cluster import BatchJob, Cluster, JobState
from repro.cluster.fairshare import FairshareTracker
from repro.des import Simulation


def test_validation():
    sim = Simulation()
    with pytest.raises(ValueError):
        FairshareTracker(sim, half_life_s=0)


def test_charge_and_decay():
    sim = Simulation()
    tracker = FairshareTracker(sim, half_life_s=3600)
    tracker.charge("alice", 1000.0)
    assert tracker.usage_of("alice") == pytest.approx(1000.0)
    sim.call_in(3600, lambda: None)
    sim.run()
    assert tracker.usage_of("alice") == pytest.approx(500.0)  # one half-life
    assert tracker.usage_of("nobody") == 0.0


def test_charge_accumulates_with_decay():
    sim = Simulation()
    tracker = FairshareTracker(sim, half_life_s=3600)
    tracker.charge("bob", 800.0)
    sim.call_in(3600, tracker.charge, "bob", 100.0)
    sim.run()
    assert tracker.usage_of("bob") == pytest.approx(500.0)


def test_priority_age_term():
    sim = Simulation()
    tracker = FairshareTracker(sim, age_weight=1.0, fairshare_weight=10.0)
    young = BatchJob(cores=1, runtime=10, walltime=10, user="u")
    old = BatchJob(cores=1, runtime=10, walltime=10, user="u")
    young.submit_time = 3600.0
    old.submit_time = 0.0
    assert tracker.priority(old, 7200.0) > tracker.priority(young, 7200.0)


def test_priority_penalizes_heavy_user():
    sim = Simulation()
    tracker = FairshareTracker(sim)
    tracker.charge("hog", 1_000_000.0)
    tracker.charge("light", 1_000.0)
    hog_job = BatchJob(cores=1, runtime=10, walltime=10, user="hog")
    light_job = BatchJob(cores=1, runtime=10, walltime=10, user="light")
    hog_job.submit_time = light_job.submit_time = 0.0
    assert tracker.priority(light_job, 0.0) > tracker.priority(hog_job, 0.0)


def test_listener_charges_on_completion():
    sim = Simulation()
    cluster = Cluster(sim, "fs", nodes=1, cores_per_node=8, submit_overhead=0.0)
    tracker = FairshareTracker(sim)
    cluster.add_listener(tracker.on_job_state)
    job = BatchJob(cores=4, runtime=100, walltime=200, user="carol")
    cluster.submit(job)
    sim.run()
    assert tracker.usage_of("carol") == pytest.approx(400.0, rel=0.01)


def test_end_to_end_fairshare_reorders_queue():
    """After a hog's job runs, a light user's queued job jumps ahead."""
    sim = Simulation()
    tracker = FairshareTracker(sim, fairshare_weight=100.0)
    cluster = Cluster(
        sim, "fs", nodes=1, cores_per_node=8,
        submit_overhead=0.0, priority_fn=tracker.priority,
    )
    cluster.add_listener(tracker.on_job_state)
    # The hog's first job runs and charges usage.
    first = BatchJob(cores=8, runtime=1000, walltime=1100, user="hog")
    cluster.submit(first)
    sim.run(until=10)
    # Both users queue behind it; hog submitted earlier.
    hog2 = BatchJob(cores=8, runtime=50, walltime=60, user="hog")
    light = BatchJob(cores=8, runtime=50, walltime=60, user="light")
    cluster.submit(hog2)
    sim.run(until=20)
    cluster.submit(light)
    sim.run()
    assert light.start_time < hog2.start_time
