"""Workload stream memoization: replay fidelity, fallbacks, kill-switch.

The cache's contract is that it is *invisible*: any simulation that
would run with live numpy draws runs bit-identically from a replayed
tape, and any divergence from the recorded call sequence detaches the
consumer back to live draws positioned exactly where the tape left off.
"""

import numpy as np
import pytest

from repro.cluster import Cluster, FcfsScheduler
from repro.cluster.presets import PRESETS, build_resource
from repro.cluster.workload import (
    STREAM_CACHE,
    BackgroundWorkload,
    WorkloadStreamCache,
    stream_cache_stats,
)
from repro.des import Simulation


@pytest.fixture(autouse=True)
def _fresh_cache():
    """Each test sees an empty process-global cache and leaves none."""
    STREAM_CACHE.clear()
    STREAM_CACHE.hits = STREAM_CACHE.misses = 0
    STREAM_CACHE.extensions = STREAM_CACHE.fallbacks = 0
    yield
    STREAM_CACHE.clear()


def _build(seed, n_jobs=300):
    """One primed cluster + workload; returns the submitted job stream."""
    sim = Simulation(seed=seed)
    cluster = Cluster(
        sim, name="stampede", nodes=16, cores_per_node=16,
        scheduler=FcfsScheduler(),
    )
    wl = BackgroundWorkload(sim, cluster, PRESETS["stampede-sim"].profile)
    jobs = [wl.make_job() for _ in range(n_jobs)]
    return [(j.cores, j.runtime, j.walltime, j.user) for j in jobs]


def test_replay_is_bit_identical_to_recording():
    first = _build(seed=11)
    assert STREAM_CACHE.misses == 1 and STREAM_CACHE.hits == 0
    second = _build(seed=11)  # same seed => same key => replay
    assert STREAM_CACHE.hits == 1
    assert second == first


def test_different_seed_is_a_different_tape():
    _build(seed=11)
    _build(seed=12)
    assert STREAM_CACHE.misses == 2
    assert STREAM_CACHE.hits == 0
    assert len(STREAM_CACHE) == 2


def test_kill_switch_disables_cache(monkeypatch):
    monkeypatch.setenv("REPRO_WORKLOAD_CACHE", "0")
    baseline = _build(seed=11)
    assert STREAM_CACHE.misses == 0 and len(STREAM_CACHE) == 0
    monkeypatch.setenv("REPRO_WORKLOAD_CACHE", "1")
    assert _build(seed=11) == baseline  # cache on: same values


def test_explicit_stream_never_cached():
    sim = Simulation(seed=5)
    cluster = Cluster(
        sim, name="c", nodes=4, cores_per_node=8, scheduler=FcfsScheduler(),
    )
    wl = BackgroundWorkload(
        sim, cluster, PRESETS["stampede-sim"].profile,
        stream=np.random.default_rng(3),
    )
    wl.make_job()
    assert STREAM_CACHE.misses == 0 and len(STREAM_CACHE) == 0


def test_tape_extension_continues_the_stream():
    short = _build(seed=11, n_jobs=100)
    assert STREAM_CACHE.extensions == 0
    longer = _build(seed=11, n_jobs=250)  # replays 100, extends 150
    assert STREAM_CACHE.hits == 1
    assert STREAM_CACHE.extensions == 1
    assert longer[:100] == short
    # live draws past the tape match a cold full-length run
    STREAM_CACHE.clear()
    assert _build(seed=11, n_jobs=250) == longer


def test_mismatch_falls_back_to_live_draws():
    # Record a job-only tape, then replay with a divergent call pattern.
    _build(seed=11, n_jobs=50)
    sim = Simulation(seed=11)
    cluster = Cluster(
        sim, name="stampede", nodes=16, cores_per_node=16,
        scheduler=FcfsScheduler(),
    )
    wl = BackgroundWorkload(sim, cluster, PRESETS["stampede-sim"].profile)
    first = wl._draws.job()
    gap = wl._draws.gap(10.0)  # recorded op here is "j": mismatch
    assert STREAM_CACHE.fallbacks == 1
    assert wl._draws.mode == "live"  # detached from the tape
    # the fallback re-executed the consumed prefix: values line up with
    # an uncached generator making the same calls
    sim2 = Simulation(seed=11)
    cluster2 = Cluster(
        sim2, name="stampede", nodes=16, cores_per_node=16,
        scheduler=FcfsScheduler(),
    )
    wl2 = BackgroundWorkload(
        sim2, cluster2, PRESETS["stampede-sim"].profile,
        stream=sim2.rng.get("workload/stampede"),
    )
    assert wl2._draws.job() == first
    assert wl2._draws.gap(10.0) == gap


def test_primed_resource_identical_hot_and_cold():
    """End to end: a primed preset resource has the same queue state
    whether its streams were recorded or replayed."""

    def snapshot():
        sim = Simulation(seed=2016)
        res = build_resource(sim, PRESETS["stampede-sim"], start_workload=False)
        cluster = res.cluster
        return (
            cluster.queue_length,
            cluster.free_cores,
            [
                (j.cores, j.runtime, j.walltime)
                for j in cluster.pending_jobs()
            ],
        )

    cold = snapshot()
    assert STREAM_CACHE.misses >= 1
    hot = snapshot()
    assert STREAM_CACHE.hits >= 1
    assert hot == cold


def test_stats_shape():
    _build(seed=11)
    _build(seed=11)
    stats = stream_cache_stats()
    assert stats["streams"] == 1
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["recorded_ops"] > 0
    assert set(stats) == {
        "streams", "hits", "misses", "extensions", "fallbacks",
        "recorded_ops",
    }


def test_cache_isolated_instances():
    cache = WorkloadStreamCache()
    assert len(cache) == 0 and cache.stats()["recorded_ops"] == 0
