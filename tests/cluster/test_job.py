"""Unit tests for the batch-job state model."""

import pytest

from repro.cluster import BatchJob, IllegalTransition, JobState


def make_job(**kw):
    defaults = dict(cores=4, runtime=100.0, walltime=200.0)
    defaults.update(kw)
    return BatchJob(**defaults)


def test_defaults_and_validation():
    job = make_job()
    assert job.state is JobState.NEW
    assert job.name.startswith("job.")
    assert not job.is_final
    with pytest.raises(ValueError):
        make_job(cores=0)
    with pytest.raises(ValueError):
        make_job(runtime=-1)
    with pytest.raises(ValueError):
        make_job(walltime=0)


def test_unique_uids():
    a, b = make_job(), make_job()
    assert a.uid != b.uid
    assert a != b
    assert a == a
    assert hash(a) == a.uid


def test_legal_lifecycle():
    job = make_job()
    job.advance(JobState.PENDING)
    job.advance(JobState.RUNNING)
    job.advance(JobState.COMPLETED)
    assert job.is_final


def test_timeout_path():
    job = make_job()
    job.advance(JobState.PENDING)
    job.advance(JobState.RUNNING)
    job.advance(JobState.TIMEOUT)
    assert job.is_final


def test_illegal_transitions_rejected():
    job = make_job()
    with pytest.raises(IllegalTransition):
        job.advance(JobState.RUNNING)  # NEW -> RUNNING skips PENDING
    job.advance(JobState.PENDING)
    with pytest.raises(IllegalTransition):
        job.advance(JobState.COMPLETED)  # PENDING -> COMPLETED skips RUNNING
    job.advance(JobState.RUNNING)
    job.advance(JobState.COMPLETED)
    with pytest.raises(IllegalTransition):
        job.advance(JobState.RUNNING)  # out of a final state


def test_callbacks_see_old_and_new():
    job = make_job()
    seen = []
    job.add_callback(lambda j, old, new: seen.append((old, new)))
    job.advance(JobState.PENDING)
    job.advance(JobState.CANCELLED)
    assert seen == [
        (JobState.NEW, JobState.PENDING),
        (JobState.PENDING, JobState.CANCELLED),
    ]


def test_wait_time():
    job = make_job()
    assert job.wait_time is None
    job.submit_time = 10.0
    assert job.wait_time is None
    job.start_time = 35.0
    assert job.wait_time == 25.0
