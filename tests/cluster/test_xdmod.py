"""Tests for the XDMoD-style workload characterization."""

import pytest

from repro.cluster import (
    BatchJob,
    Cluster,
    PRESETS,
    WorkloadCharacterizer,
    build_resource,
)
from repro.des import Simulation


def test_empty_report():
    sim = Simulation()
    cluster = Cluster(sim, "c", nodes=1, cores_per_node=8, submit_overhead=0.0)
    wc = WorkloadCharacterizer(sim, cluster)
    report = wc.report()
    assert report.total_jobs == 0
    assert report.total_core_hours == 0
    assert report.fraction("30s-30m") == 0.0
    assert "0 jobs" in report.render()


def test_bucket_assignment():
    sim = Simulation()
    cluster = Cluster(sim, "c", nodes=8, cores_per_node=8, submit_overhead=0.0)
    wc = WorkloadCharacterizer(sim, cluster)
    for runtime, cores in ((10, 1), (600, 4), (3600, 16), (30000, 64)):
        cluster.submit(BatchJob(cores=cores, runtime=runtime,
                                walltime=max(60, runtime * 2)))
    sim.run()
    report = wc.report()
    assert report.total_jobs == 4
    assert report.fraction("<30s") == 0.25
    assert report.fraction("30s-30m") == 0.25
    assert report.fraction("30m-2h") == 0.25
    assert report.fraction(">8h") == 0.25
    assert report.size_fractions["1"] == 0.25
    assert report.size_fractions["64-255"] == 0.25
    expected_core_hours = (10 * 1 + 600 * 4 + 3600 * 16 + 30000 * 64) / 3600
    assert report.total_core_hours == pytest.approx(expected_core_hours)


def test_timeout_jobs_use_elapsed_time():
    sim = Simulation()
    cluster = Cluster(sim, "c", nodes=1, cores_per_node=8, submit_overhead=0.0)
    wc = WorkloadCharacterizer(sim, cluster)
    # runs 60 s then killed at walltime: counts in 30s-30m with 60 s elapsed
    cluster.submit(BatchJob(cores=1, runtime=5000, walltime=60))
    sim.run()
    report = wc.report()
    assert report.total_jobs == 1
    assert report.fraction("30s-30m") == 1.0


def test_cancelled_jobs_not_counted():
    sim = Simulation()
    cluster = Cluster(sim, "c", nodes=1, cores_per_node=8, submit_overhead=0.0)
    wc = WorkloadCharacterizer(sim, cluster)
    job = BatchJob(cores=1, runtime=5000, walltime=6000)
    cluster.submit(job)
    sim.run(until=100)
    cluster.cancel(job)
    sim.run(until=200)
    assert wc.report().total_jobs == 0


def test_preset_workload_matches_paper_band():
    """The paper cites 25-55% of 2010-13 XSEDE jobs at 30s-30min; our
    synthetic mixes land near that band (documented ~20-35%)."""
    sim = Simulation(seed=8)
    res = build_resource(sim, PRESETS["stampede-sim"])
    wc = WorkloadCharacterizer(sim, res.cluster)
    sim.run(until=24 * 3600)
    report = wc.report()
    assert report.total_jobs > 200
    assert 0.10 <= report.fraction("30s-30m") <= 0.60
    # fractions sum to 1 in both views
    assert sum(report.duration_fractions.values()) == pytest.approx(1.0)
    assert sum(report.size_fractions.values()) == pytest.approx(1.0)
    text = report.render()
    assert "30s-30m" in text and "core-hours" in text
