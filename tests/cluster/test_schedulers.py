"""Unit tests for the batch scheduling policies (pure-policy level)."""

import pytest

from repro.cluster import (
    BatchJob,
    ConservativeBackfillScheduler,
    EasyBackfillScheduler,
    FcfsScheduler,
    SchedulerView,
    make_scheduler,
    shadow_schedule,
)


def job(cores, walltime, name=""):
    return BatchJob(cores=cores, runtime=walltime, walltime=walltime, name=name)


def view(free, total, pending, running=()):
    return SchedulerView(
        now=0.0,
        free_cores=free,
        total_cores=total,
        pending=tuple(pending),
        running=tuple(running),
    )


class TestFcfs:
    def test_starts_in_order_until_blocked(self):
        a, b, c = job(4, 10, "a"), job(8, 10, "b"), job(1, 10, "c")
        picks = FcfsScheduler().select(view(10, 16, [a, b, c]))
        assert picks == [a]  # b blocks; c must not bypass

    def test_all_fit(self):
        a, b = job(4, 10), job(4, 10)
        picks = FcfsScheduler().select(view(16, 16, [a, b]))
        assert picks == [a, b]

    def test_empty_queue(self):
        assert FcfsScheduler().select(view(16, 16, [])) == []


class TestShadowSchedule:
    def test_head_fits_immediately(self):
        shadow, extra = shadow_schedule(4, 10, [])
        assert shadow == float("-inf")
        assert extra == 6

    def test_shadow_from_running_ends(self):
        r1 = (job(8, 100, "r1"), 50.0)
        r2 = (job(8, 100, "r2"), 80.0)
        shadow, extra = shadow_schedule(12, 0, [r1, r2])
        # after r1 ends: 8 free < 12; after r2: 16 free >= 12
        assert shadow == 80.0
        assert extra == 4

    def test_never_fits_raises(self):
        with pytest.raises(ValueError):
            shadow_schedule(100, 10, [])


class TestEasyBackfill:
    def test_backfills_short_job_behind_blocked_head(self):
        # 16-core machine, 8 free; head wants 16 (blocked until t=100).
        running = [(job(8, 100, "r"), 100.0)]
        head = job(16, 50, "head")
        short = job(4, 50, "short")  # ends at t=50 <= shadow 100 -> backfill
        picks = EasyBackfillScheduler().select(
            view(8, 16, [head, short], running)
        )
        assert picks == [short]

    def test_does_not_backfill_job_that_delays_head(self):
        running = [(job(8, 100, "r"), 100.0)]
        head = job(16, 50, "head")
        # 8 cores would intersect the head's reservation at t=100:
        # needs 8 > extra (extra = 16-16 = 0) and ends at 200 > 100.
        long_wide = job(8, 200, "lw")
        picks = EasyBackfillScheduler().select(
            view(8, 16, [head, long_wide], running)
        )
        assert picks == []

    def test_backfills_into_extra_cores_regardless_of_duration(self):
        # 32-core machine, 8 free; head wants 20.
        running = [(job(24, 100, "r"), 100.0)]
        head = job(20, 50, "head")
        # extra at shadow = 8+24-20 = 12 -> a 6-core job of any length fits
        # (and 6 <= 8 cores free right now).
        eternal = job(6, 10_000, "eternal")
        picks = EasyBackfillScheduler().select(
            view(8, 32, [head, eternal], running)
        )
        assert picks == [eternal]

    def test_fcfs_phase_runs_head_first(self):
        a, b = job(4, 10, "a"), job(4, 10, "b")
        picks = EasyBackfillScheduler().select(view(16, 16, [a, b]))
        assert picks == [a, b]

    def test_backfill_candidates_respect_current_free(self):
        running = [(job(12, 100, "r"), 100.0)]
        head = job(16, 50, "head")
        too_wide = job(6, 10, "toowide")  # only 4 free now
        picks = EasyBackfillScheduler().select(
            view(4, 16, [head, too_wide], running)
        )
        assert picks == []


class TestConservativeBackfill:
    def test_behaves_like_fcfs_when_everything_fits(self):
        a, b = job(4, 10, "a"), job(4, 10, "b")
        picks = ConservativeBackfillScheduler().select(view(16, 16, [a, b]))
        assert picks == [a, b]

    def test_backfills_job_with_no_delay_to_any_reservation(self):
        running = [(job(8, 100, "r"), 100.0)]
        head = job(16, 50, "head")
        short = job(4, 50, "short")
        picks = ConservativeBackfillScheduler().select(
            view(8, 16, [head, short], running)
        )
        assert picks == [short]

    def test_no_start_for_job_that_would_delay_second_in_queue(self):
        # EASY would start `sneaky` (it only protects the head); conservative
        # must protect the second job's reservation too.
        running = [(job(8, 10, "r"), 10.0)]
        head = job(16, 100, "head")     # reserved at t=10
        second = job(8, 10, "second")   # reserved at t=110 (after head)
        sneaky = job(8, 150, "sneaky")  # would run 0..150, delaying second
        cons_picks = ConservativeBackfillScheduler().select(
            view(8, 16, [head, second, sneaky], running)
        )
        assert sneaky not in cons_picks


def test_registry():
    assert make_scheduler("fcfs").name == "fcfs"
    assert make_scheduler("easy-backfill").name == "easy-backfill"
    assert make_scheduler("conservative-backfill").name == "conservative-backfill"
    with pytest.raises(ValueError):
        make_scheduler("nope")
