"""Integration tests for the Cluster facade on the DES kernel."""

import pytest

from repro.cluster import (
    BatchJob,
    Cluster,
    FcfsScheduler,
    JobState,
    SubmissionError,
)
from repro.des import Simulation


def make_cluster(sim, nodes=2, cpn=8, scheduler=None, overhead=0.0, priority_fn=None):
    return Cluster(
        sim,
        "test-cluster",
        nodes=nodes,
        cores_per_node=cpn,
        scheduler=scheduler,
        submit_overhead=overhead,
        priority_fn=priority_fn,
    )


def test_idle_machine_runs_job_immediately():
    sim = Simulation()
    cluster = make_cluster(sim)
    job = BatchJob(cores=4, runtime=100, walltime=200)
    cluster.submit(job)
    sim.run()
    assert job.state is JobState.COMPLETED
    assert job.submit_time == 0.0
    assert job.start_time == 0.0
    assert job.end_time == 100.0
    assert job.wait_time == 0.0
    assert cluster.completed_jobs == 1


def test_submit_overhead_delays_pending():
    sim = Simulation()
    cluster = make_cluster(sim, overhead=5.0)
    job = BatchJob(cores=1, runtime=10, walltime=20)
    cluster.submit(job)
    sim.run()
    assert job.submit_time == 5.0
    assert job.end_time == 15.0


def test_oversized_job_rejected():
    sim = Simulation()
    cluster = make_cluster(sim, nodes=1, cpn=8)
    with pytest.raises(SubmissionError):
        cluster.submit(BatchJob(cores=9, runtime=10, walltime=10))


def test_double_submit_rejected():
    sim = Simulation()
    cluster = make_cluster(sim)
    job = BatchJob(cores=1, runtime=10, walltime=10)
    cluster.submit(job)
    sim.run()
    with pytest.raises(SubmissionError):
        cluster.submit(job)


def test_job_killed_at_walltime():
    sim = Simulation()
    cluster = make_cluster(sim)
    job = BatchJob(cores=1, runtime=500, walltime=100)
    cluster.submit(job)
    sim.run()
    assert job.state is JobState.TIMEOUT
    assert job.end_time == 100.0
    assert cluster.killed_jobs == 1


def test_queueing_when_machine_full():
    sim = Simulation()
    cluster = make_cluster(sim, nodes=1, cpn=8)
    first = BatchJob(cores=8, runtime=100, walltime=100)
    second = BatchJob(cores=8, runtime=50, walltime=60)
    cluster.submit(first)
    cluster.submit(second)
    sim.run()
    assert second.start_time == 100.0
    assert second.wait_time == 100.0
    assert second.end_time == 150.0


def test_fcfs_convoy_vs_backfill():
    """A short narrow job bypasses a blocked wide head only with backfill."""

    def run(scheduler_cls):
        sim = Simulation()
        cluster = make_cluster(sim, nodes=2, cpn=8, scheduler=scheduler_cls())
        blocker = BatchJob(cores=8, runtime=100, walltime=100, name="blocker")
        wide = BatchJob(cores=16, runtime=10, walltime=10, name="wide")
        narrow = BatchJob(cores=2, runtime=20, walltime=20, name="narrow")
        cluster.submit(blocker)
        cluster.submit(wide)
        cluster.submit(narrow)
        sim.run()
        return narrow.start_time

    from repro.cluster import EasyBackfillScheduler

    assert run(FcfsScheduler) == 110.0  # waits for the wide job
    assert run(EasyBackfillScheduler) == 0.0  # backfills next to the blocker


def test_cancel_pending_job():
    sim = Simulation()
    cluster = make_cluster(sim, nodes=1, cpn=8)
    blocker = BatchJob(cores=8, runtime=100, walltime=100)
    queued = BatchJob(cores=8, runtime=10, walltime=10)
    cluster.submit(blocker)
    cluster.submit(queued)
    sim.run(until=10)
    assert queued.state is JobState.PENDING
    cluster.cancel(queued)
    assert queued.state is JobState.CANCELLED
    sim.run()
    assert queued.start_time is None


def test_cancel_running_job_frees_cores():
    sim = Simulation()
    cluster = make_cluster(sim, nodes=1, cpn=8)
    job = BatchJob(cores=8, runtime=1000, walltime=2000)
    follower = BatchJob(cores=8, runtime=10, walltime=20)
    cluster.submit(job)
    cluster.submit(follower)
    sim.run(until=50)
    cluster.cancel(job)
    sim.run()
    assert job.state is JobState.CANCELLED
    assert job.end_time == 50.0
    assert follower.state is JobState.COMPLETED
    assert follower.start_time == 50.0
    assert cluster.free_cores == 8


def test_cancel_before_enqueue():
    sim = Simulation()
    cluster = make_cluster(sim, overhead=10.0)
    job = BatchJob(cores=1, runtime=10, walltime=10)
    cluster.submit(job)
    cluster.cancel(job)  # still NEW
    sim.run()
    assert job.state is JobState.CANCELLED
    assert job.submit_time is None


def test_listener_sees_transitions():
    sim = Simulation()
    cluster = make_cluster(sim)
    job = BatchJob(cores=1, runtime=10, walltime=20)
    events = []
    cluster.add_listener(lambda j, old, new: events.append((j.uid, new)))
    cluster.submit(job)
    sim.run()
    assert events == [
        (job.uid, JobState.PENDING),
        (job.uid, JobState.RUNNING),
        (job.uid, JobState.COMPLETED),
    ]


def test_trace_records_batch_job_states():
    sim = Simulation()
    cluster = make_cluster(sim)
    job = BatchJob(cores=1, runtime=10, walltime=20)
    cluster.submit(job)
    sim.run()
    events = [r.event for r in sim.trace.query(category="batch-job", entity=job.name)]
    assert events == ["PENDING", "RUNNING", "COMPLETED"]


def test_wait_history_populated():
    sim = Simulation()
    cluster = make_cluster(sim, nodes=1, cpn=8)
    a = BatchJob(cores=8, runtime=100, walltime=100)
    b = BatchJob(cores=8, runtime=10, walltime=10)
    cluster.submit(a)
    cluster.submit(b)
    sim.run()
    waits = [w for _, w, _ in cluster.wait_history]
    assert waits == [0.0, 100.0]


def test_priority_fn_reorders_queue():
    sim = Simulation()
    # Give priority to the "vip" user.
    cluster = make_cluster(
        sim,
        nodes=1,
        cpn=8,
        priority_fn=lambda j, now: 10.0 if j.user == "vip" else 0.0,
    )
    blocker = BatchJob(cores=8, runtime=100, walltime=100)
    normal = BatchJob(cores=8, runtime=10, walltime=10, user="joe")
    vip = BatchJob(cores=8, runtime=10, walltime=10, user="vip")
    cluster.submit(blocker)
    sim.run(until=1)  # blocker is running before the contenders arrive
    cluster.submit(normal)
    cluster.submit(vip)
    sim.run()
    assert vip.start_time == 100.0
    assert normal.start_time == 110.0


def test_queue_metrics():
    sim = Simulation()
    cluster = make_cluster(sim, nodes=1, cpn=8)
    cluster.submit(BatchJob(cores=8, runtime=100, walltime=100))
    cluster.submit(BatchJob(cores=4, runtime=50, walltime=60))
    sim.run(until=1)
    assert cluster.queue_length == 1
    assert cluster.queued_core_seconds == 4 * 60
    assert cluster.utilization == 1.0
