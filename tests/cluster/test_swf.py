"""Tests for SWF trace parsing, replay, and export."""

import pytest

from repro.cluster import (
    BatchJob,
    Cluster,
    JobState,
    SwfError,
    SwfJob,
    SwfReplay,
    export_swf,
    parse_swf,
)
from repro.des import Simulation

SAMPLE = """\
; Sample SWF trace
; UnixStartTime: 0
1 0 10 3600 32 -1 -1 32 7200 -1 1 17 1 1 1 1 -1 -1
2 60 0 1800 16 -1 -1 16 3600 -1 1 18 1 1 1 1 -1 -1
3 120 0 -1 8 -1 -1 8 600 -1 0 19 1 1 1 1 -1 -1
4 180 0 300 -1 -1 -1 4 600 -1 1 20 1 1 1 1 -1 -1
"""


class TestParse:
    def test_parses_valid_jobs(self):
        jobs = parse_swf(SAMPLE.splitlines())
        # job 3 dropped (runtime -1)
        assert [j.job_id for j in jobs] == [1, 2, 4]
        j1 = jobs[0]
        assert j1.submit_time == 0
        assert j1.run_time == 3600
        assert j1.processors == 32
        assert j1.requested_time == 7200
        assert j1.user == "swf17"

    def test_requested_processors_fallback(self):
        # field 8 (reqprocs) is -1 -> fall back to allocated (field 5)
        line = "9 0 0 100 12 -1 -1 -1 200 -1 1 5 1 1 1 1 -1 -1"
        (job,) = parse_swf([line])
        assert job.processors == 12

    def test_requested_time_fallback(self):
        line = "9 0 0 100 4 -1 -1 4 -1 -1 1 5 1 1 1 1 -1 -1"
        (job,) = parse_swf([line])
        assert job.requested_time >= 100

    def test_malformed_rejected(self):
        with pytest.raises(SwfError):
            parse_swf(["1 2 3"])
        with pytest.raises(SwfError):
            parse_swf(["a b c d e f g h i j k"])

    def test_comments_and_blanks_skipped(self):
        assert parse_swf(["; header", "", "   "]) == []


class TestReplay:
    def test_replay_runs_trace(self):
        sim = Simulation(seed=0)
        cluster = Cluster(sim, "replay", nodes=4, cores_per_node=16,
                          submit_overhead=0.0)
        jobs = parse_swf(SAMPLE.splitlines())
        replay = SwfReplay(sim, cluster, jobs)
        assert replay.start() == 3
        sim.run()
        assert cluster.completed_jobs == 3
        # job 1: 32 cores at t=0 on an idle 64-core machine
        recs = sim.trace.query(category="batch-job", event="RUNNING")
        assert recs[0].time == 0.0

    def test_time_scale_compresses(self):
        sim = Simulation(seed=0)
        cluster = Cluster(sim, "replay", nodes=4, cores_per_node=16,
                          submit_overhead=0.0)
        jobs = parse_swf(SAMPLE.splitlines())
        SwfReplay(sim, cluster, jobs, time_scale=0.5).start()
        sim.run(until=35)
        # job 2 (submit 60) arrives at t=30 under 0.5x
        assert cluster.completed_jobs + len(cluster.running_jobs()) >= 2

    def test_oversized_jobs_clipped(self):
        sim = Simulation(seed=0)
        cluster = Cluster(sim, "tiny", nodes=1, cores_per_node=8,
                          submit_overhead=0.0)
        jobs = [SwfJob(1, 0.0, 100.0, 512, 200.0, "u")]
        SwfReplay(sim, cluster, jobs).start()
        sim.run()
        assert cluster.completed_jobs == 1

    def test_validation(self):
        sim = Simulation(seed=0)
        cluster = Cluster(sim, "c", nodes=1, cores_per_node=8)
        with pytest.raises(ValueError):
            SwfReplay(sim, cluster, [], time_scale=0)
        sim.call_in(1, lambda: None)
        sim.run()
        with pytest.raises(RuntimeError):
            SwfReplay(sim, cluster, []).start()


class TestExport:
    def test_roundtrip_through_export(self):
        sim = Simulation(seed=0)
        cluster = Cluster(sim, "c", nodes=4, cores_per_node=16,
                          submit_overhead=0.0)
        finished = []
        cluster.add_listener(
            lambda j, old, new: finished.append(j)
            if new is JobState.COMPLETED else None
        )
        for cores, runtime in ((8, 100), (16, 200)):
            cluster.submit(BatchJob(cores=cores, runtime=runtime,
                                    walltime=runtime * 2))
        sim.run()
        text = export_swf(finished)
        reparsed = parse_swf(text.splitlines())
        assert len(reparsed) == 2
        assert {j.processors for j in reparsed} == {8, 16}
        assert {j.run_time for j in reparsed} == {100.0, 200.0}
