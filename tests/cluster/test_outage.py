"""Tests for resource outages (failure injection)."""

import pytest

from repro.bundle import BundleManager
from repro.cluster import BatchJob, Cluster, JobState
from repro.core import Binding, ExecutionManager, PlannerConfig
from repro.des import Simulation
from repro.net import Network
from repro.skeleton import SkeletonAPI, bag_of_tasks


def make_cluster(sim, name="c", nodes=2, cpn=8):
    return Cluster(sim, name, nodes=nodes, cores_per_node=cpn,
                   submit_overhead=0.0)


def test_outage_validation():
    sim = Simulation()
    cluster = make_cluster(sim)
    with pytest.raises(ValueError):
        cluster.set_offline(0)


def test_outage_kills_running_jobs():
    sim = Simulation()
    cluster = make_cluster(sim)
    job = BatchJob(cores=8, runtime=1000, walltime=2000)
    cluster.submit(job)
    sim.run(until=100)
    assert job.state is JobState.RUNNING
    cluster.set_offline(600)
    assert job.state is JobState.FAILED
    assert job.end_time == 100.0
    assert cluster.free_cores == cluster.total_cores
    assert cluster.is_offline


def test_queued_jobs_survive_and_start_after_outage():
    sim = Simulation()
    cluster = make_cluster(sim, nodes=1, cpn=8)
    runner = BatchJob(cores=8, runtime=5000, walltime=6000)
    queued = BatchJob(cores=8, runtime=100, walltime=200)
    cluster.submit(runner)
    cluster.submit(queued)
    sim.run(until=50)
    cluster.set_offline(1000)
    sim.run(until=500)
    assert queued.state is JobState.PENDING  # frozen, not killed
    sim.run()
    assert queued.state is JobState.COMPLETED
    assert queued.start_time >= 1050.0  # not before the outage ends


def test_no_dispatch_during_outage():
    sim = Simulation()
    cluster = make_cluster(sim)
    cluster.set_offline(500)
    job = BatchJob(cores=1, runtime=10, walltime=60)
    cluster.submit(job)
    sim.run(until=400)
    assert job.state is JobState.PENDING
    sim.run()
    assert job.state is JobState.COMPLETED
    assert job.start_time >= 500.0


def test_repeated_outages_extend():
    sim = Simulation()
    cluster = make_cluster(sim)
    cluster.set_offline(100)
    sim.run(until=50)
    cluster.set_offline(100)  # extends to t=150
    job = BatchJob(cores=1, runtime=10, walltime=60)
    cluster.submit(job)
    sim.run()
    assert job.start_time >= 150.0


def test_trace_records_outage_window():
    sim = Simulation()
    cluster = make_cluster(sim)
    cluster.set_offline(300)
    sim.run()
    events = [r.event for r in sim.trace.query(category="resource", entity="c")]
    assert events == ["OFFLINE", "ONLINE"]


def test_execution_survives_mid_run_outage():
    """A pilot killed by an outage strands its tasks; the middleware
    restarts them on the surviving resource (the paper's fault story)."""
    sim = Simulation(seed=3)
    net = Network(sim)
    clusters = {}
    for name in ("fragile", "sturdy"):
        net.add_site(name, bandwidth_bytes_per_s=1e7, latency_s=0.01)
        clusters[name] = make_cluster(sim, name, nodes=4, cpn=8)
    bundle = BundleManager(sim, net).create_bundle("pool", clusters)
    em = ExecutionManager(sim, net, bundle, agent_bootstrap_s=0.0)

    # Schedule an outage on "fragile" during task execution.
    sim.call_at(300.0, clusters["fragile"].set_offline, 4000.0)

    api = SkeletonAPI(bag_of_tasks(16, task_duration=600), seed=1)
    report = em.execute(
        api,
        PlannerConfig(
            binding=Binding.LATE, n_pilots=2,
            resources=("fragile", "sturdy"),
        ),
    )
    assert report.succeeded, "all tasks must finish despite the outage"
    assert report.decomposition.restarts > 0
    # the fragile pilot failed; the sturdy one survived
    states = {p.resource: p.state.value for p in report.pilots}
    assert states["fragile"] == "FAILED"
    # everything that completed ultimately ran on the survivor or before
    # the outage hit
    finishers = {u.pilot.resource for u in report.units}
    assert "sturdy" in finishers
