"""Tests for the sampled-wait cluster (the ablation's rejected model)."""

import numpy as np
import pytest

from repro.cluster import BatchJob, JobState
from repro.cluster.sampled import SampledWaitCluster, fit_lognormal_waits
from repro.des import Simulation


def make(sim, mu=3.0, sigma=0.5):
    return SampledWaitCluster(
        sim, "sampled", nodes=4, cores_per_node=8,
        wait_mu=mu, wait_sigma=sigma, submit_overhead=0.0,
    )


def test_fit_lognormal():
    mu, sigma = fit_lognormal_waits([100, 200, 400, 800])
    assert mu == pytest.approx(np.log([100, 200, 400, 800]).mean())
    assert sigma > 0
    with pytest.raises(ValueError):
        fit_lognormal_waits([])
    # floored at 1 s: zeros don't blow up the log
    mu0, _ = fit_lognormal_waits([0, 0, 0])
    assert mu0 == 0.0


def test_jobs_wait_sampled_durations():
    sim = Simulation(seed=5)
    cluster = make(sim, mu=np.log(300), sigma=0.1)
    jobs = [BatchJob(cores=1, runtime=60, walltime=120) for _ in range(10)]
    for j in jobs:
        cluster.submit(j)
    sim.run()
    waits = [j.wait_time for j in jobs]
    assert all(150 < w < 600 for w in waits)  # ~lognormal(log 300, 0.1)
    assert len(set(waits)) == len(waits)  # i.i.d., not identical
    assert cluster.completed_jobs == 10


def test_capacity_never_blocks():
    sim = Simulation(seed=6)
    cluster = make(sim, mu=np.log(10), sigma=0.01)
    # 20 full-machine jobs all start ~simultaneously regardless of capacity
    jobs = [BatchJob(cores=32, runtime=1000, walltime=2000) for _ in range(20)]
    for j in jobs:
        cluster.submit(j)
    sim.run(until=100)
    assert all(j.state is JobState.RUNNING for j in jobs)


def test_cancel_paths():
    sim = Simulation(seed=7)
    cluster = make(sim, mu=np.log(500), sigma=0.01)
    pending = BatchJob(cores=1, runtime=60, walltime=120)
    running = BatchJob(cores=1, runtime=5000, walltime=6000)
    cluster.submit(pending)
    cluster.submit(running)
    sim.run(until=600)  # both started? no: cancel pending first
    # running job is RUNNING; cancel it
    assert running.state is JobState.RUNNING
    cluster.cancel(running)
    assert running.state is JobState.CANCELLED
    sim.run()
    assert pending.state is JobState.COMPLETED


def test_walltime_kill_still_applies():
    sim = Simulation(seed=8)
    cluster = make(sim, mu=np.log(10), sigma=0.01)
    job = BatchJob(cores=1, runtime=5000, walltime=100)
    cluster.submit(job)
    sim.run()
    assert job.state is JobState.TIMEOUT
