"""Unit and property tests for the node pool."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import AllocationError, NodePool


def test_construction_validation():
    with pytest.raises(ValueError):
        NodePool(0, 16)
    with pytest.raises(ValueError):
        NodePool(4, 0)


def test_basic_accounting():
    pool = NodePool(4, 16)
    assert pool.total_cores == 64
    assert pool.free_cores == 64
    assert pool.utilization == 0.0
    pool.allocate(1, 20)
    assert pool.free_cores == 44
    assert pool.used_cores == 20
    pool.free(1)
    assert pool.free_cores == 64


def test_allocation_spans_nodes():
    pool = NodePool(4, 16)
    placement = pool.allocate(1, 40)
    assert sum(take for _, take in placement) == 40
    assert len(placement) >= 3  # 40 cores cannot fit on two 16-core nodes


def test_fullest_first_packing():
    pool = NodePool(3, 16)
    pool.allocate(1, 10)  # node A now has 6 free
    placement = pool.allocate(2, 6)
    # the 6-core request should land on the partially used node
    assert placement == [(placement[0][0], 6)]
    assert pool.busy_nodes() == 1


def test_over_allocation_rejected():
    pool = NodePool(2, 8)
    pool.allocate(1, 10)
    with pytest.raises(AllocationError):
        pool.allocate(2, 7)
    assert pool.free_cores == 6  # failed attempt must not leak cores


def test_duplicate_key_rejected():
    pool = NodePool(2, 8)
    pool.allocate(1, 2)
    with pytest.raises(AllocationError):
        pool.allocate(1, 2)


def test_free_unknown_key_rejected():
    pool = NodePool(2, 8)
    with pytest.raises(AllocationError):
        pool.free(99)


def test_can_fit():
    pool = NodePool(2, 8)
    assert pool.can_fit(16)
    assert not pool.can_fit(17)


def test_allocation_of():
    pool = NodePool(2, 8)
    pool.allocate(7, 3)
    assert pool.allocation_of(7) is not None
    assert pool.allocation_of(8) is None


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(1, 64), st.booleans()),
        min_size=1,
        max_size=60,
    )
)
def test_conservation_property(ops):
    """Free + allocated cores always equals capacity; free never negative."""
    pool = NodePool(8, 8)
    live = {}
    key = 0
    for cores, do_free in ops:
        if do_free and live:
            k = next(iter(live))
            pool.free(k)
            del live[k]
        elif cores <= pool.free_cores:
            key += 1
            placement = pool.allocate(key, cores)
            assert sum(t for _, t in placement) == cores
            live[key] = cores
        assert 0 <= pool.free_cores <= pool.total_cores
        assert pool.free_cores + sum(live.values()) == pool.total_cores
