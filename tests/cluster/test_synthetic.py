"""Tests for synthetic resource-pool generation."""

import pytest

from repro.cluster import synthetic_pool, synthetic_preset
from repro.des import Simulation
from repro.experiments import build_environment


def test_pool_size_and_names():
    pool = synthetic_pool(17, seed=4)
    assert len(pool) == 17
    assert [p.name for p in pool] == [f"synth-{i:02d}" for i in range(17)]
    with pytest.raises(ValueError):
        synthetic_pool(0)


def test_deterministic_in_seed():
    a = synthetic_pool(5, seed=9)
    b = synthetic_pool(5, seed=9)
    c = synthetic_pool(5, seed=10)
    assert [(p.nodes, p.access_schema) for p in a] == [
        (p.nodes, p.access_schema) for p in b
    ]
    assert [(p.nodes, p.access_schema) for p in a] != [
        (p.nodes, p.access_schema) for p in c
    ]


def test_presets_are_plausible():
    for p in synthetic_pool(20, seed=1):
        assert 2048 * 0.8 <= p.total_cores <= 16384 * 1.3
        assert p.cores_per_node in (16, 24, 32)
        assert 0.9 <= p.profile.offered_load <= 1.2
        assert p.access_schema in ("slurm", "pbs", "condor")
        assert p.wan_bandwidth_bytes_per_s > 0


def test_pool_is_heterogeneous():
    pool = synthetic_pool(17, seed=2)
    assert len({p.total_cores for p in pool}) > 8
    assert len({p.scheduler_factory().name for p in pool}) >= 2
    assert len({p.access_schema for p in pool}) >= 2


def test_synthetic_environment_builds_and_runs():
    env = build_environment(seed=1, presets=synthetic_pool(4, seed=3))
    assert len(env.pool) == 4
    env.warm_up(1800)
    # machines are alive: priming + arrivals produce load
    utils = [r.cluster.utilization for r in env.pool.values()]
    assert max(utils) > 0.5
