"""AllocationProfile, RunningMirror, and incremental-vs-stateless parity.

Covers the regression where a reservation boundary landing *before* the
first profile breakpoint must inherit the first level (the profile
extends flatly backwards), not wrap around to the last level via a
negative list index.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    BatchJob,
    ConservativeBackfillScheduler,
    EasyBackfillScheduler,
    SchedulerView,
)
from repro.cluster.schedulers.base import (
    AllocationProfile,
    RunningMirror,
    entries_from_running,
)


def _job(cores, walltime):
    return BatchJob(cores=cores, runtime=walltime, walltime=walltime)


# ---------------------------------------------------------------------------
# AllocationProfile
# ---------------------------------------------------------------------------


def test_from_entries_folds_past_releases():
    # releases at or before now raise the base level instead of adding
    # breakpoints in the past
    prof = AllocationProfile.from_entries(
        10.0, 2, [(5.0, 0, 3), (10.0, 1, 1), (20.0, 2, 4)]
    )
    assert prof.times == [10.0, 20.0]
    assert prof.free_at == [6, 10]


def test_ensure_breakpoint_before_first_inherits_first_level():
    """Regression: boundary < times[0] must inherit free_at[0], not the
    wrap-around free_at[-1] a raw ``idx - 1`` produces."""
    prof = AllocationProfile([10.0, 20.0], [4, 8])
    idx = prof._ensure_breakpoint(5.0)
    assert idx == 0
    assert prof.times == [5.0, 10.0, 20.0]
    assert prof.free_at == [4, 4, 8]  # inherited 4, not 8


def test_reserve_before_first_breakpoint():
    prof = AllocationProfile([10.0, 20.0], [4, 8])
    prof.reserve(5.0, 2, 3.0)  # window [5, 8) entirely before times[0]
    assert prof.times == [5.0, 8.0, 10.0, 20.0]
    assert prof.free_at == [2, 4, 4, 8]


def test_reserve_inserts_boundaries_and_subtracts():
    prof = AllocationProfile([0.0, 100.0], [4, 10])
    prof.reserve(0.0, 2, 50.0)
    assert prof.times == [0.0, 50.0, 100.0]
    assert prof.free_at == [2, 4, 10]
    prof.reserve(50.0, 4, 100.0)  # spans the 100.0 breakpoint
    assert prof.times == [0.0, 50.0, 100.0, 150.0]
    assert prof.free_at == [2, 0, 6, 10]


def test_find_anchor_skips_blocked_windows():
    # 0 free until t=10, 2 free until t=20, 6 free after
    prof = AllocationProfile([0.0, 10.0, 20.0], [0, 2, 6])
    assert prof.find_anchor(1, 5.0) == 10.0
    assert prof.find_anchor(4, 5.0) == 20.0
    assert prof.find_anchor(2, 100.0) == 10.0  # window past the end is flat
    assert prof.find_anchor(8, 1.0) == 20.0  # never enough: last breakpoint


@given(
    jobs=st.lists(
        st.tuples(st.integers(1, 8), st.integers(1, 50)),
        min_size=1,
        max_size=30,
    ),
    entries=st.lists(
        st.tuples(st.integers(1, 100), st.integers(1, 4)),
        min_size=0,
        max_size=15,
    ),
)
@settings(max_examples=200, deadline=None)
def test_property_reserved_profile_never_negative(jobs, entries):
    """Anchoring every job where find_anchor says it fits keeps the
    remaining free capacity non-negative everywhere."""
    ends = sorted(entries)
    total = 8 + sum(c for _, c in ends)
    prof = AllocationProfile.from_entries(
        0.0, 8, [(float(t), i, c) for i, (t, c) in enumerate(ends)]
    )
    for cores, walltime in jobs:
        if cores > total:
            continue
        anchor = prof.find_anchor(cores, float(walltime))
        prof.reserve(anchor, cores, float(walltime))
    assert all(level >= 0 for level in prof.free_at)
    assert prof.times == sorted(prof.times)


# ---------------------------------------------------------------------------
# RunningMirror
# ---------------------------------------------------------------------------


def test_mirror_matches_stateless_entries():
    rng = random.Random(7)
    mirror = RunningMirror()
    running = {}  # uid -> (job, end); dict preserves start order
    uid = 0
    for _ in range(300):
        if running and rng.random() < 0.45:
            gone = rng.choice(list(running))
            del running[gone]
            mirror.finish(gone)
        else:
            uid += 1
            job = _job(rng.randint(1, 16), rng.randint(1, 100))
            end = float(rng.randint(1, 1000))
            running[uid] = (job, end)
            mirror.start(uid, end, job.cores)
        stateless = entries_from_running(list(running.values()))
        assert [(e, c) for e, _s, c in mirror.entries] == [
            (e, c) for e, _s, c in stateless
        ]
    assert mirror.starts + mirror.finishes == 300


def test_mirror_duplicate_ends_keep_start_order():
    mirror = RunningMirror()
    mirror.start(1, 50.0, 4)
    mirror.start(2, 50.0, 8)
    mirror.start(3, 50.0, 2)
    assert [c for _e, _s, c in mirror.entries] == [4, 8, 2]
    mirror.finish(2)  # removes exactly the middle entry, not a twin
    assert [c for _e, _s, c in mirror.entries] == [4, 2]


# ---------------------------------------------------------------------------
# scheduler parity: mirror-backed view vs stateless fallback
# ---------------------------------------------------------------------------

_grid_jobs = st.lists(
    st.tuples(st.integers(1, 32), st.integers(1, 200)),
    min_size=0,
    max_size=25,
)


@given(pending=_grid_jobs, running=_grid_jobs)
@settings(max_examples=150, deadline=None)
def test_property_select_identical_with_and_without_mirror(pending, running):
    total = 64
    used = 0
    mirror = RunningMirror()
    running_view = []
    for i, (cores, end) in enumerate(running):
        cores = min(cores, total - used)
        if cores <= 0:
            break
        used += cores
        job = _job(cores, float(end))
        running_view.append((job, float(end)))
        mirror.start(job.uid, float(end), cores)
    pending_jobs = [
        _job(min(c, total), float(w)) for c, w in pending
    ]
    for scheduler in (
        ConservativeBackfillScheduler(),
        EasyBackfillScheduler(),
    ):
        views = [
            SchedulerView(
                now=0.0,
                free_cores=total - used,
                total_cores=total,
                pending=pending_jobs,
                running=running_view,
                running_ends=ends,
            )
            for ends in (mirror, None)
        ]
        with_mirror = scheduler.select(views[0])
        stateless = scheduler.select(views[1])
        assert with_mirror == stateless
