"""Tests for the synthetic background workload and resource presets."""

import math

import numpy as np
import pytest

from repro.cluster import (
    BackgroundWorkload,
    BatchJob,
    Cluster,
    JobState,
    PRESETS,
    WorkloadProfile,
    build_pool,
    build_resource,
)
from repro.des import Simulation


def small_cluster(sim, cores=1024):
    return Cluster(sim, "wl-test", nodes=cores // 16, cores_per_node=16,
                   submit_overhead=0.0)


def test_profile_validation():
    with pytest.raises(ValueError):
        WorkloadProfile(offered_load=0)
    with pytest.raises(ValueError):
        WorkloadProfile(core_choices=(1, 2), core_weights=(1.0,))
    with pytest.raises(ValueError):
        WorkloadProfile(core_weights=(0.5,) * 9)  # doesn't sum to 1
    with pytest.raises(ValueError):
        WorkloadProfile(diurnal_amplitude=1.5)


def test_profile_moments():
    p = WorkloadProfile()
    assert p.mean_cores > 1
    assert p.runtime_min <= p.mean_runtime <= p.runtime_max


def test_make_job_within_bounds():
    sim = Simulation(seed=3)
    cluster = small_cluster(sim)
    wl = BackgroundWorkload(sim, cluster, WorkloadProfile())
    for _ in range(200):
        job = wl.make_job()
        assert 1 <= job.cores <= cluster.total_cores
        assert job.runtime >= wl.profile.runtime_min
        assert job.runtime <= wl.profile.runtime_max
        assert job.walltime >= 60.0
        assert job.kind == "background"


def test_rate_modulation_bounds():
    sim = Simulation(seed=3)
    cluster = small_cluster(sim)
    wl = BackgroundWorkload(sim, cluster, WorkloadProfile(diurnal_amplitude=0.4))
    rates = [wl.rate_at(t) for t in np.linspace(0, 24 * 3600, 97)]
    assert max(rates) <= wl.base_rate * 1.4 + 1e-12
    assert min(rates) >= wl.base_rate * 0.6 - 1e-12


def test_rate_constant_without_diurnal():
    sim = Simulation(seed=3)
    cluster = small_cluster(sim)
    wl = BackgroundWorkload(sim, cluster, WorkloadProfile(diurnal_amplitude=0.0))
    assert wl.rate_at(0) == wl.rate_at(12345) == wl.base_rate


def test_arrivals_generate_load():
    """Over a simulated day, the machine reaches sustained high utilization."""
    sim = Simulation(seed=11)
    cluster = small_cluster(sim)
    wl = BackgroundWorkload(
        sim, cluster, WorkloadProfile(offered_load=0.95, diurnal_amplitude=0.0)
    )
    wl.start()
    sim.run(until=24 * 3600)
    assert wl.submitted > 10
    assert cluster.utilization > 0.5


def test_prime_preloads_queue():
    sim = Simulation(seed=5)
    cluster = small_cluster(sim)
    wl = BackgroundWorkload(sim, cluster, WorkloadProfile(offered_load=0.95))
    n = wl.prime(backlog_hours=1.0)
    assert n > 0
    sim.run(until=60)
    assert cluster.utilization > 0.8
    assert cluster.queue_length > 0


def test_prime_requires_time_zero():
    sim = Simulation(seed=5)
    cluster = small_cluster(sim)
    wl = BackgroundWorkload(sim, cluster, WorkloadProfile())
    sim.call_in(10, lambda: None)
    sim.run()
    with pytest.raises(RuntimeError):
        wl.prime()


def test_stop_halts_arrivals():
    sim = Simulation(seed=7)
    cluster = small_cluster(sim)
    wl = BackgroundWorkload(sim, cluster, WorkloadProfile())
    wl.start()
    sim.run(until=3600)
    count = wl.submitted
    wl.stop()
    sim.run(until=2 * 3600)
    assert wl.submitted <= count + 1  # at most one in-flight arrival


def test_workload_reproducible_across_runs():
    def run():
        sim = Simulation(seed=99)
        cluster = small_cluster(sim)
        wl = BackgroundWorkload(sim, cluster, WorkloadProfile())
        wl.start()
        sim.run(until=4 * 3600)
        return wl.submitted, cluster.completed_jobs

    assert run() == run()


def test_presets_cover_five_diverse_resources():
    assert len(PRESETS) == 5
    sizes = {p.total_cores for p in PRESETS.values()}
    assert len(sizes) == 5  # all different sizes
    schedulers = {p.scheduler_factory().name for p in PRESETS.values()}
    assert len(schedulers) >= 2  # heterogeneous policies


def test_build_resource_and_pool():
    sim = Simulation(seed=1)
    res = build_resource(sim, PRESETS["gordon-sim"])
    assert res.cluster.total_cores == PRESETS["gordon-sim"].total_cores
    sim2 = Simulation(seed=1)
    pool = build_pool(sim2, names=("gordon-sim", "comet-sim"), prime=False)
    assert set(pool) == {"gordon-sim", "comet-sim"}
    with pytest.raises(ValueError):
        build_pool(sim2, names=("missing-sim",))


def test_emergent_queue_waits_for_pilot_sized_jobs():
    """A wide job submitted to a busy machine experiences a nonzero wait.

    This is the core phenomenon behind the paper's Tw results, produced
    mechanistically by load rather than sampled from a distribution.
    """
    sim = Simulation(seed=21)
    res = build_resource(sim, PRESETS["blacklight-sim"])
    sim.run(until=1800)
    probe = BatchJob(cores=512, runtime=900, walltime=1800, kind="pilot")
    res.cluster.submit(probe)
    sim.run(until=48 * 3600)
    assert probe.start_time is not None, "probe never started within two days"
    assert probe.wait_time > 0
