"""Samplers for skeleton task attributes.

The Application Skeleton abstraction lets task lengths and file sizes be
constants, statistical distributions, or polynomial functions of other
parameters (e.g. output size as a function of task runtime). Each sampler
here is a small declarative object with a ``sample(rng, context)`` method;
``context`` carries the already-sampled attributes of the same task so
polynomials can reference them.

Samplers can also be parsed from compact spec strings, the notation used
by skeleton configuration files::

    "900"                          -> Constant(900)
    "uniform(60, 1800)"            -> Uniform(60, 1800)
    "gauss(900, 300, 60, 1800)"    -> TruncatedGaussian(mean, std, lo, hi)
    "lognormal(6.8, 0.7)"          -> LogNormal(mu, sigma)
    "poly(input_size, 0.5, 10)"    -> Polynomial over a context variable
"""

from __future__ import annotations

import abc
import re
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np


class DistributionError(ValueError):
    """Raised for invalid sampler parameters or spec strings."""


class Sampler(abc.ABC):
    """Base class for declarative attribute samplers."""

    @abc.abstractmethod
    def sample(
        self, rng: np.random.Generator, context: Optional[Dict[str, float]] = None
    ) -> float:
        """Draw one value (context holds sibling attributes for Polynomial)."""

    @abc.abstractmethod
    def mean(self) -> float:
        """Expected value, used by planners to estimate workloads."""


@dataclass(frozen=True)
class Constant(Sampler):
    """Always returns ``value``."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise DistributionError("Constant value must be non-negative")

    def sample(self, rng, context=None) -> float:
        return self.value

    def mean(self) -> float:
        return self.value


@dataclass(frozen=True)
class Uniform(Sampler):
    """Uniform over [low, high]."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if not (0 <= self.low <= self.high):
            raise DistributionError(f"invalid Uniform bounds [{self.low}, {self.high}]")

    def sample(self, rng, context=None) -> float:
        return float(rng.uniform(self.low, self.high))

    def mean(self) -> float:
        return (self.low + self.high) / 2


@dataclass(frozen=True)
class TruncatedGaussian(Sampler):
    """Normal(mean, std) resampled into [low, high].

    This is the distribution of the paper's experiments 2 and 4: task
    durations Gaussian with mean 15 min, stdev 5 min, truncated to
    [1, 30] minutes. Resampling (rather than clipping) avoids the point
    masses at the bounds that clipping would create.
    """

    mu: float
    sigma: float
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise DistributionError("sigma must be non-negative")
        if not (self.low <= self.high):
            raise DistributionError("low must be <= high")
        if not (self.low <= self.mu <= self.high):
            raise DistributionError("mean outside truncation bounds")

    def sample(self, rng, context=None) -> float:
        for _ in range(1000):
            x = float(rng.normal(self.mu, self.sigma))
            if self.low <= x <= self.high:
                return x
        # Pathologically narrow band: fall back to clipping.
        return float(np.clip(rng.normal(self.mu, self.sigma), self.low, self.high))

    def mean(self) -> float:
        # Symmetric truncation around mu leaves the mean at mu; for the
        # asymmetric case this is an approximation good enough for planning.
        return self.mu


@dataclass(frozen=True)
class LogNormal(Sampler):
    """Lognormal with underlying normal (mu, sigma), optionally bounded."""

    mu: float
    sigma: float
    low: float = 0.0
    high: float = float("inf")

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise DistributionError("sigma must be non-negative")
        if self.low > self.high:
            raise DistributionError("low must be <= high")

    def sample(self, rng, context=None) -> float:
        return float(np.clip(rng.lognormal(self.mu, self.sigma), self.low, self.high))

    def mean(self) -> float:
        return float(
            np.clip(np.exp(self.mu + self.sigma**2 / 2), self.low, self.high)
        )


@dataclass(frozen=True)
class Polynomial(Sampler):
    """Polynomial of a context variable: sum(c_k * x**k).

    ``coefficients`` are ordered from degree 0 upward. The paper's example:
    output size as a binomial (degree-2) function of task runtime.
    """

    variable: str
    coefficients: Sequence[float]

    def __post_init__(self) -> None:
        if not self.coefficients:
            raise DistributionError("Polynomial needs at least one coefficient")

    def sample(self, rng, context=None) -> float:
        if not context or self.variable not in context:
            raise DistributionError(
                f"Polynomial needs context variable {self.variable!r}"
            )
        x = context[self.variable]
        value = sum(c * x**k for k, c in enumerate(self.coefficients))
        return max(0.0, float(value))

    def mean(self) -> float:
        # Without the context distribution we cannot do better than the
        # constant term; planners treat polynomial attributes as data-driven.
        return max(0.0, float(self.coefficients[0]))


_SPEC_RE = re.compile(r"^\s*([a-z_]+)\s*\((.*)\)\s*$")


def parse_sampler(spec: "str | float | int | Sampler") -> Sampler:
    """Parse a spec string (or passthrough a number / Sampler) into a Sampler."""
    if isinstance(spec, Sampler):
        return spec
    if isinstance(spec, (int, float)):
        return Constant(float(spec))
    text = spec.strip()
    m = _SPEC_RE.match(text)
    if m is None:
        try:
            return Constant(float(text))
        except ValueError:
            raise DistributionError(f"cannot parse sampler spec {spec!r}") from None
    name, args_text = m.group(1), m.group(2)
    raw_args = [a.strip() for a in args_text.split(",")] if args_text.strip() else []
    if name == "poly":
        if len(raw_args) < 2:
            raise DistributionError("poly(variable, c0, ...) needs coefficients")
        return Polynomial(raw_args[0], tuple(float(a) for a in raw_args[1:]))
    try:
        args = [float(a) for a in raw_args]
    except ValueError:
        raise DistributionError(f"non-numeric argument in {spec!r}") from None
    if name == "constant" and len(args) == 1:
        return Constant(*args)
    if name == "uniform" and len(args) == 2:
        return Uniform(*args)
    if name in ("gauss", "gaussian", "normal") and len(args) == 4:
        return TruncatedGaussian(*args)
    if name == "lognormal" and len(args) in (2, 4):
        return LogNormal(*args)
    raise DistributionError(f"unknown sampler spec {spec!r}")
