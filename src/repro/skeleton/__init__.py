"""The Skeleton Application abstraction.

Parameterized descriptions of many-task applications — stages, task
counts, duration and file-size distributions — that materialize into
concrete task sets, plus builders for the canonical application classes
(bag-of-task, map-reduce, multistage), a configuration-file parser, and
output emitters (shell / JSON / DAG / DAX).
"""

from .api import ApplicationRequirements, SkeletonAPI
from .builders import (
    PAPER_GAUSSIAN,
    PAPER_INPUT_BYTES,
    PAPER_OUTPUT_BYTES,
    PAPER_TASK_COUNTS,
    PAPER_UNIFORM,
    bag_of_tasks,
    map_reduce,
    multistage,
    paper_skeleton,
)
from .distributions import (
    Constant,
    DistributionError,
    LogNormal,
    Polynomial,
    Sampler,
    TruncatedGaussian,
    Uniform,
    parse_sampler,
)
from .emitters import to_dag, to_dax, to_json, to_preparation_script, to_shell
from .model import (
    ConcreteApplication,
    ConcreteStage,
    ConcreteTask,
    FileSpec,
    SkeletonApp,
    SkeletonError,
    StageSpec,
    VALID_MAPPINGS,
)
from .parser import parse_config, parse_config_file
from .workflow import WorkflowAPI, from_dag, partition_levels

__all__ = [
    "ApplicationRequirements",
    "Constant",
    "ConcreteApplication",
    "ConcreteStage",
    "ConcreteTask",
    "DistributionError",
    "FileSpec",
    "LogNormal",
    "PAPER_GAUSSIAN",
    "PAPER_INPUT_BYTES",
    "PAPER_OUTPUT_BYTES",
    "PAPER_TASK_COUNTS",
    "PAPER_UNIFORM",
    "Polynomial",
    "Sampler",
    "SkeletonAPI",
    "SkeletonApp",
    "SkeletonError",
    "StageSpec",
    "TruncatedGaussian",
    "Uniform",
    "VALID_MAPPINGS",
    "bag_of_tasks",
    "map_reduce",
    "multistage",
    "paper_skeleton",
    "parse_config",
    "parse_config_file",
    "parse_sampler",
    "partition_levels",
    "WorkflowAPI",
    "from_dag",
    "to_dag",
    "to_dax",
    "to_json",
    "to_preparation_script",
    "to_shell",
]
