"""The skeleton application model: stages of tasks with data dependencies.

A :class:`SkeletonApp` is the *description*: stages with task counts and
attribute samplers. Calling :meth:`SkeletonApp.materialize` draws every
task's duration and file sizes from the samplers and resolves the
stage-to-stage file mappings, producing a :class:`ConcreteApplication`
that downstream layers (emitters, the execution manager) consume.

Stage input mappings supported (the generalized "(iterative) multistage
workflow" of the paper; bag-of-task is single-stage, map-reduce is
two-stage with an ``all_to_one``-style reduce):

* ``external`` — fresh input files created by the preparation step;
* ``one_to_one`` — task *i* reads the outputs of task *i* of the
  previous stage (map);
* ``all_to_one`` — every task reads *all* previous-stage outputs
  (reduce / shuffle);
* ``none`` — tasks read nothing.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .distributions import Constant, Sampler, parse_sampler

VALID_MAPPINGS = ("external", "one_to_one", "all_to_one", "none")


class SkeletonError(ValueError):
    """Raised for invalid skeleton descriptions."""


@dataclass(frozen=True)
class FileSpec:
    """A named file with a size, at materialization time."""

    name: str
    size_bytes: float


@dataclass
class StageSpec:
    """Description of one stage of a skeleton application."""

    name: str
    n_tasks: int
    task_duration: Sampler
    input_mapping: str = "external"
    input_size: Sampler = field(default_factory=lambda: Constant(1_000_000.0))
    output_size: Sampler = field(default_factory=lambda: Constant(2_000.0))
    #: cores per task: an int for uniform tasks, or any sampler spec for
    #: non-uniform task sizes (values are rounded and floored at 1).
    cores_per_task: "int | str | Sampler" = 1
    #: files produced per task (a task may emit several outputs).
    outputs_per_task: int = 1

    def __post_init__(self) -> None:
        if self.n_tasks <= 0:
            raise SkeletonError(f"stage {self.name!r}: n_tasks must be positive")
        if self.outputs_per_task <= 0:
            raise SkeletonError(f"stage {self.name!r}: outputs_per_task must be positive")
        if self.input_mapping not in VALID_MAPPINGS:
            raise SkeletonError(
                f"stage {self.name!r}: unknown input mapping "
                f"{self.input_mapping!r}; valid: {VALID_MAPPINGS}"
            )
        self.task_duration = parse_sampler(self.task_duration)
        self.input_size = parse_sampler(self.input_size)
        self.output_size = parse_sampler(self.output_size)
        if isinstance(self.cores_per_task, int):
            if self.cores_per_task <= 0:
                raise SkeletonError(
                    f"stage {self.name!r}: cores_per_task must be positive"
                )
            self.cores_per_task = Constant(float(self.cores_per_task))
        else:
            self.cores_per_task = parse_sampler(self.cores_per_task)

    def sample_cores(self, rng) -> int:
        """Draw one task's core count (>= 1)."""
        return max(1, int(round(self.cores_per_task.sample(rng))))

    def max_cores(self) -> int:
        """Planning bound on a single task's core count."""
        sampler = self.cores_per_task
        if isinstance(sampler, Constant):
            return max(1, int(round(sampler.value)))
        # for stochastic core counts, use a generous bound via the mean x 4
        return max(1, int(round(sampler.mean() * 4)))


@dataclass
class ConcreteTask:
    """A fully materialized task: fixed duration and files."""

    uid: str
    stage: str
    stage_index: int
    index: int
    duration: float
    cores: int
    inputs: Tuple[FileSpec, ...]
    outputs: Tuple[FileSpec, ...]
    #: uids of tasks whose outputs this task consumes.
    depends_on: Tuple[str, ...] = ()

    @property
    def input_bytes(self) -> float:
        return sum(f.size_bytes for f in self.inputs)

    @property
    def output_bytes(self) -> float:
        return sum(f.size_bytes for f in self.outputs)


@dataclass
class ConcreteStage:
    """All tasks of one stage after materialization."""

    name: str
    index: int
    tasks: List[ConcreteTask]

    @property
    def total_duration(self) -> float:
        return sum(t.duration for t in self.tasks)


@dataclass
class ConcreteApplication:
    """A materialized skeleton application, ready to execute."""

    name: str
    stages: List[ConcreteStage]
    #: external input files the preparation step must create at the origin.
    preparation_files: List[FileSpec]

    def all_tasks(self) -> List[ConcreteTask]:
        return [t for s in self.stages for t in s.tasks]

    @property
    def n_tasks(self) -> int:
        return sum(len(s.tasks) for s in self.stages)

    @property
    def total_compute_seconds(self) -> float:
        return sum(t.duration * t.cores for t in self.all_tasks())

    @property
    def total_input_bytes(self) -> float:
        return sum(f.size_bytes for f in self.preparation_files)

    @property
    def max_task_cores(self) -> int:
        return max(t.cores for t in self.all_tasks())

    def tasks_of_stage(self, index: int) -> List[ConcreteTask]:
        return self.stages[index].tasks


class SkeletonApp:
    """A skeleton application description (stages + iteration groups)."""

    def __init__(
        self,
        name: str,
        stages: Sequence[StageSpec],
        iterations: int = 1,
    ) -> None:
        if not stages:
            raise SkeletonError("application needs at least one stage")
        if iterations < 1:
            raise SkeletonError("iterations must be >= 1")
        names = [s.name for s in stages]
        if len(set(names)) != len(names):
            raise SkeletonError(f"duplicate stage names in {names}")
        first = stages[0]
        if first.input_mapping in ("one_to_one", "all_to_one") and iterations == 1:
            raise SkeletonError(
                f"first stage {first.name!r} cannot map from a previous stage"
            )
        self.name = name
        self.stages = list(stages)
        self.iterations = iterations

    # -- planning estimates (used by the Execution Manager) -------------------

    @property
    def n_tasks(self) -> int:
        return sum(s.n_tasks for s in self.stages) * self.iterations

    def estimated_compute_seconds(self) -> float:
        return (
            sum(
                s.n_tasks * s.task_duration.mean() * s.cores_per_task.mean()
                for s in self.stages
            )
            * self.iterations
        )

    def estimated_longest_task(self) -> float:
        return max(s.task_duration.mean() for s in self.stages)

    def max_stage_width(self) -> int:
        """Peak core demand of any single stage (full concurrency)."""
        import math as _math

        return max(
            int(_math.ceil(s.n_tasks * s.cores_per_task.mean()))
            for s in self.stages
        )

    # -- materialization -------------------------------------------------------

    def materialize(self, rng: np.random.Generator) -> ConcreteApplication:
        """Draw all task attributes and resolve file mappings."""
        stages_out: List[ConcreteStage] = []
        prep_files: List[FileSpec] = []
        prev_tasks: Optional[List[ConcreteTask]] = None
        stage_counter = itertools.count()

        for iteration in range(self.iterations):
            for spec in self.stages:
                s_idx = next(stage_counter)
                label = (
                    spec.name if self.iterations == 1
                    else f"{spec.name}.it{iteration}"
                )
                tasks: List[ConcreteTask] = []
                for i in range(spec.n_tasks):
                    uid = f"{self.name}/{label}/t{i:05d}"
                    duration = float(spec.task_duration.sample(rng))
                    cores = spec.sample_cores(rng)
                    context = {"duration": duration}

                    inputs: List[FileSpec]
                    depends: Tuple[str, ...]
                    mapping = spec.input_mapping
                    if mapping in ("one_to_one", "all_to_one") and prev_tasks is None:
                        # First stage of the first iteration falls back to
                        # external inputs even in iterative apps.
                        mapping = "external"

                    if mapping == "external":
                        size = float(spec.input_size.sample(rng, context))
                        context["input_size"] = size
                        fspec = FileSpec(f"{uid}.in", size)
                        inputs = [fspec]
                        prep_files.append(fspec)
                        depends = ()
                    elif mapping == "one_to_one":
                        src = prev_tasks[i % len(prev_tasks)]
                        inputs = list(src.outputs)
                        context["input_size"] = sum(f.size_bytes for f in inputs)
                        depends = (src.uid,)
                    elif mapping == "all_to_one":
                        inputs = [f for t in prev_tasks for f in t.outputs]
                        context["input_size"] = sum(f.size_bytes for f in inputs)
                        depends = tuple(t.uid for t in prev_tasks)
                    else:  # none
                        inputs = []
                        context["input_size"] = 0.0
                        depends = ()

                    outputs = tuple(
                        FileSpec(
                            f"{uid}.out{j}" if spec.outputs_per_task > 1 else f"{uid}.out",
                            float(spec.output_size.sample(rng, context)),
                        )
                        for j in range(spec.outputs_per_task)
                    )
                    tasks.append(
                        ConcreteTask(
                            uid=uid,
                            stage=label,
                            stage_index=s_idx,
                            index=i,
                            duration=duration,
                            cores=cores,
                            inputs=tuple(inputs),
                            outputs=outputs,
                            depends_on=depends,
                        )
                    )
                stages_out.append(ConcreteStage(name=label, index=s_idx, tasks=tasks))
                prev_tasks = tasks

        return ConcreteApplication(
            name=self.name, stages=stages_out, preparation_files=prep_files
        )
