"""Output backends for materialized skeleton applications.

The Application Skeleton tool emits a skeleton in several forms: shell
commands for sequential local execution, a DAG for workflow systems, a
JSON structure for middleware that consumes it directly, and preparation
scripts that create the input files. We reproduce all four:

* :func:`to_shell` — a POSIX shell script that runs the tasks in
  dependency order (one stage after another);
* :func:`to_preparation_script` — creates the external input files;
* :func:`to_json` — the JSON structure the AIMES execution manager reads;
* :func:`to_dag` — a :class:`networkx.DiGraph` of task dependencies;
* :func:`to_dax` — a Pegasus-DAX-flavoured XML document.
"""

from __future__ import annotations

import json
from typing import Any, Dict

import networkx as nx

from .model import ConcreteApplication


def to_preparation_script(app: ConcreteApplication) -> str:
    """Shell script that creates the application's external input files."""
    lines = [
        "#!/bin/sh",
        f"# preparation script for skeleton application {app.name!r}",
        "set -e",
        "mkdir -p input output",
    ]
    for f in app.preparation_files:
        size = int(round(f.size_bytes))
        lines.append(
            f"dd if=/dev/zero of='input/{f.name}' bs=1 count={size} 2>/dev/null"
        )
    lines.append(f"echo 'prepared {len(app.preparation_files)} input files'")
    return "\n".join(lines) + "\n"


def to_shell(app: ConcreteApplication) -> str:
    """Shell script running every task sequentially, in stage order.

    Each task command mimics the skeleton executable's behaviour: read the
    inputs, sleep for the task duration, write the outputs.
    """
    lines = [
        "#!/bin/sh",
        f"# skeleton application {app.name!r}: {app.n_tasks} tasks,",
        f"# {len(app.stages)} stage(s)",
        "set -e",
    ]
    for stage in app.stages:
        lines.append(f"# --- stage {stage.name} ({len(stage.tasks)} tasks) ---")
        for t in stage.tasks:
            ins = " ".join(f"'input/{f.name}'" for f in t.inputs) or "/dev/null"
            lines.append(f"cat {ins} > /dev/null")
            lines.append(f"sleep {t.duration:.0f}")
            for f in t.outputs:
                size = int(round(f.size_bytes))
                lines.append(
                    f"dd if=/dev/zero of='output/{f.name}' bs=1 "
                    f"count={size} 2>/dev/null"
                )
    return "\n".join(lines) + "\n"


def to_json(app: ConcreteApplication) -> str:
    """The JSON structure consumed by the AIMES execution manager."""
    doc: Dict[str, Any] = {
        "skeleton": {
            "name": app.name,
            "n_tasks": app.n_tasks,
            "preparation_files": [
                {"name": f.name, "size_bytes": f.size_bytes}
                for f in app.preparation_files
            ],
            "stages": [
                {
                    "name": s.name,
                    "index": s.index,
                    "tasks": [
                        {
                            "uid": t.uid,
                            "duration": t.duration,
                            "cores": t.cores,
                            "inputs": [
                                {"name": f.name, "size_bytes": f.size_bytes}
                                for f in t.inputs
                            ],
                            "outputs": [
                                {"name": f.name, "size_bytes": f.size_bytes}
                                for f in t.outputs
                            ],
                            "depends_on": list(t.depends_on),
                        }
                        for t in s.tasks
                    ],
                }
                for s in app.stages
            ],
        }
    }
    return json.dumps(doc, indent=2)


def to_dag(app: ConcreteApplication) -> "nx.DiGraph":
    """Task-dependency DAG; node attributes carry the task payload."""
    g = nx.DiGraph(name=app.name)
    for t in app.all_tasks():
        g.add_node(
            t.uid,
            stage=t.stage,
            duration=t.duration,
            cores=t.cores,
            input_bytes=t.input_bytes,
            output_bytes=t.output_bytes,
        )
    for t in app.all_tasks():
        for dep in t.depends_on:
            g.add_edge(dep, t.uid)
    if not nx.is_directed_acyclic_graph(g):  # pragma: no cover - model invariant
        raise ValueError("skeleton produced a cyclic dependency graph")
    return g


def to_dax(app: ConcreteApplication) -> str:
    """A Pegasus-DAX-flavoured XML rendering of the application."""
    out = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        f'<adag name="{app.name}" jobCount="{app.n_tasks}">',
    ]
    for t in app.all_tasks():
        out.append(
            f'  <job id="{t.uid}" name="skeleton-task" '
            f'runtime="{t.duration:.1f}">'
        )
        for f in t.inputs:
            out.append(
                f'    <uses file="{f.name}" link="input" '
                f'size="{int(f.size_bytes)}"/>'
            )
        for f in t.outputs:
            out.append(
                f'    <uses file="{f.name}" link="output" '
                f'size="{int(f.size_bytes)}"/>'
            )
        out.append("  </job>")
    for t in app.all_tasks():
        if t.depends_on:
            out.append(f'  <child ref="{t.uid}">')
            for dep in t.depends_on:
                out.append(f'    <parent ref="{dep}"/>')
            out.append("  </child>")
    out.append("</adag>")
    return "\n".join(out) + "\n"
