"""Convenience builders for the three canonical application classes.

The paper generalizes bag-of-task, (iterative) map-reduce, and
(iterative) multistage workflows into multistage workflows: bag-of-task
is a single stage, map-reduce is a map stage plus a reduce stage. These
builders produce :class:`~repro.skeleton.model.SkeletonApp` instances
with the right shapes, including the exact workloads of Table I.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .distributions import Constant, Sampler, TruncatedGaussian, parse_sampler
from .model import SkeletonApp, StageSpec


def bag_of_tasks(
    n_tasks: int,
    task_duration: "str | float | Sampler" = 900.0,
    input_size: "str | float | Sampler" = 1_000_000.0,
    output_size: "str | float | Sampler" = 2_000.0,
    cores_per_task: int = 1,
    name: Optional[str] = None,
) -> SkeletonApp:
    """A single-stage application of independent tasks."""
    return SkeletonApp(
        name=name or f"bot-{n_tasks}",
        stages=[
            StageSpec(
                name="bag",
                n_tasks=n_tasks,
                task_duration=parse_sampler(task_duration),
                input_mapping="external",
                input_size=parse_sampler(input_size),
                output_size=parse_sampler(output_size),
                cores_per_task=cores_per_task,
            )
        ],
    )


def map_reduce(
    n_map_tasks: int,
    n_reduce_tasks: int = 1,
    map_duration: "str | float | Sampler" = 600.0,
    reduce_duration: "str | float | Sampler" = 300.0,
    input_size: "str | float | Sampler" = 1_000_000.0,
    intermediate_size: "str | float | Sampler" = 100_000.0,
    output_size: "str | float | Sampler" = 2_000.0,
    iterations: int = 1,
    name: Optional[str] = None,
) -> SkeletonApp:
    """A two-stage map/reduce application (optionally iterated).

    When iterated, each iteration's map stage consumes the previous
    iteration's reduce outputs (the first iteration reads external
    inputs, via the materializer's fallback).
    """
    map_mapping = "one_to_one" if iterations > 1 else "external"
    return SkeletonApp(
        name=name or f"mapreduce-{n_map_tasks}x{n_reduce_tasks}",
        stages=[
            StageSpec(
                name="map",
                n_tasks=n_map_tasks,
                task_duration=parse_sampler(map_duration),
                input_mapping=map_mapping,
                input_size=parse_sampler(input_size),
                output_size=parse_sampler(intermediate_size),
            ),
            StageSpec(
                name="reduce",
                n_tasks=n_reduce_tasks,
                task_duration=parse_sampler(reduce_duration),
                input_mapping="all_to_one",
                output_size=parse_sampler(output_size),
            ),
        ],
        iterations=iterations,
    )


def multistage(
    stage_specs: Sequence[StageSpec],
    iterations: int = 1,
    name: str = "multistage",
) -> SkeletonApp:
    """A general multistage workflow from explicit stage specifications."""
    return SkeletonApp(name=name, stages=list(stage_specs), iterations=iterations)


# -- The paper's experimental workloads (Table I) -------------------------------

#: Truncated Gaussian used by experiments 2 and 4: mean 15 min, stdev
#: 5 min, bounds [1, 30] min (in seconds).
PAPER_GAUSSIAN = TruncatedGaussian(mu=900.0, sigma=300.0, low=60.0, high=1800.0)

#: Uniform (constant) duration used by experiments 1 and 3: 15 min.
PAPER_UNIFORM = Constant(900.0)

#: Per-task data of all paper experiments: 1 MB in, 2 KB out.
PAPER_INPUT_BYTES = 1_000_000.0
PAPER_OUTPUT_BYTES = 2_000.0

#: Task counts 2^n for n = 3..11 (8 .. 2048).
PAPER_TASK_COUNTS = tuple(2**n for n in range(3, 12))


def paper_skeleton(n_tasks: int, gaussian: bool, name: Optional[str] = None) -> SkeletonApp:
    """One of the 18 skeleton applications in Table I.

    ``gaussian=False`` gives the uniform (15 min) task durations of
    experiments 1 and 3; ``gaussian=True`` the truncated Gaussian of
    experiments 2 and 4.
    """
    if n_tasks not in PAPER_TASK_COUNTS:
        raise ValueError(
            f"paper workloads use task counts {PAPER_TASK_COUNTS}, got {n_tasks}"
        )
    duration = PAPER_GAUSSIAN if gaussian else PAPER_UNIFORM
    kind = "gauss" if gaussian else "uniform"
    return bag_of_tasks(
        n_tasks=n_tasks,
        task_duration=duration,
        input_size=PAPER_INPUT_BYTES,
        output_size=PAPER_OUTPUT_BYTES,
        name=name or f"paper-{kind}-{n_tasks}",
    )
