"""Configuration-file front end for skeleton applications.

The original Application Skeleton tool is driven by a configuration file;
we provide the same workflow with an INI dialect::

    [application]
    name = sample
    iterations = 1
    stages = map reduce

    [stage:map]
    tasks = 16
    duration = gauss(900, 300, 60, 1800)
    input = external
    input_size = 1000000
    output_size = 100000

    [stage:reduce]
    tasks = 1
    duration = 300
    input = all_to_one
    output_size = 2000

Values for ``duration`` / ``input_size`` / ``output_size`` use the
sampler spec notation of :mod:`repro.skeleton.distributions`.
"""

from __future__ import annotations

import configparser
from typing import List

from .distributions import parse_sampler
from .model import SkeletonApp, SkeletonError, StageSpec


def parse_config(text: str) -> SkeletonApp:
    """Parse an INI skeleton description into a SkeletonApp."""
    cp = configparser.ConfigParser()
    try:
        cp.read_string(text)
    except configparser.Error as exc:
        raise SkeletonError(f"malformed skeleton config: {exc}") from exc

    if "application" not in cp:
        raise SkeletonError("missing [application] section")
    app_sec = cp["application"]
    name = app_sec.get("name", "skeleton-app")
    iterations = app_sec.getint("iterations", fallback=1)
    stage_names = app_sec.get("stages", "").split()
    if not stage_names:
        raise SkeletonError("[application] must list stage names in 'stages'")

    stages: List[StageSpec] = []
    for sname in stage_names:
        section = f"stage:{sname}"
        if section not in cp:
            raise SkeletonError(f"missing [{section}] section")
        sec = cp[section]
        if "tasks" not in sec:
            raise SkeletonError(f"[{section}] missing required key 'tasks'")
        if "duration" not in sec:
            raise SkeletonError(f"[{section}] missing required key 'duration'")
        stages.append(
            StageSpec(
                name=sname,
                n_tasks=sec.getint("tasks"),
                task_duration=parse_sampler(sec.get("duration")),
                input_mapping=sec.get("input", "external"),
                input_size=parse_sampler(sec.get("input_size", "1000000")),
                output_size=parse_sampler(sec.get("output_size", "2000")),
                cores_per_task=sec.get("cores", "1"),
                outputs_per_task=sec.getint("outputs_per_task", fallback=1),
            )
        )
    return SkeletonApp(name=name, stages=stages, iterations=iterations)


def parse_config_file(path: str) -> SkeletonApp:
    """Parse a skeleton description from a file on disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_config(fh.read())
