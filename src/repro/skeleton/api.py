"""The Skeleton API: the facade the AIMES execution manager calls.

Mirrors the paper's step (1): "information is gathered about an
application via the skeleton API". A :class:`SkeletonAPI` wraps a
description, materializes it reproducibly, reports planning estimates,
and can run the preparation step (creating the input files at the
origin site of a simulated network).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..net import Network, ORIGIN
from .model import ConcreteApplication, SkeletonApp


@dataclass(frozen=True)
class ApplicationRequirements:
    """The application-side information an execution strategy needs."""

    name: str
    n_tasks: int
    n_stages: int
    max_stage_width: int        # peak cores if fully concurrent
    max_task_cores: int         # widest single task (floor for pilot size)
    estimated_compute_seconds: float
    estimated_longest_task: float
    total_input_bytes: float
    total_output_bytes: float


class SkeletonAPI:
    """Programmatic access to one skeleton application."""

    def __init__(self, app: SkeletonApp, seed: int = 0) -> None:
        self.app = app
        self.seed = seed
        self._concrete: Optional[ConcreteApplication] = None

    @property
    def concrete(self) -> ConcreteApplication:
        """The materialized application (drawn once, cached)."""
        if self._concrete is None:
            rng = np.random.default_rng(
                np.random.SeedSequence(entropy=self.seed)
            )
            self._concrete = self.app.materialize(rng)
        return self._concrete

    def requirements(self) -> ApplicationRequirements:
        """Summarize the application for the execution manager."""
        concrete = self.concrete
        return ApplicationRequirements(
            name=self.app.name,
            n_tasks=concrete.n_tasks,
            n_stages=len(concrete.stages),
            max_stage_width=self.app.max_stage_width(),
            max_task_cores=concrete.max_task_cores,
            estimated_compute_seconds=self.app.estimated_compute_seconds(),
            estimated_longest_task=self.app.estimated_longest_task(),
            total_input_bytes=concrete.total_input_bytes,
            total_output_bytes=sum(
                t.output_bytes for t in concrete.all_tasks()
            ),
        )

    def prepare(self, network: Network) -> int:
        """Run the preparation step: create input files at the origin.

        Returns the number of files created.
        """
        fs = network.fs(ORIGIN)
        for f in self.concrete.preparation_files:
            fs.write(f.name, f.size_bytes, now=network.sim.now)
        return len(self.concrete.preparation_files)
