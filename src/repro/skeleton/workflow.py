"""Workflow import: execute arbitrary task DAGs through the middleware.

The paper integrates the Swift workflow language with the AIMES
middleware and experiments with "ways to decompose Swift workflows to
adapt to resource availability". This module is the language-neutral
equivalent: any :class:`networkx.DiGraph` whose nodes carry task
attributes becomes a :class:`~repro.skeleton.model.ConcreteApplication`
the Execution Manager can run, and :func:`partition_levels` exposes the
level-wise decomposition (each level's width bounds the useful pilot
concurrency for that phase).

Node attributes:

``duration`` (required)
    Task runtime in seconds.
``cores`` (default 1)
    Cores for the task.
``input_bytes`` (default 0)
    Size of the task's *external* input (roots only; non-root tasks read
    their parents' outputs).
``output_bytes`` (default 2000)
    Size of the file the task produces.
"""

from __future__ import annotations

from typing import Dict, List

import networkx as nx

from .model import (
    ConcreteApplication,
    ConcreteStage,
    ConcreteTask,
    FileSpec,
    SkeletonError,
)


def partition_levels(graph: "nx.DiGraph") -> List[List[str]]:
    """Group nodes by dependency depth (longest path from any root).

    Level *k* contains tasks whose deepest ancestor chain has length
    *k*; all of a level can run concurrently once the previous levels
    are done. This is the decomposition used to adapt workflow phases
    to resource availability.
    """
    if not nx.is_directed_acyclic_graph(graph):
        raise SkeletonError("workflow graph must be a DAG")
    depth: Dict[str, int] = {}
    for node in nx.topological_sort(graph):
        preds = list(graph.predecessors(node))
        depth[node] = 0 if not preds else 1 + max(depth[p] for p in preds)
    levels: List[List[str]] = [[] for _ in range(max(depth.values(), default=-1) + 1)]
    for node, d in depth.items():
        levels[d].append(node)
    for level in levels:
        level.sort()
    return levels


def from_dag(
    graph: "nx.DiGraph",
    name: str = "workflow",
    default_output_bytes: float = 2_000.0,
) -> ConcreteApplication:
    """Convert a task DAG into a runnable concrete application."""
    if graph.number_of_nodes() == 0:
        raise SkeletonError("workflow graph has no tasks")
    levels = partition_levels(graph)

    # Validate attributes up front for a clear error surface.
    for node, data in graph.nodes(data=True):
        if "duration" not in data:
            raise SkeletonError(f"workflow node {node!r} lacks 'duration'")
        if data["duration"] < 0:
            raise SkeletonError(f"workflow node {node!r}: negative duration")
        if data.get("cores", 1) < 1:
            raise SkeletonError(f"workflow node {node!r}: cores must be >= 1")

    prep_files: List[FileSpec] = []
    outputs: Dict[str, FileSpec] = {}
    stages: List[ConcreteStage] = []

    for level_index, level in enumerate(levels):
        tasks: List[ConcreteTask] = []
        for i, node in enumerate(level):
            data = graph.nodes[node]
            uid = f"{name}/{node}"
            parents = sorted(graph.predecessors(node))
            if parents:
                inputs = tuple(outputs[p] for p in parents)
            else:
                size = float(data.get("input_bytes", 0.0))
                if size > 0:
                    fspec = FileSpec(f"{uid}.in", size)
                    prep_files.append(fspec)
                    inputs = (fspec,)
                else:
                    inputs = ()
            out = FileSpec(
                f"{uid}.out", float(data.get("output_bytes", default_output_bytes))
            )
            outputs[node] = out
            tasks.append(
                ConcreteTask(
                    uid=uid,
                    stage=f"level{level_index}",
                    stage_index=level_index,
                    index=i,
                    duration=float(data["duration"]),
                    cores=int(data.get("cores", 1)),
                    inputs=inputs,
                    outputs=(out,),
                    depends_on=tuple(f"{name}/{p}" for p in parents),
                )
            )
        stages.append(
            ConcreteStage(name=f"level{level_index}", index=level_index, tasks=tasks)
        )
    return ConcreteApplication(
        name=name, stages=stages, preparation_files=prep_files
    )


class WorkflowAPI:
    """Skeleton-API-compatible wrapper around an imported workflow.

    Lets a DAG be handed to :class:`~repro.core.ExecutionManager` just
    like a skeleton application: it exposes ``app`` metadata, the cached
    ``concrete`` application, ``requirements()``, and ``prepare()``.
    """

    def __init__(self, graph: "nx.DiGraph", name: str = "workflow") -> None:
        from .api import ApplicationRequirements  # local to avoid cycle

        self._requirements_cls = ApplicationRequirements
        self.concrete = from_dag(graph, name=name)
        self.graph = graph
        self.app = _WorkflowAppFacade(self.concrete)

    def requirements(self):
        concrete = self.concrete
        widths = [
            sum(t.cores for t in stage.tasks) for stage in concrete.stages
        ]
        return self._requirements_cls(
            name=concrete.name,
            n_tasks=concrete.n_tasks,
            n_stages=len(concrete.stages),
            max_stage_width=max(widths),
            max_task_cores=concrete.max_task_cores,
            estimated_compute_seconds=concrete.total_compute_seconds,
            estimated_longest_task=max(
                t.duration for t in concrete.all_tasks()
            ),
            total_input_bytes=concrete.total_input_bytes,
            total_output_bytes=sum(
                t.output_bytes for t in concrete.all_tasks()
            ),
        )

    def prepare(self, network) -> int:
        from ..net import ORIGIN

        fs = network.fs(ORIGIN)
        for f in self.concrete.preparation_files:
            fs.write(f.name, f.size_bytes, now=network.sim.now)
        return len(self.concrete.preparation_files)


class _WorkflowAppFacade:
    """Minimal ``app``-shaped object (name attribute) for reports/traces."""

    def __init__(self, concrete: ConcreteApplication) -> None:
        self.name = concrete.name
