"""The campaign observatory's run ledger: streaming NDJSON, one event per line.

A long campaign is opaque while it runs and forensically mute after it
crashes; the ledger fixes both. The runner appends one JSON object per
event — campaign start, every cell completion (coordinates, wall cost,
worker pid, digests, anomaly flags), campaign end — flushing each line,
so the file is valid and current at every instant: ``repro tail`` reads
it live, post-hoc tools (``repro analyze``/``repro report``) read it
after the fact, and a killed campaign leaves every completed cell on
disk.

Line kinds::

    {"kind": "campaign-start", "total": 16, "meta": {...}, "wall": ...}
    {"kind": "campaign_resumed", "committed": 9, "errors_skipped": 0,
     "errors_retried": 1, "reclaimed": 2, "remaining": 7, "wall": ...}
    {"kind": "attempt_started", "exp": 3, "n": 256, "rep": 1,
     "attempt": 2, "worker": 12345, "wall": ...}
    {"kind": "attempt_timeout", "exp": 3, "n": 256, "rep": 1,
     "attempt": 2, "budget_s": 30.0, "wall": ...}
    {"kind": "cell_retried", "exp": 3, "n": 256, "rep": 1,
     "attempt": 3, "backoff_s": 0.7, "wall": ...}
    {"kind": "cell", "exp": 3, "n": 256, "rep": 1, "ok": true,
     "wall_s": 0.41, "worker": 12345, "ttc": 5012.3,
     "digest": "...", "attribution_digest": "...",
     "anomalies": ["incomplete"], ...}
    {"kind": "campaign-end", "completed": 15, "errors": 1, "wall_s": ...,
     "interrupted": false}

(The attempt/resume events keep the snake_case names of the resilience
layer that emits them; see :mod:`repro.experiments.resilience`.)

Wall timestamps are operational metadata (they differ run to run); the
deterministic content — coordinates, virtual-time results, digests — is
what the sentinel and the tests consume.
"""

from __future__ import annotations

import json
import logging
import time
from typing import IO, Any, Dict, Iterable, List, Optional

from .campaign import CellProgress, RunResult

log = logging.getLogger(__name__)


def flag_anomalies(run: RunResult) -> List[str]:
    """Deterministic per-run anomaly flags for the ledger and reports."""
    flags: List[str] = []
    if run.units_done < run.n_tasks:
        flags.append("incomplete")
    if run.restarts:
        flags.append("restarts")
    if run.attribution:
        by = dict(run.attribution)
        if run.ttc > 0 and by.get("idle", 0.0) > 0.05 * run.ttc:
            flags.append("idle-heavy")
    return flags


class RunLedger:
    """Append-only run-ledger writer the campaign runner streams into.

    Writes NDJSON to ``path``, mirrors every record into a
    :class:`~repro.experiments.store.CampaignStore` ``ledger`` table,
    publishes it to an in-process :class:`~repro.telemetry.bus.EventBus`
    (the live observability plane), or any combination — every sink
    carries identical records and ``repro tail`` reads either durable
    one. At least one sink must be given. The bus sink is fire-and-
    forget and never blocks, so attaching a monitor cannot perturb the
    campaign (see :mod:`repro.telemetry.bus`).
    """

    def __init__(
        self,
        path: Optional[str] = None,
        store=None,
        append: bool = False,
        bus=None,
    ) -> None:
        if path is None and store is None and bus is None:
            raise ValueError("RunLedger needs a path, a store, or a bus")
        self.path = path
        self.store = store
        self.bus = bus
        # a resumed campaign appends to the interrupted session's ledger
        # instead of truncating its history.
        mode = "a" if append else "w"
        self._fh: Optional[IO[str]] = (
            open(path, mode, encoding="utf-8") if path is not None else None
        )

    # -- record emitters -------------------------------------------------------

    def campaign_start(self, total: int, meta: Dict[str, Any]) -> None:
        self._emit({
            "kind": "campaign-start",
            "total": total,
            "meta": meta,
            "wall": time.time(),
        })

    def cell(
        self,
        progress: CellProgress,
        run: Optional[RunResult] = None,
        worker: Optional[int] = None,
    ) -> None:
        exp_id, n_tasks, rep = progress.cell
        record: Dict[str, Any] = {
            "kind": "cell",
            "exp": exp_id,
            "n": n_tasks,
            "rep": rep,
            "ok": progress.ok,
            "done": progress.done,
            "total": progress.total,
            "wall_s": progress.wall_s,
            "wall": time.time(),
        }
        if worker is not None:
            record["worker"] = worker
        if run is not None:
            record.update(
                ttc=run.ttc,
                units_done=run.units_done,
                events=run.events,
                digest=run.digest,
                attribution_digest=run.attribution_digest,
                anomalies=flag_anomalies(run),
            )
            if run.attribution:
                # per-component TTC shares; deterministic content the
                # live dashboard renders as share bars.
                record["components"] = {k: v for k, v in run.attribution}
        if progress.error is not None:
            record["error"] = progress.error
            record["anomalies"] = ["error"]
        self._emit(record)

    def campaign_end(
        self, completed: int, errors: int, wall_s: float,
        interrupted: bool = False,
    ) -> None:
        self._emit({
            "kind": "campaign-end",
            "completed": completed,
            "errors": errors,
            "wall_s": wall_s,
            "interrupted": interrupted,
            "wall": time.time(),
        })

    def campaign_resumed(
        self, committed: int, errors_skipped: int, errors_retried: int,
        reclaimed: int, remaining: int,
    ) -> None:
        """A resumed session taking over a half-finished store."""
        self._emit({
            "kind": "campaign_resumed",
            "committed": committed,
            "errors_skipped": errors_skipped,
            "errors_retried": errors_retried,
            "reclaimed": reclaimed,
            "remaining": remaining,
            "wall": time.time(),
        })

    def attempt_started(
        self, cell, attempt: int, worker: Optional[int] = None
    ) -> None:
        exp_id, n_tasks, rep = cell
        record: Dict[str, Any] = {
            "kind": "attempt_started",
            "exp": exp_id, "n": n_tasks, "rep": rep,
            "attempt": attempt,
            "wall": time.time(),
        }
        if worker is not None:
            record["worker"] = worker
        self._emit(record)

    def attempt_timeout(self, cell, attempt, budget_s: float) -> None:
        exp_id, n_tasks, rep = cell
        self._emit({
            "kind": "attempt_timeout",
            "exp": exp_id, "n": n_tasks, "rep": rep,
            "attempt": attempt,
            "budget_s": budget_s,
            "wall": time.time(),
        })

    def cell_retried(
        self, cell, attempt: int, backoff_s: float = 0.0
    ) -> None:
        exp_id, n_tasks, rep = cell
        self._emit({
            "kind": "cell_retried",
            "exp": exp_id, "n": n_tasks, "rep": rep,
            "attempt": attempt,
            "backoff_s": backoff_s,
            "wall": time.time(),
        })

    def heartbeat(self, cells, workers=()) -> None:
        """Liveness pulse for in-flight cells — **bus-only**, never persisted.

        Heartbeats are operational noise with no forensic value (the
        attempts table already timestamps leases durably), so they skip
        the file and store sinks entirely and only feed live
        subscribers' worker-liveness views.
        """
        if self.bus is None:
            return
        self.bus.publish({
            "kind": "heartbeat",
            "cells": [list(c) for c in cells],
            "workers": [int(w) for w in workers],
            "wall": time.time(),
        })

    # -- plumbing --------------------------------------------------------------

    def _emit(self, record: Dict[str, Any]) -> None:
        if (
            self._fh is None and self.store is None and self.bus is None
        ):  # pragma: no cover
            log.warning("ledger %s already closed; record dropped", self.path)
            return
        if self._fh is not None:
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._fh.flush()
        if self.store is not None:
            self.store.append_ledger(record)
        if self.bus is not None:
            self.bus.publish(record)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
        self.store = None  # the store handle is owned by the caller
        self.bus = None  # likewise: subscribers outlive the ledger

    def __enter__(self) -> "RunLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- reading side --------------------------------------------------------------


def read_ledger(path: str) -> List[Dict[str, Any]]:
    """Parse an NDJSON ledger; tolerates a torn trailing line (live file).

    A live tail can split the writer's last line anywhere — including
    *inside* a multi-byte UTF-8 character — so the file is read as
    bytes and each line decoded individually: a trailing fragment that
    fails to decode or to parse is dropped, everything before it is
    intact. (Text-mode reading would raise ``UnicodeDecodeError`` for
    the whole file on a mid-character tear.)
    """
    records: List[Dict[str, Any]] = []
    with open(path, "rb") as fh:
        data = fh.read()
    for raw in data.split(b"\n"):
        if not raw.strip():
            continue
        try:
            records.append(json.loads(raw.decode("utf-8")))
        except (UnicodeDecodeError, json.JSONDecodeError):
            # a writer mid-line (possibly mid-character); everything
            # before it is intact.
            log.debug("torn ledger line ignored: %.40r...", raw[:40])
            break
    return records


def read_ledger_any(path: str) -> List[Dict[str, Any]]:
    """Read ledger records from an NDJSON file *or* a campaign store.

    ``repro tail`` points here: the campaign runner streams the same
    records to both sinks, so consumers need not care which one they
    were handed.
    """
    from .store import CampaignStore, is_store

    if is_store(path):
        with CampaignStore(path, readonly=True) as store:
            return store.ledger_records()
    return read_ledger(path)


def _cell_key(rec: Dict[str, Any], index: int):
    """Coordinates key for deduping cell records across resumed sessions.

    A retried cell (``--retry-errors``) emits a second ``cell`` record
    in the resumed session; the later record supersedes the earlier
    one. Records without coordinates (hand-rolled/legacy) never
    collide — each keeps its own identity.
    """
    exp, n, rep = rec.get("exp"), rec.get("n"), rec.get("rep")
    if exp is None or n is None or rep is None:
        return ("_", index)
    return (exp, n, rep)


def ledger_progress(records: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold ledger records into one progress snapshot.

    Understands resumed campaigns: ``cell`` records are deduplicated by
    coordinates (last record wins, so a retried error cell counts
    once), attempt events fold into per-cell attempt counts, and the
    latest ``campaign_resumed`` record is surfaced as ``resumed``.
    """
    total = 0
    finished = False
    interrupted = False
    resumed: Optional[Dict[str, Any]] = None
    cells: Dict[Any, Dict[str, Any]] = {}
    attempts: Dict[Any, int] = {}
    retries = 0
    timeouts = 0
    for i, rec in enumerate(records):
        kind = rec.get("kind")
        if kind == "campaign-start":
            total = int(rec.get("total", 0))
            finished = False
        elif kind == "campaign_resumed":
            resumed = rec
        elif kind == "attempt_started":
            key = _cell_key(rec, i)
            attempts[key] = attempts.get(key, 0) + 1
        elif kind == "attempt_timeout":
            timeouts += 1
        elif kind == "cell_retried":
            retries += 1
        elif kind == "cell":
            cells[_cell_key(rec, i)] = rec
        elif kind == "campaign-end":
            finished = True
            interrupted = bool(rec.get("interrupted", False))
    done = len(cells)
    errors = sum(1 for rec in cells.values() if not rec.get("ok", False))
    anomalies = [rec for rec in cells.values() if rec.get("anomalies")]
    wall_spent = sum(float(r.get("wall_s", 0.0)) for r in cells.values())
    mean_wall = wall_spent / done if done else 0.0
    remaining = max(0, total - done)
    return {
        "total": total,
        "done": done,
        "errors": errors,
        "finished": finished,
        "interrupted": interrupted,
        "resumed": resumed,
        "attempts": attempts,
        "retries": retries,
        "timeouts": timeouts,
        "anomalies": anomalies,
        "wall_spent_s": wall_spent,
        "eta_s": mean_wall * remaining,
    }


def render_tail(records: List[Dict[str, Any]], last: int = 8) -> str:
    """Human-readable snapshot of a (possibly still running) campaign."""
    snap = ledger_progress(records)
    total, done = snap["total"], snap["done"]
    frac = done / total if total else 0.0
    bar_w = 32
    fill = int(round(bar_w * min(1.0, frac)))
    if snap["finished"] and snap["interrupted"]:
        state = "interrupted (resumable)"
    elif snap["finished"]:
        state = "finished"
    else:
        state = "running"
    lines = [
        f"campaign {state}: [{'#' * fill}{'.' * (bar_w - fill)}] "
        f"{done}/{total} cells"
        + (f", {snap['errors']} errors" if snap["errors"] else "")
        + (f", {snap['retries']} retries" if snap["retries"] else "")
        + (
            f", ETA {snap['eta_s']:.0f}s"
            if not snap["finished"] and done else ""
        ),
    ]
    if snap["resumed"] is not None:
        r = snap["resumed"]
        lines.append(
            f"  resumed: {r.get('committed', 0)} committed skipped, "
            f"{r.get('errors_retried', 0)} errors retried, "
            f"{r.get('reclaimed', 0)} stale leases reclaimed, "
            f"{r.get('remaining', 0)} cells to run"
        )
    cells = [r for r in records if r.get("kind") == "cell"]
    attempts = snap["attempts"]
    for rec in cells[-last:]:
        mark = "ok " if rec.get("ok") else "ERR"
        extra = ""
        n_att = attempts.get(
            (rec.get("exp"), rec.get("n"), rec.get("rep")), 0
        )
        if n_att > 1:
            extra += f"  att={n_att}"
        if rec.get("anomalies"):
            extra += "  !" + ",".join(rec["anomalies"])
        ttc = rec.get("ttc")
        ttc_s = f" TTC={ttc:.0f}s" if isinstance(ttc, (int, float)) else ""
        lines.append(
            f"  {mark} exp{rec.get('exp', '?')} n={rec.get('n', '?')}"
            f" rep={rec.get('rep', '?')}"
            f"{ttc_s} wall={rec.get('wall_s', 0.0):.2f}s"
            f" w{rec.get('worker', '-')}{extra}"
        )
    for rec in snap["anomalies"]:
        if rec not in cells[-last:]:
            lines.append(
                f"  !  exp{rec.get('exp', '?')} n={rec.get('n', '?')}"
                f" rep={rec.get('rep', '?')}: "
                + ",".join(rec.get("anomalies", ()))
            )
    return "\n".join(lines)
