"""The four experiments of Table I, run as Monte-Carlo campaigns.

Each experiment couples one execution strategy with nine bag-of-task
skeleton applications (8..2048 single-core tasks, uniform 15 min or
truncated-Gaussian durations). A campaign runs every (experiment, size)
cell for several repetitions; each repetition gets a fresh simulated
testbed, an independent seed, a randomized warm-up offset, and — as in
the paper — a randomized choice/order of target resources.
"""

from __future__ import annotations

import gc
import hashlib
import json
import logging
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import Binding, PlannerConfig
from ..skeleton import PAPER_TASK_COUNTS, SkeletonAPI, paper_skeleton
from ..telemetry.causality import attribute_report
from .environment import build_environment

log = logging.getLogger(__name__)


@contextmanager
def _gc_paused():
    """Suspend the cyclic garbage collector for one repetition.

    A repetition allocates hundreds of thousands of short-lived tracked
    objects (events, trace records, state tuples); with the default
    thresholds the gen-2 collector fires mid-simulation and costs more
    than the entire attribution sweep. Pausing for the bounded lifetime
    of one repetition moves that work to the natural boundary between
    repetitions. Reentrant (the inner pause is a no-op), and the prior
    collector state is always restored.
    """
    was_enabled = gc.isenabled()
    if was_enabled:
        gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


@dataclass(frozen=True)
class ExperimentSpec:
    """One row family of Table I."""

    exp_id: int
    gaussian: bool          # task-duration distribution
    binding: Binding
    unit_scheduler: str
    n_pilots: int

    @property
    def label(self) -> str:
        dist = "Gaussian" if self.gaussian else "Uniform"
        b = "Late" if self.binding is Binding.LATE else "Early"
        return f"Exp.{self.exp_id} ({b} {dist} {self.n_pilots} pilot(s))"


#: Table I. Experiments 1-2: early binding, direct scheduler, one pilot
#: sized to run all tasks concurrently. Experiments 3-4: late binding,
#: backfill scheduler, three pilots of #tasks/3 cores each.
TABLE1: Dict[int, ExperimentSpec] = {
    1: ExperimentSpec(1, gaussian=False, binding=Binding.EARLY,
                      unit_scheduler="direct", n_pilots=1),
    2: ExperimentSpec(2, gaussian=True, binding=Binding.EARLY,
                      unit_scheduler="direct", n_pilots=1),
    3: ExperimentSpec(3, gaussian=False, binding=Binding.LATE,
                      unit_scheduler="backfill", n_pilots=3),
    4: ExperimentSpec(4, gaussian=True, binding=Binding.LATE,
                      unit_scheduler="backfill", n_pilots=3),
}


@dataclass(frozen=True)
class RunResult:
    """The measurements of one repetition."""

    exp_id: int
    n_tasks: int
    rep: int
    resources: Tuple[str, ...]
    ttc: float
    tw: float
    tw_last: float
    tx: float
    ts: float
    trp: float
    pilot_waits: Tuple[float, ...]
    units_done: int
    restarts: int
    #: kernel events processed by this repetition's simulation.
    events: int = 0
    #: SHA-256 over the repetition's telemetry/fault/health digests when
    #: the run was executed with ``collect_digests=True``; "" otherwise.
    digest: str = ""
    #: exact partition of TTC by causal component, in
    #: :data:`repro.telemetry.causality.COMPONENTS` order; the values
    #: sum to ``ttc`` within 1e-9 by construction. Empty tuple for
    #: campaign files written before the attribution engine existed.
    attribution: Tuple[Tuple[str, float], ...] = ()
    #: SHA-256 of the run's canonical attribution + critical path —
    #: byte-identical across serial and parallel campaigns of one seed.
    attribution_digest: str = ""

    @property
    def succeeded(self) -> bool:
        return self.units_done == self.n_tasks


@dataclass(frozen=True)
class CellProgress:
    """One completed repetition, as delivered to ``on_progress``.

    Replaces the old bare ``(done, total)`` callback arguments: consumers
    see *which* cell finished, what it cost in wall time, and whether it
    errored — enough to drive ETAs, ledgers, and live anomaly flags.
    """

    done: int
    total: int
    cell: Tuple[int, int, int]        # (exp_id, n_tasks, rep)
    wall_s: float
    error: Optional[str] = None       # CellError message; None on success
    ttc: float = float("nan")

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass(frozen=True)
class CellError:
    """A repetition that did not produce a result (worker crash, bug)."""

    exp_id: int
    n_tasks: int
    rep: int
    error: str


@dataclass
class CampaignResult:
    """All repetitions of a campaign, with aggregation helpers.

    Cell lookups go through a ``(exp_id, n_tasks)`` index built lazily
    and invalidated whenever ``runs`` changes length, so repeated
    :meth:`aggregate`/:meth:`series` calls on a large campaign cost
    O(cell) instead of O(runs) each.
    """

    runs: List[RunResult] = field(default_factory=list)
    #: repetitions lost to worker crashes or per-cell exceptions; a
    #: healthy campaign has none.
    errors: List[CellError] = field(default_factory=list)
    #: how the campaign was produced (seed, grid, reps) — persisted by
    #: :mod:`repro.experiments.io` so post-hoc tools (``repro report``)
    #: can re-derive any single repetition deterministically.
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._index: Dict[Tuple[int, int], List[RunResult]] = {}
        self._indexed_len = -1

    def add(self, run: RunResult) -> None:
        """Append one repetition (keeps the cell index incremental)."""
        self.runs.append(run)
        if self._indexed_len == len(self.runs) - 1:
            self._index.setdefault((run.exp_id, run.n_tasks), []).append(run)
            self._indexed_len = len(self.runs)

    def _cell_index(self) -> Dict[Tuple[int, int], List[RunResult]]:
        # Length-check invalidation: direct `runs` mutation (the public
        # dataclass field) is detected and triggers a rebuild.
        if self._indexed_len != len(self.runs):
            index: Dict[Tuple[int, int], List[RunResult]] = {}
            for r in self.runs:
                index.setdefault((r.exp_id, r.n_tasks), []).append(r)
            self._index = index
            self._indexed_len = len(self.runs)
        return self._index

    def cell(self, exp_id: int, n_tasks: int) -> List[RunResult]:
        return list(self._cell_index().get((exp_id, n_tasks), ()))

    def aggregate(
        self, exp_id: int, n_tasks: int, attr: str = "ttc"
    ) -> Tuple[float, float]:
        """(mean, std) of one attribute over a cell's repetitions."""
        values = [
            getattr(r, attr)
            for r in self._cell_index().get((exp_id, n_tasks), ())
        ]
        if not values:
            return (float("nan"), float("nan"))
        arr = np.asarray(values, dtype=float)
        return float(arr.mean()), float(arr.std(ddof=0))

    def series(
        self, exp_id: int, attr: str = "ttc",
        task_counts: Sequence[int] = PAPER_TASK_COUNTS,
    ) -> List[Tuple[int, float, float]]:
        """[(n_tasks, mean, std), ...] for one experiment."""
        return [
            (n, *self.aggregate(exp_id, n, attr)) for n in task_counts
        ]


def run_cell_report(
    spec: ExperimentSpec,
    n_tasks: int,
    rep: int = 0,
    campaign_seed: int = 0,
    resource_pool: Optional[Sequence[str]] = None,
    min_warmup_s: float = 2 * 3600.0,
    max_warmup_s: float = 12 * 3600.0,
    telemetry: bool = False,
):
    """Execute one repetition; returns ``(report, env, resources)``.

    The deterministic heart of :func:`run_single`, exposed separately so
    post-hoc tools (``repro report``) can *replay* any repetition of a
    saved campaign from its coordinates and recover the full
    :class:`~repro.core.execution_manager.ExecutionReport` — critical
    path included — without the campaign having stored it.
    """
    ss = np.random.SeedSequence(
        entropy=campaign_seed, spawn_key=(spec.exp_id, n_tasks, rep)
    )
    seeds = ss.generate_state(3)
    rng = np.random.default_rng(seeds[0])

    with _gc_paused():
        env = build_environment(
            seed=int(seeds[1]), resources=resource_pool,
            telemetry=telemetry,
        )
        # Randomized submission instant (irregular intervals, paper §IV.A).
        env.warm_up(float(rng.uniform(min_warmup_s, max_warmup_s)))

        # Randomized resource choice and submission order (paper §IV.A).
        pool_names = list(env.pool)
        chosen = tuple(
            rng.choice(pool_names, size=spec.n_pilots, replace=False)
        )

        skeleton = SkeletonAPI(
            paper_skeleton(n_tasks, gaussian=spec.gaussian), seed=int(seeds[2])
        )
        config = PlannerConfig(
            binding=spec.binding,
            unit_scheduler=spec.unit_scheduler,
            n_pilots=spec.n_pilots,
            resources=chosen,
        )
        report = env.execution_manager.execute(skeleton, config)
    return report, env, chosen


def run_single(
    spec: ExperimentSpec,
    n_tasks: int,
    rep: int = 0,
    campaign_seed: int = 0,
    resource_pool: Optional[Sequence[str]] = None,
    min_warmup_s: float = 2 * 3600.0,
    max_warmup_s: float = 12 * 3600.0,
    collect_digests: bool = False,
) -> RunResult:
    """Execute one repetition of one (experiment, size) cell.

    The repetition's seed, warm-up offset, target resources, and
    materialized task durations all derive deterministically from
    ``(campaign_seed, exp_id, n_tasks, rep)``.

    ``collect_digests`` enables the telemetry hub for the repetition and
    stores a SHA-256 digest of the telemetry/fault/health logs in the
    result — the cheap, order-independent way to check that two
    executions of the same cell (e.g. serial vs. parallel campaign)
    observed the identical simulated history.
    """
    with _gc_paused():
        report, env, chosen = run_cell_report(
            spec, n_tasks, rep,
            campaign_seed=campaign_seed,
            resource_pool=resource_pool,
            min_warmup_s=min_warmup_s,
            max_warmup_s=max_warmup_s,
            telemetry=collect_digests,
        )
        d = report.decomposition
        # Causal attribution is derived from the entity histories alone,
        # so it is available (and digest-stable) with or without
        # telemetry.
        att = attribute_report(report)
    log.debug(
        "cell exp=%d n=%d rep=%d: %s",
        spec.exp_id, n_tasks, rep, att.summary(),
    )
    digest = ""
    if collect_digests:
        payload = {
            "telemetry": env.sim.telemetry.digest(),
            "faults": (
                report.fault_log.digest()
                if report.fault_log is not None else None
            ),
            "health": (
                report.health_log.digest()
                if report.health_log is not None else None
            ),
        }
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()
    return RunResult(
        exp_id=spec.exp_id,
        n_tasks=n_tasks,
        rep=rep,
        resources=chosen,
        ttc=d.ttc,
        tw=d.tw,
        tw_last=d.tw_last,
        tx=d.tx,
        ts=d.ts,
        trp=d.trp,
        pilot_waits=d.pilot_waits,
        units_done=d.units_done,
        restarts=d.restarts,
        events=int(env.sim.events_processed),
        digest=digest,
        attribution=att.components,
        attribution_digest=att.digest(),
    )


def run_campaign(
    experiments: Sequence[int] = (1, 2, 3, 4),
    task_counts: Sequence[int] = PAPER_TASK_COUNTS,
    reps: int = 5,
    campaign_seed: int = 0,
    resource_pool: Optional[Sequence[str]] = None,
    verbose: bool = False,
    jobs: int = 1,
    collect_digests: bool = False,
    on_progress: Optional[Callable[[CellProgress], None]] = None,
    ledger=None,
    store=None,
    resume: bool = False,
    resilience=None,
    control=None,
) -> CampaignResult:
    """Run the full experiment grid; returns all repetitions.

    ``jobs`` fans the (experiment, size, rep) grid out to that many
    worker processes (0 = one per usable CPU). Each repetition is seeded
    independently from ``(campaign_seed, exp_id, n_tasks, rep)``, so the
    parallel campaign produces results identical to the serial one —
    see :mod:`repro.experiments.runner` for the determinism contract.

    ``on_progress`` receives one :class:`CellProgress` per completed
    repetition; ``ledger`` (a :class:`repro.experiments.ledger.RunLedger`)
    streams the campaign's NDJSON run ledger in both serial and
    parallel modes. ``store`` (a
    :class:`repro.experiments.store.CampaignStore`) persists each
    repetition as it completes — one committed row per cell plus a
    lease/attempt history, so a concurrent reader (``repro tail``) and
    a post-crash forensic pass both see exactly the completed prefix.

    ``resume=True`` (requires ``store``) continues a half-finished
    campaign: the stored config is verified against the requested one
    (:class:`~repro.experiments.resilience.IncompatibleResumeError` on
    mismatch), committed cells are skipped, stale leases reclaimed, and
    only the remainder runs — per-cell seeding makes the resumed store
    byte-identical (by campaign fingerprint digest) to an uninterrupted
    run. ``resilience`` is a
    :class:`~repro.experiments.resilience.ResiliencePolicy` (timeouts,
    retry budgets, ``retry_errors``). SIGINT/SIGTERM drain the in-flight
    cell and raise
    :class:`~repro.experiments.resilience.CampaignInterrupted` with the
    store marked cleanly interrupted; a second signal hard-cancels.
    """
    if jobs != 1:
        from .runner import run_parallel_campaign

        return run_parallel_campaign(
            experiments=experiments,
            task_counts=task_counts,
            reps=reps,
            campaign_seed=campaign_seed,
            resource_pool=resource_pool,
            verbose=verbose,
            jobs=jobs,
            collect_digests=collect_digests,
            on_progress=on_progress,
            ledger=ledger,
            store=store,
            resume=resume,
            resilience=resilience,
            control=control,
        )
    from .resilience import (
        CampaignInterrupted,
        ExecutionSupervisor,
        ResiliencePolicy,
        ShutdownControl,
        config_digest,
        prepare_resume,
    )

    policy = resilience if resilience is not None else ResiliencePolicy()
    meta = campaign_meta(
        experiments=experiments, task_counts=task_counts, reps=reps,
        campaign_seed=campaign_seed, resource_pool=resource_pool,
    )
    grid = [
        (exp_id, n_tasks, rep)
        for exp_id in experiments
        for n_tasks in task_counts
        for rep in range(reps)
    ]
    if resume:
        if store is None:
            raise ValueError("resume=True requires a store")
        plan = prepare_resume(
            store, meta, grid, retry_errors=policy.retry_errors
        )
        remaining = plan.remaining
    else:
        plan = None
        remaining = list(grid)

    result = CampaignResult(meta=meta)
    total = len(grid)
    done_offset = total - len(remaining)
    log.info(
        "serial campaign: %d cells (%d to run), seed=%d",
        total, len(remaining), campaign_seed,
    )
    campaign_w0 = perf_counter()
    if store is not None:
        store.set_campaign_meta(meta)
        store.set_config_digest(config_digest(meta))
    if ledger is not None:
        ledger.campaign_start(total, meta)
        if plan is not None:
            ledger.campaign_resumed(
                committed=len(plan.committed),
                errors_skipped=len(plan.errors_skipped),
                errors_retried=len(plan.errors_retried),
                reclaimed=plan.reclaimed_leases,
                remaining=len(plan.remaining),
            )
    supervisor = ExecutionSupervisor(store=store, ledger=ledger, policy=policy)
    own_control = control is None
    if own_control:
        # serial: the second signal must actually preempt the in-flight
        # cell, so the handler raises KeyboardInterrupt on escalation.
        control = ShutdownControl(raise_on_hard=True)
    control.install()
    interrupted = False
    try:
        for cell in remaining:
            if control.draining:
                interrupted = True
                break
            exp_id, n_tasks, rep = cell
            spec = TABLE1[exp_id]
            supervisor.begin(cell, worker=os.getpid())
            w0 = perf_counter()
            try:
                run = run_single(
                    spec, n_tasks, rep,
                    campaign_seed=campaign_seed,
                    resource_pool=resource_pool,
                    collect_digests=collect_digests,
                )
            except KeyboardInterrupt:
                # hard cancel mid-cell: the repetition is lost (it will
                # be re-run on resume), but nothing partial was written
                # — the store only ever holds whole committed cells.
                supervisor.close(cell, "interrupted", "hard-cancelled mid-cell")
                interrupted = True
                break
            wall = perf_counter() - w0
            result.add(run)
            supervisor.commit(cell, run)
            if verbose:
                print(
                    f"{spec.label} n={n_tasks} rep={rep}: "
                    f"TTC={run.ttc:.0f}s Tw={run.tw:.0f}s "
                    f"done={run.units_done}/{n_tasks}"
                )
            progress = CellProgress(
                done=done_offset + len(result.runs), total=total,
                cell=cell, wall_s=wall, ttc=run.ttc,
            )
            if ledger is not None:
                ledger.cell(progress, run=run)
            if on_progress is not None:
                on_progress(progress)
    except KeyboardInterrupt:
        # a hard cancel landing between cells (or inside a ledger/store
        # call): transactions make the store consistent either way.
        interrupted = True
    finally:
        control.restore()
    if interrupted:
        if store is not None:
            store.set_interrupted(True)
        if ledger is not None:
            ledger.campaign_end(
                len(result.runs), 0, perf_counter() - campaign_w0,
                interrupted=True,
            )
        raise CampaignInterrupted(
            f"campaign interrupted after {done_offset + len(result.runs)}"
            f"/{total} cells; the store holds every committed cell",
            result=result,
        )
    if store is not None:
        store.set_interrupted(False)
    if ledger is not None:
        ledger.campaign_end(
            len(result.runs), 0, perf_counter() - campaign_w0
        )
    if resume and store is not None:
        # the caller sees the whole campaign — previously committed
        # cells included — in grid order, exactly as an uninterrupted
        # run would have returned it.
        return store.load_campaign()
    return result


def campaign_meta(
    experiments: Sequence[int],
    task_counts: Sequence[int],
    reps: int,
    campaign_seed: int,
    resource_pool: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """The provenance dict a campaign carries in ``CampaignResult.meta``."""
    return {
        "experiments": [int(e) for e in experiments],
        "task_counts": [int(n) for n in task_counts],
        "reps": int(reps),
        "campaign_seed": int(campaign_seed),
        "resource_pool": (
            list(resource_pool) if resource_pool is not None else None
        ),
    }
