"""The four experiments of Table I, run as Monte-Carlo campaigns.

Each experiment couples one execution strategy with nine bag-of-task
skeleton applications (8..2048 single-core tasks, uniform 15 min or
truncated-Gaussian durations). A campaign runs every (experiment, size)
cell for several repetitions; each repetition gets a fresh simulated
testbed, an independent seed, a randomized warm-up offset, and — as in
the paper — a randomized choice/order of target resources.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import Binding, PlannerConfig
from ..skeleton import PAPER_TASK_COUNTS, SkeletonAPI, paper_skeleton
from .environment import build_environment


@dataclass(frozen=True)
class ExperimentSpec:
    """One row family of Table I."""

    exp_id: int
    gaussian: bool          # task-duration distribution
    binding: Binding
    unit_scheduler: str
    n_pilots: int

    @property
    def label(self) -> str:
        dist = "Gaussian" if self.gaussian else "Uniform"
        b = "Late" if self.binding is Binding.LATE else "Early"
        return f"Exp.{self.exp_id} ({b} {dist} {self.n_pilots} pilot(s))"


#: Table I. Experiments 1-2: early binding, direct scheduler, one pilot
#: sized to run all tasks concurrently. Experiments 3-4: late binding,
#: backfill scheduler, three pilots of #tasks/3 cores each.
TABLE1: Dict[int, ExperimentSpec] = {
    1: ExperimentSpec(1, gaussian=False, binding=Binding.EARLY,
                      unit_scheduler="direct", n_pilots=1),
    2: ExperimentSpec(2, gaussian=True, binding=Binding.EARLY,
                      unit_scheduler="direct", n_pilots=1),
    3: ExperimentSpec(3, gaussian=False, binding=Binding.LATE,
                      unit_scheduler="backfill", n_pilots=3),
    4: ExperimentSpec(4, gaussian=True, binding=Binding.LATE,
                      unit_scheduler="backfill", n_pilots=3),
}


@dataclass(frozen=True)
class RunResult:
    """The measurements of one repetition."""

    exp_id: int
    n_tasks: int
    rep: int
    resources: Tuple[str, ...]
    ttc: float
    tw: float
    tw_last: float
    tx: float
    ts: float
    trp: float
    pilot_waits: Tuple[float, ...]
    units_done: int
    restarts: int

    @property
    def succeeded(self) -> bool:
        return self.units_done == self.n_tasks


@dataclass
class CampaignResult:
    """All repetitions of a campaign, with aggregation helpers."""

    runs: List[RunResult] = field(default_factory=list)

    def cell(self, exp_id: int, n_tasks: int) -> List[RunResult]:
        return [
            r for r in self.runs if r.exp_id == exp_id and r.n_tasks == n_tasks
        ]

    def aggregate(
        self, exp_id: int, n_tasks: int, attr: str = "ttc"
    ) -> Tuple[float, float]:
        """(mean, std) of one attribute over a cell's repetitions."""
        values = [getattr(r, attr) for r in self.cell(exp_id, n_tasks)]
        if not values:
            return (float("nan"), float("nan"))
        arr = np.asarray(values, dtype=float)
        return float(arr.mean()), float(arr.std(ddof=0))

    def series(
        self, exp_id: int, attr: str = "ttc",
        task_counts: Sequence[int] = PAPER_TASK_COUNTS,
    ) -> List[Tuple[int, float, float]]:
        """[(n_tasks, mean, std), ...] for one experiment."""
        return [
            (n, *self.aggregate(exp_id, n, attr)) for n in task_counts
        ]


def run_single(
    spec: ExperimentSpec,
    n_tasks: int,
    rep: int = 0,
    campaign_seed: int = 0,
    resource_pool: Optional[Sequence[str]] = None,
    min_warmup_s: float = 2 * 3600.0,
    max_warmup_s: float = 12 * 3600.0,
) -> RunResult:
    """Execute one repetition of one (experiment, size) cell.

    The repetition's seed, warm-up offset, target resources, and
    materialized task durations all derive deterministically from
    ``(campaign_seed, exp_id, n_tasks, rep)``.
    """
    ss = np.random.SeedSequence(
        entropy=campaign_seed, spawn_key=(spec.exp_id, n_tasks, rep)
    )
    seeds = ss.generate_state(3)
    rng = np.random.default_rng(seeds[0])

    env = build_environment(seed=int(seeds[1]), resources=resource_pool)
    # Randomized submission instant (irregular intervals, paper §IV.A).
    env.warm_up(float(rng.uniform(min_warmup_s, max_warmup_s)))

    # Randomized resource choice and submission order (paper §IV.A).
    pool_names = list(env.pool)
    chosen = tuple(
        rng.choice(pool_names, size=spec.n_pilots, replace=False)
    )

    skeleton = SkeletonAPI(
        paper_skeleton(n_tasks, gaussian=spec.gaussian), seed=int(seeds[2])
    )
    config = PlannerConfig(
        binding=spec.binding,
        unit_scheduler=spec.unit_scheduler,
        n_pilots=spec.n_pilots,
        resources=chosen,
    )
    report = env.execution_manager.execute(skeleton, config)
    d = report.decomposition
    return RunResult(
        exp_id=spec.exp_id,
        n_tasks=n_tasks,
        rep=rep,
        resources=chosen,
        ttc=d.ttc,
        tw=d.tw,
        tw_last=d.tw_last,
        tx=d.tx,
        ts=d.ts,
        trp=d.trp,
        pilot_waits=d.pilot_waits,
        units_done=d.units_done,
        restarts=d.restarts,
    )


def run_campaign(
    experiments: Sequence[int] = (1, 2, 3, 4),
    task_counts: Sequence[int] = PAPER_TASK_COUNTS,
    reps: int = 5,
    campaign_seed: int = 0,
    resource_pool: Optional[Sequence[str]] = None,
    verbose: bool = False,
) -> CampaignResult:
    """Run the full experiment grid; returns all repetitions."""
    result = CampaignResult()
    for exp_id in experiments:
        spec = TABLE1[exp_id]
        for n_tasks in task_counts:
            for rep in range(reps):
                run = run_single(
                    spec, n_tasks, rep,
                    campaign_seed=campaign_seed,
                    resource_pool=resource_pool,
                )
                result.runs.append(run)
                if verbose:
                    print(
                        f"{spec.label} n={n_tasks} rep={rep}: "
                        f"TTC={run.ttc:.0f}s Tw={run.tw:.0f}s "
                        f"done={run.units_done}/{n_tasks}"
                    )
    return result
