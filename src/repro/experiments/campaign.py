"""The four experiments of Table I, run as Monte-Carlo campaigns.

Each experiment couples one execution strategy with nine bag-of-task
skeleton applications (8..2048 single-core tasks, uniform 15 min or
truncated-Gaussian durations). A campaign runs every (experiment, size)
cell for several repetitions; each repetition gets a fresh simulated
testbed, an independent seed, a randomized warm-up offset, and — as in
the paper — a randomized choice/order of target resources.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import Binding, PlannerConfig
from ..skeleton import PAPER_TASK_COUNTS, SkeletonAPI, paper_skeleton
from .environment import build_environment


@dataclass(frozen=True)
class ExperimentSpec:
    """One row family of Table I."""

    exp_id: int
    gaussian: bool          # task-duration distribution
    binding: Binding
    unit_scheduler: str
    n_pilots: int

    @property
    def label(self) -> str:
        dist = "Gaussian" if self.gaussian else "Uniform"
        b = "Late" if self.binding is Binding.LATE else "Early"
        return f"Exp.{self.exp_id} ({b} {dist} {self.n_pilots} pilot(s))"


#: Table I. Experiments 1-2: early binding, direct scheduler, one pilot
#: sized to run all tasks concurrently. Experiments 3-4: late binding,
#: backfill scheduler, three pilots of #tasks/3 cores each.
TABLE1: Dict[int, ExperimentSpec] = {
    1: ExperimentSpec(1, gaussian=False, binding=Binding.EARLY,
                      unit_scheduler="direct", n_pilots=1),
    2: ExperimentSpec(2, gaussian=True, binding=Binding.EARLY,
                      unit_scheduler="direct", n_pilots=1),
    3: ExperimentSpec(3, gaussian=False, binding=Binding.LATE,
                      unit_scheduler="backfill", n_pilots=3),
    4: ExperimentSpec(4, gaussian=True, binding=Binding.LATE,
                      unit_scheduler="backfill", n_pilots=3),
}


@dataclass(frozen=True)
class RunResult:
    """The measurements of one repetition."""

    exp_id: int
    n_tasks: int
    rep: int
    resources: Tuple[str, ...]
    ttc: float
    tw: float
    tw_last: float
    tx: float
    ts: float
    trp: float
    pilot_waits: Tuple[float, ...]
    units_done: int
    restarts: int
    #: kernel events processed by this repetition's simulation.
    events: int = 0
    #: SHA-256 over the repetition's telemetry/fault/health digests when
    #: the run was executed with ``collect_digests=True``; "" otherwise.
    digest: str = ""

    @property
    def succeeded(self) -> bool:
        return self.units_done == self.n_tasks


@dataclass(frozen=True)
class CellError:
    """A repetition that did not produce a result (worker crash, bug)."""

    exp_id: int
    n_tasks: int
    rep: int
    error: str


@dataclass
class CampaignResult:
    """All repetitions of a campaign, with aggregation helpers.

    Cell lookups go through a ``(exp_id, n_tasks)`` index built lazily
    and invalidated whenever ``runs`` changes length, so repeated
    :meth:`aggregate`/:meth:`series` calls on a large campaign cost
    O(cell) instead of O(runs) each.
    """

    runs: List[RunResult] = field(default_factory=list)
    #: repetitions lost to worker crashes or per-cell exceptions; a
    #: healthy campaign has none.
    errors: List[CellError] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._index: Dict[Tuple[int, int], List[RunResult]] = {}
        self._indexed_len = -1

    def add(self, run: RunResult) -> None:
        """Append one repetition (keeps the cell index incremental)."""
        self.runs.append(run)
        if self._indexed_len == len(self.runs) - 1:
            self._index.setdefault((run.exp_id, run.n_tasks), []).append(run)
            self._indexed_len = len(self.runs)

    def _cell_index(self) -> Dict[Tuple[int, int], List[RunResult]]:
        # Length-check invalidation: direct `runs` mutation (the public
        # dataclass field) is detected and triggers a rebuild.
        if self._indexed_len != len(self.runs):
            index: Dict[Tuple[int, int], List[RunResult]] = {}
            for r in self.runs:
                index.setdefault((r.exp_id, r.n_tasks), []).append(r)
            self._index = index
            self._indexed_len = len(self.runs)
        return self._index

    def cell(self, exp_id: int, n_tasks: int) -> List[RunResult]:
        return list(self._cell_index().get((exp_id, n_tasks), ()))

    def aggregate(
        self, exp_id: int, n_tasks: int, attr: str = "ttc"
    ) -> Tuple[float, float]:
        """(mean, std) of one attribute over a cell's repetitions."""
        values = [
            getattr(r, attr)
            for r in self._cell_index().get((exp_id, n_tasks), ())
        ]
        if not values:
            return (float("nan"), float("nan"))
        arr = np.asarray(values, dtype=float)
        return float(arr.mean()), float(arr.std(ddof=0))

    def series(
        self, exp_id: int, attr: str = "ttc",
        task_counts: Sequence[int] = PAPER_TASK_COUNTS,
    ) -> List[Tuple[int, float, float]]:
        """[(n_tasks, mean, std), ...] for one experiment."""
        return [
            (n, *self.aggregate(exp_id, n, attr)) for n in task_counts
        ]


def run_single(
    spec: ExperimentSpec,
    n_tasks: int,
    rep: int = 0,
    campaign_seed: int = 0,
    resource_pool: Optional[Sequence[str]] = None,
    min_warmup_s: float = 2 * 3600.0,
    max_warmup_s: float = 12 * 3600.0,
    collect_digests: bool = False,
) -> RunResult:
    """Execute one repetition of one (experiment, size) cell.

    The repetition's seed, warm-up offset, target resources, and
    materialized task durations all derive deterministically from
    ``(campaign_seed, exp_id, n_tasks, rep)``.

    ``collect_digests`` enables the telemetry hub for the repetition and
    stores a SHA-256 digest of the telemetry/fault/health logs in the
    result — the cheap, order-independent way to check that two
    executions of the same cell (e.g. serial vs. parallel campaign)
    observed the identical simulated history.
    """
    ss = np.random.SeedSequence(
        entropy=campaign_seed, spawn_key=(spec.exp_id, n_tasks, rep)
    )
    seeds = ss.generate_state(3)
    rng = np.random.default_rng(seeds[0])

    env = build_environment(
        seed=int(seeds[1]), resources=resource_pool,
        telemetry=collect_digests,
    )
    # Randomized submission instant (irregular intervals, paper §IV.A).
    env.warm_up(float(rng.uniform(min_warmup_s, max_warmup_s)))

    # Randomized resource choice and submission order (paper §IV.A).
    pool_names = list(env.pool)
    chosen = tuple(
        rng.choice(pool_names, size=spec.n_pilots, replace=False)
    )

    skeleton = SkeletonAPI(
        paper_skeleton(n_tasks, gaussian=spec.gaussian), seed=int(seeds[2])
    )
    config = PlannerConfig(
        binding=spec.binding,
        unit_scheduler=spec.unit_scheduler,
        n_pilots=spec.n_pilots,
        resources=chosen,
    )
    report = env.execution_manager.execute(skeleton, config)
    d = report.decomposition
    digest = ""
    if collect_digests:
        payload = {
            "telemetry": env.sim.telemetry.digest(),
            "faults": (
                report.fault_log.digest()
                if report.fault_log is not None else None
            ),
            "health": (
                report.health_log.digest()
                if report.health_log is not None else None
            ),
        }
        digest = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()
        ).hexdigest()
    return RunResult(
        exp_id=spec.exp_id,
        n_tasks=n_tasks,
        rep=rep,
        resources=chosen,
        ttc=d.ttc,
        tw=d.tw,
        tw_last=d.tw_last,
        tx=d.tx,
        ts=d.ts,
        trp=d.trp,
        pilot_waits=d.pilot_waits,
        units_done=d.units_done,
        restarts=d.restarts,
        events=int(env.sim.events_processed),
        digest=digest,
    )


def run_campaign(
    experiments: Sequence[int] = (1, 2, 3, 4),
    task_counts: Sequence[int] = PAPER_TASK_COUNTS,
    reps: int = 5,
    campaign_seed: int = 0,
    resource_pool: Optional[Sequence[str]] = None,
    verbose: bool = False,
    jobs: int = 1,
    collect_digests: bool = False,
    on_progress: Optional[Callable[[int, int], None]] = None,
) -> CampaignResult:
    """Run the full experiment grid; returns all repetitions.

    ``jobs`` fans the (experiment, size, rep) grid out to that many
    worker processes (0 = one per usable CPU). Each repetition is seeded
    independently from ``(campaign_seed, exp_id, n_tasks, rep)``, so the
    parallel campaign produces results identical to the serial one —
    see :mod:`repro.experiments.runner` for the determinism contract.
    """
    if jobs != 1:
        from .runner import run_parallel_campaign

        return run_parallel_campaign(
            experiments=experiments,
            task_counts=task_counts,
            reps=reps,
            campaign_seed=campaign_seed,
            resource_pool=resource_pool,
            verbose=verbose,
            jobs=jobs,
            collect_digests=collect_digests,
            on_progress=on_progress,
        )
    result = CampaignResult()
    total = len(list(experiments)) * len(list(task_counts)) * reps
    for exp_id in experiments:
        spec = TABLE1[exp_id]
        for n_tasks in task_counts:
            for rep in range(reps):
                run = run_single(
                    spec, n_tasks, rep,
                    campaign_seed=campaign_seed,
                    resource_pool=resource_pool,
                    collect_digests=collect_digests,
                )
                result.add(run)
                if verbose:
                    print(
                        f"{spec.label} n={n_tasks} rep={rep}: "
                        f"TTC={run.ttc:.0f}s Tw={run.tw:.0f}s "
                        f"done={run.units_done}/{n_tasks}"
                    )
                if on_progress is not None:
                    on_progress(len(result.runs), total)
    return result
