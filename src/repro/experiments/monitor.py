"""Live campaign state: fold the event stream into one observable model.

The :class:`CampaignMonitor` is the stateful half of the observability
plane. The :mod:`bus <repro.telemetry.bus>` moves raw ledger records;
the monitor *folds* them — incrementally, with the same semantics as
the post-hoc :func:`~repro.experiments.ledger.ledger_progress` — into a
live model any frontend can snapshot:

* a per-cell **status grid** (``pending``/``running``/``ok``/``error``),
  seeded from the ``campaign-start`` meta so unstarted cells are
  visible, not merely absent;
* progress, per-cell attempt counts, retries/timeouts, ETA and
  throughput from observed wall costs;
* **worker liveness** — last-seen wall time per worker pid, fed by cell
  records and the bus-only heartbeat pulses;
* **TTC component shares** summed across completed cells (the live
  version of the attribution stack the HTML report draws);
* **host gauges** (CPU seconds, RSS) sampled from ``/proc/self`` —
  parent-process cost of the campaign, Linux only, absent elsewhere.

Every durable ledger record the monitor ingests is retained with a
monotonically increasing integer id — the replay log behind the SSE
endpoint's ``Last-Event-ID`` resume contract (heartbeats fold into
liveness state but are *not* retained or replayed: they are ephemeral
by design). The monitor is observation-only: it subscribes, folds, and
serves; it never talks back to the runner.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from ..telemetry.bus import EventBus, Subscription
from ..telemetry.metrics import MetricsRegistry

__all__ = ["CampaignMonitor", "host_sample"]

#: ledger kinds that enter the retained/replayable event history.
_DURABLE_KINDS = frozenset({
    "campaign-start", "campaign-end", "campaign_resumed",
    "cell", "attempt_started", "attempt_timeout", "cell_retried",
})

Cell = Tuple[int, int, int]


def host_sample() -> Dict[str, Any]:
    """CPU/RSS of *this* process from ``/proc/self`` (Linux; else empty).

    Reads ``utime``/``stime`` ticks from ``/proc/self/stat`` and
    ``VmRSS`` from ``/proc/self/status``. Purely diagnostic — never
    enters any digest-bearing artifact.
    """
    out: Dict[str, Any] = {}
    try:
        with open("/proc/self/stat", "rb") as fh:
            stat = fh.read().decode("ascii", "replace")
        # field 2 is "(comm)" and may contain spaces; split after it.
        fields = stat.rsplit(")", 1)[1].split()
        utime, stime = int(fields[11]), int(fields[12])
        ticks = os.sysconf("SC_CLK_TCK") or 100
        out["cpu_s"] = (utime + stime) / ticks
    except (OSError, IndexError, ValueError):
        pass
    try:
        with open("/proc/self/status", "rb") as fh:
            for line in fh:
                if line.startswith(b"VmRSS:"):
                    out["rss_kb"] = int(line.split()[1])
                    break
    except (OSError, IndexError, ValueError):
        pass
    return out


class CampaignMonitor:
    """Fold ledger events into live campaign state, retaining a replay log.

    Thread-safe: :meth:`feed` may be called from a bus-drainer thread
    while HTTP handler threads call :meth:`state` / :meth:`wait_events`
    and the dashboard polls. ``clock`` is injectable for tests.
    """

    def __init__(self, clock=time.time) -> None:
        self._cond = threading.Condition()
        self._clock = clock
        #: retained durable events, ``events[i]`` has id ``i + 1``.
        self.events: List[Dict[str, Any]] = []
        self.metrics = MetricsRegistry()
        self._sub: Optional[Subscription] = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        # -- folded state ------------------------------------------------------
        self.started_at: Optional[float] = None
        self.meta: Dict[str, Any] = {}
        self.total = 0
        self.finished = False
        self.interrupted = False
        self.resumed: Optional[Dict[str, Any]] = None
        self.cells: Dict[Cell, Dict[str, Any]] = {}
        self.attempts: Dict[Cell, int] = {}
        self.running: Dict[Cell, Dict[str, Any]] = {}
        self.retries = 0
        self.timeouts = 0
        self.workers: Dict[int, float] = {}
        self.heartbeats = 0
        self.components: Dict[str, float] = {}
        self.wall_spent = 0.0

    # -- ingestion -------------------------------------------------------------

    def attach(self, bus: EventBus, maxsize: int = 4096) -> None:
        """Subscribe to ``bus`` and drain it on a daemon thread."""
        self._sub = bus.subscribe(maxsize=maxsize, name="monitor")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._drain, name="campaign-monitor", daemon=True
        )
        self._thread.start()

    def _drain(self) -> None:
        while not self._stop.is_set():
            event = self._sub.get(timeout=0.25)
            if event is not None:
                self.feed(event)
            elif self._sub.closed and not len(self._sub):
                break

    def stop(self) -> None:
        """Detach from the bus and join the drainer thread."""
        self._stop.set()
        if self._sub is not None:
            self._sub.close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def feed_many(self, records) -> None:
        """Pre-seed from history (a store's ledger, a resumed session)."""
        for record in records:
            self.feed(record)

    def feed(self, record: Dict[str, Any]) -> int:
        """Fold one ledger record into the model; returns its event id.

        Heartbeats update liveness only and return 0 (no replay id).
        Folding mirrors :func:`~repro.experiments.ledger.ledger_progress`:
        cell records dedupe by coordinates (last wins), so a retried
        cell from a resumed session counts once.
        """
        kind = record.get("kind")
        with self._cond:
            if kind == "heartbeat":
                self._fold_heartbeat(record)
                self._cond.notify_all()
                return 0
            if kind in _DURABLE_KINDS:
                self._fold(kind, record)
            self.events.append(record)
            event_id = len(self.events)
            self._cond.notify_all()
            return event_id

    def _fold_heartbeat(self, record: Dict[str, Any]) -> None:
        self.heartbeats += 1
        wall = float(record.get("wall", self._clock()))
        for raw in record.get("cells", ()):
            cell = tuple(int(x) for x in raw)
            if len(cell) == 3 and self.cells.get(cell) is None:
                self.running.setdefault(cell, {})["last_seen"] = wall
        for pid in record.get("workers", ()):
            self.workers[int(pid)] = wall

    def _fold(self, kind: str, record: Dict[str, Any]) -> None:
        wall = record.get("wall")
        if kind == "campaign-start":
            self.started_at = wall
            self.total = int(record.get("total", 0))
            self.meta = dict(record.get("meta") or {})
            self.finished = False
            self.metrics.counter("monitor.campaign_starts").inc()
        elif kind == "campaign_resumed":
            self.resumed = record
        elif kind == "attempt_started":
            cell = _coords(record)
            if cell is not None:
                self.attempts[cell] = self.attempts.get(cell, 0) + 1
                self.running[cell] = {
                    "attempt": record.get("attempt"),
                    "worker": record.get("worker"),
                    "last_seen": wall,
                }
            worker = record.get("worker")
            if worker is not None and wall is not None:
                self.workers[int(worker)] = float(wall)
        elif kind == "attempt_timeout":
            self.timeouts += 1
            self.metrics.counter("monitor.timeouts").inc()
        elif kind == "cell_retried":
            self.retries += 1
            self.metrics.counter("monitor.retries").inc()
        elif kind == "cell":
            cell = _coords(record)
            if cell is not None:
                previous = self.cells.get(cell)
                if previous is not None:
                    # resumed retry supersedes: back out the old record.
                    self.wall_spent -= float(previous.get("wall_s", 0.0))
                    for name, share in (previous.get("components") or {}).items():
                        self.components[name] = (
                            self.components.get(name, 0.0) - float(share)
                        )
                self.cells[cell] = record
                self.running.pop(cell, None)
                self.wall_spent += float(record.get("wall_s", 0.0))
                for name, share in (record.get("components") or {}).items():
                    self.components[name] = (
                        self.components.get(name, 0.0) + float(share)
                    )
                self.metrics.counter("monitor.cells").inc()
                if not record.get("ok", False):
                    self.metrics.counter("monitor.cell_errors").inc()
            worker = record.get("worker")
            if worker is not None and wall is not None:
                self.workers[int(worker)] = float(wall)
        elif kind == "campaign-end":
            self.finished = True
            self.interrupted = bool(record.get("interrupted", False))
            self.running.clear()

    # -- read-out --------------------------------------------------------------

    @property
    def last_event_id(self) -> int:
        with self._cond:
            return len(self.events)

    def events_after(self, after_id: int) -> List[Tuple[int, Dict[str, Any]]]:
        """Retained events with ids greater than ``after_id`` (replay)."""
        with self._cond:
            start = max(0, int(after_id))
            return [
                (i + 1, self.events[i]) for i in range(start, len(self.events))
            ]

    def wait_events(
        self, after_id: int, timeout: float = 1.0
    ) -> List[Tuple[int, Dict[str, Any]]]:
        """Block up to ``timeout`` for events past ``after_id`` (follow)."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while len(self.events) <= after_id:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return []
                self._cond.wait(remaining)
            return [
                (i + 1, self.events[i])
                for i in range(max(0, int(after_id)), len(self.events))
            ]

    def grid(self) -> List[Dict[str, Any]]:
        """Per-cell status rows, pending cells included (meta-derived)."""
        with self._cond:
            return self._grid_locked()

    def _grid_locked(self) -> List[Dict[str, Any]]:
        coords: List[Cell] = []
        seen = set()
        experiments = self.meta.get("experiments") or []
        task_counts = self.meta.get("task_counts") or []
        reps = int(self.meta.get("reps") or 0)
        for exp in experiments:
            for n in task_counts:
                for rep in range(reps):
                    coords.append((int(exp), int(n), int(rep)))
        seen.update(coords)
        # cells observed outside the declared grid (hand-fed histories)
        # still show up rather than vanishing.
        for cell in sorted(set(self.cells) | set(self.running)):
            if cell not in seen:
                coords.append(cell)
        rows = []
        for cell in coords:
            rec = self.cells.get(cell)
            if rec is not None:
                status = "ok" if rec.get("ok", False) else "error"
                row = {
                    "cell": list(cell),
                    "status": status,
                    "wall_s": rec.get("wall_s"),
                    "ttc": rec.get("ttc"),
                    "worker": rec.get("worker"),
                    "anomalies": rec.get("anomalies") or [],
                }
            elif cell in self.running:
                live = self.running[cell]
                row = {
                    "cell": list(cell),
                    "status": "running",
                    "attempt": live.get("attempt"),
                    "worker": live.get("worker"),
                    "last_seen": live.get("last_seen"),
                }
            else:
                row = {"cell": list(cell), "status": "pending"}
            attempts = self.attempts.get(cell, 0)
            if attempts > 1:
                row["attempts"] = attempts
            rows.append(row)
        return rows

    def state(self) -> Dict[str, Any]:
        """One JSON-safe snapshot of everything the plane observes."""
        now = self._clock()
        with self._cond:
            done = len(self.cells)
            errors = sum(
                1 for rec in self.cells.values() if not rec.get("ok", False)
            )
            mean_wall = self.wall_spent / done if done else 0.0
            remaining = max(0, self.total - done)
            elapsed = (
                now - self.started_at if self.started_at is not None else 0.0
            )
            throughput = done / elapsed if elapsed > 0 else 0.0
            total_share = sum(self.components.values())
            state = {
                "kind": "campaign-state",
                "wall": now,
                "total": self.total,
                "done": done,
                "errors": errors,
                "finished": self.finished,
                "interrupted": self.interrupted,
                "resumed": self.resumed,
                "retries": self.retries,
                "timeouts": self.timeouts,
                "heartbeats": self.heartbeats,
                "last_event_id": len(self.events),
                "meta": self.meta,
                "elapsed_s": elapsed,
                "wall_spent_s": self.wall_spent,
                "eta_s": mean_wall * remaining,
                "throughput_cps": throughput,
                "running": [
                    {
                        "cell": list(cell),
                        "attempt": live.get("attempt"),
                        "worker": live.get("worker"),
                        "age_s": (
                            now - live["last_seen"]
                            if live.get("last_seen") is not None else None
                        ),
                    }
                    for cell, live in sorted(self.running.items())
                ],
                "workers": [
                    {"pid": pid, "age_s": now - seen}
                    for pid, seen in sorted(self.workers.items())
                ],
                "components": {
                    name: {
                        "total": share,
                        "share": share / total_share if total_share else 0.0,
                    }
                    for name, share in sorted(self.components.items())
                },
                "grid": self._grid_locked(),
            }
        state["host"] = host_sample()
        return state

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Monitor counters + live gauges, in registry-snapshot shape."""
        state = self.state()
        snap = self.metrics.snapshot(diagnostics=True)
        gauges = snap["gauges"]
        gauges["monitor.cells_total"] = state["total"]
        gauges["monitor.cells_done"] = state["done"]
        gauges["monitor.cells_errored"] = state["errors"]
        gauges["monitor.cells_running"] = len(state["running"])
        gauges["monitor.finished"] = state["finished"]
        gauges["monitor.eta_s"] = state["eta_s"]
        gauges["monitor.throughput_cps"] = state["throughput_cps"]
        gauges["monitor.workers_seen"] = len(state["workers"])
        gauges["monitor.wall_spent_s"] = state["wall_spent_s"]
        for name, comp in state["components"].items():
            gauges[f"monitor.component_share.{name}"] = comp["share"]
        host = state["host"]
        if "cpu_s" in host:
            gauges["monitor.host_cpu_s"] = host["cpu_s"]
        if "rss_kb" in host:
            gauges["monitor.host_rss_kb"] = host["rss_kb"]
        return snap


def _coords(record: Dict[str, Any]) -> Optional[Cell]:
    exp, n, rep = record.get("exp"), record.get("n"), record.get("rep")
    if exp is None or n is None or rep is None:
        return None
    return (int(exp), int(n), int(rep))
