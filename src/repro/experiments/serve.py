"""The observability plane's HTTP face: /metrics, /events, /state.json.

A stdlib-only :class:`~http.server.ThreadingHTTPServer` wrapped around a
:class:`~repro.experiments.monitor.CampaignMonitor`. Endpoints:

``GET /metrics``
    Prometheus text exposition (version 0.0.4) of the monitor's
    counters and live gauges — progress, ETA, throughput, worker
    liveness, component shares, host CPU/RSS.

``GET /events``
    Server-Sent Events: replays the monitor's retained ledger events
    (``id: N`` / ``data: {json}`` frames), then follows live ones.
    Honors the ``Last-Event-ID`` request header — a reconnecting client
    resumes exactly after the last frame it saw; ``?after=N`` does the
    same for curl. Comment keepalives (``: keepalive``) flow while the
    stream is idle so proxies do not reap the connection.

``GET /state.json``
    The full monitor snapshot (grid, running cells, workers,
    components, ETA) as one JSON object — what ``repro watch --url``
    polls.

The server binds ``127.0.0.1`` on an ephemeral port by default (bind to
port 0, read the real port back), runs handler threads as daemons, and
is observation-only: nothing here can write to the campaign. Slow or
dead clients cost one daemon thread each and are reaped on their next
write (``BrokenPipeError``), never stalling the runner — the runner
does not even know the server exists; it only publishes to the bus.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..telemetry.metrics import render_prometheus
from .monitor import CampaignMonitor

__all__ = ["MonitorServer", "parse_serve_spec"]

#: idle time between SSE keepalive comments.
KEEPALIVE_S = 5.0


def parse_serve_spec(spec: str) -> Tuple[str, int]:
    """Parse ``--serve`` values: ``:0``, ``8765``, ``host:port``.

    A bare port (or ``:port``) binds loopback; an explicit host widens
    exposure deliberately. Port 0 asks the OS for an ephemeral port.
    """
    spec = spec.strip()
    host, sep, port_s = spec.rpartition(":")
    if not sep:
        host, port_s = "", spec
    host = host or "127.0.0.1"
    try:
        port = int(port_s)
    except ValueError:
        raise ValueError(
            f"invalid --serve spec {spec!r}: want PORT, :PORT, or HOST:PORT"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(f"invalid --serve port {port}")
    return host, port


class _Handler(BaseHTTPRequestHandler):
    """One request against the monitor. The server injects ``monitor``."""

    server_version = "repro-monitor/1"
    protocol_version = "HTTP/1.1"

    # handler threads must never crash the server on client disconnects.
    def handle_one_request(self) -> None:  # pragma: no cover - dispatch shim
        try:
            super().handle_one_request()
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    def log_message(self, fmt, *args) -> None:
        pass  # HTTP access noise has no place on the campaign's stderr

    @property
    def monitor(self) -> CampaignMonitor:
        return self.server.monitor  # type: ignore[attr-defined]

    def do_GET(self) -> None:
        parsed = urlparse(self.path)
        if parsed.path == "/metrics":
            self._send_metrics()
        elif parsed.path == "/state.json":
            self._send_state()
        elif parsed.path == "/events":
            self._send_events(parsed)
        elif parsed.path == "/":
            self._send_index()
        else:
            self._send_plain(404, "not found\n")

    # -- endpoints -------------------------------------------------------------

    def _send_metrics(self) -> None:
        body = render_prometheus(self.monitor.metrics_snapshot())
        self._send_plain(
            200, body, content_type="text/plain; version=0.0.4; charset=utf-8"
        )

    def _send_state(self) -> None:
        body = json.dumps(self.monitor.state(), sort_keys=True) + "\n"
        self._send_plain(200, body, content_type="application/json")

    def _send_index(self) -> None:
        self._send_plain(
            200,
            "repro campaign monitor\n"
            "  GET /metrics     Prometheus text exposition\n"
            "  GET /events      SSE ledger stream (Last-Event-ID resume)\n"
            "  GET /state.json  live state snapshot\n",
        )

    def _send_events(self, parsed) -> None:
        after = _resume_point(self.headers.get("Last-Event-ID"), parsed)
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        # SSE is unbounded: no Content-Length, so the connection closes
        # when the stream does.
        self.send_header("Connection", "close")
        self.close_connection = True
        self.end_headers()
        try:
            while not self.server.stopping:  # type: ignore[attr-defined]
                batch = self.monitor.wait_events(after, timeout=KEEPALIVE_S)
                if not batch:
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
                    continue
                for event_id, record in batch:
                    frame = (
                        f"id: {event_id}\n"
                        f"data: {json.dumps(record, sort_keys=True)}\n\n"
                    )
                    self.wfile.write(frame.encode("utf-8"))
                    after = event_id
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; the daemon thread unwinds

    # -- plumbing --------------------------------------------------------------

    def _send_plain(
        self, code: int, body: str, content_type: str = "text/plain"
    ) -> None:
        data = body.encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        try:
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):
            pass


def _resume_point(header: Optional[str], parsed) -> int:
    """Resolve the SSE resume id: Last-Event-ID header, else ?after=N."""
    for raw in (header, *parse_qs(parsed.query).get("after", ())):
        if raw is None:
            continue
        try:
            return max(0, int(raw))
        except ValueError:
            continue
    return 0


class MonitorServer:
    """Serve a :class:`CampaignMonitor` over HTTP on a daemon thread.

    ``port=0`` (the default) binds an ephemeral port; the bound address
    is available as :attr:`host`/:attr:`port`/:attr:`url` after
    :meth:`start`. Context-manager use stops the server on exit.
    """

    def __init__(
        self,
        monitor: CampaignMonitor,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.monitor = monitor
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.monitor = monitor  # type: ignore[attr-defined]
        self._httpd.stopping = False  # type: ignore[attr-defined]
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MonitorServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.25},
            name="monitor-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.stopping = True  # type: ignore[attr-defined]
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "MonitorServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
