"""Calibration validation: does the substrate behave like the testbed?

The whole reproduction rests on the simulated resources exhibiting the
queue dynamics of the production machines. This module runs each preset
for a simulated period and reports the observables that must be in range:

* sustained utilization near saturation (the paper's resources were
  persistently demand-saturated),
* a non-degenerate queue (jobs waiting most of the time),
* heavy-tailed queue waits for pilot-sized probe jobs,
* a job mix whose 30 s–30 min fraction is near the XDMoD statistics the
  paper cites (25–55% for 2010–2013).

`python -m repro calibrate` prints the report; a test asserts the bands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..cluster import (
    BatchJob,
    PRESETS,
    WorkloadCharacterizer,
    build_resource,
)
from ..des import Simulation


@dataclass(frozen=True)
class ResourceCalibration:
    """Measured steady-state behaviour of one preset."""

    name: str
    mean_utilization: float
    mean_queue_length: float
    fraction_time_queued: float          # fraction of samples with queue > 0
    short_job_fraction: float            # 30 s - 30 min bucket
    probe_waits: Sequence[float]         # seconds, one per probe
    jobs_finished: int

    def render(self) -> str:
        waits = ", ".join(f"{w:.0f}" for w in self.probe_waits)
        return (
            f"{self.name:>16}: util {self.mean_utilization:5.2f}, "
            f"queue {self.mean_queue_length:6.1f} "
            f"(busy {self.fraction_time_queued:5.1%}), "
            f"short jobs {self.short_job_fraction:5.1%}, "
            f"probe waits [{waits}] s"
        )


def calibrate_resource(
    preset_name: str,
    seed: int = 0,
    hours: float = 24.0,
    probe_cores: int = 256,
    n_probes: int = 4,
    sample_interval_s: float = 600.0,
) -> ResourceCalibration:
    """Measure one preset's steady-state behaviour and probe waits."""
    sim = Simulation(seed=seed)
    res = build_resource(sim, PRESETS[preset_name])
    characterizer = WorkloadCharacterizer(sim, res.cluster)

    utilizations: List[float] = []
    queue_lengths: List[float] = []
    probes: List[BatchJob] = []
    horizon = hours * 3600.0
    probe_times = np.linspace(horizon * 0.25, horizon * 0.9, n_probes)

    t = 0.0
    next_probe = 0
    while t < horizon:
        t += sample_interval_s
        sim.run(until=t)
        utilizations.append(res.cluster.utilization)
        queue_lengths.append(res.cluster.queue_length)
        while next_probe < n_probes and t >= probe_times[next_probe]:
            probe = BatchJob(
                cores=probe_cores, runtime=900, walltime=1800, kind="probe"
            )
            res.cluster.submit(probe)
            probes.append(probe)
            next_probe += 1

    # Let outstanding probes start (bounded drain period).
    sim.run(until=horizon + 36 * 3600.0)
    waits = tuple(
        p.wait_time if p.wait_time is not None else float("inf")
        for p in probes
    )
    report = characterizer.report()
    return ResourceCalibration(
        name=preset_name,
        mean_utilization=float(np.mean(utilizations)),
        mean_queue_length=float(np.mean(queue_lengths)),
        fraction_time_queued=float(np.mean([q > 0 for q in queue_lengths])),
        short_job_fraction=report.fraction("30s-30m"),
        probe_waits=waits,
        jobs_finished=report.total_jobs,
    )


def _sample_calibration(item) -> ResourceCalibration:
    name, seed, hours = item
    return calibrate_resource(name, seed=seed, hours=hours)


def calibrate_all(
    seed: int = 0, hours: float = 24.0, jobs: int = 1
) -> Dict[str, ResourceCalibration]:
    """Calibrate every preset (``jobs`` presets at a time).

    Each preset's calibration is independently seeded, so the parallel
    run returns exactly the serial results.
    """
    from .runner import parallel_map

    names = list(PRESETS)
    results = parallel_map(
        _sample_calibration,
        [(name, seed, hours) for name in names],
        jobs=jobs,
    )
    return dict(zip(names, results))


def render_calibration(results: Dict[str, ResourceCalibration]) -> str:
    lines = ["Substrate calibration (24 simulated hours per resource):"]
    for cal in results.values():
        lines.append("  " + cal.render())
    return "\n".join(lines)
