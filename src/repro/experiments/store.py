"""Indexed campaign result store: a sqlite-backed repository layer.

The load-everything JSON persistence of :mod:`repro.experiments.io` is
fine for a 4-experiment grid and fatal for a million-cell campaign:
every consumer — the sentinel, the report, a single-cell replay — paid
O(campaign) to look at O(cell) data. :class:`CampaignStore` replaces it
as the source of truth. One sqlite file (WAL mode) holds

* ``runs`` — one row per repetition, keyed ``(exp_id, n_tasks, rep)``,
  with the full :class:`~repro.experiments.campaign.RunResult` as a
  JSON payload (the exact :func:`repro.experiments.io.run_to_dict`
  codec, so store and legacy JSON round-trip identically) plus indexed
  scalar columns (``ttc``, digests) for queries;
* ``cell_errors`` — repetitions lost to crashes, same key;
* ``ledger`` — the NDJSON run-ledger event stream, mirrored row by row
  (``repro tail`` reads either representation);
* ``fingerprints`` — sentinel campaign fingerprints by key;
* ``attempts`` — the per-dispatch lease/attempt history: one row per
  dispatch of a cell (attempt number, state ``leased``/``committed``/
  ``failed``/``timeout``/``crashed``/``reclaimed``/``interrupted``/
  ``drained``, worker pid, wall start/end, parent heartbeat, error) —
  see :mod:`repro.experiments.resilience`;
* ``store_meta`` — format version, the campaign provenance dict, its
  config digest, and the cleanly-interrupted flag.

Concurrency contract: exactly one writer (the campaign runner's parent
process — workers never touch the store), any number of readers. WAL
mode gives readers a consistent committed snapshot while the writer
appends; every ``put_*`` is one transaction, so a reader can never
observe a torn or partial row and a crashed writer leaves no orphan
rows — whatever committed is whole, the in-flight cell simply is not
there.

``rows_read`` counts rows actually materialized into Python objects;
the differential harness uses it to prove that fetching one cell of a
thousand-cell campaign does not deserialize the other 999.
"""

from __future__ import annotations

import json
import logging
import os
import sqlite3
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from .campaign import CampaignResult, CellError, RunResult
from .io import error_from_dict, error_to_dict, run_from_dict, run_to_dict

log = logging.getLogger(__name__)

STORE_FORMAT = 1

#: the first 16 bytes of every sqlite3 database file.
_SQLITE_MAGIC = b"SQLite format 3\x00"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    exp_id   INTEGER NOT NULL,
    n_tasks  INTEGER NOT NULL,
    rep      INTEGER NOT NULL,
    seq      INTEGER NOT NULL,
    ttc      REAL,
    units_done INTEGER NOT NULL,
    digest   TEXT NOT NULL,
    attribution_digest TEXT NOT NULL,
    payload  TEXT NOT NULL,
    PRIMARY KEY (exp_id, n_tasks, rep)
);
CREATE INDEX IF NOT EXISTS idx_runs_ttc ON runs (ttc);
CREATE TABLE IF NOT EXISTS cell_errors (
    exp_id  INTEGER NOT NULL,
    n_tasks INTEGER NOT NULL,
    rep     INTEGER NOT NULL,
    seq     INTEGER NOT NULL,
    payload TEXT NOT NULL,
    PRIMARY KEY (exp_id, n_tasks, rep)
);
CREATE TABLE IF NOT EXISTS ledger (
    seq    INTEGER PRIMARY KEY AUTOINCREMENT,
    kind   TEXT NOT NULL,
    record TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS attempts (
    exp_id     INTEGER NOT NULL,
    n_tasks    INTEGER NOT NULL,
    rep        INTEGER NOT NULL,
    attempt    INTEGER NOT NULL,
    state      TEXT NOT NULL,
    worker     INTEGER,
    wall_start REAL,
    wall_end   REAL,
    heartbeat  REAL,
    error      TEXT,
    PRIMARY KEY (exp_id, n_tasks, rep, attempt)
);
CREATE TABLE IF NOT EXISTS fingerprints (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


def is_store(path: str) -> bool:
    """True when ``path`` is an existing sqlite database file."""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(_SQLITE_MAGIC)) == _SQLITE_MAGIC
    except OSError:
        return False


class CampaignStore:
    """Repository over one campaign-store sqlite file.

    Open read-write (the default) to create/extend a store, or with
    ``readonly=True`` for consumers that must never mutate it (``repro
    tail`` on a live campaign, ``repro analyze``). Handles are cheap;
    concurrent processes each open their own.
    """

    def __init__(self, path: str, readonly: bool = False) -> None:
        self.path = path
        self.readonly = readonly
        #: rows materialized into Python objects by this handle — the
        #: differential harness's O(cell)-not-O(campaign) evidence.
        self.rows_read = 0
        if readonly:
            uri = f"file:{path}?mode=ro"
            self._conn = sqlite3.connect(uri, uri=True, isolation_level=None)
        else:
            self._conn = sqlite3.connect(path, isolation_level=None)
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA busy_timeout=5000")
        if not readonly:
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
            self._init_format()

    def _init_format(self) -> None:
        row = self._conn.execute(
            "SELECT value FROM store_meta WHERE key='format'"
        ).fetchone()
        if row is None:
            self._conn.execute(
                "INSERT INTO store_meta (key, value) VALUES ('format', ?)",
                (str(STORE_FORMAT),),
            )
        elif int(row[0]) != STORE_FORMAT:
            raise ValueError(
                f"unsupported store format {row[0]!r} in {self.path} "
                f"(expected {STORE_FORMAT})"
            )

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None  # type: ignore[assignment]

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @contextmanager
    def transaction(self) -> Iterator[None]:
        """Group several writes into one atomic commit.

        Readers see nothing until the block exits cleanly; an exception
        rolls the whole group back (no orphan rows).
        """
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            yield
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        self._conn.execute("COMMIT")

    # -- writing ---------------------------------------------------------------

    def put_run(self, run: RunResult) -> None:
        """Insert or replace one repetition (idempotent by coordinates)."""
        ttc = run.ttc if run.ttc == run.ttc else None  # sqlite: NaN -> NULL
        self._conn.execute(
            "INSERT OR REPLACE INTO runs "
            "(exp_id, n_tasks, rep, seq, ttc, units_done, digest, "
            " attribution_digest, payload) "
            "VALUES (?, ?, ?, "
            " (SELECT COALESCE(MAX(seq), -1) + 1 FROM runs), "
            " ?, ?, ?, ?, ?)",
            (
                run.exp_id, run.n_tasks, run.rep, ttc, run.units_done,
                run.digest, run.attribution_digest,
                json.dumps(run_to_dict(run), sort_keys=True),
            ),
        )

    def put_runs(self, runs: Iterable[RunResult]) -> int:
        """Insert many repetitions in one transaction; returns the count."""
        n = 0
        with self.transaction():
            for run in runs:
                self.put_run(run)
                n += 1
        return n

    def put_error(self, err: CellError) -> None:
        """Insert or replace one failed repetition."""
        self._conn.execute(
            "INSERT OR REPLACE INTO cell_errors "
            "(exp_id, n_tasks, rep, seq, payload) "
            "VALUES (?, ?, ?, "
            " (SELECT COALESCE(MAX(seq), -1) + 1 FROM cell_errors), ?)",
            (
                err.exp_id, err.n_tasks, err.rep,
                json.dumps(error_to_dict(err), sort_keys=True),
            ),
        )

    def set_campaign_meta(self, meta: Dict[str, Any]) -> None:
        """Record the campaign provenance dict (seed, grid, reps)."""
        self._conn.execute(
            "INSERT OR REPLACE INTO store_meta (key, value) "
            "VALUES ('campaign', ?)",
            (json.dumps(dict(meta), sort_keys=True),),
        )

    def append_ledger(self, record: Dict[str, Any]) -> None:
        """Mirror one run-ledger event into the store."""
        self._conn.execute(
            "INSERT INTO ledger (kind, record) VALUES (?, ?)",
            (str(record.get("kind", "?")), json.dumps(record, sort_keys=True)),
        )

    def set_fingerprint(self, key: str, fingerprint: Dict[str, Any]) -> None:
        """Persist a sentinel campaign fingerprint under ``key``."""
        self._conn.execute(
            "INSERT OR REPLACE INTO fingerprints (key, value) VALUES (?, ?)",
            (key, json.dumps(fingerprint, sort_keys=True)),
        )

    # -- leases / attempts -----------------------------------------------------

    def begin_attempt(
        self, exp_id: int, n_tasks: int, rep: int,
        worker: Optional[int] = None, now: Optional[float] = None,
    ) -> int:
        """Open a ``leased`` attempt row for one dispatch of one cell.

        Attempt numbers continue from whatever the store already holds,
        so a resumed campaign's history reads as one sequence. Returns
        the attempt number.
        """
        now = time.time() if now is None else now
        attempt = self._conn.execute(
            "SELECT COALESCE(MAX(attempt), 0) + 1 FROM attempts "
            "WHERE exp_id=? AND n_tasks=? AND rep=?",
            (exp_id, n_tasks, rep),
        ).fetchone()[0]
        self._conn.execute(
            "INSERT INTO attempts "
            "(exp_id, n_tasks, rep, attempt, state, worker, wall_start, "
            " heartbeat) VALUES (?, ?, ?, ?, 'leased', ?, ?, ?)",
            (exp_id, n_tasks, rep, attempt, worker, now, now),
        )
        return int(attempt)

    def finish_attempt(
        self, exp_id: int, n_tasks: int, rep: int, attempt: int,
        state: str, error: Optional[str] = None,
        worker: Optional[int] = None, now: Optional[float] = None,
    ) -> None:
        """Close one attempt row (``committed``/``failed``/``timeout``...)."""
        now = time.time() if now is None else now
        if worker is not None:
            self._conn.execute(
                "UPDATE attempts SET state=?, wall_end=?, error=?, worker=? "
                "WHERE exp_id=? AND n_tasks=? AND rep=? AND attempt=?",
                (state, now, error, worker, exp_id, n_tasks, rep, attempt),
            )
        else:
            self._conn.execute(
                "UPDATE attempts SET state=?, wall_end=?, error=? "
                "WHERE exp_id=? AND n_tasks=? AND rep=? AND attempt=?",
                (state, now, error, exp_id, n_tasks, rep, attempt),
            )

    def heartbeat_attempts(
        self, leases: Iterable[Tuple[Tuple[int, int, int], int]],
        now: Optional[float] = None,
    ) -> None:
        """Stamp the parent-side heartbeat on a batch of open leases."""
        now = time.time() if now is None else now
        self._conn.executemany(
            "UPDATE attempts SET heartbeat=? "
            "WHERE exp_id=? AND n_tasks=? AND rep=? AND attempt=? "
            "AND state='leased'",
            [(now, *cell, attempt) for cell, attempt in leases],
        )

    def reclaim_stale_leases(self, now: Optional[float] = None) -> int:
        """Close every still-``leased`` attempt as ``reclaimed``.

        Called by resume planning: any lease left open belongs to a run
        that died (SIGKILL, power loss) — its cell never committed, so
        it is safe and necessary to re-dispatch.
        """
        now = time.time() if now is None else now
        cur = self._conn.execute(
            "UPDATE attempts SET state='reclaimed', wall_end=?, "
            "error='stale lease reclaimed on resume' WHERE state='leased'",
            (now,),
        )
        return cur.rowcount

    def attempt_rows(
        self, exp_id: Optional[int] = None, n_tasks: Optional[int] = None,
        rep: Optional[int] = None,
    ) -> List[Dict[str, Any]]:
        """Attempt history, optionally filtered by coordinates."""
        clauses, params = [], []
        for name, value in (
            ("exp_id", exp_id), ("n_tasks", n_tasks), ("rep", rep)
        ):
            if value is not None:
                clauses.append(f"{name}=?")
                params.append(value)
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        cols = (
            "exp_id", "n_tasks", "rep", "attempt", "state", "worker",
            "wall_start", "wall_end", "heartbeat", "error",
        )
        rows = self._conn.execute(
            f"SELECT {', '.join(cols)} FROM attempts{where} "
            "ORDER BY exp_id, n_tasks, rep, attempt",
            params,
        ).fetchall()
        return [dict(zip(cols, r)) for r in rows]

    def attempt_count(self) -> int:
        return self._conn.execute(
            "SELECT COUNT(*) FROM attempts"
        ).fetchone()[0]

    def lease_count(self) -> int:
        """Attempts still open (``leased``) — stale unless a run is live."""
        return self._conn.execute(
            "SELECT COUNT(*) FROM attempts WHERE state='leased'"
        ).fetchone()[0]

    def committed_cells(self) -> set:
        """Coordinates of every committed repetition."""
        return {
            (int(e), int(n), int(r))
            for e, n, r in self._conn.execute(
                "SELECT exp_id, n_tasks, rep FROM runs"
            )
        }

    def error_cells(self) -> set:
        """Coordinates of every quarantined repetition."""
        return {
            (int(e), int(n), int(r))
            for e, n, r in self._conn.execute(
                "SELECT exp_id, n_tasks, rep FROM cell_errors"
            )
        }

    def delete_error(self, exp_id: int, n_tasks: int, rep: int) -> None:
        """Drop one quarantined cell (``--retry-errors`` re-dispatch)."""
        self._conn.execute(
            "DELETE FROM cell_errors WHERE exp_id=? AND n_tasks=? AND rep=?",
            (exp_id, n_tasks, rep),
        )

    def set_interrupted(self, flag: bool) -> None:
        """Record (or clear) the cleanly-interrupted marker."""
        self._conn.execute(
            "INSERT OR REPLACE INTO store_meta (key, value) "
            "VALUES ('interrupted', ?)",
            ("1" if flag else "0",),
        )

    def interrupted(self) -> bool:
        row = self._conn.execute(
            "SELECT value FROM store_meta WHERE key='interrupted'"
        ).fetchone()
        return bool(row) and row[0] == "1"

    def set_config_digest(self, digest: str) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO store_meta (key, value) "
            "VALUES ('config_digest', ?)",
            (digest,),
        )

    def config_digest(self) -> Optional[str]:
        row = self._conn.execute(
            "SELECT value FROM store_meta WHERE key='config_digest'"
        ).fetchone()
        return row[0] if row else None

    def ingest(self, result: CampaignResult) -> Tuple[int, int]:
        """Import a whole campaign atomically; returns (runs, errors).

        ``repro migrate`` uses this for legacy JSON artifacts. Rows are
        keyed by their grid coordinates, so re-ingesting the same
        campaign is idempotent.
        """
        with self.transaction():
            for run in result.runs:
                self.put_run(run)
            for err in result.errors:
                self.put_error(err)
            if result.meta:
                self.set_campaign_meta(result.meta)
        return len(result.runs), len(result.errors)

    # -- reading ---------------------------------------------------------------

    def campaign_meta(self) -> Dict[str, Any]:
        row = self._conn.execute(
            "SELECT value FROM store_meta WHERE key='campaign'"
        ).fetchone()
        return json.loads(row[0]) if row else {}

    def run_count(self) -> int:
        return self._conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0]

    def error_count(self) -> int:
        return self._conn.execute(
            "SELECT COUNT(*) FROM cell_errors"
        ).fetchone()[0]

    def get_run(
        self, exp_id: int, n_tasks: int, rep: int
    ) -> Optional[RunResult]:
        """Fetch one repetition by coordinates — O(1), not O(campaign)."""
        row = self._conn.execute(
            "SELECT payload FROM runs "
            "WHERE exp_id=? AND n_tasks=? AND rep=?",
            (exp_id, n_tasks, rep),
        ).fetchone()
        if row is None:
            return None
        self.rows_read += 1
        return run_from_dict(json.loads(row[0]))

    def cell_runs(self, exp_id: int, n_tasks: int) -> List[RunResult]:
        """All repetitions of one cell, reps ascending."""
        rows = self._conn.execute(
            "SELECT payload FROM runs WHERE exp_id=? AND n_tasks=? "
            "ORDER BY rep",
            (exp_id, n_tasks),
        ).fetchall()
        self.rows_read += len(rows)
        return [run_from_dict(json.loads(r[0])) for r in rows]

    def cells(self) -> List[Tuple[int, int]]:
        """Distinct ``(exp_id, n_tasks)`` cells, sorted."""
        return [
            (int(e), int(n))
            for e, n in self._conn.execute(
                "SELECT DISTINCT exp_id, n_tasks FROM runs "
                "ORDER BY exp_id, n_tasks"
            )
        ]

    def iter_runs(self) -> Iterator[RunResult]:
        """Stream every repetition in ``(exp_id, n_tasks, rep)`` order."""
        for row in self._conn.execute(
            "SELECT payload FROM runs ORDER BY exp_id, n_tasks, rep"
        ):
            self.rows_read += 1
            yield run_from_dict(json.loads(row[0]))

    def errors(self) -> List[CellError]:
        """Every failed repetition, in grid order when meta allows."""
        rows = self._conn.execute(
            "SELECT exp_id, n_tasks, rep, seq, payload FROM cell_errors"
        ).fetchall()
        self.rows_read += len(rows)
        key = _grid_sort_key(self.campaign_meta())
        rows.sort(key=lambda r: key(r[0], r[1], r[2], r[3]))
        return [error_from_dict(json.loads(r[4])) for r in rows]

    def slowest_run(self) -> Optional[RunResult]:
        """The repetition with the largest TTC (index-served)."""
        row = self._conn.execute(
            "SELECT payload FROM runs "
            "ORDER BY ttc DESC, exp_id DESC, n_tasks DESC, rep DESC LIMIT 1"
        ).fetchone()
        if row is None:
            return None
        self.rows_read += 1
        return run_from_dict(json.loads(row[0]))

    def ledger_records(self) -> List[Dict[str, Any]]:
        """The mirrored run-ledger event stream, in emission order."""
        return [
            json.loads(r[0])
            for r in self._conn.execute(
                "SELECT record FROM ledger ORDER BY seq"
            )
        ]

    def fingerprint(self, key: str = "campaign") -> Optional[Dict[str, Any]]:
        row = self._conn.execute(
            "SELECT value FROM fingerprints WHERE key=?", (key,)
        ).fetchone()
        return json.loads(row[0]) if row else None

    def load_campaign(self) -> CampaignResult:
        """Materialize the whole campaign (the legacy-compatible view).

        Runs and errors come back in grid order — experiments x
        task_counts x reps exactly as the serial loop nest emits them —
        whenever the stored campaign meta describes the grid; rows
        outside the described grid (or with no meta at all) keep their
        insertion order after it.
        """
        meta = self.campaign_meta()
        result = CampaignResult(meta=meta)
        rows = self._conn.execute(
            "SELECT exp_id, n_tasks, rep, seq, payload FROM runs"
        ).fetchall()
        self.rows_read += len(rows)
        key = _grid_sort_key(meta)
        rows.sort(key=lambda r: key(r[0], r[1], r[2], r[3]))
        for r in rows:
            result.add(run_from_dict(json.loads(r[4])))
        result.errors.extend(self.errors())
        return result


def _positions(value: Any) -> Dict[int, int]:
    """``[3, 1]`` -> ``{3: 0, 1: 1}``; anything malformed -> ``{}``."""
    try:
        return {int(v): i for i, v in enumerate(value or ())}
    except (TypeError, ValueError):
        return {}


def _grid_sort_key(meta: Dict[str, Any]):
    """Sort key restoring the serial loop-nest order from campaign meta."""
    exp_pos = _positions(meta.get("experiments"))
    size_pos = _positions(meta.get("task_counts"))

    def key(exp_id: int, n_tasks: int, rep: int, seq: int):
        if exp_id in exp_pos and n_tasks in size_pos:
            return (0, exp_pos[exp_id], size_pos[n_tasks], rep, seq)
        return (1, seq, 0, 0, 0)

    return key


def migrate_json(json_path: str, store_path: str) -> CampaignStore:
    """Import a legacy campaign JSON artifact into a store (idempotent).

    Returns the open read-write :class:`CampaignStore`; the caller
    closes it. Re-running the migration replaces the same rows with the
    same content, so a store migrated twice is byte-for-byte the same
    campaign.
    """
    from .io import load_campaign

    result = load_campaign(json_path)
    store = CampaignStore(store_path)
    n_runs, n_errors = store.ingest(result)
    log.info(
        "migrated %s -> %s: %d runs, %d errors",
        json_path, store_path, n_runs, n_errors,
    )
    return store


def store_summary(store: CampaignStore) -> Dict[str, Any]:
    """Compact provenance block for reports: counts, cells, file size."""
    size = 0
    for suffix in ("", "-wal", "-shm"):
        try:
            size += os.path.getsize(store.path + suffix)
        except OSError:
            pass
    return {
        "path": store.path,
        "runs": store.run_count(),
        "errors": store.error_count(),
        "cells": len(store.cells()),
        "size_bytes": size,
        "attempts": store.attempt_count(),
        "stale_leases": store.lease_count(),
        "interrupted": store.interrupted(),
    }
