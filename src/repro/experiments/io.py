"""Persistence for campaign results (JSON on disk).

Campaigns are cheap to re-run but the paper's analysis workflow treats
measurement and analysis as separate phases; saving results also lets
the CLI regenerate figures without re-simulating.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict

from .campaign import CampaignResult, CellError, RunResult

FORMAT_VERSION = 1


def campaign_to_dict(result: CampaignResult) -> Dict[str, Any]:
    """Serialize a campaign to plain JSON-compatible data."""
    out: Dict[str, Any] = {
        "format": FORMAT_VERSION,
        "runs": [dataclasses.asdict(run) for run in result.runs],
    }
    if result.errors:
        out["errors"] = [dataclasses.asdict(err) for err in result.errors]
    if result.meta:
        out["meta"] = dict(result.meta)
    return out


def campaign_from_dict(data: Dict[str, Any]) -> CampaignResult:
    """Rebuild a campaign from :func:`campaign_to_dict` output."""
    version = data.get("format")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported campaign format {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    result = CampaignResult()
    for raw in data["runs"]:
        raw = dict(raw)
        raw["resources"] = tuple(raw["resources"])
        raw["pilot_waits"] = tuple(raw["pilot_waits"])
        # Files written before the parallel runner lack these fields.
        raw.setdefault("events", 0)
        raw.setdefault("digest", "")
        # ... and files written before the attribution engine lack these.
        raw.setdefault("attribution", ())
        raw.setdefault("attribution_digest", "")
        raw["attribution"] = tuple(
            (str(name), float(value)) for name, value in raw["attribution"]
        )
        result.add(RunResult(**raw))
    for raw in data.get("errors", ()):
        result.errors.append(CellError(**raw))
    result.meta = dict(data.get("meta", ()))
    return result


def save_campaign(result: CampaignResult, path: str) -> None:
    """Write a campaign to a JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(campaign_to_dict(result), fh, indent=1)


def load_campaign(path: str) -> CampaignResult:
    """Read a campaign from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return campaign_from_dict(json.load(fh))
