"""The campaign JSON codec: import/export for campaign artifacts.

Historically this module *was* the persistence layer — campaigns lived
in ad-hoc JSON files loaded whole. The indexed sqlite store
(:mod:`repro.experiments.store`) is now the queryable source of truth
for large campaigns; this module remains the interchange codec both
paths share: per-run/per-error dict conversion (used verbatim for the
store's row payloads) plus whole-campaign JSON files for portability,
diffing, and the committed legacy artifacts (``campaign_2016.json``).
Because the store serializes rows through the same
:func:`run_to_dict`/:func:`run_from_dict` pair, a campaign round-trips
field-for-field identically through either path.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict

from .campaign import CampaignResult, CellError, RunResult

FORMAT_VERSION = 1


def run_to_dict(run: RunResult) -> Dict[str, Any]:
    """One repetition as plain JSON-compatible data (the shared codec)."""
    return dataclasses.asdict(run)


def run_from_dict(raw: Dict[str, Any]) -> RunResult:
    """Rebuild one repetition from :func:`run_to_dict` output.

    Tolerates artifacts written by older code: files from before the
    parallel runner lack ``events``/``digest``, files from before the
    attribution engine lack ``attribution``/``attribution_digest``.
    """
    raw = dict(raw)
    raw["resources"] = tuple(raw["resources"])
    raw["pilot_waits"] = tuple(raw["pilot_waits"])
    raw.setdefault("events", 0)
    raw.setdefault("digest", "")
    raw.setdefault("attribution", ())
    raw.setdefault("attribution_digest", "")
    raw["attribution"] = tuple(
        (str(name), float(value)) for name, value in raw["attribution"]
    )
    return RunResult(**raw)


def error_to_dict(err: CellError) -> Dict[str, Any]:
    """One failed repetition as plain JSON-compatible data."""
    return dataclasses.asdict(err)


def error_from_dict(raw: Dict[str, Any]) -> CellError:
    """Rebuild one failed repetition from :func:`error_to_dict` output."""
    return CellError(**raw)


def campaign_to_dict(result: CampaignResult) -> Dict[str, Any]:
    """Serialize a campaign to plain JSON-compatible data."""
    out: Dict[str, Any] = {
        "format": FORMAT_VERSION,
        "runs": [run_to_dict(run) for run in result.runs],
    }
    if result.errors:
        out["errors"] = [error_to_dict(err) for err in result.errors]
    if result.meta:
        out["meta"] = dict(result.meta)
    return out


def campaign_from_dict(data: Dict[str, Any]) -> CampaignResult:
    """Rebuild a campaign from :func:`campaign_to_dict` output."""
    version = data.get("format")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported campaign format {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    result = CampaignResult()
    for raw in data["runs"]:
        result.add(run_from_dict(raw))
    for raw in data.get("errors", ()):
        result.errors.append(error_from_dict(raw))
    result.meta = dict(data.get("meta", ()))
    return result


def save_campaign(result: CampaignResult, path: str) -> None:
    """Write a campaign to a JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(campaign_to_dict(result), fh, indent=1)


def load_campaign(path: str) -> CampaignResult:
    """Read a campaign from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return campaign_from_dict(json.load(fh))
