"""Ablation studies over the design decisions called out in DESIGN.md.

These go beyond the paper's four experiments, probing the decision space
the Execution Strategy abstraction exposes:

* :func:`pilot_count_sweep` — TTC vs number of pilots (1..5). The paper
  claims three resources already normalize queue-wait variability.
* :func:`scheduler_ablation` — backfill vs round-robin for late binding
  (the paper deliberately does not compare unit schedulers; we measure
  the difference to justify that choice).
* :func:`heterogeneity_ablation` — diverse resource pool vs a pool of
  clones of a single preset (the paper's "relation with resource
  homogeneity" future work).

Every study takes ``jobs=``: samples are seeded per (configuration,
repetition) item up front, so fanning them out over worker processes via
:func:`~repro.experiments.runner.parallel_map` returns exactly the
serial results, in the same order. The per-study ``_sample_*`` functions
are module-level so they pickle.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..cluster import synthetic_pool
from ..core import Binding, PlannerConfig
from ..skeleton import SkeletonAPI, bag_of_tasks, paper_skeleton
from ..skeleton.distributions import Uniform
from .environment import build_environment
from .runner import parallel_map


@dataclass(frozen=True)
class AblationPoint:
    """One configuration's aggregated outcome.

    ``aux`` is the study's secondary metric (Tw for queue-wait studies,
    Ts for data-affinity studies), named by ``aux_name``.
    """

    label: str
    ttc_mean: float
    ttc_std: float
    aux_mean: float
    aux_std: float
    n_runs: int
    aux_name: str = "Tw"

    # Backwards-friendly aliases for the queue-wait studies.
    @property
    def tw_mean(self) -> float:
        return self.aux_mean

    @property
    def tw_std(self) -> float:
        return self.aux_std


def _run_once(
    seed: int,
    n_tasks: int,
    binding: Binding,
    scheduler: str,
    n_pilots: int,
    resources: Optional[Sequence[str]] = None,
    resource_pool: Optional[Sequence[str]] = None,
) -> Tuple[float, float]:
    """One execution; returns (ttc, tw)."""
    ss = np.random.SeedSequence(entropy=seed)
    s = ss.generate_state(3)
    rng = np.random.default_rng(s[0])
    env = build_environment(seed=int(s[1]), resources=resource_pool)
    env.warm_up(float(rng.uniform(2 * 3600.0, 12 * 3600.0)))
    pool_names = list(env.pool)
    chosen = (
        tuple(resources) if resources
        else tuple(rng.choice(pool_names, size=n_pilots, replace=False))
    )
    skeleton = SkeletonAPI(paper_skeleton(n_tasks, gaussian=False), seed=int(s[2]))
    report = env.execution_manager.execute(
        skeleton,
        PlannerConfig(
            binding=binding, unit_scheduler=scheduler,
            n_pilots=n_pilots, resources=chosen,
        ),
    )
    return report.ttc, report.decomposition.tw


def _sample_run_once(item) -> Tuple[float, float]:
    """:func:`parallel_map` adapter: one packed :func:`_run_once` call."""
    args, kwargs = item
    return _run_once(*args, **kwargs)


def _aggregate(
    label: str,
    samples: List[Tuple[float, float]],
    aux_name: str = "Tw",
) -> AblationPoint:
    ttcs = np.asarray([t for t, _ in samples])
    aux = np.asarray([w for _, w in samples])
    return AblationPoint(
        label=label,
        ttc_mean=float(ttcs.mean()),
        ttc_std=float(ttcs.std(ddof=0)),
        aux_mean=float(aux.mean()),
        aux_std=float(aux.std(ddof=0)),
        n_runs=len(samples),
        aux_name=aux_name,
    )


def pilot_count_sweep(
    n_tasks: int = 256,
    pilot_counts: Sequence[int] = (1, 2, 3, 4, 5),
    reps: int = 5,
    seed: int = 0,
    jobs: int = 1,
) -> List[AblationPoint]:
    """TTC/Tw vs the number of pilots, late binding + backfill.

    (One pilot with late binding degenerates to early-binding behaviour
    but keeps the scheduler fixed, isolating the multi-resource effect.)
    """
    pilot_counts = list(pilot_counts)
    items = [
        ((seed * 10_000 + k * 100 + rep, n_tasks,
          Binding.LATE, "backfill", k), {})
        for k in pilot_counts
        for rep in range(reps)
    ]
    samples = parallel_map(_sample_run_once, items, jobs=jobs)
    return [
        _aggregate(f"{k} pilot(s)", samples[i * reps:(i + 1) * reps])
        for i, k in enumerate(pilot_counts)
    ]


def scheduler_ablation(
    n_tasks: int = 256,
    reps: int = 5,
    seed: int = 1,
    jobs: int = 1,
) -> List[AblationPoint]:
    """Backfill vs round-robin unit scheduling under late binding."""
    schedulers = ("backfill", "round-robin")
    # zlib.crc32, not hash(): str hashes are salted per process, which
    # would give every invocation (and every worker) different seeds.
    items = [
        ((seed * 10_000 + zlib.crc32(scheduler.encode()) % 97 * 100 + rep,
          n_tasks, Binding.LATE, scheduler, 3), {})
        for scheduler in schedulers
        for rep in range(reps)
    ]
    samples = parallel_map(_sample_run_once, items, jobs=jobs)
    return [
        _aggregate(scheduler, samples[i * reps:(i + 1) * reps])
        for i, scheduler in enumerate(schedulers)
    ]


def heterogeneity_ablation(
    n_tasks: int = 256,
    reps: int = 5,
    seed: int = 2,
    jobs: int = 1,
) -> List[AblationPoint]:
    """Diverse five-resource pool vs three mid-size clones.

    The clone pool uses three instances of the same preset family
    (comet-sim alone), so all pilots sample statistically identical
    queues; the diverse pool mixes the five presets.
    """
    items = [
        ((seed * 10_000 + rep, n_tasks, Binding.LATE, "backfill", 3), {})
        for rep in range(reps)
    ]
    items += [
        ((seed * 10_000 + 500 + rep, n_tasks, Binding.LATE, "backfill", 1),
         {"resource_pool": ("comet-sim",)})
        for rep in range(reps)
    ]
    samples = parallel_map(_sample_run_once, items, jobs=jobs)
    return [
        _aggregate("diverse pool (5 presets)", samples[:reps]),
        _aggregate("homogeneous (single busy resource)", samples[reps:]),
    ]


def _sample_data_affinity(item) -> Tuple[float, float]:
    seed, rep, mode, n_tasks, input_mb = item
    ss = np.random.SeedSequence(entropy=seed * 1000 + rep)
    s = ss.generate_state(3)
    rng = np.random.default_rng(s[0])
    env = build_environment(seed=int(s[1]))
    env.warm_up(float(rng.uniform(2 * 3600.0, 8 * 3600.0)))
    skeleton = SkeletonAPI(
        bag_of_tasks(
            n_tasks, task_duration=900.0,
            input_size=input_mb * 1e6, output_size=2_000.0,
        ),
        seed=int(s[2]),
    )
    report = env.execution_manager.execute(
        skeleton,
        PlannerConfig(
            binding=Binding.LATE, unit_scheduler="backfill",
            n_pilots=2, optimize=mode,
        ),
    )
    return (report.ttc, report.decomposition.ts)


def data_affinity_ablation(
    n_tasks: int = 64,
    input_mb: float = 50.0,
    reps: int = 4,
    seed: int = 5,
    jobs: int = 1,
) -> List[AblationPoint]:
    """TTC-optimized vs data-aware resource selection on big-file tasks.

    With 50 MB inputs per task, staging over the slower WANs becomes a
    material TTC component; the "data" optimization metric (planner
    decision: compute/data affinity) should steer pilots toward the
    fat-pipe resources. This probes the paper's planned data-intensive
    execution strategies.
    """
    modes = ("ttc", "data")
    items = [
        (seed, rep, mode, n_tasks, input_mb)
        for mode in modes
        for rep in range(reps)
    ]
    samples = parallel_map(_sample_data_affinity, items, jobs=jobs)
    return [
        _aggregate(
            f"optimize={mode}", samples[i * reps:(i + 1) * reps],
            aux_name="Ts",
        )
        for i, mode in enumerate(modes)
    ]


def binding_rationale_study(
    n_tasks: int = 128,
    reps: int = 4,
    seed: int = 9,
    jobs: int = 1,
) -> List[AblationPoint]:
    """Measure the combinations Table I *discards* (paper §IV.A).

    The paper argues early binding with multiple pilots is dominated:
    tasks committed to a pilot that turns out to queue slowly simply
    wait, so TTC is governed by the last pilot to activate. We measure
    all three couplings on identical task sets: early/1 (Exp 1), the
    discarded early/3, and late/3 (Exp 3). The discarded combination
    should never beat late binding and should inherit early binding's
    variance.
    """
    arms = (
        ("early, 1 pilot (Table I row 1)", Binding.EARLY, "direct", 1),
        ("early, 3 pilots (discarded)", Binding.EARLY, "direct", 3),
        ("late, 3 pilots (Table I row 3)", Binding.LATE, "backfill", 3),
    )
    # Same (seed, rep) across arms: paired comparison on the same
    # testbeds, differing only in the strategy.
    items = [
        ((seed * 10_000 + rep, n_tasks, binding, scheduler, k), {})
        for _, binding, scheduler, k in arms
        for rep in range(reps)
    ]
    samples = parallel_map(_sample_run_once, items, jobs=jobs)
    return [
        _aggregate(label, samples[i * reps:(i + 1) * reps])
        for i, (label, _, _, _) in enumerate(arms)
    ]


def _sample_nonuniform(item) -> Tuple[float, float]:
    seed, k, rep, n_tasks, binding, scheduler = item
    ss = np.random.SeedSequence(entropy=seed * 1000 + k * 10 + rep)
    s = ss.generate_state(3)
    rng = np.random.default_rng(s[0])
    env = build_environment(seed=int(s[1]))
    env.warm_up(float(rng.uniform(2 * 3600.0, 10 * 3600.0)))
    chosen = tuple(
        rng.choice(list(env.pool), size=k, replace=False)
    )
    skeleton = SkeletonAPI(
        bag_of_tasks(
            n_tasks,
            task_duration="gauss(900, 300, 60, 1800)",
            cores_per_task=Uniform(1.0, 16.0),
        ),
        seed=int(s[2]),
    )
    report = env.execution_manager.execute(
        skeleton,
        PlannerConfig(
            binding=binding, unit_scheduler=scheduler,
            n_pilots=k, resources=chosen,
        ),
    )
    return (report.ttc, report.decomposition.tw)


def nonuniform_tasks_study(
    n_tasks: int = 128,
    reps: int = 4,
    seed: int = 7,
    jobs: int = 1,
) -> List[AblationPoint]:
    """Early vs late binding on a mix of 1-16-core tasks (paper §V).

    The paper started experimenting with "distributed applications
    comprised of non-uniform task sizes". Wide tasks fragment pilot
    cores, so strategy differences can shift relative to the single-core
    baseline; this study measures both strategies on the mixed workload.
    """
    arms = (
        ("early 1 pilot (mixed cores)", Binding.EARLY, "direct", 1),
        ("late 3 pilots (mixed cores)", Binding.LATE, "backfill", 3),
    )
    items = [
        (seed, k, rep, n_tasks, binding, scheduler)
        for _, binding, scheduler, k in arms
        for rep in range(reps)
    ]
    samples = parallel_map(_sample_nonuniform, items, jobs=jobs)
    return [
        _aggregate(label, samples[i * reps:(i + 1) * reps])
        for i, (label, _, _, _) in enumerate(arms)
    ]


def _sample_pool_scaling(item) -> Tuple[float, float]:
    presets, seed, k, rep, n_tasks = item
    ss = np.random.SeedSequence(entropy=seed * 1000 + k * 10 + rep)
    s = ss.generate_state(3)
    rng = np.random.default_rng(s[0])
    env = build_environment(seed=int(s[1]), presets=presets)
    env.warm_up(float(rng.uniform(2 * 3600.0, 8 * 3600.0)))
    chosen = tuple(
        rng.choice(list(env.pool), size=k, replace=False)
    )
    skeleton = SkeletonAPI(
        bag_of_tasks(n_tasks, task_duration=900.0), seed=int(s[2])
    )
    report = env.execution_manager.execute(
        skeleton,
        PlannerConfig(
            binding=Binding.LATE, unit_scheduler="backfill",
            n_pilots=k, resources=chosen,
        ),
    )
    return (report.ttc, report.decomposition.tw)


def pool_scaling_study(
    n_tasks: int = 256,
    pool_size: int = 17,
    pilot_counts: Sequence[int] = (1, 3, 5, 9, 17),
    reps: int = 3,
    seed: int = 3,
    jobs: int = 1,
) -> List[AblationPoint]:
    """TTC/Tw vs pilots drawn from a 17-resource synthetic pool (§V).

    The paper extends its experiments "to up to 17 resources"; here a
    synthetic heterogeneous pool of that size hosts late-binding
    executions with increasing pilot counts.
    """
    presets = tuple(synthetic_pool(pool_size, seed=seed))
    counts = [k for k in pilot_counts if k <= pool_size]
    items = [
        (presets, seed, k, rep, n_tasks)
        for k in counts
        for rep in range(reps)
    ]
    samples = parallel_map(_sample_pool_scaling, items, jobs=jobs)
    return [
        _aggregate(
            f"{k}/{pool_size} pilots", samples[i * reps:(i + 1) * reps]
        )
        for i, k in enumerate(counts)
    ]


def _sample_locality(item) -> Tuple[float, float]:
    seed, rep, scheduler, n_map_tasks, intermediate_mb = item
    from ..skeleton import map_reduce

    ss = np.random.SeedSequence(entropy=seed * 1000 + rep)
    s = ss.generate_state(3)
    rng = np.random.default_rng(s[0])
    env = build_environment(seed=int(s[1]))
    env.warm_up(float(rng.uniform(2 * 3600.0, 6 * 3600.0)))
    skeleton = SkeletonAPI(
        map_reduce(
            n_map_tasks=n_map_tasks,
            n_reduce_tasks=8,
            map_duration=300.0,
            reduce_duration=120.0,
            input_size=1e6,
            intermediate_size=intermediate_mb * 1e6,
            output_size=2_000.0,
        ),
        seed=int(s[2]),
    )
    report = env.execution_manager.execute(
        skeleton,
        PlannerConfig(
            binding=Binding.LATE, unit_scheduler=scheduler,
            n_pilots=3,
        ),
    )
    return (report.ttc, report.decomposition.ts)


def locality_study(
    n_map_tasks: int = 48,
    intermediate_mb: float = 20.0,
    reps: int = 4,
    seed: int = 17,
    jobs: int = 1,
) -> List[AblationPoint]:
    """Data-locality unit scheduling on a two-stage pipeline (§V).

    Stage-one outputs stay resident at the site that produced them (and
    at the origin). A capacity-only scheduler (backfill) places stage
    two wherever cores are free, re-staging intermediates; the locality
    scheduler binds each stage-two unit where its inputs already live.
    With 20 MB intermediates the staging difference is material; Ts is
    the auxiliary metric.
    """
    schedulers = ("backfill", "locality")
    items = [
        (seed, rep, scheduler, n_map_tasks, intermediate_mb)
        for scheduler in schedulers
        for rep in range(reps)
    ]
    samples = parallel_map(_sample_locality, items, jobs=jobs)
    return [
        _aggregate(
            scheduler, samples[i * reps:(i + 1) * reps], aux_name="Ts"
        )
        for i, scheduler in enumerate(schedulers)
    ]


def _sample_energy(item) -> Tuple[float, float]:
    seed, rep, binding, scheduler, k, n_tasks = item
    from ..core import report_energy

    ss = np.random.SeedSequence(entropy=seed * 1000 + rep)
    s = ss.generate_state(3)
    rng = np.random.default_rng(s[0])
    env = build_environment(seed=int(s[1]))
    env.warm_up(float(rng.uniform(2 * 3600.0, 10 * 3600.0)))
    chosen = tuple(
        rng.choice(list(env.pool), size=k, replace=False)
    )
    skeleton = SkeletonAPI(
        paper_skeleton(n_tasks, gaussian=False), seed=int(s[2])
    )
    report = env.execution_manager.execute(
        skeleton,
        PlannerConfig(
            binding=binding, unit_scheduler=scheduler,
            n_pilots=k, resources=chosen,
        ),
    )
    energy_kj = report_energy(report).total_joules / 1e3
    return (report.ttc, energy_kj)


def energy_study(
    n_tasks: int = 128,
    reps: int = 4,
    seed: int = 13,
    jobs: int = 1,
) -> List[AblationPoint]:
    """Energy per strategy (the paper §V's energy-efficiency metric).

    Early binding runs one right-sized pilot (low idle burn, but it
    waits); late binding keeps three pilots whose staggered activations
    and sequential waves leave cores idle. The study reports TTC with
    consumed energy (kJ) as the auxiliary metric, making the
    TTC-vs-energy trade-off of the two Table I strategies explicit.
    """
    arms = (
        ("early, 1 pilot", Binding.EARLY, "direct", 1),
        ("late, 3 pilots", Binding.LATE, "backfill", 3),
    )
    items = [
        (seed, rep, binding, scheduler, k, n_tasks)
        for _, binding, scheduler, k in arms
        for rep in range(reps)
    ]
    samples = parallel_map(_sample_energy, items, jobs=jobs)
    return [
        _aggregate(label, samples[i * reps:(i + 1) * reps], aux_name="kJ")
        for i, (label, _, _, _) in enumerate(arms)
    ]


@dataclass(frozen=True)
class WaitModelComparison:
    """Emergent vs sampled queue-wait models, compared on correlation."""

    emergent_corr: float      # corr of paired probe waits, emergent model
    sampled_corr: float       # same, i.i.d. sampled model
    emergent_mean: float
    sampled_mean: float
    n_pairs: int

    def render(self) -> str:
        return (
            "Ablation — emergent vs sampled queue waits "
            f"({self.n_pairs} probe pairs, 600 s apart on one resource)\n"
            f"  emergent model: mean wait {self.emergent_mean:7.0f} s, "
            f"pair correlation {self.emergent_corr:+.2f}\n"
            f"  sampled  model: mean wait {self.sampled_mean:7.0f} s, "
            f"pair correlation {self.sampled_corr:+.2f}\n"
            "  (i.i.d. sampling erases the temporal correlation real "
            "queues exhibit,\n   which flatters multi-pilot strategies "
            "and blinds the predictive interface)"
        )


def _probe_pair_on(cluster, sim, probe_cores: int) -> Tuple[float, float]:
    from ..cluster import BatchJob

    probes = []
    for delay in (0.0, 600.0):
        probe = BatchJob(cores=probe_cores, runtime=900,
                         walltime=1800, kind="probe")
        sim.call_in(delay, cluster.submit, probe)
        probes.append(probe)
    sim.run(until=sim.now + 48 * 3600)
    return tuple(
        p.wait_time if p.wait_time is not None else 48 * 3600.0
        for p in probes
    )


def _sample_emergent_pair(item) -> Tuple[float, float]:
    seed, rep, probe_cores = item
    ss = np.random.SeedSequence(entropy=seed * 100 + rep)
    s = ss.generate_state(2)
    rng = np.random.default_rng(s[0])
    env = build_environment(seed=int(s[1]))
    env.warm_up(float(rng.uniform(2 * 3600.0, 10 * 3600.0)))
    name = str(rng.choice(list(env.pool)))
    return _probe_pair_on(env.pool[name].cluster, env.sim, probe_cores)


def _sample_sampled_pair(item) -> Tuple[float, float]:
    seed, rep, mu, sigma, probe_cores = item
    from ..cluster.sampled import SampledWaitCluster
    from ..des import Simulation
    from ..net import Network

    sim = Simulation(seed=seed * 1000 + rep)
    Network(sim)  # parity with the emergent arm's construction
    cluster = SampledWaitCluster(
        sim, "sampled", nodes=64, cores_per_node=16,
        wait_mu=mu, wait_sigma=sigma, submit_overhead=0.0,
    )
    return _probe_pair_on(cluster, sim, probe_cores)


def emergent_vs_sampled_study(
    n_pairs: int = 12,
    probe_cores: int = 256,
    seed: int = 11,
    jobs: int = 1,
) -> WaitModelComparison:
    """Measure the design decision DESIGN.md calls out: emergent waits.

    Two probe jobs are submitted to the *same* resource 600 s apart; the
    pair's waits are recorded. Under the emergent model the two probes
    sit behind (mostly) the same backlog, so their waits correlate;
    under the i.i.d. sampled model the correlation vanishes by
    construction. The sampled model's lognormal is fitted to the waits
    the emergent arm produced, so the marginals match — only the
    dependence structure differs.
    """
    from ..cluster.sampled import fit_lognormal_waits

    # --- emergent arm -------------------------------------------------------
    emergent_pairs: List[Tuple[float, float]] = parallel_map(
        _sample_emergent_pair,
        [(seed, rep, probe_cores) for rep in range(n_pairs)],
        jobs=jobs,
    )

    # --- sampled arm (marginals fitted to the emergent waits) ----------------
    all_waits = [w for pair in emergent_pairs for w in pair]
    mu, sigma = fit_lognormal_waits(all_waits)
    sampled_pairs: List[Tuple[float, float]] = parallel_map(
        _sample_sampled_pair,
        [(seed, rep, mu, sigma, probe_cores) for rep in range(n_pairs)],
        jobs=jobs,
    )

    def corr(pairs: List[Tuple[float, float]]) -> float:
        a = np.asarray([p[0] for p in pairs])
        b = np.asarray([p[1] for p in pairs])
        if a.std() == 0 or b.std() == 0:
            return 0.0
        return float(np.corrcoef(a, b)[0, 1])

    return WaitModelComparison(
        emergent_corr=corr(emergent_pairs),
        sampled_corr=corr(sampled_pairs),
        emergent_mean=float(np.mean([w for p in emergent_pairs for w in p])),
        sampled_mean=float(np.mean([w for p in sampled_pairs for w in p])),
        n_pairs=n_pairs,
    )


def render_ablation(title: str, points: Sequence[AblationPoint]) -> str:
    """Format ablation outcomes as an aligned text table."""
    aux = points[0].aux_name if points else "Tw"
    header = (
        f"{'configuration':>36} | {'TTC mean':>9} | {'TTC std':>8} | "
        f"{aux + ' mean':>8} | {aux + ' std':>7} | {'runs':>4}"
    )
    lines = [title, header, "-" * len(header)]
    for p in points:
        lines.append(
            f"{p.label:>36} | {p.ttc_mean:>9.0f} | {p.ttc_std:>8.0f} | "
            f"{p.aux_mean:>8.0f} | {p.aux_std:>7.0f} | {p.n_runs:>4}"
        )
    return "\n".join(lines)
