"""Crash-safe campaign execution: leases, resume planning, and shutdown.

The campaign runner simulates resilient *distributed* execution (faults,
breakers, deadline re-planning), but before this module it was itself
fragile: a SIGKILL, a hung worker, or a Ctrl-C discarded every completed
repetition and the only recovery was a full re-run. This module makes
the execution process itself supervisable — the same posture the AIMES
paper takes toward the applications it runs — following the
checkpoint/restart and pilot-lifecycle supervision patterns of
RADICAL-Pilot and the P* pilot model.

Four cooperating pieces:

* **Leases** — every dispatch of a ``(exp_id, n_tasks, rep)`` cell
  writes an *attempt* row into the store (attempt number, state,
  worker pid, wall start/end, heartbeat). The row is opened ``leased``
  before the cell runs and closed ``committed``/``failed``/``timeout``/
  ``crashed``/``reclaimed``/``interrupted`` afterwards, so a campaign's
  execution history is durable and a half-finished store is
  forensically legible: whatever is still ``leased`` died in flight.
* **Resume** — :func:`prepare_resume` verifies the campaign config
  fingerprint (grid, reps, seed, resource pool hashed canonically)
  against the store, refuses incompatible resumes with a per-key diff,
  reclaims stale leases, skips committed cells, and returns the
  remaining grid. Because every cell seeds itself from its coordinates
  alone (``SeedSequence`` spawn keys), re-running only the remainder
  is provably identical to an uninterrupted run — the chaos-resume
  suite asserts byte-identical ``campaign_fingerprint_from_store``
  digests.
* **Supervision** — :class:`ExecutionSupervisor` is the parent-side
  bookkeeper the runners call at each dispatch/commit/failure; the
  parallel runner adds per-chunk heartbeats and a per-cell wall-time
  budget on top, killing hung workers and retrying their cells under a
  seeded-backoff budget before quarantining them as poison cells.
* **Graceful shutdown** — :class:`ShutdownControl` turns SIGINT/SIGTERM
  into a two-stage drain: the first signal stops dispatching and lets
  in-flight cells finish (and commit); the second hard-cancels. Either
  way the store is marked cleanly interrupted and the CLI exits with
  :data:`EXIT_RESUMABLE`.

Exit-code contract (the CLI's ``campaign`` subcommand):

====  =========================================================
 0    campaign completed, no cell errors
 1    campaign completed, some cells quarantined as errors
 2    usage/config errors, including an incompatible ``--resume``
75    cleanly interrupted (SIGINT/SIGTERM drain); resumable
====  =========================================================
"""

from __future__ import annotations

import logging
import os
import signal
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..telemetry.digest import sha256_digest
from .campaign import CellError

log = logging.getLogger(__name__)

#: One repetition's coordinates in the campaign grid.
Cell = Tuple[int, int, int]

#: Exit code of a cleanly-interrupted (drained) campaign: EX_TEMPFAIL —
#: "try again", which is exactly what ``--resume`` does.
EXIT_RESUMABLE = 75


def config_digest(meta: Dict[str, Any]) -> str:
    """SHA-256 over the canonical campaign config (grid/reps/seed/pool).

    Everything :func:`~repro.experiments.campaign.campaign_meta` records
    participates, so any future config dimension (faults, supervision)
    is covered automatically the moment it lands in the meta dict.
    """
    return sha256_digest(dict(meta))


def meta_diff(
    stored: Dict[str, Any], requested: Dict[str, Any]
) -> List[Tuple[str, Any, Any]]:
    """Per-key differences between a stored and a requested config."""
    diff: List[Tuple[str, Any, Any]] = []
    for key in sorted(set(stored) | set(requested)):
        a, b = stored.get(key), requested.get(key)
        if a != b:
            diff.append((key, a, b))
    return diff


class IncompatibleResumeError(ValueError):
    """``--resume`` against a store written by a different campaign config."""

    def __init__(
        self, diff: List[Tuple[str, Any, Any]],
        stored_digest: str, requested_digest: str,
    ) -> None:
        self.diff = diff
        self.stored_digest = stored_digest
        self.requested_digest = requested_digest
        lines = [
            "store was written by a different campaign config "
            f"(stored {stored_digest[:12]}, requested "
            f"{requested_digest[:12]}); refusing to resume:"
        ]
        for key, a, b in diff:
            lines.append(f"  {key}: stored {a!r} != requested {b!r}")
        super().__init__("\n".join(lines))


class CampaignInterrupted(RuntimeError):
    """A campaign stopped by SIGINT/SIGTERM after a clean drain.

    Carries the partial :class:`~repro.experiments.campaign.CampaignResult`
    of the cells that completed *in this session* (with a store, every
    one of them is already committed on disk). The CLI maps this to
    :data:`EXIT_RESUMABLE`.
    """

    def __init__(self, message: str, result=None) -> None:
        super().__init__(message)
        self.result = result


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs for execution supervision and retry budgets.

    ``cell_timeout_s`` is the per-cell wall-time budget; an in-flight
    chunk's budget is ``cell_timeout_s * len(chunk)``, measured from the
    moment the parent observes the chunk running. ``None`` disables
    timeout supervision (the default: simulated cells are fast, but a
    pathological workload or a wedged interpreter is exactly what this
    guard exists for).
    """

    cell_timeout_s: Optional[float] = None
    #: dispatches of one cell (timeouts and crashes both count) before
    #: it is quarantined as a poison-cell :class:`CellError`.
    max_attempts: int = 2
    #: base of the seeded exponential backoff between retries.
    backoff_base_s: float = 0.5
    #: parent-side poll cadence for heartbeats/timeouts/signals.
    poll_s: float = 0.25
    #: minimum interval between heartbeat writes per poll loop.
    heartbeat_s: float = 1.0
    #: on resume, re-attempt cells previously quarantined as errors.
    retry_errors: bool = False

    def backoff_s(self, cell: Cell, attempt: int, campaign_seed: int = 0) -> float:
        """Deterministic (seeded) exponential backoff with jitter."""
        ss = np.random.SeedSequence(
            entropy=campaign_seed, spawn_key=(*cell, 0x5EED, attempt)
        )
        jitter = float(np.random.default_rng(ss).uniform(0.5, 1.5))
        return self.backoff_base_s * (2 ** max(0, attempt - 1)) * jitter


class ShutdownControl:
    """Two-stage SIGINT/SIGTERM handling for campaign runners.

    First signal: ``draining`` — stop dispatching, let in-flight cells
    finish and commit. Second signal: ``hard`` — cancel everything still
    running. With ``raise_on_hard`` (the serial runner) the second
    signal raises :class:`KeyboardInterrupt` so an in-process cell is
    actually preempted; the parallel parent polls the flags instead and
    kills its worker pool.

    Worker processes fork a copy of the installed handler; the copy
    recognizes the pid mismatch and only flips its (invisible) flags,
    which makes workers immune to the terminal's process-group SIGINT —
    the drain semantics fall out for free. Installation is a no-op off
    the main thread.
    """

    def __init__(self, raise_on_hard: bool = False, quiet: bool = True) -> None:
        self.draining = False
        self.hard = False
        self.signals = 0
        self._raise_on_hard = raise_on_hard
        self._quiet = quiet
        self._pid = os.getpid()
        self._previous: Dict[int, Any] = {}

    def install(self) -> "ShutdownControl":
        try:
            for sig in (signal.SIGINT, signal.SIGTERM):
                self._previous[sig] = signal.signal(sig, self._handle)
        except ValueError:  # pragma: no cover - non-main thread
            self._previous = {}
        return self

    def restore(self) -> None:
        for sig, previous in self._previous.items():
            try:
                signal.signal(sig, previous)
            except ValueError:  # pragma: no cover - non-main thread
                pass
        self._previous = {}

    def _handle(self, signum, frame) -> None:
        if os.getpid() != self._pid:
            # forked worker copy: shield the worker, let the parent drain.
            return
        self.signals += 1
        if self.draining:
            self.hard = True
            if not self._quiet:
                sys.stderr.write("\nhard cancel — store keeps every committed cell\n")
            if self._raise_on_hard:
                raise KeyboardInterrupt
        else:
            self.draining = True
            if not self._quiet:
                sys.stderr.write(
                    "\ndraining in-flight cells (signal again to hard-cancel); "
                    "resume later with --resume\n"
                )

    def __enter__(self) -> "ShutdownControl":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.restore()


@dataclass
class ResumePlan:
    """What :func:`prepare_resume` decided about a half-finished store."""

    committed: Set[Cell] = field(default_factory=set)
    errors_skipped: Set[Cell] = field(default_factory=set)
    errors_retried: Set[Cell] = field(default_factory=set)
    reclaimed_leases: int = 0
    remaining: List[Cell] = field(default_factory=list)
    was_interrupted: bool = False

    def describe(self) -> str:
        return (
            f"resume: {len(self.committed)} committed cell(s) skipped, "
            f"{len(self.errors_skipped)} quarantined skipped, "
            f"{len(self.errors_retried)} quarantined retried, "
            f"{self.reclaimed_leases} stale lease(s) reclaimed, "
            f"{len(self.remaining)} cell(s) to run"
        )


def prepare_resume(
    store, meta: Dict[str, Any], grid: Sequence[Cell],
    retry_errors: bool = False,
) -> ResumePlan:
    """Plan the remainder of a half-finished campaign store.

    Refuses (``IncompatibleResumeError``) when the store's recorded
    campaign config differs from the requested one — resuming a seed-7
    campaign with seed 8 would silently produce a franken-campaign no
    fingerprint could vouch for. A store with no recorded config (empty
    or freshly created) resumes trivially into a full run.
    """
    stored = store.campaign_meta()
    if stored:
        diff = meta_diff(stored, meta)
        if diff:
            raise IncompatibleResumeError(
                diff, config_digest(stored), config_digest(meta)
            )
    reclaimed = store.reclaim_stale_leases()
    if reclaimed:
        log.warning("reclaimed %d stale lease(s) from a dead run", reclaimed)
    committed = store.committed_cells()
    error_cells = store.error_cells()
    retried: Set[Cell] = set()
    if retry_errors and error_cells:
        for cell in sorted(error_cells):
            store.delete_error(*cell)
        retried, error_cells = error_cells, set()
    remaining = [
        cell for cell in grid
        if cell not in committed and cell not in error_cells
    ]
    plan = ResumePlan(
        committed=committed & set(grid),
        errors_skipped=error_cells & set(grid),
        errors_retried=retried,
        reclaimed_leases=reclaimed,
        remaining=remaining,
        was_interrupted=store.interrupted(),
    )
    log.info(plan.describe())
    return plan


class ExecutionSupervisor:
    """Parent-side attempt bookkeeping over the store and the ledger.

    One instance per campaign execution (serial or parallel parent).
    Tracks per-cell dispatch counts for this session's retry budget;
    durable attempt numbering continues from whatever the store already
    holds, so a resumed campaign's history reads as one sequence.
    All methods are no-ops on the sinks they were not given.
    """

    def __init__(self, store=None, ledger=None,
                 policy: Optional[ResiliencePolicy] = None) -> None:
        self.store = store
        self.ledger = ledger
        self.policy = policy or ResiliencePolicy()
        self._session_attempts: Dict[Cell, int] = {}
        self._open: Dict[Cell, int] = {}
        self._last_heartbeat = 0.0

    # -- lifecycle of one attempt ----------------------------------------------

    def begin(self, cell: Cell, worker: Optional[int] = None) -> int:
        """Open a lease for one dispatch; returns the durable attempt #."""
        self._session_attempts[cell] = self._session_attempts.get(cell, 0) + 1
        if self.store is not None:
            attempt = self.store.begin_attempt(*cell, worker=worker)
        else:
            attempt = self._session_attempts[cell]
        self._open[cell] = attempt
        if self.ledger is not None:
            self.ledger.attempt_started(cell, attempt, worker=worker)
        return attempt

    def commit(self, cell: Cell, run, worker: Optional[int] = None) -> None:
        """Atomically persist the result and close the lease ``committed``."""
        attempt = self._open.pop(cell, None)
        if self.store is None:
            return
        with self.store.transaction():
            self.store.put_run(run)
            if attempt is not None:
                self.store.finish_attempt(
                    *cell, attempt=attempt, state="committed", worker=worker
                )

    def fail(self, cell: Cell, error: str) -> None:
        """Quarantine the cell: error row + lease closed ``failed``."""
        attempt = self._open.pop(cell, None)
        if self.store is None:
            return
        with self.store.transaction():
            self.store.put_error(CellError(*cell, error=error))
            if attempt is not None:
                self.store.finish_attempt(
                    *cell, attempt=attempt, state="failed", error=error
                )

    def timeout(self, cell: Cell, budget_s: float) -> None:
        """Close the lease ``timeout`` (the cell may still be retried)."""
        attempt = self._open.pop(cell, None)
        if self.store is not None and attempt is not None:
            self.store.finish_attempt(
                *cell, attempt=attempt, state="timeout",
                error=f"exceeded the {budget_s:.1f}s wall budget",
            )
        if self.ledger is not None:
            self.ledger.attempt_timeout(cell, attempt, budget_s)

    def close(self, cell: Cell, state: str, reason: str = "") -> None:
        """Close the lease without a result (drain, crash, teardown)."""
        attempt = self._open.pop(cell, None)
        if self.store is not None and attempt is not None:
            self.store.finish_attempt(
                *cell, attempt=attempt, state=state, error=reason or None
            )

    def retried(self, cell: Cell, backoff_s: float = 0.0) -> None:
        if self.ledger is not None:
            self.ledger.cell_retried(
                cell, self.session_attempts(cell) + 1, backoff_s
            )

    # -- liveness --------------------------------------------------------------

    def heartbeat(self, cells: Sequence[Cell]) -> None:
        """Stamp in-flight leases (rate-limited to ``policy.heartbeat_s``).

        Also pulses the ledger's live bus (if any) with the in-flight
        cell set — an ephemeral, bus-only event that feeds worker-
        liveness views without touching the durable sinks.
        """
        if not cells:
            return
        now = time.monotonic()
        if now - self._last_heartbeat < self.policy.heartbeat_s:
            return
        self._last_heartbeat = now
        open_cells = [c for c in cells if c in self._open]
        if self.store is not None and open_cells:
            self.store.heartbeat_attempts(
                [(c, self._open[c]) for c in open_cells]
            )
        if self.ledger is not None:
            self.ledger.heartbeat(open_cells or list(cells))

    def session_attempts(self, cell: Cell) -> int:
        """Dispatches of this cell in this session (the retry budget)."""
        return self._session_attempts.get(cell, 0)
