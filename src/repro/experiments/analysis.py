"""Statistical analysis over campaign results."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .campaign import CampaignResult, RunResult


@dataclass(frozen=True)
class CellStats:
    """Summary statistics for one (experiment, size) cell."""

    exp_id: int
    n_tasks: int
    n_runs: int
    mean: float
    std: float
    minimum: float
    maximum: float


def cell_stats(
    result: CampaignResult, exp_id: int, n_tasks: int, attr: str = "ttc"
) -> CellStats:
    values = np.asarray(
        [getattr(r, attr) for r in result.cell(exp_id, n_tasks)], dtype=float
    )
    if values.size == 0:
        nan = float("nan")
        return CellStats(exp_id, n_tasks, 0, nan, nan, nan, nan)
    return CellStats(
        exp_id=exp_id,
        n_tasks=n_tasks,
        n_runs=int(values.size),
        mean=float(values.mean()),
        std=float(values.std(ddof=0)),
        minimum=float(values.min()),
        maximum=float(values.max()),
    )


def tw_range(result: CampaignResult, exp_ids: Sequence[int]) -> Tuple[float, float]:
    """(min, max) of the Tw component over the given experiments.

    The paper reports early-binding Tw varying in [600, 8600] s and
    late-binding Tw in [99, 2800] s; this is the comparable statistic.
    """
    waits = [
        r.tw for r in result.runs if r.exp_id in exp_ids and r.tw == r.tw
    ]
    if not waits:
        return (float("nan"), float("nan"))
    return (min(waits), max(waits))


def variability_ratio(
    result: CampaignResult,
    early_exp: int = 1,
    late_exp: int = 3,
    attr: str = "ttc",
) -> float:
    """Mean per-size std of early binding over late binding.

    > 1 means early binding is the more variable strategy (Figure 4's
    error-bar comparison).
    """
    sizes = sorted({r.n_tasks for r in result.runs})
    ratios = []
    for n in sizes:
        e = cell_stats(result, early_exp, n, attr).std
        l = cell_stats(result, late_exp, n, attr).std
        if e == e and l == l and l > 0:
            ratios.append(e / l)
    return float(np.mean(ratios)) if ratios else float("nan")


def win_fraction(
    result: CampaignResult, winner_exp: int, loser_exp: int, attr: str = "ttc"
) -> float:
    """Fraction of sizes at which winner's mean beats loser's mean."""
    sizes = sorted({r.n_tasks for r in result.runs})
    wins = total = 0
    for n in sizes:
        w = cell_stats(result, winner_exp, n, attr).mean
        l = cell_stats(result, loser_exp, n, attr).mean
        if w == w and l == l:
            total += 1
            if w < l:
                wins += 1
    return wins / total if total else float("nan")


def component_shares(
    result: CampaignResult, exp_id: int, normalize: bool = False
) -> Dict[int, Dict[str, float]]:
    """Per-size mean of each TTC component for one experiment.

    With ``normalize=True``, each cell's components are returned as
    fractions of TTC that sum to 1.0. Runs carrying a causal
    :attr:`~repro.experiments.campaign.RunResult.attribution` use that
    exact partition (it sums to TTC by construction); legacy runs fall
    back to the recorded ``tw/tx/ts/trp`` fields with the remainder
    reported as ``idle``.
    """
    sizes = sorted({r.n_tasks for r in result.runs if r.exp_id == exp_id})
    out: Dict[int, Dict[str, float]] = {}
    for n in sizes:
        if not normalize:
            out[n] = {
                attr: cell_stats(result, exp_id, n, attr).mean
                for attr in ("ttc", "tw", "tx", "ts", "trp")
            }
            continue
        shares: Dict[str, List[float]] = {}
        for run in result.cell(exp_id, n):
            if not (run.ttc > 0):
                continue
            if run.attribution:
                parts = {k: v for k, v in run.attribution}
            else:
                parts = {
                    "tw": run.tw,
                    "tr": 0.0,
                    "tx": run.tx,
                    "ts": run.ts,
                    "trp": run.trp,
                }
                parts = {
                    k: (v if v == v else 0.0) for k, v in parts.items()
                }
                parts["idle"] = max(0.0, run.ttc - sum(parts.values()))
            total = sum(parts.values())
            if total <= 0:
                continue
            for key, value in parts.items():
                shares.setdefault(key, []).append(value / total)
        out[n] = {
            key: float(np.mean(vals)) for key, vals in sorted(shares.items())
        }
    return out


def throughput_series(
    result: CampaignResult, exp_id: int
) -> List[Tuple[int, float, float]]:
    """[(n_tasks, mean, std)] of tasks/hour for one experiment.

    Throughput is the alternative metric the paper plans to generalize
    to: completed tasks per hour of TTC. Late binding's advantage shows
    as *higher and steadier* throughput at scale.
    """
    sizes = sorted({r.n_tasks for r in result.runs if r.exp_id == exp_id})
    out = []
    for n in sizes:
        values = np.asarray([
            r.units_done / (r.ttc / 3600.0)
            for r in result.cell(exp_id, n)
            if r.ttc > 0
        ])
        if values.size:
            out.append((n, float(values.mean()), float(values.std(ddof=0))))
        else:
            out.append((n, float("nan"), float("nan")))
    return out


def success_rate(result: CampaignResult) -> float:
    """Fraction of runs that completed every task."""
    if not result.runs:
        return float("nan")
    return sum(1 for r in result.runs if r.succeeded) / len(result.runs)


def significance(
    result: CampaignResult,
    exp_a: int,
    exp_b: int,
    attr: str = "ttc",
) -> float:
    """One-sided Mann-Whitney U p-value that experiment A's values are
    stochastically smaller than B's (A "wins").

    Nonparametric on purpose: TTC distributions are heavy-tailed, so
    t-tests on means would be driven by a few extreme queue draws.
    """
    from scipy import stats

    a = np.asarray([getattr(r, attr) for r in result.runs if r.exp_id == exp_a])
    b = np.asarray([getattr(r, attr) for r in result.runs if r.exp_id == exp_b])
    if a.size == 0 or b.size == 0:
        return float("nan")
    return float(stats.mannwhitneyu(a, b, alternative="less").pvalue)


def paired_significance(
    result: CampaignResult,
    exp_a: int,
    exp_b: int,
    attr: str = "ttc",
) -> float:
    """One-sided Wilcoxon signed-rank p-value on per-size cell means.

    The campaign design is paired by application size, so the right test
    compares A's and B's means size by size rather than pooling runs
    across sizes (whose scales differ by orders of magnitude and drown
    the rank statistic). Small n (one pair per size), but all-sizes wins
    still reach p < 0.01 at the paper's nine sizes.
    """
    from scipy import stats

    sizes = sorted(
        {r.n_tasks for r in result.runs if r.exp_id in (exp_a, exp_b)}
    )
    diffs = []
    for n in sizes:
        a = cell_stats(result, exp_a, n, attr).mean
        b = cell_stats(result, exp_b, n, attr).mean
        if a == a and b == b:
            diffs.append(a - b)
    if len(diffs) < 5:
        return float("nan")
    if all(d == 0 for d in diffs):
        # identical samples: no evidence either way (scipy's wilcoxon
        # raises on an all-zero difference vector).
        return float("nan")
    return float(stats.wilcoxon(diffs, alternative="less").pvalue)
