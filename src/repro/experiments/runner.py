"""Parallel campaign execution across worker processes.

A Monte-Carlo campaign is embarrassingly parallel: every repetition of
every ``(experiment, n_tasks)`` cell derives its seeds independently
from ``(campaign_seed, exp_id, n_tasks, rep)`` via
``np.random.SeedSequence`` and runs in a fresh simulation. The runner
exploits that by fanning the grid out to a :class:`ProcessPoolExecutor`.

Determinism contract
--------------------
The parallel campaign is *bit-identical* to the serial one:

* Seeding depends only on the cell coordinates, never on execution
  order, worker identity, or wall-clock time.
* Workers return completed :class:`RunResult` values; the parent never
  mutates them.
* Results are re-ordered into grid order (experiments x task_counts x
  reps, exactly the serial loop nest) before the
  :class:`CampaignResult` is assembled, so downstream consumers see the
  same sequence regardless of which worker finished first.

``tests/experiments/test_runner.py`` asserts field-by-field equality of
serial and parallel campaigns — including the per-repetition
telemetry/fault/health digests — and CI re-checks it on every push.

Scheduling
----------
Cells are packed into chunks, biggest first (cost model: a cell's wall
time grows roughly linearly in ``n_tasks`` on top of a fixed
environment-construction overhead). Big-first packing keeps the long
cells from landing at the tail of the schedule where they would leave
all other workers idle. Each chunk is one executor task, which
amortizes process-pool dispatch overhead for the many small cells.

Crash containment
-----------------
A worker process dying (segfault, OOM kill) breaks the whole pool: all
in-flight futures raise :class:`BrokenProcessPool` and we cannot tell
which chunk was guilty. The runner then splits every unfinished chunk
into single-cell chunks and retries them in a fresh pool. A cell that
breaks a pool twice on its own is recorded as a
:class:`~repro.experiments.campaign.CellError` instead of a result;
innocent cells complete normally. Ordinary exceptions inside a
repetition never break the pool — the worker catches them per cell and
reports them as errors.
"""

from __future__ import annotations

import importlib
import logging
import os
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..cluster.workload import stream_cache_stats
from ..skeleton import PAPER_TASK_COUNTS
from .campaign import (
    TABLE1,
    CampaignResult,
    CellError,
    CellProgress,
    RunResult,
    campaign_meta,
    run_single,
)
from .ledger import RunLedger

log = logging.getLogger(__name__)

#: One repetition's coordinates in the campaign grid.
Cell = Tuple[int, int, int]  # (exp_id, n_tasks, rep)

#: Environment setup (pool construction, queue priming) costs roughly as
#: much as ~64 tasks' worth of simulated execution; the rest of a cell's
#: wall time is close to linear in its task count.
_BASE_COST = 64


def resolve_jobs(jobs: Optional[int]) -> int:
    """Map a ``--jobs`` value to a worker count.

    ``0`` or ``None`` means one worker per *usable* CPU — the scheduling
    affinity mask, not the raw core count, so cgroup/taskset-restricted
    environments (CI runners, containers) are sized honestly.
    """
    if jobs is None or jobs == 0:
        try:
            return max(1, len(os.sched_getaffinity(0)))
        except AttributeError:  # pragma: no cover - non-Linux fallback
            return max(1, os.cpu_count() or 1)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return int(jobs)


def cell_cost(cell: Cell) -> int:
    """Relative wall-time estimate for one repetition."""
    return _BASE_COST + cell[1]


def plan_chunks(cells: Sequence[Cell], jobs: int) -> List[List[Cell]]:
    """Pack cells into chunks for dispatch, biggest cells first.

    The chunk size target is ``total_cost / (jobs * 4)`` (but at least
    one maximal cell), giving ~4 waves of chunks per worker: small
    enough for load balancing when cell costs are skewed, large enough
    that pool dispatch overhead stays negligible. Deterministic — no
    randomness, ties keep grid order (stable sort).
    """
    if not cells:
        return []
    jobs = max(1, jobs)
    costed = sorted(cells, key=cell_cost, reverse=True)
    total = sum(cell_cost(c) for c in cells)
    target = max(cell_cost(costed[0]), total // (jobs * 4))
    chunks: List[List[Cell]] = []
    current: List[Cell] = []
    acc = 0
    for cell in costed:
        current.append(cell)
        acc += cell_cost(cell)
        if acc >= target:
            chunks.append(current)
            current = []
            acc = 0
    if current:
        chunks.append(current)
    return chunks


# -- worker side (module-level: must be picklable under spawn too) -------------


def _default_run_cell(
    cell: Cell,
    campaign_seed: int,
    resource_pool: Optional[Tuple[str, ...]],
    collect_digests: bool,
) -> RunResult:
    """Execute one repetition in the worker process."""
    exp_id, n_tasks, rep = cell
    return run_single(
        TABLE1[exp_id], n_tasks, rep,
        campaign_seed=campaign_seed,
        resource_pool=resource_pool,
        collect_digests=collect_digests,
    )


def _resolve_run_fn(path: Optional[str]):
    """Import a ``module:attr`` run function (test injection hook)."""
    if path is None:
        return _default_run_cell
    module_name, _, attr = path.partition(":")
    return getattr(importlib.import_module(module_name), attr)


def _run_chunk(
    chunk: Sequence[Cell],
    campaign_seed: int,
    resource_pool: Optional[Tuple[str, ...]],
    collect_digests: bool,
    run_fn_path: Optional[str],
) -> List[Tuple[str, Cell, object, dict]]:
    """Worker entry point: run every cell of one chunk.

    Exceptions are contained per cell — one failing repetition costs
    that repetition, not the chunk and not the campaign. Each row
    carries a meta dict with the cell's wall time and the worker's pid,
    feeding the run ledger and progress callbacks.
    """
    run_fn = _resolve_run_fn(run_fn_path)
    pid = os.getpid()
    out: List[Tuple[str, Cell, object, dict]] = []
    for cell in chunk:
        w0 = time.perf_counter()
        try:
            run = run_fn(cell, campaign_seed, resource_pool, collect_digests)
            meta = {"wall_s": time.perf_counter() - w0, "worker": pid}
            out.append(("ok", cell, run, meta))
        except Exception as exc:  # noqa: BLE001 - containment boundary
            meta = {"wall_s": time.perf_counter() - w0, "worker": pid}
            out.append(("error", cell, f"{type(exc).__name__}: {exc}", meta))
    # Cumulative workload-stream cache counters of this worker process;
    # the parent keeps the latest snapshot per worker and sums them.
    cache = stream_cache_stats()
    for _, _, _, meta in out:
        meta["stream_cache"] = cache
    return out


# -- parent side ---------------------------------------------------------------


@dataclass
class RunnerStats:
    """Aggregated telemetry for one parallel campaign."""

    jobs: int = 0
    chunks: int = 0
    cells: int = 0
    completed: int = 0
    errors: int = 0
    pool_restarts: int = 0
    wall_s: float = 0.0
    #: total kernel events processed across every repetition.
    events: int = 0
    #: attempts killed for exceeding the per-cell wall budget.
    timeouts: int = 0
    #: cells re-dispatched after a timeout or crash.
    retried: int = 0
    #: the campaign was drained by SIGINT/SIGTERM before completing.
    interrupted: bool = False
    #: workload-stream cache counters summed across worker processes
    #: (hits, misses, extensions, fallbacks, streams, recorded_ops).
    stream_cache: Dict[str, int] = field(default_factory=dict)

    @property
    def events_per_sec(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """SIGKILL the pool's workers and reap the executor.

    ``shutdown(wait=True)`` would block on a hung worker, and because
    workers inherit the parent's benign :class:`ShutdownControl` handler
    a SIGTERM is shielded too — SIGKILL is the only reliable teardown.
    """
    procs = list((getattr(pool, "_processes", None) or {}).values())
    for proc in procs:
        try:
            proc.kill()
        except Exception:  # noqa: BLE001 - already-dead race
            pass
    pool.shutdown(wait=False, cancel_futures=True)
    for proc in procs:
        try:
            proc.join(timeout=5)
        except Exception:  # noqa: BLE001 - already-reaped race
            pass


def _execute_chunks(
    chunks: List[List[Cell]],
    jobs: int,
    worker_args: Tuple,
    stats: RunnerStats,
    on_cell: Callable[[str, Cell, object, dict], None],
    supervisor=None,
    control=None,
    policy=None,
    campaign_seed: int = 0,
) -> bool:
    """Drive chunks to completion, surviving crashes, hangs, and signals.

    Chunks whose futures raise :class:`BrokenProcessPool` are split into
    single-cell chunks and retried in a fresh pool; a cell that breaks a
    pool ``policy.max_attempts`` times while running alone is quarantined
    as an error. When ``policy.cell_timeout_s`` is set, the parent polls
    in-flight chunks against a ``cell_timeout_s * len(chunk)`` wall
    budget; an overdue chunk's workers are killed, its cells retried
    under the same attempt budget (with seeded backoff), and innocent
    in-flight chunks are requeued without attempt penalty. ``control``
    drain requests stop new dispatch and let running chunks finish;
    hard-cancel kills the pool. Returns ``True`` when the campaign was
    interrupted before completion.
    """
    from .resilience import ExecutionSupervisor, ResiliencePolicy, ShutdownControl

    supervisor = supervisor if supervisor is not None else ExecutionSupervisor()
    policy = policy if policy is not None else supervisor.policy
    control = control if control is not None else ShutdownControl()

    pending: List[List[Cell]] = [list(chunk) for chunk in chunks]
    solo_crashes: Dict[Cell, int] = {}
    cell_timeouts: Dict[Cell, int] = {}
    draining = False
    while pending:
        if control.draining or control.hard:
            # drain requested between pool generations: nothing new
            # starts; requeued cells' leases are already closed.
            return True
        broken: List[List[Cell]] = []
        requeue: List[List[Cell]] = []
        backoff = 0.0
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(pending))
        ) as pool:
            futures: Dict = {}
            for chunk in pending:
                for cell in chunk:
                    supervisor.begin(cell)
                futures[pool.submit(_run_chunk, chunk, *worker_args)] = chunk
            pending = []
            started: Dict = {}  # future -> monotonic time first seen running
            not_done = set(futures)
            while not_done:
                done, not_done = wait(
                    not_done, timeout=policy.poll_s,
                    return_when=FIRST_COMPLETED,
                )
                for fut in done:
                    chunk = futures[fut]
                    try:
                        rows = fut.result()
                    except BrokenProcessPool:
                        broken.append(chunk)
                        continue
                    except CancelledError:
                        continue  # lease was closed where we cancelled
                    for status, cell, payload, cmeta in rows:
                        on_cell(status, cell, payload, cmeta)
                if not not_done:
                    break
                now = time.monotonic()
                running = [f for f in not_done if f in started or f.running()]
                for fut in running:
                    started.setdefault(fut, now)
                supervisor.heartbeat(
                    [c for f in running for c in futures[f]]
                )
                if control.hard:
                    _kill_pool(pool)
                    for fut in not_done:
                        fut.cancel()
                        for cell in futures[fut]:
                            supervisor.close(
                                cell, "interrupted", "hard-cancelled"
                            )
                    return True
                if control.draining:
                    if not draining:
                        draining = True
                        for fut in list(not_done):
                            if fut not in started and fut.cancel():
                                not_done.discard(fut)
                                for cell in futures[fut]:
                                    supervisor.close(
                                        cell, "interrupted",
                                        "drained before start",
                                    )
                    continue  # let running chunks finish and commit
                if policy.cell_timeout_s is None:
                    continue
                overdue = {
                    f for f in running
                    if now - started[f]
                    > policy.cell_timeout_s * len(futures[f])
                }
                if not overdue:
                    continue
                # one hung worker also wedges pool shutdown, so kill the
                # whole pool and sort guilty from innocent below.
                _kill_pool(pool)
                stats.pool_restarts += 1
                log.warning(
                    "%d chunk(s) exceeded the wall budget; killing the "
                    "pool and retrying",
                    len(overdue),
                )
                for fut in list(not_done):
                    fut.cancel()
                    chunk = futures[fut]
                    if fut in overdue:
                        budget = policy.cell_timeout_s * len(chunk)
                        for cell in chunk:
                            stats.timeouts += 1
                            count = cell_timeouts.get(cell, 0) + 1
                            cell_timeouts[cell] = count
                            supervisor.timeout(cell, budget)
                            if count >= policy.max_attempts:
                                on_cell(
                                    "error", cell,
                                    f"cell timed out ({count} attempt(s) "
                                    f"over a {budget:.1f}s wall budget); "
                                    "quarantined as a poison cell",
                                    {"wall_s": budget, "worker": None},
                                )
                            else:
                                stats.retried += 1
                                pause = policy.backoff_s(
                                    cell, count, campaign_seed
                                )
                                backoff = max(backoff, pause)
                                supervisor.retried(cell, pause)
                                requeue.append([cell])
                    else:
                        if fut.done() and not fut.cancelled():
                            # finished in the race window between the
                            # wait() and the teardown: keep the results.
                            try:
                                for status, cell, payload, cmeta in (
                                    fut.result()
                                ):
                                    on_cell(status, cell, payload, cmeta)
                                continue
                            except (BrokenProcessPool, CancelledError):
                                pass
                        # innocent bystanders of the teardown: requeue
                        # with no attempt penalty.
                        for cell in chunk:
                            supervisor.close(
                                cell, "reclaimed",
                                "collateral of a timeout teardown",
                            )
                        requeue.append(list(chunk))
                not_done = set()
        if broken:
            stats.pool_restarts += 1
            log.warning(
                "worker pool broke; retrying %d chunk(s) solo in a "
                "fresh pool",
                len(broken),
            )
            for chunk in broken:
                for cell in chunk:
                    supervisor.close(
                        cell, "crashed",
                        "worker pool broke while this cell was in flight",
                    )
                if len(chunk) == 1:
                    cell = chunk[0]
                    count = solo_crashes.get(cell, 0) + 1
                    solo_crashes[cell] = count
                    if count >= policy.max_attempts:
                        on_cell(
                            "error", cell,
                            "worker process crashed while running this "
                            f"repetition ({count} time(s) in isolation)",
                            {"wall_s": 0.0, "worker": None},
                        )
                    else:
                        stats.retried += 1
                        supervisor.retried(cell, 0.0)
                        requeue.append([cell])
                else:
                    # split: innocent cells complete solo, the guilty
                    # one starts accruing crash attempts.
                    for cell in chunk:
                        requeue.append([cell])
        pending = requeue
        if draining or control.draining or control.hard:
            return True
        if pending and backoff > 0:
            time.sleep(min(backoff, 30.0))
    return False


def run_parallel_campaign(
    experiments: Sequence[int] = (1, 2, 3, 4),
    task_counts: Sequence[int] = PAPER_TASK_COUNTS,
    reps: int = 5,
    campaign_seed: int = 0,
    resource_pool: Optional[Sequence[str]] = None,
    verbose: bool = False,
    jobs: int = 0,
    collect_digests: bool = False,
    on_progress: Optional[Callable[[CellProgress], None]] = None,
    run_fn: Optional[str] = None,
    stats: Optional[RunnerStats] = None,
    ledger: Optional[RunLedger] = None,
    store=None,
    resume: bool = False,
    resilience=None,
    control=None,
) -> CampaignResult:
    """Run the experiment grid on ``jobs`` worker processes.

    Produces a :class:`CampaignResult` whose ``runs`` are identical —
    field by field, in the same order — to the serial
    :func:`~repro.experiments.campaign.run_campaign`. Repetitions lost
    to worker crashes appear in ``result.errors`` instead of killing
    the campaign.

    ``on_progress`` receives one :class:`CellProgress` per completed
    repetition (coordinates, wall cost, error status). ``ledger``, when
    given, streams the campaign's NDJSON run ledger (see
    :mod:`repro.experiments.ledger`). ``store``, when given, is a
    :class:`repro.experiments.store.CampaignStore` the parent writes
    each completed repetition (or :class:`CellError`) into — workers
    return results over the pool and never touch the store, so it has
    exactly one writer; every cell commits individually, preserving
    crash containment (a dead worker or parent leaves only whole,
    committed rows). ``run_fn`` names a ``module:attr`` replacement for
    the per-cell execution function (used by the crash-containment
    tests). ``stats``, when given, is filled with aggregated runner
    telemetry.

    ``resume=True`` (requires ``store``) continues a half-finished
    campaign; ``resilience`` is a
    :class:`~repro.experiments.resilience.ResiliencePolicy` (per-cell
    wall budgets, retry budgets, ``retry_errors``); SIGINT/SIGTERM
    drain in-flight chunks and raise
    :class:`~repro.experiments.resilience.CampaignInterrupted` — see
    :func:`~repro.experiments.campaign.run_campaign` for the contract.
    """
    from .resilience import (
        CampaignInterrupted,
        ExecutionSupervisor,
        ResiliencePolicy,
        ShutdownControl,
        config_digest,
        prepare_resume,
    )

    t0 = time.perf_counter()
    jobs = resolve_jobs(jobs)
    experiments = list(experiments)
    task_counts = list(task_counts)
    grid: List[Cell] = [
        (exp_id, n_tasks, rep)
        for exp_id in experiments
        for n_tasks in task_counts
        for rep in range(reps)
    ]
    stats = stats if stats is not None else RunnerStats()
    stats.jobs = jobs
    stats.cells = len(grid)
    policy = resilience if resilience is not None else ResiliencePolicy()

    meta = campaign_meta(
        experiments=experiments, task_counts=task_counts, reps=reps,
        campaign_seed=campaign_seed, resource_pool=resource_pool,
    )
    if resume:
        if store is None:
            raise ValueError("resume=True requires a store")
        plan = prepare_resume(
            store, meta, grid, retry_errors=policy.retry_errors
        )
        remaining = plan.remaining
    else:
        plan = None
        remaining = list(grid)
    done_offset = len(grid) - len(remaining)
    log.info(
        "parallel campaign: %d cells (%d to run) on %d worker(s), seed=%d",
        len(grid), len(remaining), jobs, campaign_seed,
    )
    if store is not None:
        store.set_campaign_meta(meta)
        store.set_config_digest(config_digest(meta))
    if ledger is not None:
        ledger.campaign_start(len(grid), meta)
        if plan is not None:
            ledger.campaign_resumed(
                committed=len(plan.committed),
                errors_skipped=len(plan.errors_skipped),
                errors_retried=len(plan.errors_retried),
                reclaimed=plan.reclaimed_leases,
                remaining=len(plan.remaining),
            )

    pool_arg = tuple(resource_pool) if resource_pool is not None else None
    results: Dict[Cell, RunResult] = {}
    errors: Dict[Cell, str] = {}
    supervisor = ExecutionSupervisor(store=store, ledger=ledger, policy=policy)
    own_control = control is None
    if own_control:
        # parallel parent: poll the flags instead of raising — a raise
        # could land inside pool bookkeeping and corrupt the teardown.
        control = ShutdownControl(raise_on_hard=False)
    control.install()

    # Worker cache counters are cumulative per process: keep the latest
    # snapshot for each worker pid and sum across workers at the end.
    worker_cache: Dict[int, Dict[str, int]] = {}

    def on_cell(status: str, cell: Cell, payload: object, cmeta: dict) -> None:
        run: Optional[RunResult] = None
        error: Optional[str] = None
        snap = cmeta.get("stream_cache")
        worker = cmeta.get("worker")
        if snap is not None and worker is not None:
            worker_cache[worker] = snap
        if status == "ok":
            run = payload  # type: ignore[assignment]
            results[cell] = run
            stats.completed += 1
            stats.events += getattr(payload, "events", 0)
            supervisor.commit(cell, run, worker=cmeta.get("worker"))
        else:
            error = str(payload)
            errors[cell] = error
            stats.errors += 1
            log.warning("cell %s failed: %s", cell, error)
            supervisor.fail(cell, error)
        if verbose:
            exp_id, n_tasks, rep = cell
            if run is not None:
                print(
                    f"{TABLE1[exp_id].label} n={n_tasks} rep={rep}: "
                    f"TTC={run.ttc:.0f}s Tw={run.tw:.0f}s "
                    f"done={run.units_done}/{n_tasks}"
                )
            else:
                print(
                    f"{TABLE1[exp_id].label} n={n_tasks} rep={rep}: "
                    f"ERROR {payload}"
                )
        progress = CellProgress(
            done=done_offset + len(results) + len(errors), total=len(grid),
            cell=cell, wall_s=float(cmeta.get("wall_s", 0.0)),
            error=error, ttc=run.ttc if run is not None else float("nan"),
        )
        if ledger is not None:
            ledger.cell(progress, run=run, worker=cmeta.get("worker"))
        if on_progress is not None:
            on_progress(progress)

    interrupted = False
    try:
        if jobs <= 1 or len(remaining) <= 1:
            # Single worker: run in-process. Same code path as the serial
            # campaign, same results; no pool overhead, and it keeps
            # ``--jobs 1`` usable on machines where fork is unavailable.
            for cell in remaining:
                if control.draining or control.hard:
                    interrupted = True
                    break
                supervisor.begin(cell, worker=os.getpid())
                try:
                    for status, c, payload, cmeta in _run_chunk(
                        [cell], campaign_seed, pool_arg, collect_digests,
                        run_fn,
                    ):
                        on_cell(status, c, payload, cmeta)
                except KeyboardInterrupt:
                    supervisor.close(
                        cell, "interrupted", "hard-cancelled mid-cell"
                    )
                    interrupted = True
                    break
            stats.chunks = len(remaining)
        else:
            chunks = plan_chunks(remaining, jobs)
            stats.chunks = len(chunks)
            interrupted = _execute_chunks(
                chunks, jobs,
                (campaign_seed, pool_arg, collect_digests, run_fn),
                stats, on_cell,
                supervisor=supervisor, control=control, policy=policy,
                campaign_seed=campaign_seed,
            )
    except KeyboardInterrupt:
        interrupted = True
    finally:
        control.restore()

    stats.wall_s = time.perf_counter() - t0
    agg: Dict[str, int] = {}
    for snap in worker_cache.values():
        for k, v in snap.items():
            agg[k] = agg.get(k, 0) + int(v)
    stats.stream_cache = agg
    if interrupted:
        stats.interrupted = True
        if store is not None:
            store.set_interrupted(True)
        if ledger is not None:
            ledger.campaign_end(
                stats.completed, stats.errors, stats.wall_s,
                interrupted=True,
            )
        partial = CampaignResult(meta=meta)
        for cell in grid:
            if cell in results:
                partial.add(results[cell])
            elif cell in errors:
                partial.errors.append(CellError(*cell, error=errors[cell]))
        raise CampaignInterrupted(
            "campaign interrupted after "
            f"{done_offset + len(results) + len(errors)}/{len(grid)} "
            "cells; the store holds every committed cell",
            result=partial,
        )

    # Re-assemble in grid order: deterministic, independent of worker
    # completion order.
    session = set(remaining)
    out = CampaignResult(meta=meta)
    for cell in grid:
        if cell in results:
            out.add(results[cell])
        elif cell in errors:
            out.errors.append(CellError(*cell, error=errors[cell]))
        elif cell in session:  # pragma: no cover - defensive; every
            # dispatched cell resolves above
            out.errors.append(CellError(*cell, error="repetition lost"))
    if store is not None:
        store.set_interrupted(False)
    if ledger is not None:
        ledger.campaign_end(stats.completed, stats.errors, stats.wall_s)
    log.info(
        "campaign done: %d ok, %d errors, %.1fs wall",
        stats.completed, stats.errors, stats.wall_s,
    )
    if resume and store is not None:
        # previously committed cells live only in the store; return the
        # whole campaign in grid order, as an uninterrupted run would.
        return store.load_campaign()
    return out


def parallel_map(
    fn: Callable,
    items: Sequence,
    jobs: int = 1,
) -> List:
    """Order-preserving process-parallel map for campaign-style drivers.

    ``fn`` must be a module-level (picklable) callable and every item's
    result must be independent of the others — true for the ablation and
    calibration drivers, whose samples are seeded per item. Falls back
    to a plain in-process loop when ``jobs`` resolves to one worker or
    there is at most one item, so callers need no single-CPU special
    case. Unlike the campaign runner this helper does not survive
    worker crashes; a crash propagates as :class:`BrokenProcessPool`.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        futures = [pool.submit(fn, item) for item in items]
        return [f.result() for f in futures]
