"""`repro watch`: an ANSI terminal dashboard over the observability plane.

Three attachment modes, one renderer:

* ``repro watch --url http://host:port`` polls a live
  :class:`~repro.experiments.serve.MonitorServer`'s ``/state.json``;
* ``repro watch LEDGER_OR_STORE`` re-folds the durable ledger each poll
  — an NDJSON file via the torn-line-tolerant reader or a sqlite store
  via the WAL multi-reader contract — so it can watch a campaign it
  shares nothing with but the filesystem;
* programmatic callers pass any :meth:`CampaignMonitor.state()
  <repro.experiments.monitor.CampaignMonitor.state>` dict straight to
  :func:`render_dashboard`.

The renderer is a pure ``state dict -> str`` function (every frame is
testable without a terminal); the CLI loop just clears the screen and
reprints. Color degrades to plain ASCII with ``--no-color`` or when
stdout is not a tty.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional
from urllib.request import urlopen

from .monitor import CampaignMonitor

__all__ = ["render_dashboard", "state_from_path", "state_from_url"]

#: glyph + ANSI color per cell status (color key None = no color).
_STATUS_GLYPH = {
    "pending": (".", None),
    "running": ("r", "33"),   # yellow
    "ok": ("#", "32"),        # green
    "error": ("E", "31"),     # red
}


def state_from_path(path: str) -> Dict[str, Any]:
    """Fold a durable ledger (NDJSON file or campaign store) into state.

    Builds a throwaway monitor per call: the WAL multi-reader contract
    (store) and the torn-line-tolerant reader (file) make re-reading a
    live artifact safe, and campaigns are small enough that a full
    re-fold per poll tick is cheap.
    """
    from .ledger import read_ledger_any

    monitor = CampaignMonitor()
    monitor.feed_many(read_ledger_any(path))
    return monitor.state()


def state_from_url(url: str, timeout: float = 5.0) -> Dict[str, Any]:
    """Fetch ``/state.json`` from a :class:`MonitorServer`."""
    url = url.rstrip("/")
    if not url.endswith("/state.json"):
        url += "/state.json"
    with urlopen(url, timeout=timeout) as resp:
        return json.loads(resp.read().decode("utf-8"))


def _paint(text: str, color: Optional[str], enabled: bool) -> str:
    if not enabled or color is None:
        return text
    return f"\x1b[{color}m{text}\x1b[0m"


def _bar(frac: float, width: int, fill: str = "#", empty: str = ".") -> str:
    filled = int(round(width * max(0.0, min(1.0, frac))))
    return fill * filled + empty * (width - filled)


def _fmt_eta(seconds: float) -> str:
    seconds = max(0.0, seconds)
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


def render_dashboard(
    state: Dict[str, Any], color: bool = True, width: int = 72
) -> str:
    """Render one dashboard frame from a monitor state snapshot."""
    lines: List[str] = []
    total, done = state.get("total", 0), state.get("done", 0)
    errors = state.get("errors", 0)
    frac = done / total if total else 0.0
    if state.get("finished") and state.get("interrupted"):
        phase = "interrupted (resumable)"
    elif state.get("finished"):
        phase = "finished"
    elif done or state.get("running"):
        phase = "running"
    else:
        phase = "waiting"
    head = f"campaign {phase}  {done}/{total} cells ({frac:6.1%})"
    if errors:
        head += "  " + _paint(f"{errors} errors", "31", color)
    if state.get("retries"):
        head += f"  {state['retries']} retries"
    if state.get("timeouts"):
        head += f"  {state['timeouts']} timeouts"
    lines.append(head)

    bar_w = max(16, width - 24)
    eta = ""
    if not state.get("finished") and done:
        eta = f"  ETA {_fmt_eta(state.get('eta_s', 0.0))}"
        tput = state.get("throughput_cps", 0.0)
        if tput:
            eta += f"  {tput:.2f} cells/s"
    lines.append(f"[{_bar(frac, bar_w)}]{eta}")

    resumed = state.get("resumed")
    if resumed:
        lines.append(
            f"resumed: {resumed.get('committed', 0)} committed skipped, "
            f"{resumed.get('reclaimed', 0)} leases reclaimed, "
            f"{resumed.get('remaining', 0)} to run"
        )

    # -- cell grid: one row per (exp, n) series, one glyph per rep ---------
    grid = state.get("grid") or []
    by_series: Dict[Any, List[Dict[str, Any]]] = {}
    for row in grid:
        exp, n, _rep = row["cell"]
        by_series.setdefault((exp, n), []).append(row)
    if by_series:
        lines.append("")
        lines.append("cells (rep →):")
        for (exp, n), rows in sorted(by_series.items()):
            glyphs = []
            for row in sorted(rows, key=lambda r: r["cell"][2]):
                glyph, col = _STATUS_GLYPH.get(row["status"], ("?", None))
                if row.get("attempts", 0) > 1 and row["status"] == "ok":
                    glyph = "+"  # committed only after retries
                glyphs.append(_paint(glyph, col, color))
            lines.append(f"  exp{exp} n={n:<5} {''.join(glyphs)}")
        lines.append(
            "  legend: . pending  r running  # ok  + ok-after-retry  E error"
        )

    # -- TTC component shares ----------------------------------------------
    components = state.get("components") or {}
    if components:
        lines.append("")
        lines.append("TTC component shares (completed cells):")
        name_w = max(len(name) for name in components)
        for name, comp in sorted(
            components.items(), key=lambda kv: -kv[1]["share"]
        ):
            share = comp["share"]
            lines.append(
                f"  {name:<{name_w}} [{_bar(share, 24, fill='=')}] {share:6.1%}"
            )

    # -- liveness -----------------------------------------------------------
    running = state.get("running") or []
    if running:
        lines.append("")
        shown = ", ".join(
            f"exp{c['cell'][0]} n={c['cell'][1]} rep={c['cell'][2]}"
            + (f" w{c['worker']}" if c.get("worker") else "")
            for c in running[:6]
        )
        more = f" (+{len(running) - 6} more)" if len(running) > 6 else ""
        lines.append(f"in flight: {shown}{more}")
    workers = state.get("workers") or []
    if workers and not state.get("finished"):
        stale = [w for w in workers if (w.get("age_s") or 0) > 10.0]
        note = f", {len(stale)} quiet >10s" if stale else ""
        lines.append(f"workers seen: {len(workers)}{note}")
    host = state.get("host") or {}
    if host:
        parts = []
        if "cpu_s" in host:
            parts.append(f"cpu {host['cpu_s']:.1f}s")
        if "rss_kb" in host:
            parts.append(f"rss {host['rss_kb'] / 1024:.0f}MB")
        if parts:
            lines.append("host: " + "  ".join(parts))
    return "\n".join(lines)
