"""One-call construction of the simulated experimental environment.

Each experiment repetition runs in a *fresh* simulation: five (or a
chosen subset of) resources with primed queues and live background
workloads, the star WAN, a bundle over everything, and an Execution
Manager. A randomized warm-up advances the simulation before the
application is submitted, so different repetitions sample different
queue states — the paper's "applications executed at irregular
intervals to avoid effects of short-term resource load patterns".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..bundle import BundleManager, ResourceBundle
from ..cluster import PRESETS, ResourcePreset, SimulatedResource, build_pool, build_resource
from ..core import ExecutionManager
from ..des import Simulation
from ..net import DEFAULT_BANDWIDTH, DEFAULT_LATENCY, Network


@dataclass
class Environment:
    """A live simulated testbed."""

    sim: Simulation
    network: Network
    pool: Dict[str, SimulatedResource]
    bundle: ResourceBundle
    execution_manager: ExecutionManager

    def warm_up(self, duration_s: float) -> None:
        """Advance the simulation so queues evolve before the experiment."""
        self.sim.run(until=self.sim.now + duration_s)


def build_environment(
    seed: int,
    resources: Optional[Sequence[str]] = None,
    bandwidth_bytes_per_s: Optional[float] = None,
    latency_s: Optional[float] = None,
    prime: bool = True,
    presets: Optional[Sequence[ResourcePreset]] = None,
    supervision=None,
    telemetry: bool = False,
) -> Environment:
    """Create a fresh, fully wired simulated testbed.

    WAN bandwidth/latency default to each preset's own values (the sites
    have heterogeneous connectivity); pass explicit numbers to force a
    uniform network for controlled comparisons. ``presets`` replaces the
    named built-in pool with explicit presets (e.g. a synthetic pool for
    scaling studies). ``supervision`` (a
    :class:`~repro.health.SupervisionPolicy`) turns on resource health
    supervision — circuit breakers, the unit watchdog, and the deadline
    supervisor — on the Execution Manager. ``telemetry`` enables the
    kernel's :class:`~repro.telemetry.TelemetryHub` before any layer is
    built, so spans/metrics cover the whole environment lifetime.
    """
    sim = Simulation(seed=seed)
    if telemetry:
        sim.telemetry.enable()
    network = Network(sim)
    if presets is not None:
        pool = {
            preset.name: build_resource(sim, preset, prime=prime)
            for preset in presets
        }
    else:
        names = tuple(resources) if resources else tuple(PRESETS)
        pool = build_pool(sim, names=names, prime=prime)
    for name, res in pool.items():
        network.add_site(
            name,
            bandwidth_bytes_per_s=(
                bandwidth_bytes_per_s
                if bandwidth_bytes_per_s is not None
                else res.preset.wan_bandwidth_bytes_per_s
            ),
            latency_s=(
                latency_s if latency_s is not None else res.preset.wan_latency_s
            ),
        )
    bundle = BundleManager(sim, network).create_bundle("testbed", pool.values())
    schemas = {n: r.preset.access_schema for n, r in pool.items()}
    em = ExecutionManager(
        sim, network, bundle, access_schemas=schemas, supervision=supervision,
    )
    return Environment(
        sim=sim, network=network, pool=pool, bundle=bundle,
        execution_manager=em,
    )
