"""The regression sentinel: is this campaign still the campaign we committed?

``repro analyze`` needs two judgements, both cheap and deterministic:

* **against a baseline** — compare a campaign's per-cell TTC, causal
  component means, shares, and throughput to a committed fingerprint
  (stored under the ``campaign-attribution`` key of
  ``benchmarks/BENCH_campaign.json``, same conventions as the other
  bench baselines) and fail on drift beyond tolerance;
* **within itself** — robust z-scores (median/MAD) over per-cell TTC
  repetitions and across-cell component shares, flagging outlier cells
  that merit a look even when no baseline exists.

All statistics work on the *exact* causal partition recorded per run
(``RunResult.attribution``), falling back to the legacy overlapping
decomposition fields for campaign files written before PR 5.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..telemetry.causality import COMPONENTS
from ..telemetry.digest import sha256_digest
from .campaign import CampaignResult, RunResult

log = logging.getLogger(__name__)

FINGERPRINT_FORMAT = 1

#: modified z-score threshold (the classic Iglewicz-Hoaglin cut).
Z_THRESHOLD = 3.5

#: relative drift tolerance for time-like metrics; an injected >= 20%
#: Tw regression must trip, ordinary float noise must not.
REL_TOL = 0.10

#: absolute share drift (in TTC fraction) below which a component's
#: share change is noise regardless of its relative size.
SHARE_ABS_TOL = 0.02


def _components_of(run: RunResult) -> Dict[str, float]:
    """The run's exact partition, or a legacy approximation of it."""
    if run.attribution:
        return dict(run.attribution)
    # pre-attribution files: overlapping decomposition fields, idle
    # unknown. Good enough for coarse baseline comparison.
    return {
        "tw": run.tw, "tr": 0.0, "tx": run.tx,
        "ts": run.ts, "trp": run.trp, "idle": 0.0,
    }


def robust_z(values: Sequence[float]) -> List[float]:
    """Modified z-scores via median/MAD; zeros when MAD vanishes.

    ``0.6745 * (x - median) / MAD`` — the standard-normal consistency
    constant makes the scores comparable to ordinary z-scores. With a
    zero MAD (constant or near-constant samples) every score is 0: a
    degenerate sample has no outliers by this test.
    """
    vals = [float(v) for v in values]
    if not vals:
        return []
    med = _median(vals)
    mad = _median([abs(v - med) for v in vals])
    if mad <= 0:
        return [0.0] * len(vals)
    return [0.6745 * (v - med) / mad for v in vals]


def _median(vals: Sequence[float]) -> float:
    s = sorted(vals)
    n = len(s)
    mid = n // 2
    return s[mid] if n % 2 else 0.5 * (s[mid - 1] + s[mid])


# -- fingerprints --------------------------------------------------------------


def _cell_fingerprint(runs: Sequence[RunResult]) -> Dict[str, Any]:
    """One cell's fingerprint entry from its repetitions (reps ascending)."""
    comp_sums = {name: 0.0 for name in COMPONENTS}
    share_sums = {name: 0.0 for name in COMPONENTS}
    ttc_sum = 0.0
    thr_sum = 0.0
    for run in runs:
        comps = _components_of(run)
        ttc_sum += run.ttc
        if run.ttc > 0:
            thr_sum += run.units_done / (run.ttc / 3600.0)
        for name in COMPONENTS:
            comp_sums[name] += comps.get(name, 0.0)
            if run.ttc > 0:
                share_sums[name] += comps.get(name, 0.0) / run.ttc
    n = len(runs)
    return {
        "n": n,
        "ttc_mean": ttc_sum / n,
        "throughput": thr_sum / n,
        "components": {
            name: comp_sums[name] / n for name in COMPONENTS
        },
        "shares": {
            name: share_sums[name] / n for name in COMPONENTS
        },
        "attribution_digest": sha256_digest(
            [r.attribution_digest for r in runs]
        ),
    }


def _assemble_fingerprint(
    cells: Dict[str, Any], meta: Dict[str, Any], errors: int
) -> Dict[str, Any]:
    fp: Dict[str, Any] = {
        "format": FINGERPRINT_FORMAT,
        "meta": dict(meta),
        "errors": errors,
        "cells": cells,
    }
    fp["digest"] = sha256_digest(
        {k: v for k, v in fp.items() if k != "digest"}
    )
    return fp


def campaign_fingerprint(result: CampaignResult) -> Dict[str, Any]:
    """A compact, committable summary of a campaign's shape.

    Per ``"exp:n_tasks"`` cell: repetition count, mean TTC, mean
    throughput (tasks per simulated hour), per-component mean seconds
    and mean shares from the causal partition, and the cell's combined
    attribution digest. The top-level ``digest`` hashes the canonical
    rendering, so two identical campaigns fingerprint identically.
    """
    cells: Dict[str, Any] = {}
    by_cell: Dict[Tuple[int, int], List[RunResult]] = {}
    for run in result.runs:
        by_cell.setdefault((run.exp_id, run.n_tasks), []).append(run)
    for (exp_id, n_tasks), runs in sorted(by_cell.items()):
        cells[f"{exp_id}:{n_tasks}"] = _cell_fingerprint(runs)
    return _assemble_fingerprint(cells, result.meta, len(result.errors))


def campaign_fingerprint_from_store(store) -> Dict[str, Any]:
    """:func:`campaign_fingerprint`, computed by streaming the store.

    Queries one cell at a time through the
    :class:`~repro.experiments.store.CampaignStore` index instead of
    materializing the whole campaign, so peak memory is O(cell) even
    for million-cell stores. Produces the *identical* fingerprint dict
    and digest as the in-memory path — the differential harness holds
    the two implementations to that.
    """
    cells: Dict[str, Any] = {}
    for exp_id, n_tasks in store.cells():
        runs = store.cell_runs(exp_id, n_tasks)
        cells[f"{exp_id}:{n_tasks}"] = _cell_fingerprint(runs)
    return _assemble_fingerprint(
        cells, store.campaign_meta(), store.error_count()
    )


@dataclass(frozen=True)
class Drift:
    """One metric of one cell moving beyond tolerance vs the baseline."""

    cell: str
    metric: str
    baseline: float
    current: float

    @property
    def rel_change(self) -> float:
        if self.baseline == 0:
            return math.inf if self.current else 0.0
        return (self.current - self.baseline) / abs(self.baseline)

    def describe(self) -> str:
        return (
            f"cell {self.cell}: {self.metric} "
            f"{self.baseline:.3f} -> {self.current:.3f} "
            f"({self.rel_change:+.1%})"
        )


def compare_fingerprints(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    rel_tol: float = REL_TOL,
) -> List[Drift]:
    """Drift findings of ``current`` against a committed ``baseline``.

    Time-like metrics (TTC, Tw/Tr/Tx/Ts/Trp means) fail on *increases*
    beyond ``rel_tol`` — getting faster is not a regression. Throughput
    fails on decreases. Component shares fail on either direction
    beyond ``rel_tol`` when the absolute move also exceeds
    ``SHARE_ABS_TOL``. Cells present in the baseline but missing from
    the current campaign (or vice versa) are reported as drift too.
    """
    findings: List[Drift] = []
    b_cells = baseline.get("cells", {})
    c_cells = current.get("cells", {})
    for cell in sorted(set(b_cells) | set(c_cells)):
        if cell not in c_cells:
            findings.append(Drift(cell, "missing-from-current", 1.0, 0.0))
            continue
        if cell not in b_cells:
            findings.append(Drift(cell, "missing-from-baseline", 0.0, 1.0))
            continue
        b, c = b_cells[cell], c_cells[cell]
        checks: List[Tuple[str, float, float, str]] = [
            ("ttc_mean", b.get("ttc_mean", 0.0), c.get("ttc_mean", 0.0),
             "increase"),
            ("throughput", b.get("throughput", 0.0),
             c.get("throughput", 0.0), "decrease"),
        ]
        for name in COMPONENTS:
            checks.append((
                f"{name}_mean",
                b.get("components", {}).get(name, 0.0),
                c.get("components", {}).get(name, 0.0),
                "increase",
            ))
        for metric, bv, cv, direction in checks:
            if bv == 0 and cv == 0:
                continue
            base = abs(bv) if bv else max(abs(cv), 1e-12)
            rel = (cv - bv) / base
            if direction == "increase" and rel > rel_tol:
                findings.append(Drift(cell, metric, bv, cv))
            elif direction == "decrease" and rel < -rel_tol:
                findings.append(Drift(cell, metric, bv, cv))
        b_shares = b.get("shares", {})
        c_shares = c.get("shares", {})
        for name in COMPONENTS:
            bs = b_shares.get(name, 0.0)
            cs = c_shares.get(name, 0.0)
            if abs(cs - bs) <= SHARE_ABS_TOL:
                continue
            base = bs if bs else max(cs, 1e-12)
            if abs(cs - bs) / base > rel_tol:
                findings.append(Drift(cell, f"{name}_share", bs, cs))
    for f in findings:
        log.warning("drift: %s", f.describe())
    return findings


# -- within-campaign anomaly detection -----------------------------------------


@dataclass(frozen=True)
class Anomaly:
    """An outlier repetition or cell within one campaign."""

    kind: str          # "ttc-outlier" | "share-outlier"
    cell: str
    detail: str
    z: float

    def describe(self) -> str:
        return f"{self.kind} in cell {self.cell}: {self.detail} (z={self.z:+.1f})"


def detect_anomalies(
    result: CampaignResult, z_threshold: float = Z_THRESHOLD
) -> List[Anomaly]:
    """Robust-z anomaly scan of one campaign, no baseline needed.

    Two passes: per-cell TTC across repetitions (a repetition far from
    its siblings), and per-experiment component shares across cell
    sizes (a cell whose time went somewhere unusual for its strategy).
    """
    anomalies: List[Anomaly] = []
    by_cell: Dict[Tuple[int, int], List[RunResult]] = {}
    for run in result.runs:
        by_cell.setdefault((run.exp_id, run.n_tasks), []).append(run)

    for (exp_id, n_tasks), runs in sorted(by_cell.items()):
        zs = robust_z([r.ttc for r in runs])
        for run, z in zip(runs, zs):
            if abs(z) >= z_threshold:
                anomalies.append(Anomaly(
                    "ttc-outlier", f"{exp_id}:{n_tasks}",
                    f"rep {run.rep} TTC {run.ttc:.0f}s", z,
                ))

    by_exp: Dict[int, List[Tuple[int, Dict[str, float]]]] = {}
    for (exp_id, n_tasks), runs in sorted(by_cell.items()):
        share_means: Dict[str, float] = {}
        for name in COMPONENTS:
            vals = [
                _components_of(r).get(name, 0.0) / r.ttc
                for r in runs if r.ttc > 0
            ]
            share_means[name] = sum(vals) / len(vals) if vals else 0.0
        by_exp.setdefault(exp_id, []).append((n_tasks, share_means))
    for exp_id, rows in sorted(by_exp.items()):
        for name in COMPONENTS:
            zs = robust_z([shares[name] for _, shares in rows])
            for (n_tasks, shares), z in zip(rows, zs):
                if abs(z) >= z_threshold:
                    anomalies.append(Anomaly(
                        "share-outlier", f"{exp_id}:{n_tasks}",
                        f"{name} share {shares[name]:.1%}", z,
                    ))
    return anomalies
