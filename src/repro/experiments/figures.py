"""Regeneration of the paper's table and figures as printable text.

Each function renders the same rows/series the paper reports:

* :func:`render_table1` — the experiment/strategy configuration matrix;
* :func:`render_figure2` — TTC comparison of experiments 1–4 vs #tasks;
* :func:`render_figure3` — per-experiment TTC decomposition (Tw/Tx/Ts);
* :func:`render_figure4` — TTC mean ± std for early vs late binding.

The numbers come from a :class:`~repro.experiments.campaign.CampaignResult`;
the configuration table is static (it *is* the experiment design).
"""

from __future__ import annotations

from typing import List, Sequence

from ..skeleton import PAPER_TASK_COUNTS
from .analysis import cell_stats, component_shares, tw_range
from .campaign import CampaignResult, TABLE1


def render_table1() -> str:
    """The strategy matrix of Table I."""
    lines = [
        "Table I — skeleton applications and execution strategies",
        f"{'Exp':>3} | {'#Tasks':>12} | {'Task duration':>24} | "
        f"{'Binding':>7} | {'Scheduler':>9} | {'#Pilots':>7} | "
        f"{'Pilot size':>14} | Pilot walltime",
    ]
    lines.append("-" * len(lines[1]))
    for exp_id, spec in sorted(TABLE1.items()):
        dist = (
            "1-30 min (trunc. Gaussian)" if spec.gaussian else "15 min"
        )
        binding = spec.binding.value
        size = "#tasks" if spec.n_pilots == 1 else f"#tasks/{spec.n_pilots}"
        wall = (
            "Tx+Ts+Trp" if spec.n_pilots == 1
            else f"(Tx+Ts+Trp)*{spec.n_pilots}"
        )
        lines.append(
            f"{exp_id:>3} | {'2^n, n=3..11':>12} | {dist:>24} | "
            f"{binding:>7} | {spec.unit_scheduler:>9} | "
            f"{spec.n_pilots:>7} | {size:>14} | {wall}"
        )
    return "\n".join(lines)


def render_figure2(
    result: CampaignResult,
    task_counts: Sequence[int] = PAPER_TASK_COUNTS,
) -> str:
    """TTC comparison (paper Figure 2): one row per size, one column per
    experiment."""
    exp_ids = sorted({r.exp_id for r in result.runs})
    header = f"{'#tasks':>7} | " + " | ".join(
        f"{'Exp.' + str(e) + ' TTC(s)':>14}" for e in exp_ids
    )
    lines = ["Figure 2 — TTC comparison across experiments", header,
             "-" * len(header)]
    for n in task_counts:
        cells = []
        for e in exp_ids:
            s = cell_stats(result, e, n, "ttc")
            cells.append(f"{s.mean:>14.0f}" if s.n_runs else f"{'--':>14}")
        lines.append(f"{n:>7} | " + " | ".join(cells))
    return "\n".join(lines)


def render_figure3(
    result: CampaignResult,
    exp_id: int,
    task_counts: Sequence[int] = PAPER_TASK_COUNTS,
) -> str:
    """TTC decomposition for one experiment (paper Figure 3a-d)."""
    spec = TABLE1.get(exp_id)
    label = spec.label if spec else f"Exp.{exp_id}"
    header = (
        f"{'#tasks':>7} | {'TTC(s)':>9} | {'Tw(s)':>9} | {'Tx(s)':>9} | "
        f"{'Ts(s)':>9} | {'Trp(s)':>9}"
    )
    lines = [f"Figure 3 — TTC components, {label}", header, "-" * len(header)]
    shares = component_shares(result, exp_id)
    for n in task_counts:
        if n not in shares:
            continue
        c = shares[n]
        lines.append(
            f"{n:>7} | {c['ttc']:>9.0f} | {c['tw']:>9.0f} | "
            f"{c['tx']:>9.0f} | {c['ts']:>9.0f} | {c['trp']:>9.0f}"
        )
    lo, hi = tw_range(result, [exp_id])
    lines.append(f"Tw range over runs: [{lo:.0f}, {hi:.0f}] s")
    return "\n".join(lines)


def render_figure4(
    result: CampaignResult,
    early_exp: int = 1,
    late_exp: int = 3,
    task_counts: Sequence[int] = PAPER_TASK_COUNTS,
) -> str:
    """TTC with run-to-run error bars, early vs late (paper Figure 4)."""
    header = (
        f"{'#tasks':>7} | {'Early mean':>11} | {'Early std':>10} | "
        f"{'Late mean':>10} | {'Late std':>9}"
    )
    lines = [
        f"Figure 4 — TTC variability: Exp.{early_exp} (early, 1 pilot) vs "
        f"Exp.{late_exp} (late, 3 pilots)",
        header,
        "-" * len(header),
    ]
    for n in task_counts:
        e = cell_stats(result, early_exp, n, "ttc")
        l = cell_stats(result, late_exp, n, "ttc")
        if not e.n_runs and not l.n_runs:
            continue
        lines.append(
            f"{n:>7} | {e.mean:>11.0f} | {e.std:>10.0f} | "
            f"{l.mean:>10.0f} | {l.std:>9.0f}"
        )
    return "\n".join(lines)


def render_all(result: CampaignResult) -> str:
    """Every table/figure of the evaluation, concatenated."""
    parts: List[str] = [render_table1(), render_figure2(result)]
    for exp_id in sorted({r.exp_id for r in result.runs}):
        parts.append(render_figure3(result, exp_id))
    parts.append(render_figure4(result))
    return "\n\n".join(parts)
