"""The telemetry hub: one event bus for spans, instants, and metrics.

Every :class:`~repro.des.Simulation` owns a hub (``sim.telemetry``),
disabled by default so untelemetered runs pay only an ``enabled`` check
per instrumentation point. Enabled, the hub records:

* **spans** via the context-manager API (``with hub.span(...)``) for
  nested work, or via :meth:`transition` for state-machine tracks where
  each state's span ends when the next begins (pilot/unit lifecycles);
* **instants** — zero-duration markers (faults landing, health events);
* **metric samples** — full registry snapshots on a virtual-time
  cadence driven by :meth:`start_sampler`.

The hub's canonical rendering covers only virtual-time fields, so its
:meth:`digest` is byte-stable across two runs of the same seed even
though every span also carries wall-clock timings for the profiler and
the Perfetto wall track.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from .digest import canonical_json, sha256_digest
from .metrics import MetricsRegistry
from .profiler import KernelProfiler
from .spans import Span, UnclosedSpanError, _plain


class _NullSpanCtx:
    """Shared no-op context manager handed out while the hub is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL = _NullSpanCtx()


class _SpanCtx:
    """Context manager closing one live span; yields the span itself."""

    __slots__ = ("_hub", "_span")

    def __init__(self, hub: "TelemetryHub", span: Span) -> None:
        self._hub = hub
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc: object) -> bool:
        self._hub._end(self._span)
        return False


@dataclass
class TelemetrySummary:
    """The per-execution telemetry digest stored on an ExecutionReport."""

    n_spans: int
    n_instants: int
    n_samples: int
    digest: str
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: the enactment steps' (name, t0, t1) — what the Gantt renderer draws.
    em_steps: List[Tuple[str, float, float]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "n_spans": self.n_spans,
            "n_instants": self.n_instants,
            "n_samples": self.n_samples,
            "digest": self.digest,
            "metrics": self.metrics,
            "em_steps": [[n, t0, t1] for n, t0, t1 in self.em_steps],
        }


class TelemetryHub:
    """Spans + instants + metrics + profiler behind one enable switch."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        run_id: str = "run",
    ) -> None:
        self._clock = clock if clock is not None else (lambda: 0.0)
        self.run_id = run_id
        self.enabled = False
        self.spans: List[Span] = []
        self.instants: List[Dict[str, Any]] = []
        self.samples: List[Dict[str, Any]] = []
        self.metrics = MetricsRegistry()
        self.profiler: Optional[KernelProfiler] = None
        self._stack: List[Span] = []
        self._track_open: Dict[Tuple[str, str], Span] = {}
        self._next_sid = 1
        self._sampler_event = None
        self._on_sample: Optional[Callable[["TelemetryHub", float], None]] = None

    # -- switches ------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def attach_profiler(self) -> KernelProfiler:
        """Create (or return) the kernel profiler; the kernel times into it."""
        if self.profiler is None:
            self.profiler = KernelProfiler()
        return self.profiler

    @property
    def now(self) -> float:
        return self._clock()

    # -- spans ---------------------------------------------------------------

    def span(self, category: str, name: str, track: str = "main", **attrs: Any):
        """Open a nested span; use as ``with hub.span(...) as sp:``.

        While the hub is disabled this returns a shared no-op context
        (entering yields ``None``), so call sites need no guard.
        """
        if not self.enabled:
            return _NULL
        span = Span(
            sid=self._next_sid,
            parent=self._stack[-1].sid if self._stack else None,
            category=category,
            name=name,
            track=track,
            t0=self._clock(),
            w0=perf_counter(),
            attrs=attrs,
        )
        self._next_sid += 1
        self.spans.append(span)
        self._stack.append(span)
        return _SpanCtx(self, span)

    def _end(self, span: Span) -> None:
        span.t1 = self._clock()
        span.w1 = perf_counter()
        # Generator processes interleave, so the closing span is usually
        # — but not necessarily — the top of the stack.
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        else:
            try:
                self._stack.remove(span)
            except ValueError:
                pass

    def transition(
        self,
        category: str,
        track: str,
        name: str,
        final: bool = False,
        **attrs: Any,
    ) -> None:
        """State-machine spans: end the track's open span, begin the next.

        A ``final`` transition contributes a zero-duration span (the
        terminal state is an event, not an interval) and leaves the
        track closed.
        """
        if not self.enabled:
            return
        now = self._clock()
        wall = perf_counter()
        key = (category, track)
        open_span = self._track_open.pop(key, None)
        if open_span is not None:
            open_span.t1 = now
            open_span.w1 = wall
        span = Span(
            sid=self._next_sid,
            parent=None,
            category=category,
            name=name,
            track=track,
            t0=now,
            w0=wall,
            attrs=attrs,
        )
        self._next_sid += 1
        self.spans.append(span)
        if final:
            span.t1 = now
            span.w1 = wall
        else:
            self._track_open[key] = span

    def instant(
        self, category: str, name: str, track: str = "main", **attrs: Any
    ) -> None:
        """Record a zero-duration marker (fault landed, breaker opened)."""
        if not self.enabled:
            return
        self.instants.append({
            "t": self._clock(),
            "category": category,
            "name": name,
            "track": track,
            "attrs": _plain(attrs),
        })

    def open_spans(self) -> List[Span]:
        """Spans begun but not yet ended (context stack + state tracks)."""
        return list(self._stack) + list(self._track_open.values())

    def close_open_spans(self) -> int:
        """Force-close every open span at the current clocks.

        Returns how many were closed; used at shutdown so exports never
        carry half-open records.
        """
        pending = self.open_spans()
        for span in pending:
            self._end(span)
        self._track_open.clear()
        self._stack.clear()
        return len(pending)

    def require_closed(self) -> None:
        """Raise :class:`UnclosedSpanError` if any span is still open."""
        pending = self.open_spans()
        if pending:
            names = ", ".join(
                f"{s.category}/{s.name}" for s in pending[:5]
            )
            raise UnclosedSpanError(
                f"{len(pending)} span(s) still open: {names}"
            )

    # -- virtual-time sampling ----------------------------------------------

    def sample(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Snapshot the metrics registry at virtual time ``now``."""
        record = {"t": self._clock() if now is None else now}
        record.update(self.metrics.snapshot())
        self.samples.append(record)
        return record

    def start_sampler(
        self,
        sim,
        interval_s: float,
        on_sample: Optional[Callable[["TelemetryHub", float], None]] = None,
    ) -> None:
        """Sample the registry every ``interval_s`` *virtual* seconds.

        The sampler keeps exactly one pending kernel event alive, so
        :meth:`stop_sampler` must be called before expecting a
        run-until-empty simulation to terminate.
        """
        if interval_s <= 0:
            raise ValueError("sample interval must be positive")
        self.stop_sampler(sim)
        self._on_sample = on_sample

        def tick() -> None:
            self.sample(sim.now)
            if self._on_sample is not None:
                self._on_sample(self, sim.now)
            self._sampler_event = sim.call_in(interval_s, tick)

        self._sampler_event = sim.call_in(interval_s, tick)

    def stop_sampler(self, sim) -> None:
        if self._sampler_event is not None:
            sim.cancel(self._sampler_event)
            self._sampler_event = None
        self._on_sample = None

    # -- reproducibility -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Canonical (virtual-time only) rendering of everything recorded."""
        return {
            "run_id": self.run_id,
            "spans": [s.as_dict() for s in self.spans],
            "instants": self.instants,
            "samples": self.samples,
            "metrics": self.metrics.snapshot(),
        }

    def canonical_json(self) -> str:
        return canonical_json(self.to_dict())

    def digest(self) -> str:
        """SHA-256 of the canonical rendering — seed-stable by design."""
        return sha256_digest(self.canonical_json())

    def summary(self) -> str:
        return (
            f"telemetry: {len(self.spans)} spans, {len(self.instants)} "
            f"instants, {len(self.samples)} samples; "
            f"digest {self.digest()[:12]}"
        )

    def execution_summary(
        self, em_steps: Optional[List[Span]] = None
    ) -> TelemetrySummary:
        """The compact per-execution record reports and sessions keep."""
        steps = [
            (s.name, s.t0, s.t1 if s.t1 is not None else s.t0)
            for s in (em_steps or [])
        ]
        return TelemetrySummary(
            n_spans=len(self.spans),
            n_instants=len(self.instants),
            n_samples=len(self.samples),
            digest=self.digest(),
            metrics=self.metrics.snapshot(),
            em_steps=steps,
        )
