"""Unified telemetry: spans, metrics, kernel profiling, and trace export.

The AIMES methodology makes *the execution process itself* measurable:
every middleware layer is instrumented, and analyses are derived from
traces rather than ad-hoc counters. This package is the single subsystem
those instruments report to:

* :mod:`~repro.telemetry.spans` — structured begin/end records carrying
  both virtual (DES) time and monotonic wall time, nestable via a
  context-manager API;
* :mod:`~repro.telemetry.metrics` — a registry of counters, gauges, and
  histograms, sampled on a configurable virtual-time cadence;
* :mod:`~repro.telemetry.profiler` — wall-clock attribution per kernel
  event type, so benchmark regressions become diagnosable;
* :mod:`~repro.telemetry.exporters` — Chrome trace-event JSON (loadable
  in Perfetto), OTLP-style JSON spans, and the legacy flat trace dump;
* :mod:`~repro.telemetry.digest` — the canonical-JSON/SHA-256 contract
  shared by the fault log, the health-event log, and the telemetry hub,
  so every record stream is byte-reproducible under a fixed seed;
* :mod:`~repro.telemetry.causality` — the causal analysis layer:
  reconstructs an activity graph from recorded state histories, walks
  the critical path backward through each run's TTC, and attributes
  every virtual second to exactly one component (the partition sums to
  TTC by construction and digests byte-stably per seed);
* :mod:`~repro.telemetry.report` — self-contained HTML reports (inline
  CSS + SVG, no scripts, no external references) for the attribution
  breakdown, critical path, queue-wait distributions, and anomalies.

Every :class:`~repro.des.Simulation` owns a disabled-by-default
:class:`TelemetryHub` (``sim.telemetry``); enabling it turns the
instrumentation points across des, cluster, bundle, saga, pilot, core,
and health into live span/metric emitters.

This package deliberately imports nothing from the rest of :mod:`repro`,
so every layer (including the DES kernel itself) can depend on it.
"""

from .causality import (
    COMPONENTS,
    CausalGraph,
    PathSegment,
    TTCAttribution,
    attribute,
    attribute_report,
    build_graph,
    critical_path,
    sweep_attribution,
)
from .bus import EventBus, Subscription
from .digest import canonical_json, sha256_digest
from .exporters import (
    chrome_trace,
    otlp_trace,
    save_chrome_trace,
    save_otlp_trace,
    trace_records_json,
)
from .hub import TelemetryHub, TelemetrySummary
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    render_prometheus,
)
from .profiler import KernelProfiler
from .report import render_html, save_html
from .spans import Span, UnclosedSpanError

__all__ = [
    "COMPONENTS",
    "CausalGraph",
    "Counter",
    "EventBus",
    "Gauge",
    "Histogram",
    "KernelProfiler",
    "MetricsRegistry",
    "PathSegment",
    "Span",
    "Subscription",
    "TTCAttribution",
    "TelemetryHub",
    "TelemetrySummary",
    "UnclosedSpanError",
    "attribute",
    "attribute_report",
    "build_graph",
    "canonical_json",
    "chrome_trace",
    "critical_path",
    "otlp_trace",
    "render_html",
    "render_prometheus",
    "save_chrome_trace",
    "save_html",
    "save_otlp_trace",
    "sha256_digest",
    "sweep_attribution",
    "trace_records_json",
]
