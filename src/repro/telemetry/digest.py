"""The canonical-JSON/SHA-256 reproducibility contract.

Three record streams promise byte-identical replays under a fixed seed:
the :class:`~repro.faults.FaultLog`, the
:class:`~repro.health.HealthEventLog`, and the telemetry hub itself.
They all render through this one helper pair, so "canonical" means the
same thing everywhere: stable key order, compact separators, exact float
repr — equal digests iff the streams are identical.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any


def canonical_json(obj: Any) -> str:
    """Render ``obj`` as canonical JSON (stable keys, exact floats)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def sha256_digest(obj: Any) -> str:
    """SHA-256 hex digest of ``obj``'s canonical JSON.

    A string argument is hashed as-is (it is assumed to already be a
    canonical rendering); anything else is canonicalized first.
    """
    text = obj if isinstance(obj, str) else canonical_json(obj)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
