"""Causal TTC attribution: where did every second of this run go?

The paper's central claim is explanatory: late binding over three pilots
wins *because* queue wait dominates TTC and multi-resource execution
takes the minimum of several queue-wait draws. This module turns one
execution's recorded state histories into that explanation:

* :func:`build_graph` reconstructs a **causal activity graph** from the
  pilots' and units' instrumented state histories (enactment steps →
  SAGA submission → pilot queue wait → bootstrap → unit scheduling →
  execution → data staging), with explicit candidate-predecessor edges;
* :func:`critical_path` walks that graph **backward from the end of the
  run**, at each step picking the activity whose completion gated the
  current one — the chain of segments that covers ``[t_start, t_end]``
  with no gaps, so the path's total equals TTC by construction;
* :func:`sweep_attribution` charges **every virtual second of TTC to
  exactly one component** via a priority sweep (work beats staging
  beats waiting beats overhead), so the per-component attribution sums
  to TTC by construction;
* :class:`TTCAttribution` carries both, renders canonically, and
  digests byte-stably: two same-seed runs — serial or parallel —
  produce the identical digest.

Components
----------
``tw``
    pilot queue wait (submission until the placeholder job starts);
``tr``
    pilot bootstrap (placeholder job running until the agent is ready);
``tx``
    unit execution on pilot cores;
``ts``
    data staging (input and output transfers);
``trp``
    middleware overhead — scheduling, binding waits, recovery backoffs,
    enactment bookkeeping;
``idle``
    time covered by no recorded activity (plus the float residual, so
    the component sum is *exactly* TTC).

Unlike the overlapping components of
:class:`~repro.core.instrumentation.TTCDecomposition` (where
``TTC = union(...) + Trp``), this attribution is a *partition*: each
instant belongs to one component, decided by priority when activities
overlap. Both views are derived from the same state histories.

This module — like the rest of :mod:`repro.telemetry` — imports nothing
from the rest of :mod:`repro`; it duck-types the pilot/unit entities
(``history``, ``saga_job``, ``resource``) and works on any objects with
the same shape.
"""

from __future__ import annotations

import logging
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .digest import canonical_json, sha256_digest

log = logging.getLogger(__name__)

#: canonical component order (rendering, storage, digests).
COMPONENTS: Tuple[str, ...] = ("tw", "tr", "tx", "ts", "trp", "idle")

#: sweep priority: when activities overlap, the strongest claims the
#: instant. Work first, then staging, then bootstrap progress, then
#: queue waiting, then middleware bookkeeping.
_PRIORITY: Dict[str, int] = {
    "tx": 0, "ts": 1, "tr": 2, "tw": 3, "trp": 4, "idle": 5,
}

#: predecessor preference on end-time ties in the backward walk: a
#: productive activity ending at the instant explains the wakeup better
#: than the waiting interval it terminated.
_GATE_RANK: Dict[str, int] = {
    "executing": 0,
    "staging-out": 1,
    "staging-in": 1,
    "bootstrap": 2,
    "queue-wait": 3,
    "em-step": 4,
    "scheduling": 5,
    "recovery-wait": 6,
    "pending": 7,
    "unscheduled": 7,
    "plan": 8,
}

_EPS = 1e-9

# Unit state names (string literals on purpose: no repro.pilot import).
_U_UNSCHEDULED = "UNSCHEDULED"
_U_SCHEDULING = "SCHEDULING"
_U_STAGING_IN = "STAGING_INPUT"
_U_PENDING = "PENDING_EXECUTION"
_U_EXECUTING = "EXECUTING"
_U_STAGING_OUT = "STAGING_OUTPUT"
_U_FAILED = "FAILED"
_P_LAUNCHING = "LAUNCHING"
_P_ACTIVE = "ACTIVE"
_P_FINAL = ("DONE", "CANCELED", "FAILED")

_UNIT_KINDS = {
    _U_UNSCHEDULED: ("unscheduled", "trp"),
    _U_SCHEDULING: ("scheduling", "trp"),
    _U_STAGING_IN: ("staging-in", "ts"),
    _U_PENDING: ("pending", "trp"),
    _U_EXECUTING: ("executing", "tx"),
    _U_STAGING_OUT: ("staging-out", "ts"),
    _U_FAILED: ("recovery-wait", "trp"),
}

#: state intervals that are pure waiting — the backward walk prefers the
#: productive activity that *ended* the wait over the wait itself.
_WAIT_KINDS = frozenset({"pending", "unscheduled", "recovery-wait", "plan"})

#: intervals during which the entity is blocked for the whole stretch:
#: the backward walk charges only the post-gate tail to them and hands
#: the path to whatever completion released the block.
_BLOCKED_KINDS = _WAIT_KINDS | {"scheduling"}


@dataclass
class Activity:
    """One reconstructed interval of middleware work (a graph node)."""

    key: int
    kind: str             # "queue-wait", "executing", "staging-in", ...
    component: str        # one of COMPONENTS
    t0: float
    t1: float
    label: str            # e.g. "pilot.0001 queue-wait @stampede-sim"
    preds: List[int] = field(default_factory=list, repr=False)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass(frozen=True)
class PathSegment:
    """One stretch of the critical path; segments tile [t_start, t_end]."""

    t0: float
    t1: float
    component: str
    label: str

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "t0": self.t0, "t1": self.t1,
            "component": self.component, "label": self.label,
        }


@dataclass
class CausalGraph:
    """Activity nodes plus candidate-predecessor edges for one run."""

    t_start: float
    t_end: float
    activities: List[Activity]
    #: key of the sink activity (the one whose completion ended the run).
    sink: Optional[int]

    def by_key(self, key: int) -> Activity:
        return self.activities[key]


@dataclass(frozen=True)
class TTCAttribution:
    """Every virtual second of one run's TTC, attributed to a component.

    ``components`` is an exact partition of TTC: the values sum to
    ``ttc`` by construction (the float residual of the sweep is folded
    into ``idle``). ``critical_path`` tiles ``[t_start, t_end]``
    contiguously, so its total equals TTC as well.
    """

    t_start: float
    t_end: float
    components: Tuple[Tuple[str, float], ...]   # COMPONENTS order
    critical_path: Tuple[PathSegment, ...]

    @property
    def ttc(self) -> float:
        return self.t_end - self.t_start

    @property
    def by_component(self) -> Dict[str, float]:
        return dict(self.components)

    @property
    def shares(self) -> Dict[str, float]:
        """Component fractions of TTC (all zero for a zero-length run)."""
        ttc = self.ttc
        if ttc <= 0:
            return {name: 0.0 for name, _ in self.components}
        return {name: value / ttc for name, value in self.components}

    def path_by_component(self) -> Dict[str, float]:
        """Seconds of the critical path spent in each component."""
        out = {name: 0.0 for name in COMPONENTS}
        for seg in self.critical_path:
            out[seg.component] += seg.duration
        return out

    def as_dict(self) -> Dict[str, Any]:
        return {
            "t_start": self.t_start,
            "t_end": self.t_end,
            "components": [[name, value] for name, value in self.components],
            "critical_path": [seg.as_dict() for seg in self.critical_path],
        }

    def canonical_json(self) -> str:
        return canonical_json(self.as_dict())

    def digest(self) -> str:
        """SHA-256 of the canonical rendering — seed-stable by design."""
        return sha256_digest(self.canonical_json())

    def summary(self) -> str:
        parts = ", ".join(
            f"{name} {value:.0f}s ({share:.0%})"
            for (name, value), share in zip(
                self.components, self.shares.values()
            )
            if value > 0
        )
        return f"TTC {self.ttc:.0f}s = {parts}"


# -- graph construction --------------------------------------------------------


def _first_timestamp(history, state: str) -> Optional[float]:
    # StateHistory.timestamp scans in place; fall back to the list copy
    # only for duck-typed histories without it.
    ts = getattr(history, "timestamp", None)
    if ts is not None:
        return ts(state)
    for s, t in history.as_list():
        if s == state:
            return t
    return None


def build_graph(
    pilots: Sequence[Any],
    units: Sequence[Any],
    t_start: float,
    t_end: float,
    em_steps: Optional[Sequence[Tuple[str, float, float]]] = None,
) -> CausalGraph:
    """Reconstruct the causal activity graph of one execution.

    ``pilots`` and ``units`` are duck-typed instrumented entities (any
    object with the ``history``/``saga_job``/``pilot`` shape of
    :mod:`repro.pilot`). ``em_steps`` are the enactment steps'
    ``(name, t0, t1)`` rows from a telemetry-enabled run; they add
    middleware detail but are optional — attribution works identically
    without telemetry.
    """
    activities: List[Activity] = []

    def add(kind: str, component: str, t0: float, t1: float,
            label: str) -> Activity:
        act = Activity(
            key=len(activities), kind=kind, component=component,
            t0=t0, t1=min(t1, t_end), label=label,
        )
        activities.append(act)
        return act

    # A synthetic "plan" anchor from t_start to the first recorded event
    # keeps the backward walk grounded when telemetry spans are absent.
    plan = add("plan", "trp", t_start, t_start, "enactment start")

    em_chain: List[Activity] = [plan]
    for name, s0, s1 in (em_steps or ()):
        # step 5 ("execute-units") spans the whole run; it is causal
        # scaffolding, not a time cost — skip it, the unit activities
        # carry that time.
        if name == "execute-units":
            continue
        step = add("em-step", "trp", s0, s1, f"step {name}")
        step.preds.append(em_chain[-1].key)
        em_chain.append(step)
    anchor = em_chain[-1]

    # -- pilots: queue wait and bootstrap -------------------------------------
    pilot_boot: Dict[str, Activity] = {}   # pilot uid -> gate activity
    for pilot in pilots:
        submit = _first_timestamp(pilot.history, _P_LAUNCHING)
        if submit is None:
            continue
        active = _first_timestamp(pilot.history, _P_ACTIVE)
        finals = [
            t for s in _P_FINAL
            if (t := _first_timestamp(pilot.history, s)) is not None
        ]
        job = getattr(pilot, "saga_job", None)
        job_start = getattr(job, "started_at", None)
        uid = getattr(pilot, "uid", "pilot")
        resource = getattr(pilot, "resource", "?")
        # queue wait ends when the placeholder job starts; if that is
        # unobserved, at activation; if the pilot never ran, at its
        # final state (or the end of the run).
        wait_end = job_start
        if wait_end is None:
            wait_end = active
        if wait_end is None:
            wait_end = min(finals) if finals else t_end
        qw = add("queue-wait", "tw", submit, wait_end,
                 f"{uid} queue-wait @{resource}")
        qw.preds.append(anchor.key)
        gate = qw
        if active is not None and job_start is not None and active > job_start:
            boot = add("bootstrap", "tr", job_start, active,
                       f"{uid} bootstrap @{resource}")
            boot.preds.append(qw.key)
            gate = boot
        pilot_boot[uid] = gate

    # -- units: one activity per contiguous state interval --------------------
    # executing activities per pilot uid, for core-handoff edges.
    execs_by_pilot: Dict[str, List[Activity]] = {}
    unit_execs: List[Tuple[Activity, Optional[str]]] = []

    for unit in units:
        entries = unit.history.as_list()
        pilot = getattr(unit, "pilot", None)
        pilot_uid = getattr(pilot, "uid", None)
        uid = getattr(unit, "uid", "unit")
        prev: Optional[Activity] = None
        first: Optional[Activity] = None
        for i, (state, t0) in enumerate(entries):
            kind_comp = _UNIT_KINDS.get(state)
            if kind_comp is None:
                continue
            # FAILED is an interval only when a restart follows.
            if state == _U_FAILED and not any(
                s == _U_UNSCHEDULED for s, _ in entries[i + 1:]
            ):
                continue
            t1 = entries[i + 1][1] if i + 1 < len(entries) else t_end
            kind, component = kind_comp
            act = add(kind, component, t0, t1, f"{uid} {kind}")
            if prev is not None:
                act.preds.append(prev.key)
            prev = act
            if first is None:
                first = act
            if kind == "executing":
                if pilot_uid is not None:
                    execs_by_pilot.setdefault(pilot_uid, []).append(act)
                unit_execs.append((act, pilot_uid))
            elif kind in ("unscheduled", "scheduling") and pilot_uid in pilot_boot:
                # late binding: the unit left UNSCHEDULED because a
                # pilot came up — the bootstrap is a candidate gate.
                act.preds.append(pilot_boot[pilot_uid].key)
        if first is not None:
            first.preds.append(anchor.key)

    # core-handoff and activation edges into each executing activity:
    # the walk's argmax-t1 selection finds which one actually gated it.
    for act, pilot_uid in unit_execs:
        if pilot_uid is None:
            continue
        boot = pilot_boot.get(pilot_uid)
        if boot is not None:
            act.preds.append(boot.key)
    # Handoff edges per pilot via an end-time-sorted index: each exec
    # links to every same-pilot exec ending by its start. The edge *set*
    # matches the naive all-pairs scan (order is irrelevant — the gate
    # pick is a strict max over (t1, rank, -key)) at O(k log k + edges)
    # instead of O(k^2) comparisons.
    for p_execs in execs_by_pilot.values():
        by_t1 = sorted(p_execs, key=lambda a: a.t1)
        t1s = [a.t1 for a in by_t1]
        for act in p_execs:
            cut = bisect_right(t1s, act.t0 + _EPS)
            if cut:
                k = act.key
                act.preds.extend(p.key for p in by_t1[:cut] if p.key != k)

    # -- sink: the activity whose completion ended the run --------------------
    sink: Optional[int] = None
    best: Tuple[float, int] = (float("-inf"), 9)
    for act in activities:
        if act.kind in _WAIT_KINDS or act.kind == "em-step":
            continue
        rank = _GATE_RANK.get(act.kind, 9)
        cand = (act.t1, -rank)
        if sink is None or cand > (best[0], -best[1]):
            sink = act.key
            best = (act.t1, rank)
    return CausalGraph(
        t_start=t_start, t_end=t_end, activities=activities, sink=sink,
    )


# -- the backward critical-path walk -------------------------------------------


def _pick_gate(
    graph: CausalGraph, act: Activity, cursor: float
) -> Optional[Activity]:
    """The predecessor whose completion gated ``act`` at ``cursor``.

    Among candidate predecessors ending at or before the cursor, the
    latest end wins (that completion is what the current activity was
    waiting on); end-time ties break toward productive work over
    waiting intervals, then toward the stable construction order.
    """
    best: Optional[Activity] = None
    best_key: Tuple[float, int, int] = (float("-inf"), 9, -1)
    for pk in act.preds:
        pred = graph.by_key(pk)
        if pred.t1 > cursor + _EPS:
            continue
        key = (pred.t1, -_GATE_RANK.get(pred.kind, 9), -pred.key)
        if best is None or key > best_key:
            best = pred
            best_key = key
    return best


def critical_path(graph: CausalGraph) -> List[PathSegment]:
    """Walk backward from the end of the run to its start.

    Produces contiguous segments tiling ``[t_start, t_end]``: each step
    emits the current activity's stretch ``[t0, cursor]``, then asks
    which predecessor's completion gated that start. Gaps no activity
    explains become ``idle`` segments, so the tiling — and therefore
    the path total — is complete by construction.
    """
    t_start, t_end = graph.t_start, graph.t_end
    segments: List[PathSegment] = []
    if t_end <= t_start:
        return segments
    cursor = t_end
    cur = graph.by_key(graph.sink) if graph.sink is not None else None
    guard = 0
    limit = 10 * len(graph.activities) + 100
    while cursor > t_start + _EPS:
        guard += 1
        if guard > limit:  # pragma: no cover - defensive against cycles
            log.warning("critical-path walk aborted after %d steps", guard)
            break
        if cur is None:
            segments.append(
                PathSegment(t_start, cursor, "idle", "unattributed")
            )
            cursor = t_start
            break
        lo = max(min(cur.t0, cursor), t_start)
        gate = _pick_gate(graph, cur, cursor)
        if (
            cur.kind in _BLOCKED_KINDS
            and gate is not None
            and gate.t1 > lo + _EPS
        ):
            # the activity was blocked for its whole stretch; the gate
            # that completed *inside* it is what it was really waiting
            # on — charge only the post-gate tail to the wait and hand
            # the walk to the gate's chain (queue wait, bootstrap, a
            # predecessor execution) instead of the wait label.
            lo = min(gate.t1, cursor)
        if cursor > lo + _EPS or not segments:
            segments.append(
                PathSegment(lo, cursor, cur.component, cur.label)
            )
        cursor = lo
        if cursor <= t_start + _EPS:
            break
        if gate is None:
            # nothing recorded explains this start; bridge to t_start.
            segments.append(
                PathSegment(t_start, cursor, "idle", "unattributed")
            )
            cursor = t_start
            break
        if gate.t1 < cursor - _EPS:
            # the gate completed earlier than the start it explains —
            # the in-between stretch belongs to the waiting interval
            # (scheduler latency, launch-rate slots).
            bridge = max(gate.t1, t_start)
            segments.append(
                PathSegment(bridge, cursor, "trp", f"{cur.label} dispatch")
            )
            cursor = bridge
        cur = gate
    segments.reverse()
    return _merge_segments(segments)


def _merge_segments(segments: List[PathSegment]) -> List[PathSegment]:
    """Fuse adjacent segments of one activity (zero-length ones vanish)."""
    out: List[PathSegment] = []
    for seg in segments:
        if out and out[-1].label == seg.label and (
            out[-1].component == seg.component
        ):
            out[-1] = PathSegment(
                out[-1].t0, seg.t1, seg.component, seg.label
            )
        elif seg.t1 - seg.t0 > 0 or not out:
            out.append(seg)
    return out


# -- the priority sweep --------------------------------------------------------


def sweep_attribution(graph: CausalGraph) -> Dict[str, float]:
    """Charge every instant of ``[t_start, t_end]`` to one component.

    A boundary sweep over all activity intervals: between consecutive
    boundaries the highest-priority component with an active interval
    claims the segment; uncovered segments are ``idle``. The float
    residual (boundary arithmetic vs ``t_end - t_start``) is folded
    into ``idle`` so the values sum to TTC *exactly*.
    """
    t_start, t_end = graph.t_start, graph.t_end
    totals = {name: 0.0 for name in COMPONENTS}
    ttc = t_end - t_start
    if ttc <= 0:
        return totals

    events: List[Tuple[float, int, int]] = []  # (time, +1/-1, priority)
    for act in graph.activities:
        lo, hi = max(act.t0, t_start), min(act.t1, t_end)
        if hi <= lo:
            continue
        pri = _PRIORITY[act.component]
        events.append((lo, +1, pri))
        events.append((hi, -1, pri))
    if not events:
        totals["idle"] = ttc
        return totals

    events.sort()
    bounds = sorted({t_start, t_end, *(t for t, _, _ in events)})
    bounds = [t for t in bounds if t_start <= t <= t_end]
    active = [0] * len(_PRIORITY)
    ei = 0
    for b0, b1 in zip(bounds, bounds[1:]):
        while ei < len(events) and events[ei][0] <= b0:
            _, delta, pri = events[ei]
            active[pri] += delta
            ei += 1
        comp = "idle"
        for name in ("tx", "ts", "tr", "tw", "trp"):
            if active[_PRIORITY[name]] > 0:
                comp = name
                break
        totals[comp] += b1 - b0

    # exact-sum correction: fold the sweep's float residual into idle.
    residual = ttc - sum(totals.values())
    totals["idle"] += residual
    if abs(residual) > 1e-6 * max(1.0, ttc):  # pragma: no cover - defensive
        log.warning("attribution residual %.3g s folded into idle", residual)
    return totals


# -- the public one-call API ---------------------------------------------------


def attribute(
    pilots: Sequence[Any],
    units: Sequence[Any],
    t_start: float,
    t_end: float,
    em_steps: Optional[Sequence[Tuple[str, float, float]]] = None,
) -> TTCAttribution:
    """Attribution + critical path for one execution's entities."""
    graph = build_graph(pilots, units, t_start, t_end, em_steps=em_steps)
    totals = sweep_attribution(graph)
    path = critical_path(graph)
    return TTCAttribution(
        t_start=t_start,
        t_end=t_end,
        components=tuple((name, totals[name]) for name in COMPONENTS),
        critical_path=tuple(path),
    )


def attribute_report(report: Any) -> TTCAttribution:
    """Attribution straight from an ExecutionReport (duck-typed).

    Uses the report's decomposition window, its pilots/units, and — when
    the run was telemetry-enabled — the enactment-step spans.
    """
    d = report.decomposition
    tel = getattr(report, "telemetry", None)
    em_steps = tel.em_steps if tel is not None else None
    return attribute(
        report.pilots, report.units, d.t_start, d.t_end, em_steps=em_steps,
    )
