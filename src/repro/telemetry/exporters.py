"""Trace exporters: Chrome trace-event JSON, OTLP-style JSON, flat JSON.

* :func:`chrome_trace` renders the hub into the Chrome trace-event
  format (the JSON Perfetto and ``chrome://tracing`` load). Virtual time
  lives in one process group (pid 1, simulated seconds shown as
  microseconds) and wall time in another (pid 2), so the same spans can
  be inspected on either clock side by side.
* :func:`otlp_trace` renders spans as OTLP-style JSON
  (``resourceSpans`` → ``scopeSpans`` → ``spans``) with deterministic
  trace/span ids, the shape OpenTelemetry collectors ingest.
* :func:`trace_records_json` is the flat per-record dump the legacy
  ``analytics.export_trace`` API has always produced; it lives here so
  the one subsystem owns every serialization of middleware telemetry.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from .digest import sha256_digest
from .hub import TelemetryHub
from .spans import Span, _plain

#: Chrome trace "process" ids for the two clock domains.
PID_VIRTUAL = 1
PID_WALL = 2


def _track_tids(spans: Iterable[Span], instants: Iterable[dict]) -> Dict[str, int]:
    """Assign one tid per track, in first-seen (deterministic) order."""
    tids: Dict[str, int] = {}
    for span in spans:
        if span.track not in tids:
            tids[span.track] = len(tids) + 1
    for inst in instants:
        if inst["track"] not in tids:
            tids[inst["track"]] = len(tids) + 1
    return tids


def chrome_trace(
    hub: TelemetryHub,
    tracer=None,
    wall_track: bool = True,
) -> Dict[str, Any]:
    """Render the hub as a Chrome trace-event JSON object.

    ``tracer`` (a :class:`~repro.des.Tracer`) optionally contributes its
    flat records as instant events on per-category lanes, putting the
    classic state-transition log on the same timeline as the spans.
    """
    events: List[Dict[str, Any]] = []
    tids = _track_tids(hub.spans, hub.instants)

    def meta(pid: int, tid: int, name: str, what: str) -> Dict[str, Any]:
        return {
            "ph": "M", "pid": pid, "tid": tid, "ts": 0,
            "name": what, "args": {"name": name},
        }

    events.append(meta(PID_VIRTUAL, 0, "virtual time (simulated s as us)",
                       "process_name"))
    if wall_track:
        events.append(meta(PID_WALL, 0, "wall time (host s as us)",
                           "process_name"))
    for track, tid in tids.items():
        events.append(meta(PID_VIRTUAL, tid, track, "thread_name"))
        if wall_track:
            events.append(meta(PID_WALL, tid, track, "thread_name"))

    wall_base = min((s.w0 for s in hub.spans), default=0.0)
    for span in hub.spans:
        tid = tids[span.track]
        t1 = span.t1 if span.t1 is not None else span.t0
        events.append({
            "ph": "X",
            "pid": PID_VIRTUAL,
            "tid": tid,
            "ts": span.t0 * 1e6,
            "dur": max(0.0, (t1 - span.t0) * 1e6),
            "name": span.name,
            "cat": span.category,
            "args": _plain(span.attrs),
        })
        if wall_track and span.w1 is not None:
            events.append({
                "ph": "X",
                "pid": PID_WALL,
                "tid": tid,
                "ts": (span.w0 - wall_base) * 1e6,
                "dur": max(0.0, (span.w1 - span.w0) * 1e6),
                "name": span.name,
                "cat": span.category,
                "args": _plain(span.attrs),
            })
    for inst in hub.instants:
        events.append({
            "ph": "i",
            "s": "t",
            "pid": PID_VIRTUAL,
            "tid": tids[inst["track"]],
            "ts": inst["t"] * 1e6,
            "name": inst["name"],
            "cat": inst["category"],
            "args": inst["attrs"],
        })
    if tracer is not None:
        trace_tids: Dict[str, int] = {}
        base = len(tids)
        for rec in tracer.records:
            lane = f"trace/{rec.category}"
            tid = trace_tids.get(lane)
            if tid is None:
                tid = trace_tids[lane] = base + len(trace_tids) + 1
                events.append(meta(PID_VIRTUAL, tid, lane, "thread_name"))
            events.append({
                "ph": "i",
                "s": "t",
                "pid": PID_VIRTUAL,
                "tid": tid,
                "ts": rec.time * 1e6,
                "name": f"{rec.entity}:{rec.event}",
                "cat": rec.category,
                "args": _plain(rec.data),
            })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"run_id": hub.run_id, "digest": hub.digest()},
    }


def save_chrome_trace(hub: TelemetryHub, path: str, tracer=None) -> None:
    """Write :func:`chrome_trace` output to ``path`` (open in Perfetto)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(hub, tracer=tracer), fh)


# -- OTLP-style JSON -----------------------------------------------------------

def _otlp_attrs(attrs: Dict[str, Any]) -> List[Dict[str, Any]]:
    out = []
    for key in sorted(attrs):
        value = attrs[key]
        if isinstance(value, bool):
            typed = {"boolValue": value}
        elif isinstance(value, int):
            typed = {"intValue": str(value)}
        elif isinstance(value, float):
            typed = {"doubleValue": value}
        else:
            typed = {"stringValue": str(_plain(value))}
        out.append({"key": key, "value": typed})
    return out


def otlp_trace(hub: TelemetryHub) -> Dict[str, Any]:
    """Render spans as OTLP-style JSON (``resourceSpans`` tree).

    Ids are deterministic: the trace id derives from the run id, span
    ids from the span's ordinal — two same-seed runs export the same
    bytes. Virtual seconds are mapped onto ``*TimeUnixNano`` as
    nanoseconds since epoch 0.
    """
    trace_id = sha256_digest(hub.run_id)[:32]
    spans_out = []
    for span in hub.spans:
        t1 = span.t1 if span.t1 is not None else span.t0
        spans_out.append({
            "traceId": trace_id,
            "spanId": f"{span.sid:016x}",
            "parentSpanId": f"{span.parent:016x}" if span.parent else "",
            "name": span.name,
            "kind": 1,  # SPAN_KIND_INTERNAL
            "startTimeUnixNano": str(int(span.t0 * 1e9)),
            "endTimeUnixNano": str(int(t1 * 1e9)),
            "attributes": _otlp_attrs(
                {"category": span.category, "track": span.track, **span.attrs}
            ),
            "status": {},
        })
    return {
        "resourceSpans": [{
            "resource": {
                "attributes": _otlp_attrs({
                    "service.name": "repro.simulation",
                    "run.id": hub.run_id,
                }),
            },
            "scopeSpans": [{
                "scope": {"name": "repro.telemetry", "version": "1"},
                "spans": spans_out,
            }],
        }],
    }


def save_otlp_trace(hub: TelemetryHub, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(otlp_trace(hub), fh)


# -- the legacy flat trace dump ------------------------------------------------

def trace_records_json(records: Iterable, indent: Optional[int] = 1) -> str:
    """Serialize flat :class:`~repro.des.TraceRecord` rows to JSON.

    This is the rendering ``analytics.export_trace`` has always shipped
    (tuples become lists); it now lives with the other exporters.
    """
    return json.dumps(
        [
            {
                "time": r.time,
                "category": r.category,
                "entity": r.entity,
                "event": r.event,
                "data": {
                    k: (list(v) if isinstance(v, tuple) else v)
                    for k, v in r.data.items()
                },
            }
            for r in records
        ],
        indent=indent,
    )
