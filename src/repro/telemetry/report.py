"""Self-contained HTML reports for causal TTC attribution.

``repro report`` turns a campaign (or a single run) into one HTML file
a browser can open anywhere: inline CSS, inline SVG, zero scripts, zero
external references — the file is the artifact, suitable for CI upload
and side-by-side diffing.

The renderer is pure data-in/string-out: it takes a plain dict (the CLI
assembles it from campaign results, the attribution engine, the run
ledger, and the sentinel) and knows nothing about the rest of
:mod:`repro` — consistent with the telemetry package's zero-dependency
rule.

Expected ``data`` keys (all optional except ``title``)::

    title:        str
    subtitle:     str
    summary:      [(label, value), ...]               # headline table
    cells:        [{label, ttc, components: {comp: s}}, ...]
    critical_path:[{t0, t1, component, label}, ...]
    tw_by_resource: {resource: [seconds, ...]}
    anomalies:    [{cell, kind, detail}, ...]
    drift:        [{cell, metric, baseline, current, rel}, ...]
    store:        {path, runs, errors, cells, size_bytes}
"""

from __future__ import annotations

import html
from typing import Any, Dict, List, Sequence, Tuple

#: stable component order and print names (mirrors causality.COMPONENTS
#: without importing it — this module stays data-only).
_COMPONENTS: Tuple[str, ...] = ("tw", "tr", "tx", "ts", "trp", "idle")
_COMPONENT_NAMES = {
    "tw": "Tw (queue wait)", "tr": "Tr (bootstrap)", "tx": "Tx (execution)",
    "ts": "Ts (staging)", "trp": "Trp (overhead)", "idle": "idle",
}
_COMPONENT_COLORS = {
    "tw": "#d9822b", "tr": "#b58900", "tx": "#2aa198",
    "ts": "#6c71c4", "trp": "#859900", "idle": "#cccccc",
}

_CSS = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2em auto;
       max-width: 60em; color: #222; padding: 0 1em; }
h1 { font-size: 1.5em; border-bottom: 2px solid #2aa198; }
h2 { font-size: 1.15em; margin-top: 2em; }
table { border-collapse: collapse; margin: 0.75em 0; }
th, td { border: 1px solid #ddd; padding: 0.3em 0.7em; text-align: left; }
th { background: #f4f4f4; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.muted { color: #888; }
.bad { color: #c22; font-weight: 600; }
.legend span { display: inline-block; margin-right: 1.2em; }
.legend i { display: inline-block; width: 0.9em; height: 0.9em;
            margin-right: 0.35em; vertical-align: -0.1em; }
svg { display: block; margin: 0.5em 0; }
"""


def _esc(text: Any) -> str:
    return html.escape(str(text), quote=True)


def _fmt_s(value: float) -> str:
    return f"{value:,.0f} s"


def _legend() -> str:
    spans = "".join(
        f'<span><i style="background:{_COMPONENT_COLORS[c]}"></i>'
        f"{_esc(_COMPONENT_NAMES[c])}</span>"
        for c in _COMPONENTS
    )
    return f'<p class="legend">{spans}</p>'


def _stacked_bars(cells: Sequence[Dict[str, Any]], width: int = 640) -> str:
    """One horizontal stacked bar per cell, shares of TTC."""
    if not cells:
        return ""
    bar_h, gap, label_w = 22, 6, 150
    height = len(cells) * (bar_h + gap)
    parts: List[str] = [
        f'<svg width="{width + label_w + 60}" height="{height}" '
        f'role="img" aria-label="TTC attribution by cell">'
    ]
    for i, cell in enumerate(cells):
        y = i * (bar_h + gap)
        ttc = float(cell.get("ttc", 0.0)) or 1.0
        comps = cell.get("components", {})
        parts.append(
            f'<text x="0" y="{y + bar_h - 6}" font-size="12">'
            f"{_esc(cell.get('label', ''))}</text>"
        )
        x = float(label_w)
        for comp in _COMPONENTS:
            value = float(comps.get(comp, 0.0))
            if value <= 0:
                continue
            w = width * value / ttc
            parts.append(
                f'<rect x="{x:.1f}" y="{y}" width="{max(w, 0.5):.1f}" '
                f'height="{bar_h}" fill="{_COMPONENT_COLORS[comp]}">'
                f"<title>{_esc(_COMPONENT_NAMES[comp])}: "
                f"{value:,.0f}s ({value / ttc:.1%})</title></rect>"
            )
            x += w
        parts.append(
            f'<text x="{label_w + width + 6}" y="{y + bar_h - 6}" '
            f'font-size="12">{_fmt_s(ttc)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _histogram(values: Sequence[float], width: int = 320,
               height: int = 90, bins: int = 12) -> str:
    """A small inline-SVG histogram (used per resource for Tw)."""
    vals = [float(v) for v in values]
    if not vals:
        return '<span class="muted">no samples</span>'
    lo, hi = min(vals), max(vals)
    if hi <= lo:
        hi = lo + 1.0
    counts = [0] * bins
    for v in vals:
        idx = min(bins - 1, int((v - lo) / (hi - lo) * bins))
        counts[idx] += 1
    peak = max(counts) or 1
    bar_w = width / bins
    parts = [
        f'<svg width="{width}" height="{height + 16}" role="img" '
        f'aria-label="queue-wait histogram">'
    ]
    for i, count in enumerate(counts):
        h = height * count / peak
        parts.append(
            f'<rect x="{i * bar_w + 1:.1f}" y="{height - h:.1f}" '
            f'width="{bar_w - 2:.1f}" height="{h:.1f}" fill="#d9822b">'
            f"<title>{count} pilot(s)</title></rect>"
        )
    parts.append(
        f'<text x="0" y="{height + 13}" font-size="11">{lo:,.0f}s</text>'
        f'<text x="{width}" y="{height + 13}" font-size="11" '
        f'text-anchor="end">{hi:,.0f}s</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


def _summary_table(rows: Sequence[Tuple[str, Any]]) -> str:
    body = "".join(
        f"<tr><th>{_esc(k)}</th><td>{_esc(v)}</td></tr>" for k, v in rows
    )
    return f"<table>{body}</table>"


def _critical_path_table(path: Sequence[Dict[str, Any]]) -> str:
    rows = []
    for seg in path:
        t0, t1 = float(seg["t0"]), float(seg["t1"])
        comp = str(seg.get("component", "?"))
        color = _COMPONENT_COLORS.get(comp, "#999")
        rows.append(
            "<tr>"
            f'<td class="num">{t0:,.1f}</td><td class="num">{t1:,.1f}</td>'
            f'<td class="num">{t1 - t0:,.1f}</td>'
            f'<td><i style="display:inline-block;width:0.8em;height:0.8em;'
            f'background:{color};margin-right:0.4em"></i>'
            f"{_esc(_COMPONENT_NAMES.get(comp, comp))}</td>"
            f"<td>{_esc(seg.get('label', ''))}</td></tr>"
        )
    return (
        "<table><tr><th>from (s)</th><th>to (s)</th><th>duration (s)</th>"
        "<th>component</th><th>activity</th></tr>"
        + "".join(rows) + "</table>"
    )


def _anomaly_table(anomalies: Sequence[Dict[str, Any]]) -> str:
    if not anomalies:
        return '<p class="muted">No anomalies flagged.</p>'
    rows = "".join(
        "<tr>"
        f"<td>{_esc(a.get('cell', ''))}</td>"
        f'<td class="bad">{_esc(a.get("kind", ""))}</td>'
        f"<td>{_esc(a.get('detail', ''))}</td></tr>"
        for a in anomalies
    )
    return (
        "<table><tr><th>cell</th><th>kind</th><th>detail</th></tr>"
        + rows + "</table>"
    )


def _store_table(store: Dict[str, Any]) -> str:
    """Provenance block for store-backed reports (indexed sqlite source)."""
    rows = [
        ("store file", store.get("path", "?")),
        ("runs", store.get("runs", 0)),
        ("errors", store.get("errors", 0)),
        ("cells", store.get("cells", 0)),
        ("size", f"{int(store.get('size_bytes', 0)):,} bytes"),
    ]
    body = "".join(
        f"<tr><th>{_esc(k)}</th><td>{_esc(v)}</td></tr>" for k, v in rows
    )
    return f"<table>{body}</table>"


def _drift_table(drift: Sequence[Dict[str, Any]]) -> str:
    if not drift:
        return '<p class="muted">No drift against the baseline.</p>'
    rows = "".join(
        "<tr>"
        f"<td>{_esc(d.get('cell', ''))}</td>"
        f'<td class="bad">{_esc(d.get("metric", ""))}</td>'
        f'<td class="num">{float(d.get("baseline", 0.0)):,.2f}</td>'
        f'<td class="num">{float(d.get("current", 0.0)):,.2f}</td>'
        f'<td class="num">{float(d.get("rel", 0.0)):+.1%}</td></tr>'
        for d in drift
    )
    return (
        "<table><tr><th>cell</th><th>metric</th><th>baseline</th>"
        "<th>current</th><th>change</th></tr>" + rows + "</table>"
    )


def render_html(data: Dict[str, Any]) -> str:
    """The whole report as one self-contained HTML document."""
    title = str(data.get("title", "Causal TTC attribution"))
    sections: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
    ]
    if data.get("subtitle"):
        sections.append(f'<p class="muted">{_esc(data["subtitle"])}</p>')
    if data.get("summary"):
        sections.append("<h2>Summary</h2>")
        sections.append(_summary_table(data["summary"]))
    if data.get("cells"):
        sections.append("<h2>TTC attribution by cell</h2>")
        sections.append(_legend())
        sections.append(_stacked_bars(data["cells"]))
    if data.get("critical_path"):
        sections.append("<h2>Critical path</h2>")
        sections.append(
            '<p class="muted">The chain of activities whose completions '
            "gated the end of the run; segments tile the whole TTC."
            "</p>"
        )
        sections.append(_critical_path_table(data["critical_path"]))
    if data.get("tw_by_resource"):
        sections.append("<h2>Queue-wait distributions by resource</h2>")
        for resource in sorted(data["tw_by_resource"]):
            values = data["tw_by_resource"][resource]
            sections.append(
                f"<h3>{_esc(resource)} "
                f'<span class="muted">({len(values)} pilot(s))</span></h3>'
            )
            sections.append(_histogram(values))
    sections.append("<h2>Anomalies</h2>")
    sections.append(_anomaly_table(data.get("anomalies", ())))
    if data.get("store"):
        sections.append("<h2>Result store</h2>")
        sections.append(
            '<p class="muted">This report was generated from an indexed '
            "campaign store; per-cell queries were index-served rather "
            "than loaded from a whole-campaign artifact.</p>"
        )
        sections.append(_store_table(data["store"]))
    if "drift" in data:
        sections.append("<h2>Baseline comparison</h2>")
        sections.append(_drift_table(data["drift"]))
    sections.append("</body></html>")
    return "\n".join(sections)


def save_html(data: Dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(render_html(data))
