"""The kernel profiler: wall-clock attribution per event type.

The DES kernel dispatches every simulated event through one call site,
so timing that call site attributes the *entire* simulation wall cost to
named event types (callback qualnames) and, for process resumptions, to
named processes. When a benchmark regresses, the report says which layer
got slower instead of just "the run takes longer".

The kernel does the timing (two ``perf_counter`` reads around the
callback) and hands ``record`` the measured cost, so this module stays a
pure accumulator with no clock of its own.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple


def label_for(callback: Callable[..., Any]) -> str:
    """A stable, human-meaningful name for a kernel callback."""
    qual = getattr(callback, "__qualname__", None)
    if qual is None:
        qual = type(callback).__name__
    return qual


class KernelProfiler:
    """Accumulates per-event-type and per-process wall-clock cost."""

    def __init__(self) -> None:
        #: label -> [dispatch count, summed wall seconds]
        self.by_label: Dict[str, List[float]] = {}
        #: process name -> [resume count, summed wall seconds]
        self.by_process: Dict[str, List[float]] = {}
        self.events = 0
        self.total_wall = 0.0

    # -- accumulation --------------------------------------------------------

    def record(self, callback: Callable[..., Any], wall_s: float) -> None:
        """Attribute one dispatched event's wall cost to its callback."""
        self.events += 1
        self.total_wall += wall_s
        label = label_for(callback)
        cell = self.by_label.get(label)
        if cell is None:
            cell = self.by_label[label] = [0, 0.0]
        cell[0] += 1
        cell[1] += wall_s
        owner = getattr(callback, "__self__", None)
        if owner is not None and hasattr(owner, "_generator"):
            # a Process method (resume/wait-done): attribute to the process
            pname = getattr(owner, "name", None) or "process"
            pcell = self.by_process.get(pname)
            if pcell is None:
                pcell = self.by_process[pname] = [0, 0.0]
            pcell[0] += 1
            pcell[1] += wall_s

    # -- read-out ------------------------------------------------------------

    def attributed_wall(self) -> float:
        """Wall seconds attributed to named event types (all of them)."""
        return sum(cell[1] for cell in self.by_label.values())

    def attributed_fraction(self) -> float:
        """Fraction of total kernel wall time carrying a named label.

        Every dispatch is labelled at record time, so this is 1.0 by
        construction — the acceptance bar (>= 0.95) guards against a
        future fast path that skips attribution.
        """
        if self.total_wall <= 0.0:
            return 1.0
        return self.attributed_wall() / self.total_wall

    def events_per_sec(self) -> float:
        return self.events / self.total_wall if self.total_wall > 0 else 0.0

    def top_labels(self, n: int = 12) -> List[Tuple[str, int, float]]:
        rows = [
            (label, int(cell[0]), cell[1])
            for label, cell in self.by_label.items()
        ]
        rows.sort(key=lambda r: (-r[2], r[0]))
        return rows[:n]

    def report(self, top: int = 12) -> str:
        """Render the attribution table (event types, then processes)."""
        if self.events == 0:
            return "kernel profile: no events dispatched"
        lines = [
            f"kernel profile: {self.events} events, "
            f"{self.total_wall * 1e3:.1f} ms wall, "
            f"{self.events_per_sec():,.0f} events/s, "
            f"{self.attributed_fraction() * 100.0:.1f}% attributed"
        ]
        header = f"  {'event type':<42} | {'count':>8} | {'wall ms':>9} | {'%':>5}"
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for label, count, wall in self.top_labels(top):
            pct = 100.0 * wall / self.total_wall if self.total_wall else 0.0
            lines.append(
                f"  {label:<42.42} | {count:>8} | {wall * 1e3:>9.2f} | {pct:>4.1f}"
            )
        if self.by_process:
            lines.append(f"  {'process (resumptions)':<42} | {'count':>8} | {'wall ms':>9} |")
            procs = sorted(
                self.by_process.items(), key=lambda kv: (-kv[1][1], kv[0])
            )
            for pname, (count, wall) in procs[:top]:
                lines.append(
                    f"  {pname:<42.42} | {int(count):>8} | {wall * 1e3:>9.2f} |"
                )
        return "\n".join(lines)
