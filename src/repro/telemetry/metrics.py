"""The metrics registry: counters, gauges, and histograms.

Instruments are cheap enough to update from hot paths (a counter
increment is one integer add), and the registry snapshots them all into
one deterministic, JSON-stable dict — the shape the virtual-time sampler
records and the telemetry digest hashes.

* a :class:`Counter` only goes up (events processed, scheduler passes);
* a :class:`Gauge` reads a live value, either set explicitly or pulled
  from a callback (heap size, units executing, breakers open);
* a :class:`Histogram` buckets observations against fixed boundaries
  with ``value <= boundary`` (Prometheus ``le``) semantics.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n


class Gauge:
    """A point-in-time value: explicitly set, or read through a callback.

    A *diagnostic* gauge reports host- or backend-dependent machinery
    state (heap compactions, cache hit counts) whose value legitimately
    differs between equivalent runs — e.g. between the heap and calendar
    event-queue backends, or between serial and forked parallel workers.
    Diagnostic gauges are excluded from the default :meth:`snapshot` so
    they never enter sampled telemetry (and therefore never enter run
    digests), while still showing up in ``render_table`` and in
    ``snapshot(diagnostics=True)``.
    """

    __slots__ = ("name", "_value", "fn", "diagnostic")

    def __init__(
        self,
        name: str,
        fn: Optional[Callable[[], Any]] = None,
        diagnostic: bool = False,
    ) -> None:
        self.name = name
        self._value: Any = None
        self.fn = fn
        self.diagnostic = diagnostic

    def set(self, value: Any) -> None:
        self._value = value

    def read(self) -> Any:
        return self.fn() if self.fn is not None else self._value


class Histogram:
    """Fixed-boundary histogram with ``value <= boundary`` buckets.

    ``boundaries`` must be strictly increasing; observations above the
    last boundary land in the implicit overflow (``+inf``) bucket.
    """

    __slots__ = ("name", "boundaries", "counts", "total", "count")

    def __init__(self, name: str, boundaries: Sequence[float]) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ValueError("a histogram needs at least one boundary")
        if any(b1 <= b0 for b0, b1 in zip(bounds, bounds[1:])):
            raise ValueError("histogram boundaries must be strictly increasing")
        self.name = name
        self.boundaries = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # bisect_left: a value equal to a boundary belongs to that
        # boundary's bucket (le semantics).
        self.counts[bisect_left(self.boundaries, value)] += 1
        self.total += value
        self.count += 1

    def bucket_counts(self) -> Tuple[int, ...]:
        return tuple(self.counts)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "boundaries": list(self.boundaries),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }


class MetricsRegistry:
    """Named instruments with get-or-create semantics and one snapshot."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- get-or-create -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(
        self,
        name: str,
        fn: Optional[Callable[[], Any]] = None,
        diagnostic: bool = False,
    ) -> Gauge:
        """Get or create a gauge; a non-None ``fn`` (re)binds the callback.

        Rebinding matters: each execution builds a fresh UnitManager, and
        the latest one's view is the one a live gauge should report.
        ``diagnostic=True`` keeps the gauge out of digest-bearing
        snapshots (see :class:`Gauge`); the flag is sticky once set.
        """
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name, fn, diagnostic)
        else:
            if fn is not None:
                g.fn = fn
            if diagnostic:
                g.diagnostic = True
        return g

    def histogram(self, name: str, boundaries: Sequence[float]) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, boundaries)
        elif tuple(float(b) for b in boundaries) != h.boundaries:
            raise ValueError(
                f"histogram {name!r} already exists with different boundaries"
            )
        return h

    # -- read-out ------------------------------------------------------------

    def snapshot(self, diagnostics: bool = False) -> Dict[str, Any]:
        """All instruments as one deterministic, JSON-stable dict.

        Diagnostic gauges are omitted unless ``diagnostics=True``: the
        default snapshot feeds the virtual-time sampler and the telemetry
        digest, which must stay byte-identical across queue backends and
        serial-vs-parallel execution.
        """
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.read()
                for name, g in sorted(self._gauges.items())
                if diagnostics or not g.diagnostic
            },
            "histograms": {
                name: h.as_dict()
                for name, h in sorted(self._histograms.items())
            },
        }

    def render_table(self) -> str:
        """Human-readable summary of every instrument."""
        names = [
            *self._counters, *self._gauges, *self._histograms, "metric",
        ]
        # pad from the longest registered name so long metric names
        # (>38 chars) keep the columns aligned instead of overflowing.
        width = max(len(name) for name in names)
        lines = [f"{'metric':<{width}} | {'kind':<9} | value"]
        lines.append("-" * len(lines[0]))
        for name, c in sorted(self._counters.items()):
            lines.append(f"{name:<{width}} | counter   | {c.value}")
        for name, g in sorted(self._gauges.items()):
            value = g.read()
            shown = f"{value:.6g}" if isinstance(value, float) else str(value)
            kind = "gauge/dx " if g.diagnostic else "gauge    "
            lines.append(f"{name:<{width}} | {kind} | {shown}")
        for name, h in sorted(self._histograms.items()):
            mean = h.total / h.count if h.count else 0.0
            lines.append(
                f"{name:<{width}} | histogram | n={h.count} mean={mean:.3g} "
                f"buckets={list(h.counts)}"
            )
        return "\n".join(lines)


# -- Prometheus text exposition ------------------------------------------------

_PROM_BAD = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, prefix: str = "") -> str:
    """Sanitize a dotted registry name into a Prometheus metric name."""
    out = _PROM_BAD.sub("_", f"{prefix}_{name}" if prefix else name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _prom_value(value: Any) -> Optional[str]:
    """Format a value for exposition; None for non-numeric gauges."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if value in (float("inf"), float("-inf")):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return None


def render_prometheus(
    snapshot: Dict[str, Any], prefix: str = "repro"
) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as Prometheus text.

    Operates on the snapshot *shape* rather than a live registry so the
    same renderer serves the campaign monitor's own gauges, archived
    snapshots, and worker-side registries alike. Non-numeric gauge
    values (strings, None) are skipped — the exposition format is
    numbers only. Histograms emit cumulative ``le`` buckets plus
    ``_sum``/``_count``, matching the registry's ``value <= boundary``
    semantics.
    """
    lines: List[str] = []
    for name, value in snapshot.get("counters", {}).items():
        pname = _prom_name(name, prefix)
        lines.append(f"# TYPE {pname} counter")
        lines.append(f"{pname} {value}")
    for name, value in snapshot.get("gauges", {}).items():
        shown = _prom_value(value)
        if shown is None:
            continue
        pname = _prom_name(name, prefix)
        lines.append(f"# TYPE {pname} gauge")
        lines.append(f"{pname} {shown}")
    for name, h in snapshot.get("histograms", {}).items():
        pname = _prom_name(name, prefix)
        lines.append(f"# TYPE {pname} histogram")
        cumulative = 0
        counts = h.get("counts", [])
        for boundary, count in zip(h.get("boundaries", []), counts):
            cumulative += count
            lines.append(f'{pname}_bucket{{le="{boundary}"}} {cumulative}')
        cumulative += counts[-1] if len(counts) > len(h.get("boundaries", [])) else 0
        lines.append(f'{pname}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{pname}_sum {h.get('sum', 0.0)}")
        lines.append(f"{pname}_count {h.get('count', 0)}")
    return "\n".join(lines) + "\n"
