"""In-process event bus: the fan-out point of the live observability plane.

The campaign runners already narrate everything that happens — ledger
events, attempt leases, progress — but until this module every consumer
had to be a file reader. The bus turns that narration into a
*subscribable stream*: the runner's parent process publishes each
record once, and any number of in-process consumers (the campaign
monitor, the SSE endpoint, a test harness) each read their own bounded
queue of it.

Contract
--------
* **Publishing never blocks.** The runner's hot path calls
  :meth:`EventBus.publish` between cells; a slow or stuck subscriber
  must not be able to stall the campaign. When a subscriber's queue is
  full the *oldest* queued event is dropped to make room (live views
  prefer fresh state over stale backlog) and the drop is counted on
  the subscription and on the bus.
* **Observation only.** The bus carries plain dicts the ledger already
  emits; publishing has no effect on execution, seeding, or digests —
  a campaign with ten subscribers is byte-identical to one with none.
* **Thread-safe.** Publishers and subscribers may live on any thread;
  each subscription has its own lock + condition, so one consumer's
  slowness never delays another's wakeup.

Consumers that must not miss events (SSE replay, ``repro watch``) do
not rely on the queue alone: the :class:`~repro.experiments.monitor.
CampaignMonitor` retains the folded history, and the durable ledger
file/store is always the ground truth. The queue-drop accounting here
is the honesty mechanism — a consumer can *see* that it fell behind.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Dict, List, Optional

__all__ = ["EventBus", "Subscription"]

#: default per-subscriber queue bound. Ledger events are small dicts and
#: campaigns emit a handful per cell; 4096 absorbs any realistic burst
#: while still bounding a wedged subscriber's memory.
DEFAULT_MAXSIZE = 4096


class Subscription:
    """One subscriber's bounded event queue.

    Created by :meth:`EventBus.subscribe`; consumed with :meth:`get`
    (blocking, with timeout) or :meth:`drain` (non-blocking, pop-all).
    ``dropped`` counts events shed because this consumer fell behind.
    """

    def __init__(self, bus: "EventBus", maxsize: int, name: str = "") -> None:
        if maxsize <= 0:
            raise ValueError("subscription maxsize must be positive")
        self._bus = bus
        self.name = name
        self.maxsize = maxsize
        self.dropped = 0
        self.delivered = 0
        self.closed = False
        self._queue: deque = deque()
        self._cond = threading.Condition()

    # -- publisher side (called by the bus, lock held briefly) -----------------

    def _offer(self, event: Dict[str, Any]) -> bool:
        """Enqueue one event; drop-oldest when full. Returns False on drop."""
        with self._cond:
            if self.closed:
                return True
            dropped = False
            if len(self._queue) >= self.maxsize:
                self._queue.popleft()
                self.dropped += 1
                dropped = True
            self._queue.append(event)
            self._cond.notify_all()
            return not dropped

    # -- consumer side ---------------------------------------------------------

    def get(self, timeout: Optional[float] = None) -> Optional[Dict[str, Any]]:
        """Pop the next event, waiting up to ``timeout`` seconds.

        Returns ``None`` on timeout or when the subscription is closed
        and drained — a clean sentinel for consumer loops.
        """
        with self._cond:
            if not self._queue and not self.closed:
                self._cond.wait(timeout)
            if not self._queue:
                return None
            self.delivered += 1
            return self._queue.popleft()

    def drain(self) -> List[Dict[str, Any]]:
        """Pop everything queued right now without blocking."""
        with self._cond:
            out = list(self._queue)
            self._queue.clear()
            self.delivered += len(out)
            return out

    def __len__(self) -> int:
        with self._cond:
            return len(self._queue)

    def close(self) -> None:
        """Detach from the bus and wake any blocked :meth:`get`."""
        self._bus.unsubscribe(self)

    def _mark_closed(self) -> None:
        with self._cond:
            self.closed = True
            self._cond.notify_all()


class EventBus:
    """Thread-safe fan-out of ledger events to bounded subscriber queues."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._subs: List[Subscription] = []
        self.published = 0
        self.dropped = 0

    def subscribe(
        self, maxsize: int = DEFAULT_MAXSIZE, name: str = ""
    ) -> Subscription:
        """Register a new subscriber; events published later are queued."""
        sub = Subscription(self, maxsize, name=name)
        with self._lock:
            self._subs.append(sub)
        return sub

    def unsubscribe(self, sub: Subscription) -> None:
        """Detach ``sub``; idempotent, wakes its blocked consumers."""
        with self._lock:
            try:
                self._subs.remove(sub)
            except ValueError:
                pass
        sub._mark_closed()

    def publish(self, event: Dict[str, Any]) -> None:
        """Deliver one event to every subscriber; never blocks.

        Full queues shed their oldest event (counted per subscription
        and on the bus). With no subscribers this is one lock
        acquisition — cheap enough to leave on unconditionally.
        """
        with self._lock:
            subs = list(self._subs)
            self.published += 1
        for sub in subs:
            if not sub._offer(event):
                with self._lock:
                    self.dropped += 1

    @property
    def subscribers(self) -> int:
        with self._lock:
            return len(self._subs)

    def stats(self) -> Dict[str, Any]:
        """Publish/drop accounting for metrics and diagnostics."""
        with self._lock:
            subs = list(self._subs)
            return {
                "published": self.published,
                "dropped": self.dropped,
                "subscribers": len(subs),
                "queues": [
                    {
                        "name": s.name,
                        "queued": len(s),
                        "delivered": s.delivered,
                        "dropped": s.dropped,
                        "maxsize": s.maxsize,
                    }
                    for s in subs
                ],
            }

    def close(self) -> None:
        """Detach every subscriber (used at campaign teardown)."""
        with self._lock:
            subs = list(self._subs)
            self._subs.clear()
        for sub in subs:
            sub._mark_closed()
