"""Span records: begin/end intervals on virtual and wall clocks.

A span covers one piece of middleware work — a scheduler pass, a bundle
query, a pilot's stay in one state, an enactment step. Each span carries
*two* clocks:

* ``t0``/``t1`` — virtual (simulated) seconds, the clock analyses and
  digests are derived from;
* ``w0``/``w1`` — monotonic wall seconds (``time.perf_counter``), the
  clock that tells you where the simulation itself spends host CPU.

Only the virtual fields participate in the canonical rendering: wall
time varies run to run, so it is excluded from the reproducibility
digest by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional


class UnclosedSpanError(Exception):
    """Raised when closed telemetry is required but spans are still open."""


@dataclass
class Span:
    """One begin/end record on the telemetry hub."""

    sid: int                      # unique, ordered by begin
    parent: Optional[int]         # enclosing span's sid (context nesting)
    category: str                 # span taxonomy, e.g. "cluster", "execution"
    name: str                     # e.g. "scheduler-pass", "EXECUTING"
    track: str                    # display lane, e.g. "cluster/stampede-sim"
    t0: float                     # virtual begin (simulated seconds)
    w0: float                     # wall begin (perf_counter seconds)
    t1: Optional[float] = None    # virtual end; None while open
    w1: Optional[float] = None    # wall end; None while open
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        return self.t1 is not None

    @property
    def virtual_duration(self) -> Optional[float]:
        return None if self.t1 is None else self.t1 - self.t0

    @property
    def wall_duration(self) -> Optional[float]:
        return None if self.w1 is None else self.w1 - self.w0

    def as_dict(self, wall: bool = False) -> Dict[str, Any]:
        """Canonical dict. Wall clocks are opt-in (they break digests)."""
        out: Dict[str, Any] = {
            "sid": self.sid,
            "parent": self.parent,
            "category": self.category,
            "name": self.name,
            "track": self.track,
            "t0": self.t0,
            "t1": self.t1,
            "attrs": _plain(self.attrs),
        }
        if wall:
            out["w0"] = self.w0
            out["w1"] = self.w1
        return out


def _plain(value: Any) -> Any:
    """Coerce attr values to JSON-stable types (tuples become lists)."""
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
