"""The fault log: a deterministic record of every injected fault.

The injector writes one :class:`FaultEvent` per fault it enacts (pilot
kills, submission failures, link degradations, resource outages). The
log is the subsystem's ground truth for analysis and for reproducibility
checks: ``digest()`` hashes a canonical JSON rendering, so two runs of
the same seeded :class:`~repro.faults.plan.FaultPlan` can be compared
byte-for-byte. Targets are therefore *stable* names (resource names,
per-manager pilot indices) rather than process-global uids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from ..telemetry.digest import canonical_json, sha256_digest


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as enacted (not as planned)."""

    time: float
    kind: str      # "pilot-kill" | "submit-fail" | "link-degrade" | ...
    target: str    # stable name: resource, site, or "resource/pilot#i"
    details: Tuple[Tuple[str, object], ...] = ()

    def as_dict(self) -> Dict[str, object]:
        return {
            "time": self.time,
            "kind": self.kind,
            "target": self.target,
            "details": dict(self.details),
        }


class FaultLog:
    """Append-only, deterministic record of injected faults."""

    def __init__(self, events: Tuple[FaultEvent, ...] = ()) -> None:
        self.events: List[FaultEvent] = list(events)
        #: called with each event as it is recorded — the health
        #: registry's live view of the damage (listeners never affect
        #: the log's contents or digest).
        self._listeners: List = []

    def add_listener(self, fn) -> None:
        self._listeners.append(fn)

    def record(self, time: float, kind: str, target: str, **details) -> FaultEvent:
        ev = FaultEvent(
            time=float(time),
            kind=kind,
            target=target,
            details=tuple(sorted(details.items())),
        )
        self.events.append(ev)
        for fn in list(self._listeners):
            fn(ev)
        return ev

    # -- views ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def between(self, t0: float, t1: float) -> "FaultLog":
        """Sub-log of events with t0 <= time <= t1 (for one execution)."""
        return FaultLog(tuple(e for e in self.events if t0 <= e.time <= t1))

    def by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    # -- reproducibility -----------------------------------------------------

    def to_list(self) -> List[Dict[str, object]]:
        return [e.as_dict() for e in self.events]

    def canonical_json(self) -> str:
        """Canonical rendering: stable key order, exact float repr."""
        return canonical_json(self.to_list())

    def digest(self) -> str:
        """SHA-256 of the canonical JSON — equal iff the logs are identical."""
        return sha256_digest(self.canonical_json())

    def summary(self) -> str:
        if not self.events:
            return "faults: none injected"
        kinds = ", ".join(
            f"{k} x{n}" for k, n in sorted(self.by_kind().items())
        )
        return (
            f"faults: {len(self.events)} injected ({kinds}); "
            f"digest {self.digest()[:12]}"
        )
