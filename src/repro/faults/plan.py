"""Declarative fault plans: what goes wrong, when, and where.

A :class:`FaultPlan` is a seed plus a tuple of actions. Actions come in
two flavours:

* **scripted** — a fixed timeline entry (`KillPilot` at t=3600,
  `Outage` on stampede-sim from t=1800 for 900 s, `DegradeLink` ...);
* **hazards** — probabilistic processes (`PilotHazard` with an
  exponential failure rate, `SubmitHazard` with a per-submission
  failure probability) whose draws come from a dedicated RNG derived
  *only* from the plan's seed.

Plans serialize to/from plain JSON so chaos scenarios can be stored next
to campaign configurations and replayed bit-for-bit.
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional, Tuple, Type


@dataclass(frozen=True)
class KillPilot:
    """Kill one pilot at an absolute simulated time.

    The victim is the oldest non-final pilot matching ``resource`` (all
    resources when None); ``index`` pins a specific submission-order
    pilot instead. A kill with no living candidate is logged as a miss.
    """

    at: float
    resource: Optional[str] = None
    index: Optional[int] = None
    kind: str = field(default="kill-pilot", init=False)

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("KillPilot.at must be non-negative")


@dataclass(frozen=True)
class PilotHazard:
    """Poisson pilot-failure process: kills arrive at ``rate_per_s``."""

    rate_per_s: float
    resource: Optional[str] = None
    start: float = 0.0
    stop: float = math.inf
    kind: str = field(default="pilot-hazard", init=False)

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0:
            raise ValueError("PilotHazard.rate_per_s must be positive")
        if self.stop < self.start:
            raise ValueError("PilotHazard window stop precedes start")


@dataclass(frozen=True)
class SubmitFailures:
    """Scripted: fail the next ``count`` SAGA submissions on a resource.

    Transient failures model middleware round-trip errors (the caller
    should retry); permanent ones model rejected submissions.
    """

    count: int
    resource: Optional[str] = None
    permanent: bool = False
    kind: str = field(default="submit-failures", init=False)

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise ValueError("SubmitFailures.count must be positive")


@dataclass(frozen=True)
class SubmitHazard:
    """Probabilistic: each submission fails with probability ``p_fail``."""

    p_fail: float
    resource: Optional[str] = None
    permanent: bool = False
    start: float = 0.0
    stop: float = math.inf
    kind: str = field(default="submit-hazard", init=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.p_fail <= 1.0:
            raise ValueError("SubmitHazard.p_fail must be in (0, 1]")
        if self.stop < self.start:
            raise ValueError("SubmitHazard window stop precedes start")


@dataclass(frozen=True)
class DegradeLink:
    """Throttle the origin<->site WAN link to ``factor`` of its bandwidth.

    ``factor`` 0.0 is a full partition: in-flight transfers stall until
    the window ends. Overlapping windows compose by severity (the lowest
    active factor wins).
    """

    at: float
    site: str
    factor: float
    duration: float
    kind: str = field(default="degrade-link", init=False)

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("DegradeLink.at must be non-negative")
        if not 0.0 <= self.factor < 1.0:
            raise ValueError("DegradeLink.factor must be in [0, 1)")
        if self.duration <= 0:
            raise ValueError("DegradeLink.duration must be positive")

    @property
    def until(self) -> float:
        return self.at + self.duration


@dataclass(frozen=True)
class Outage:
    """Take a whole cluster offline for a window (kills its running jobs)."""

    at: float
    resource: str
    duration: float
    kind: str = field(default="outage", init=False)

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("Outage.at must be non-negative")
        if self.duration <= 0:
            raise ValueError("Outage.duration must be positive")


#: kind tag -> action class, for (de)serialization.
ACTION_KINDS: Dict[str, Type] = {
    "kill-pilot": KillPilot,
    "pilot-hazard": PilotHazard,
    "submit-failures": SubmitFailures,
    "submit-hazard": SubmitHazard,
    "degrade-link": DegradeLink,
    "outage": Outage,
}


class FaultPlanError(Exception):
    """Raised on malformed fault plans."""


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible chaos scenario: one seed, any number of actions."""

    seed: int = 0
    actions: Tuple[object, ...] = ()

    def __post_init__(self) -> None:
        for a in self.actions:
            if getattr(a, "kind", None) not in ACTION_KINDS:
                raise FaultPlanError(f"unknown fault action {a!r}")

    @property
    def is_empty(self) -> bool:
        return not self.actions

    def of_kind(self, kind: str) -> Tuple[object, ...]:
        return tuple(a for a in self.actions if a.kind == kind)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        out = []
        for a in self.actions:
            d = asdict(a)
            # math.inf is not valid JSON; use null for open windows.
            for k, v in list(d.items()):
                if isinstance(v, float) and math.isinf(v):
                    d[k] = None
            out.append(d)
        return {"seed": self.seed, "actions": out}

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        try:
            raw_actions = data.get("actions", [])
            actions = []
            for raw in raw_actions:
                raw = dict(raw)
                kind = raw.pop("kind", None)
                klass = ACTION_KINDS.get(kind)
                if klass is None:
                    raise FaultPlanError(f"unknown fault kind {kind!r}")
                if raw.get("stop", 0) is None:
                    raw["stop"] = math.inf
                actions.append(klass(**raw))
            return cls(seed=int(data.get("seed", 0)), actions=tuple(actions))
        except (TypeError, ValueError) as exc:
            raise FaultPlanError(f"malformed fault plan: {exc}") from exc

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())


# -- presets (for the CLI's --faults flag and the examples) -------------------

def preset_plan(name: str, seed: int = 0) -> FaultPlan:
    """Named chaos scenarios for quick experiments.

    * ``pilot-storm`` — a pilot dies roughly every 40 simulated minutes;
    * ``flaky-submission`` — 25% of SAGA submissions fail transiently;
    * ``first-pilot-dies`` — the oldest pilot is killed one hour in.
    """
    presets = {
        "pilot-storm": FaultPlan(
            seed=seed, actions=(PilotHazard(rate_per_s=1.0 / 2400.0),)
        ),
        "flaky-submission": FaultPlan(
            seed=seed, actions=(SubmitHazard(p_fail=0.25),)
        ),
        "first-pilot-dies": FaultPlan(
            seed=seed, actions=(KillPilot(at=3600.0, index=0),)
        ),
    }
    try:
        return presets[name]
    except KeyError:
        raise FaultPlanError(
            f"unknown fault preset {name!r}; known: {sorted(presets)}"
        ) from None


PRESET_NAMES = ("pilot-storm", "flaky-submission", "first-pilot-dies")
