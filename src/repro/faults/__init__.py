"""Deterministic fault injection for the AIMES middleware stack.

The paper's argument for late binding over multiple pilots is, at heart,
a robustness argument: queue waits are dominant *and variable*, and
resources misbehave. This package makes the misbehaviour explicit and
reproducible: a seeded :class:`FaultPlan` (scripted timelines and/or
probabilistic hazards) is enacted by a :class:`FaultInjector` that can

* kill pilots mid-run (through the cluster's native job failure path),
* fail SAGA submissions transiently or permanently,
* degrade or partition WAN links,
* take whole resources offline for a window,

recording every enacted fault to a :class:`FaultLog` whose digest is
byte-for-byte reproducible from the plan's seed.
"""

from .injector import FaultInjectionError, FaultInjector
from .log import FaultEvent, FaultLog
from .plan import (
    ACTION_KINDS,
    DegradeLink,
    FaultPlan,
    FaultPlanError,
    KillPilot,
    Outage,
    PilotHazard,
    PRESET_NAMES,
    SubmitFailures,
    SubmitHazard,
    preset_plan,
)

__all__ = [
    "ACTION_KINDS",
    "DegradeLink",
    "FaultEvent",
    "FaultInjectionError",
    "FaultInjector",
    "FaultLog",
    "FaultPlan",
    "FaultPlanError",
    "KillPilot",
    "Outage",
    "PRESET_NAMES",
    "PilotHazard",
    "SubmitFailures",
    "SubmitHazard",
    "preset_plan",
]
