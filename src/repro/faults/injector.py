"""The fault injector: enacts a FaultPlan against a live simulation.

The injector is armed once against the stack's handles (pilot manager,
network, clusters) and then drives everything through the kernel:
scripted actions become scheduled events, hazards become seeded Poisson
processes. Every enacted fault is recorded to the :class:`FaultLog`
with *stable* target names, so a seeded run reproduces an identical log
byte-for-byte.

All randomness comes from streams derived from the plan's own seed —
never from the kernel's streams — so adding fault draws does not perturb
the substrate's workloads, and the same plan yields the same timeline on
any simulation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..cluster import Cluster
from ..des import Process, RngStreams, Simulation, hazard_process
from ..net import Network
from ..pilot import ComputePilot, PilotManager, PilotState
from ..saga import FallibleAdaptor, SagaState, SubmissionFaultModel
from .log import FaultLog
from .plan import DegradeLink, FaultPlan, KillPilot, Outage, PilotHazard


class FaultInjectionError(Exception):
    """Raised when a plan cannot be armed against the given stack."""


class FaultInjector:
    """Enacts one :class:`FaultPlan` on one simulation."""

    def __init__(
        self,
        sim: Simulation,
        plan: FaultPlan,
        pilot_manager: Optional[PilotManager] = None,
        network: Optional[Network] = None,
        clusters: Optional[Dict[str, Cluster]] = None,
        epoch: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.plan = plan
        self.pilot_manager = pilot_manager
        self.network = network
        if clusters is None and pilot_manager is not None:
            clusters = dict(pilot_manager._clusters)
        self.clusters = clusters or {}
        #: plan times are *relative* to this simulated instant; defaults
        #: to the arming time, so ``at=3600`` means "an hour into the
        #: chaos run" regardless of any warm-up that preceded it.
        self.epoch = epoch
        self.log = FaultLog()
        self._rng = RngStreams(plan.seed)
        self._armed = False
        self._hazard_procs: List[Process] = []

    # -- lifecycle -----------------------------------------------------------

    def arm(self) -> "FaultInjector":
        """Schedule every scripted action and start every hazard process."""
        if self._armed:
            return self
        self._armed = True
        if self.epoch is None:
            self.epoch = self.sim.now
        epoch = self.epoch
        for action in self.plan.of_kind("kill-pilot"):
            self.sim.call_at(epoch + action.at, self._enact_kill, action)
        for action in self.plan.of_kind("outage"):
            self.sim.call_at(epoch + action.at, self._enact_outage, action)
        self._arm_link_faults()
        self._arm_submission_faults()
        for i, action in enumerate(self.plan.of_kind("pilot-hazard")):
            rng = self._rng.spawn("pilot-hazard", i)
            self._hazard_procs.append(
                hazard_process(
                    self.sim,
                    action.rate_per_s,
                    lambda now, a=action, r=rng: self._enact_hazard_kill(a, r),
                    rng,
                    start=epoch + action.start,
                    stop=epoch + action.stop,
                    name=f"fault/pilot-hazard.{i}",
                )
            )
        return self

    def disarm(self) -> None:
        """Stop all hazard processes (scripted events already queued fire)."""
        for proc in self._hazard_procs:
            if proc.is_alive:
                proc.interrupt("disarmed")
        self._hazard_procs = []

    # -- pilot kills ---------------------------------------------------------

    def _candidates(self, resource: Optional[str]) -> List[ComputePilot]:
        if self.pilot_manager is None:
            return []
        return [
            p for p in self.pilot_manager.pilots
            if not p.is_final and (resource is None or p.resource == resource)
        ]

    def _stable_name(self, pilot: ComputePilot) -> str:
        idx = self.pilot_manager.pilots.index(pilot)
        return f"{pilot.resource}/pilot#{idx}"

    def _enact_kill(self, action: KillPilot) -> None:
        if self.pilot_manager is None:
            raise FaultInjectionError("kill-pilot requires a pilot manager")
        if action.index is not None:
            pilots = self.pilot_manager.pilots
            victim = (
                pilots[action.index]
                if action.index < len(pilots) and not pilots[action.index].is_final
                else None
            )
        else:
            candidates = self._candidates(action.resource)
            victim = candidates[0] if candidates else None
        self._kill(victim, cause="scripted")

    def _enact_hazard_kill(self, action: PilotHazard, rng) -> None:
        candidates = self._candidates(action.resource)
        victim = (
            candidates[int(rng.integers(len(candidates)))]
            if candidates else None
        )
        self._kill(victim, cause="hazard")

    def _kill(self, pilot: Optional[ComputePilot], cause: str) -> None:
        if pilot is None:
            self.log.record(self.sim.now, "pilot-kill-miss", "*", cause=cause)
            return
        name = self._stable_name(pilot)
        state = pilot.state.value
        job = pilot.saga_job
        if job is not None and job.native is not None and not job.is_final:
            cluster = self.clusters.get(pilot.resource)
            if cluster is None:
                cluster = job.service.adaptor.cluster
            cluster.kill_job(job.native)
        elif job is not None and not job.is_final:
            # killed inside the middleware round-trip window
            job._set_state(SagaState.FAILED)
        elif not pilot.is_final:
            pilot.advance(PilotState.FAILED)
        self.log.record(
            self.sim.now, "pilot-kill", name, cause=cause, state=state,
        )

    # -- resource outages ------------------------------------------------------

    def _enact_outage(self, action: Outage) -> None:
        cluster = self.clusters.get(action.resource)
        if cluster is None:
            raise FaultInjectionError(
                f"outage names unknown resource {action.resource!r}; "
                f"known: {sorted(self.clusters)}"
            )
        cluster.set_offline(action.duration)
        self.log.record(
            self.sim.now, "outage", action.resource, duration=action.duration,
        )

    # -- link degradation --------------------------------------------------------

    def _arm_link_faults(self) -> None:
        actions = self.plan.of_kind("degrade-link")
        if not actions:
            return
        if self.network is None:
            raise FaultInjectionError("degrade-link requires a network")
        by_site: Dict[str, List[DegradeLink]] = {}
        for a in actions:
            self.network.link_to(a.site)  # raises UnknownSite early
            by_site.setdefault(a.site, []).append(a)
        for site, windows in by_site.items():
            boundaries = sorted(
                {w.at for w in windows} | {w.until for w in windows}
            )
            for t in boundaries:
                self.sim.call_at(
                    self.epoch + t, self._apply_link_factor, site, windows
                )

    def _apply_link_factor(self, site: str, windows: List[DegradeLink]) -> None:
        # Severity composition: the lowest factor among active windows wins.
        now = self.sim.now
        rel = now - self.epoch
        active = [w.factor for w in windows if w.at <= rel < w.until]
        factor = min(active) if active else 1.0
        link = self.network.link_to(site)
        if factor == link.degradation:
            return
        link.set_degradation(factor)
        self.log.record(
            now,
            "link-restore" if factor == 1.0 else "link-degrade",
            site,
            factor=factor,
        )

    # -- submission faults ----------------------------------------------------------

    def _arm_submission_faults(self) -> None:
        scripted = self.plan.of_kind("submit-failures")
        hazards = self.plan.of_kind("submit-hazard")
        if not scripted and not hazards:
            return
        if self.pilot_manager is None:
            raise FaultInjectionError("submission faults require a pilot manager")
        model = SubmissionFaultModel(
            self.sim,
            self._rng.get("submit-hazard"),
            on_fault=lambda resource, job, permanent: self.log.record(
                self.sim.now, "submit-fail", resource, permanent=permanent,
            ),
        )
        for a in scripted:
            model.add_scripted(a.count, resource=a.resource, permanent=a.permanent)
        for a in hazards:
            model.add_hazard(
                a.p_fail, resource=a.resource, permanent=a.permanent,
                start=self.epoch + a.start, stop=self.epoch + a.stop,
            )
        self.submission_model = model
        self.pilot_manager.set_adaptor_wrapper(
            lambda adaptor: FallibleAdaptor(adaptor, model)
        )
