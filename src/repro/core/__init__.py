"""AIMES core: Execution Strategy, planner, Execution Manager, TTC analysis.

This package implements the paper's primary contribution: making the
decisions that couple a distributed application to multiple dynamic
resources explicit (the Execution Strategy), deriving them from
integrated application + resource information (the planner), enacting
them through the pilot layer (the Execution Manager), and decomposing
the measured time-to-completion from middleware traces.
"""

from .adaptive import AdaptationEvent, AdaptationPolicy, PilotReinforcer
from .analytics import (
    AllocationMetrics,
    allocation_metrics,
    concurrency_series,
    export_trace,
    peak_concurrency,
    state_durations,
)
from .energy import (
    DEFAULT_ACTIVE_WATTS,
    DEFAULT_IDLE_WATTS,
    EnergyEstimate,
    estimate_energy,
    report_energy,
)
from .execution_manager import (
    ExecutionError,
    ExecutionManager,
    ExecutionReport,
    RecoveryEvent,
    RecoveryPolicy,
)
from .session import (
    Session,
    load_session,
    report_to_session,
    save_session,
    session_from_dict,
)
from .gantt import render_report_timeline, render_timeline
from .instrumentation import (
    IntrospectionError,
    TTCDecomposition,
    decompose,
    execution_intervals,
    lost_intervals,
    quarantine_seconds,
    staging_intervals,
    unit_intervals,
)
from .metrics import (
    merge_intervals,
    overlap_fraction,
    span,
    throughput,
    union_duration,
)
from .planner import (
    PlannerConfig,
    PlanningError,
    TRP_BASE_S,
    TRP_PER_TASK_S,
    derive_strategy,
    estimate_trp_s,
    estimate_ts_s,
    estimate_tx_s,
)
from .strategy import Binding, Decision, ExecutionStrategy

__all__ = [
    "AdaptationEvent",
    "AdaptationPolicy",
    "AllocationMetrics",
    "allocation_metrics",
    "concurrency_series",
    "export_trace",
    "peak_concurrency",
    "render_report_timeline",
    "render_timeline",
    "state_durations",
    "Binding",
    "DEFAULT_ACTIVE_WATTS",
    "DEFAULT_IDLE_WATTS",
    "EnergyEstimate",
    "PilotReinforcer",
    "Decision",
    "ExecutionError",
    "ExecutionManager",
    "ExecutionReport",
    "ExecutionStrategy",
    "IntrospectionError",
    "PlannerConfig",
    "PlanningError",
    "RecoveryEvent",
    "RecoveryPolicy",
    "Session",
    "TRP_BASE_S",
    "TRP_PER_TASK_S",
    "TTCDecomposition",
    "decompose",
    "derive_strategy",
    "estimate_energy",
    "estimate_trp_s",
    "estimate_ts_s",
    "estimate_tx_s",
    "execution_intervals",
    "load_session",
    "lost_intervals",
    "report_energy",
    "report_to_session",
    "merge_intervals",
    "overlap_fraction",
    "quarantine_seconds",
    "save_session",
    "session_from_dict",
    "span",
    "staging_intervals",
    "throughput",
    "union_duration",
    "unit_intervals",
]
