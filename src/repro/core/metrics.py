"""Interval algebra and performance metrics for execution analysis."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

Interval = Tuple[float, float]


def merge_intervals(intervals: Iterable[Interval]) -> List[Interval]:
    """Merge overlapping/touching intervals into a disjoint sorted list."""
    items = sorted((lo, hi) for lo, hi in intervals if hi >= lo)
    out: List[Interval] = []
    for lo, hi in items:
        if out and lo <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], hi))
        else:
            out.append((lo, hi))
    return out


def union_duration(intervals: Iterable[Interval]) -> float:
    """Total time covered by at least one interval."""
    return sum(hi - lo for lo, hi in merge_intervals(intervals))


def span(intervals: Iterable[Interval]) -> float:
    """Time from the earliest start to the latest end (0 if empty)."""
    items = [iv for iv in intervals]
    if not items:
        return 0.0
    return max(hi for _, hi in items) - min(lo for lo, _ in items)


def overlap_fraction(a: Iterable[Interval], b: Iterable[Interval]) -> float:
    """Fraction of A's covered time that is also covered by B."""
    a_merged = merge_intervals(a)
    b_merged = merge_intervals(b)
    total_a = sum(hi - lo for lo, hi in a_merged)
    if total_a == 0:
        return 0.0
    shared = 0.0
    j = 0
    for lo, hi in a_merged:
        while j < len(b_merged) and b_merged[j][1] < lo:
            j += 1
        k = j
        while k < len(b_merged) and b_merged[k][0] < hi:
            shared += max(
                0.0, min(hi, b_merged[k][1]) - max(lo, b_merged[k][0])
            )
            k += 1
    return shared / total_a


def throughput(n_tasks: int, ttc_s: float) -> float:
    """Completed tasks per hour."""
    if ttc_s <= 0:
        return 0.0
    return n_tasks / (ttc_s / 3600.0)
