"""Session analytics over middleware traces (the virtual laboratory).

The AIMES middleware's self-introspection makes every execution a data
set. This module turns raw traces and instrumented entities into the
quantities an experimenter plots:

* :func:`state_durations` — how long entities spent in each state;
* :func:`concurrency_series` — how many units were executing over time;
* :func:`allocation_metrics` — pilot core-seconds consumed vs used
  (the paper's "allocation consumption" concern: canceling pilots when
  tasks finish is only half the story — how full were they?);
* :func:`export_trace` — dump the trace as JSON for external tooling
  (the RADICAL-Analytics workflow).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..des import Tracer
from ..pilot import ComputePilot, ComputeUnit, PilotState, UnitState
from ..telemetry import trace_records_json


def state_durations(
    entities: Sequence,
    final_time: Optional[float] = None,
) -> Dict[str, float]:
    """Total seconds spent in each state, summed over entities.

    Works on anything with a ``history`` (pilots, units). Open-ended
    final states are closed at ``final_time`` when given, else ignored.
    """
    totals: Dict[str, float] = {}
    for entity in entities:
        entries = entity.history.as_list()
        for (state, t0), (_, t1) in zip(entries, entries[1:]):
            totals[state] = totals.get(state, 0.0) + (t1 - t0)
        if entries and final_time is not None:
            last_state, last_t = entries[-1]
            if final_time > last_t:
                totals[last_state] = (
                    totals.get(last_state, 0.0) + final_time - last_t
                )
    return totals


def concurrency_series(
    units: Sequence[ComputeUnit],
    state: str = UnitState.EXECUTING.value,
    end_states: Sequence[str] = (UnitState.STAGING_OUTPUT.value,),
) -> List[Tuple[float, int]]:
    """Step series of how many units were in ``state`` at once.

    Returns [(time, level), ...], one point per change, starting at the
    first entry. The series is what Figure-style concurrency plots
    consume.
    """
    events: List[Tuple[float, int]] = []
    for unit in units:
        t0 = unit.history.timestamp(state)
        if t0 is None:
            continue
        t1 = None
        for s in end_states:
            cand = unit.history.timestamp(s)
            if cand is not None and cand >= t0:
                t1 = cand if t1 is None else min(t1, cand)
        if t1 is None:
            continue
        events.append((t0, +1))
        events.append((t1, -1))
    events.sort()
    series: List[Tuple[float, int]] = []
    level = 0
    for t, delta in events:
        level += delta
        if series and series[-1][0] == t:
            series[-1] = (t, level)
        else:
            series.append((t, level))
    return series


def peak_concurrency(units: Sequence[ComputeUnit]) -> int:
    """Maximum number of simultaneously executing units."""
    series = concurrency_series(units)
    return max((level for _, level in series), default=0)


@dataclass(frozen=True)
class AllocationMetrics:
    """Pilot allocation consumed vs put to use."""

    consumed_core_s: float     # sum over pilots of cores x active duration
    used_core_s: float         # sum over units of cores x execution time
    efficiency: float          # used / consumed (0 when nothing consumed)


def allocation_metrics(
    pilots: Sequence[ComputePilot],
    units: Sequence[ComputeUnit],
    final_time: Optional[float] = None,
) -> AllocationMetrics:
    """How much allocation the pilots burned, and how much did work."""
    consumed = 0.0
    for pilot in pilots:
        t0 = pilot.activated_at
        if t0 is None:
            continue
        t1 = None
        for state in (PilotState.DONE, PilotState.CANCELED, PilotState.FAILED):
            cand = pilot.history.timestamp(state.value)
            if cand is not None:
                t1 = cand if t1 is None else min(t1, cand)
        if t1 is None:
            t1 = final_time if final_time is not None else t0
        consumed += pilot.cores * max(0.0, t1 - t0)

    used = 0.0
    for unit in units:
        t0 = unit.history.timestamp(UnitState.EXECUTING.value)
        t1 = unit.history.timestamp(UnitState.STAGING_OUTPUT.value)
        if t0 is not None and t1 is not None and t1 >= t0:
            used += unit.cores * (t1 - t0)

    efficiency = used / consumed if consumed > 0 else 0.0
    return AllocationMetrics(
        consumed_core_s=consumed, used_core_s=used, efficiency=efficiency
    )


def export_trace(records, category: Optional[str] = None) -> str:
    """Serialize trace records to JSON.

    The rendering lives with the other exporters
    (:func:`repro.telemetry.exporters.trace_records_json`); this is a
    thin delegation kept for API stability. Pass the record sequence
    directly (``export_trace(tracer.records)`` or a ``query(...)``
    result).

    .. deprecated::
        Passing a :class:`~repro.des.Tracer` (with the optional
        ``category=`` filter) is the old signature; it still works but
        emits a :class:`DeprecationWarning`. Filter via
        ``tracer.query(category=...)`` and pass the records instead.
    """
    if isinstance(records, Tracer):
        warnings.warn(
            "export_trace(tracer, category=...) is deprecated; pass the "
            "records directly, e.g. export_trace(tracer.query(category=...))"
            " or export_trace(tracer.records)",
            DeprecationWarning,
            stacklevel=2,
        )
        tracer = records
        records = (
            tracer.query(category=category) if category else tracer.records
        )
    elif category is not None:
        raise TypeError(
            "category= is only meaningful with the deprecated Tracer "
            "signature; filter the records before calling export_trace"
        )
    return trace_records_json(records)
