"""Strategy derivation: integrating application and resource information.

This is steps (2)–(3) of the Execution Manager's five-step enactment:
given the application requirements (from the Skeleton API) and resource
availability/capabilities (from the Bundle API), derive an execution
strategy. The derivation follows the semi-empirical heuristics of the
paper and reproduces the walltime formulas of Table I:

* early binding, 1 pilot, pilot size = peak task concurrency,
  walltime = Tx + Ts + Trp;
* late binding, N pilots, pilot size = peak / N,
  walltime = (Tx + Ts + Trp) * N.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..bundle import ResourceBundle
from ..skeleton import ApplicationRequirements
from .strategy import Binding, Decision, ExecutionStrategy

#: Middleware overhead allowance per task (seconds) used in walltime
#: estimates — the paper's Trp term. Tuned for this middleware's measured
#: dispatch/bookkeeping cost per unit plus a constant startup term.
TRP_BASE_S = 120.0
TRP_PER_TASK_S = 0.25

#: Safety factor on walltime requests: running out of pilot walltime
#: strands tasks, so the middleware over-requests modestly (as users do).
WALLTIME_SAFETY = 1.25


@dataclass(frozen=True)
class PlannerConfig:
    """The free choices of an execution strategy, before derivation.

    ``None`` fields are decided by the planner from bundle information.
    This is how the experiments pin the Table I decision subsets while
    the remaining decisions are derived.
    """

    binding: Binding = Binding.LATE
    n_pilots: Optional[int] = None          # late binding default: min(3, pool)
    unit_scheduler: Optional[str] = None    # derived from binding
    resources: Optional[Tuple[str, ...]] = None  # derived from bundle ranking
    pilot_cores: Optional[int] = None       # derived from app concurrency
    pilot_walltime_min: Optional[float] = None   # derived from Tx+Ts+Trp
    max_pilots: int = 3
    #: resources the planner must not use (e.g. quarantined by the
    #: health layer during runtime re-planning). Pinning a resource that
    #: is also excluded is a :class:`PlanningError`.
    exclude: Tuple[str, ...] = ()
    #: optimization metric for resource selection: "ttc" ranks by the
    #: bundle's predicted queue wait alone; "data" adds the estimated
    #: staging time of this application's per-resource data share
    #: (compute/data affinity for data-intensive applications).
    optimize: str = "ttc"


class PlanningError(Exception):
    """Raised when no feasible strategy exists for the request."""


def estimate_tx_s(req: ApplicationRequirements, total_cores: int) -> float:
    """Estimated workflow execution time on ``total_cores`` cores.

    A bag of W tasks on C cores runs in ~ceil(W/C) waves; more generally
    we bound by compute volume / cores plus one longest task for the
    final partial wave.
    """
    if total_cores <= 0:
        raise ValueError("total_cores must be positive")
    volume_bound = req.estimated_compute_seconds / total_cores
    return volume_bound + req.estimated_longest_task


def estimate_ts_s(
    req: ApplicationRequirements, bundle: ResourceBundle, resources: Sequence[str]
) -> float:
    """Estimated total data staging time across the chosen resources.

    Staging parallelizes over the per-resource links, so we take the
    bytes split evenly across resources through each link's estimate.
    """
    n = max(1, len(resources))
    per_resource_bytes = (req.total_input_bytes + req.total_output_bytes) / n
    estimates = [
        bundle.estimate_transfer_time(r, per_resource_bytes) for r in resources
    ]
    return max(estimates) if estimates else 0.0


def estimate_trp_s(req: ApplicationRequirements) -> float:
    """Estimated middleware overhead (the paper's Trp term)."""
    return TRP_BASE_S + TRP_PER_TASK_S * req.n_tasks


def derive_strategy(
    req: ApplicationRequirements,
    bundle: ResourceBundle,
    config: Optional[PlannerConfig] = None,
) -> ExecutionStrategy:
    """Derive a full execution strategy (the Execution Manager's step 3)."""
    config = config or PlannerConfig()
    decisions: list[Decision] = []

    excluded = set(config.exclude)
    if excluded and config.resources is not None:
        overlap = excluded & set(config.resources)
        if overlap:
            raise PlanningError(
                f"pinned resources {sorted(overlap)} are excluded "
                "(quarantined?) — unpin or wait for recovery"
            )

    # -- decision 1: binding ------------------------------------------------------
    binding = config.binding
    decisions.append(
        Decision(
            "binding",
            binding.value,
            "late binding drains tasks through the first active pilot; "
            "early binding commits tasks before queue waits are known",
        )
    )

    # -- decision 2: unit scheduler (depends on binding) -----------------------------
    scheduler = config.unit_scheduler or (
        "direct" if binding is Binding.EARLY else "backfill"
    )
    decisions.append(
        Decision(
            "unit_scheduler", scheduler,
            "direct placement for early binding; backfill keeps active "
            "pilots saturated for late binding",
            depends_on=("binding",),
        )
    )

    # -- decision 3: number of pilots (depends on binding) ----------------------------
    pool = [r for r in bundle.resources() if r not in excluded]
    if not pool and config.resources is None:
        raise PlanningError(
            f"no usable resources in bundle {bundle.name!r}: all "
            f"{len(excluded)} excluded"
        )
    if config.n_pilots is not None:
        n_pilots = config.n_pilots
    elif binding is Binding.EARLY:
        n_pilots = 1
    else:
        n_pilots = min(config.max_pilots, len(pool))
    if n_pilots > len(pool) and config.resources is None:
        raise PlanningError(
            f"strategy wants {n_pilots} pilots but the bundle has only "
            f"{len(pool)} resources"
        )
    decisions.append(
        Decision(
            "n_pilots", n_pilots,
            "multiple pilots sample several queues, normalizing the "
            "heavy-tailed wait of any single resource",
            depends_on=("binding",),
        )
    )

    # -- decision 4: resource selection (depends on n_pilots) --------------------------
    if config.resources is not None:
        if len(config.resources) != n_pilots:
            raise PlanningError(
                f"{len(config.resources)} resources pinned for {n_pilots} pilots"
            )
        resources = tuple(config.resources)
        rationale = "pinned by configuration"
    elif config.optimize == "data":
        # Compute/data affinity: add the per-resource staging estimate of
        # this application's data share to the predicted queue wait.
        share = (req.total_input_bytes + req.total_output_bytes) / n_pilots
        scored = sorted(
            (
                (
                    name,
                    wait + bundle.estimate_transfer_time(name, share),
                )
                for name, wait in bundle.rank_by_expected_wait(cores=None)
                if name not in excluded
            ),
            key=lambda pair: pair[1],
        )
        resources = tuple(name for name, _ in scored[:n_pilots])
        rationale = (
            "resources ranked by predicted wait + staging estimate for "
            f"{share / 1e6:.0f} MB each "
            f"({', '.join(f'{n}:{s:.0f}s' for n, s in scored[:n_pilots])})"
        )
    elif config.optimize == "ttc":
        ranked = [
            (name, wait)
            for name, wait in bundle.rank_by_expected_wait(cores=None)
            if name not in excluded
        ]
        resources = tuple(name for name, _ in ranked[:n_pilots])
        rationale = (
            "resources ranked by the bundle's predicted queue wait "
            f"({', '.join(f'{n}:{w:.0f}s' for n, w in ranked[:n_pilots])})"
        )
    else:
        raise PlanningError(
            f"unknown optimization metric {config.optimize!r}; "
            "use 'ttc' or 'data'"
        )
    for r in resources:
        if r not in bundle:
            raise PlanningError(f"resource {r!r} is not in bundle {bundle.name!r}")
    decisions.append(
        Decision("resources", resources, rationale, depends_on=("n_pilots",))
    )

    # -- decision 5: pilot size (depends on n_pilots) ------------------------------------
    if config.pilot_cores is not None:
        pilot_cores = config.pilot_cores
    else:
        # Table I: #tasks for the single early pilot; #tasks/#pilots late —
        # floored at the widest single task, which must fit in one pilot.
        pilot_cores = max(
            1,
            math.ceil(req.max_stage_width / n_pilots),
            req.max_task_cores,
        )
    for r in resources:
        cap = bundle.query(r).compute.total_cores
        if pilot_cores > cap:
            raise PlanningError(
                f"pilot of {pilot_cores} cores exceeds {r} capacity {cap}"
            )
    decisions.append(
        Decision(
            "pilot_cores", pilot_cores,
            "peak task concurrency divided over the pilots",
            depends_on=("n_pilots",),
        )
    )

    # -- decision 6: pilot walltime (depends on size and resources) ------------------------
    if config.pilot_walltime_min is not None:
        walltime_min = config.pilot_walltime_min
    else:
        tx = estimate_tx_s(req, pilot_cores * n_pilots)
        ts = estimate_ts_s(req, bundle, resources)
        trp = estimate_trp_s(req)
        base = (tx + ts + trp) * (n_pilots if binding is Binding.LATE else 1)
        walltime_min = math.ceil(base * WALLTIME_SAFETY / 60.0)
    decisions.append(
        Decision(
            "pilot_walltime_min", walltime_min,
            "Tx + Ts + Trp (times #pilots for late binding, Table I), "
            "plus a safety margin",
            depends_on=("pilot_cores", "resources"),
        )
    )

    return ExecutionStrategy(
        binding=binding,
        unit_scheduler=scheduler,
        n_pilots=n_pilots,
        pilot_cores=pilot_cores,
        pilot_walltime_min=walltime_min,
        resources=resources,
        decisions=decisions,
    )
