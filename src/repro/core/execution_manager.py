"""The Execution Manager: derives and enacts execution strategies.

The five steps of the paper (§III.D):

1. gather information about the application via the Skeleton API and
   about resources via the Bundle API;
2. determine application requirements and resource availability;
3. derive an execution strategy;
4. describe and instantiate pilots on the chosen resources;
5. execute the application on the instantiated pilots.

Tasks are restarted automatically on pilot failure, task outputs are
staged back to the origin, and all pilots are canceled when every task
has executed "so as not to waste resources". Every phase is timestamped
for the TTC decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..bundle import ResourceBundle
from ..des import Process, Simulation
from ..net import Network
from ..pilot import (
    ComputePilot,
    ComputePilotDescription,
    ComputeUnit,
    ComputeUnitDescription,
    PilotManager,
    UnitManager,
    UnitState,
)
from ..skeleton import SkeletonAPI
from .adaptive import AdaptationEvent, AdaptationPolicy, PilotReinforcer
from .instrumentation import TTCDecomposition, decompose
from .planner import PlannerConfig, derive_strategy
from .strategy import ExecutionStrategy


@dataclass
class ExecutionReport:
    """Everything measured about one application execution."""

    application: str
    n_tasks: int
    strategy: ExecutionStrategy
    decomposition: TTCDecomposition
    pilots: List[ComputePilot] = field(repr=False, default_factory=list)
    units: List[ComputeUnit] = field(repr=False, default_factory=list)
    adaptations: List[AdaptationEvent] = field(default_factory=list)

    @property
    def ttc(self) -> float:
        return self.decomposition.ttc

    @property
    def succeeded(self) -> bool:
        return self.decomposition.units_done == self.n_tasks

    def summary(self) -> str:
        d = self.decomposition
        return (
            f"{self.application}: {self.n_tasks} tasks, "
            f"{self.strategy.binding.value}/{self.strategy.unit_scheduler}/"
            f"{self.strategy.n_pilots}p -> TTC {d.ttc:.0f}s "
            f"(Tw {d.tw:.0f}s, Tx {d.tx:.0f}s, Ts {d.ts:.0f}s, "
            f"Trp {d.trp:.0f}s; done {d.units_done}/{self.n_tasks}, "
            f"restarts {d.restarts})"
        )


class ExecutionError(Exception):
    """Raised when an execution cannot be set up."""


class ExecutionManager:
    """Couples one or more applications to the resources of a bundle."""

    def __init__(
        self,
        sim: Simulation,
        network: Network,
        bundle: ResourceBundle,
        access_schemas: Optional[Dict[str, str]] = None,
        agent_bootstrap_s: float = 60.0,
    ) -> None:
        self.sim = sim
        self.network = network
        self.bundle = bundle
        self.access_schemas = access_schemas or {}
        clusters = {name: bundle.cluster(name) for name in bundle.resources()}
        self.pilot_manager = PilotManager(
            sim, clusters, bootstrap_s=agent_bootstrap_s
        )
        self.reports: List[ExecutionReport] = []

    # -- public API ------------------------------------------------------------------

    def run(
        self,
        skeleton: SkeletonAPI,
        config: Optional[PlannerConfig] = None,
        strategy: Optional[ExecutionStrategy] = None,
        adaptation: Optional[AdaptationPolicy] = None,
    ) -> Process:
        """Start an execution; returns a Process whose value is the report.

        Either pass a :class:`PlannerConfig` (the planner derives the
        strategy, the normal path) or a fully resolved strategy. With an
        :class:`AdaptationPolicy`, the strategy may be revised during
        execution (backup pilots on stalled starts).
        """
        return self.sim.process(
            self._run(skeleton, config, strategy, adaptation),
            name=f"execute/{skeleton.app.name}",
        )

    def execute(
        self,
        skeleton: SkeletonAPI,
        config: Optional[PlannerConfig] = None,
        strategy: Optional[ExecutionStrategy] = None,
        adaptation: Optional[AdaptationPolicy] = None,
        timeout_s: Optional[float] = None,
    ) -> ExecutionReport:
        """Blocking convenience: run the kernel until the execution ends."""
        proc = self.run(skeleton, config, strategy, adaptation)
        until = None if timeout_s is None else self.sim.now + timeout_s
        return self.sim.run_process(proc, until=until)

    # -- the enactment process ----------------------------------------------------------

    def _run(
        self,
        skeleton: SkeletonAPI,
        config: Optional[PlannerConfig],
        strategy: Optional[ExecutionStrategy],
        adaptation: Optional[AdaptationPolicy] = None,
    ):
        t_start = self.sim.now
        app_name = skeleton.app.name
        self.sim.trace.record(t_start, "execution", app_name, "START")

        # Steps 1-2: application and resource information.
        req = skeleton.requirements()

        # Step 3: strategy derivation.
        if strategy is None:
            strategy = derive_strategy(req, self.bundle, config)
        self.sim.trace.record(
            self.sim.now, "execution", app_name, "STRATEGY",
            binding=strategy.binding.value,
            scheduler=strategy.unit_scheduler,
            n_pilots=strategy.n_pilots,
            pilot_cores=strategy.pilot_cores,
            walltime_min=strategy.pilot_walltime_min,
            resources=strategy.resources,
        )

        # Preparation: input files appear at the origin.
        skeleton.prepare(self.network)

        # Step 4: describe and instantiate pilots.
        descriptions = [
            ComputePilotDescription(
                resource=r,
                cores=strategy.pilot_cores,
                runtime_min=strategy.pilot_walltime_min,
                access_schema=self.access_schemas.get(r, "slurm"),
            )
            for r in strategy.resources
        ]
        pilots = self.pilot_manager.submit_pilots(descriptions)

        # Step 5: execute the application on the pilots.
        unit_manager = UnitManager(
            self.sim, self.network, scheduler=strategy.unit_scheduler
        )
        unit_manager.add_pilots(pilots)
        concrete = skeleton.concrete
        unit_descs = [
            ComputeUnitDescription(
                name=t.uid,
                duration_s=t.duration,
                cores=t.cores,
                input_staging=tuple(f.name for f in t.inputs),
                output_staging=tuple((f.name, f.size_bytes) for f in t.outputs),
            )
            for t in concrete.all_tasks()
        ]
        depends = {t.uid: t.depends_on for t in concrete.all_tasks()}
        units = unit_manager.submit_units(unit_descs, depends_on=depends)

        # Guard: if every pilot dies with units still pending, cancel them so
        # the execution terminates with a faithful failure report.
        def on_pilot_final(pilot, state):
            if all(p.is_final for p in pilots):
                unit_manager.cancel_units(
                    [u for u in units if not u.is_final]
                )

        def attach_guard(pilot):
            pilot.add_callback(
                lambda p, state: (
                    on_pilot_final(p, state) if p.is_final else None
                )
            )

        for p in pilots:
            attach_guard(p)

        # Optional dynamic execution: revise the strategy while it runs.
        # Backup pilots join the `pilots` list and get the same guard.
        reinforcer = None
        if adaptation is not None:
            reinforcer = PilotReinforcer(
                self.sim, self.bundle, self.pilot_manager, unit_manager,
                strategy, pilots, adaptation, self.access_schemas,
                on_new_pilot=attach_guard,
            )

        yield unit_manager.wait_units(units)
        t_end = self.sim.now

        if reinforcer is not None:
            reinforcer.stop()
        # Cancel leftover pilots (do not waste allocation).
        self.pilot_manager.cancel_pilots(pilots)
        self.sim.trace.record(t_end, "execution", app_name, "END")

        report = ExecutionReport(
            application=app_name,
            n_tasks=req.n_tasks,
            strategy=strategy,
            decomposition=decompose(pilots, units, t_start, t_end),
            pilots=pilots,
            units=units,
            adaptations=list(reinforcer.events) if reinforcer else [],
        )
        self.reports.append(report)
        return report
