"""The Execution Manager: derives and enacts execution strategies.

The five steps of the paper (§III.D):

1. gather information about the application via the Skeleton API and
   about resources via the Bundle API;
2. determine application requirements and resource availability;
3. derive an execution strategy;
4. describe and instantiate pilots on the chosen resources;
5. execute the application on the instantiated pilots.

Tasks are restarted automatically on pilot failure, task outputs are
staged back to the origin, and all pilots are canceled when every task
has executed "so as not to waste resources". Every phase is timestamped
for the TTC decomposition.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..bundle import ResourceBundle
from ..des import Process, Simulation
from ..faults import FaultLog
from ..health import (
    DeadlineSupervisor,
    HealthEventLog,
    HealthRegistry,
    ReplanEvent,
    SupervisionPolicy,
    UnitWatchdog,
)
from ..net import Network
from ..pilot import (
    ComputePilot,
    ComputePilotDescription,
    ComputeUnit,
    ComputeUnitDescription,
    PilotManager,
    PilotState,
    UnitManager,
    UnitState,
)
from ..skeleton import SkeletonAPI
from ..telemetry import TelemetrySummary
from .adaptive import AdaptationEvent, AdaptationPolicy, PilotReinforcer
from .instrumentation import TTCDecomposition, decompose
from .planner import PlannerConfig, derive_strategy
from .strategy import ExecutionStrategy

log = logging.getLogger(__name__)


@dataclass(frozen=True)
class RecoveryPolicy:
    """How hard the Execution Manager fights back when pilots die.

    A failed pilot (resource error, walltime kill, injected fault) may be
    replaced by a fresh submission of the same description, up to
    ``max_resubmissions`` replacements per execution, each delayed by an
    exponentially growing backoff. Canceled and cleanly finished pilots
    are never replaced.
    """

    max_resubmissions: int = 2
    backoff_s: float = 60.0
    backoff_factor: float = 2.0
    #: desynchronize backoffs by up to +-this fraction. The draw comes
    #: from the kernel's seeded "recovery-jitter" stream — independent of
    #: the fault plan's streams — so FaultLog digests stay reproducible
    #: while concurrent recoveries stop retrying in lockstep.
    jitter_frac: float = 0.0

    def __post_init__(self) -> None:
        if self.max_resubmissions < 0:
            raise ValueError("max_resubmissions must be non-negative")
        if self.backoff_s < 0:
            raise ValueError("backoff_s must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter_frac < 1.0:
            raise ValueError("jitter_frac must be in [0, 1)")

    def delay(self, attempt: int, rng=None) -> float:
        """Backoff before the ``attempt``-th replacement (0-based).

        ``rng`` (a numpy Generator) is consulted only when
        ``jitter_frac`` is non-zero; with the default of 0 the delay is
        the exact exponential schedule the tests pin down.
        """
        base = self.backoff_s * (self.backoff_factor ** attempt)
        if self.jitter_frac and rng is not None:
            base *= 1.0 + self.jitter_frac * (2.0 * rng.random() - 1.0)
        return base


@dataclass(frozen=True)
class RecoveryEvent:
    """One pilot resubmission enacted by the recovery machinery."""

    time: float
    resource: str
    attempt: int        # 1-based replacement count within this execution
    backoff_s: float


@dataclass
class ExecutionReport:
    """Everything measured about one application execution."""

    application: str
    n_tasks: int
    strategy: ExecutionStrategy
    decomposition: TTCDecomposition
    pilots: List[ComputePilot] = field(repr=False, default_factory=list)
    units: List[ComputeUnit] = field(repr=False, default_factory=list)
    adaptations: List[AdaptationEvent] = field(default_factory=list)
    recoveries: List[RecoveryEvent] = field(default_factory=list)
    fault_log: Optional[FaultLog] = field(repr=False, default=None)
    #: health-event slice of this execution's window (supervised runs).
    health_log: Optional[HealthEventLog] = field(repr=False, default=None)
    #: mid-run strategy revisions enacted by the deadline supervisor.
    replans: List[ReplanEvent] = field(default_factory=list)
    #: True when the TTC budget expired and the run degraded to a
    #: partial result (see ``decomposition.units_done`` for what landed).
    deadline_expired: bool = False
    #: per-execution telemetry summary (None when the hub is disabled);
    #: carries the metrics snapshot, the hub digest, and the enactment
    #: steps' virtual-time intervals for the Gantt renderer.
    telemetry: Optional[TelemetrySummary] = field(repr=False, default=None)

    @property
    def ttc(self) -> float:
        return self.decomposition.ttc

    @property
    def succeeded(self) -> bool:
        return self.decomposition.units_done == self.n_tasks

    def summary(self) -> str:
        d = self.decomposition
        line = (
            f"{self.application}: {self.n_tasks} tasks, "
            f"{self.strategy.binding.value}/{self.strategy.unit_scheduler}/"
            f"{self.strategy.n_pilots}p -> TTC {d.ttc:.0f}s "
            f"(Tw {d.tw:.0f}s, Tx {d.tx:.0f}s, Ts {d.ts:.0f}s, "
            f"Trp {d.trp:.0f}s; done {d.units_done}/{self.n_tasks}, "
            f"restarts {d.restarts})"
        )
        if d.n_faults or self.recoveries:
            line += (
                f" [faults {d.n_faults}, lost {d.t_lost:.0f}s, "
                f"resubmissions {len(self.recoveries)}]"
            )
        if d.t_quarantined or d.units_rescheduled or self.replans:
            line += (
                f" [quarantined {d.t_quarantined:.0f}s, "
                f"watchdog reschedules {d.units_rescheduled}, "
                f"replans {len(self.replans)}]"
            )
        if self.deadline_expired:
            line += " [DEADLINE EXPIRED: partial result]"
        return line

    def attribution(self):
        """Causal TTC attribution + critical path for this execution.

        Returns a :class:`repro.telemetry.causality.TTCAttribution`:
        every virtual second of the run charged to exactly one component
        (the partition sums to TTC by construction), plus the backward-
        walked critical path. Derived from the entity state histories,
        so it works whether or not telemetry was enabled.
        """
        from ..telemetry.causality import attribute_report

        return attribute_report(self)


class ExecutionError(Exception):
    """Raised when an execution cannot be set up."""


class ExecutionManager:
    """Couples one or more applications to the resources of a bundle."""

    def __init__(
        self,
        sim: Simulation,
        network: Network,
        bundle: ResourceBundle,
        access_schemas: Optional[Dict[str, str]] = None,
        agent_bootstrap_s: float = 60.0,
        recovery: Optional[RecoveryPolicy] = None,
        submit_retries: int = 3,
        submit_backoff_s: float = 30.0,
        submit_jitter_frac: float = 0.0,
        supervision: Optional[SupervisionPolicy] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.bundle = bundle
        self.access_schemas = access_schemas or {}
        #: health supervision policy (None or all-disabled: legacy path).
        self.supervision = supervision
        self.health: Optional[HealthRegistry] = None
        if supervision is not None and supervision.enabled:
            self.health = HealthRegistry(sim, breaker=supervision.breaker)
            self.health.watch(bundle)
        clusters = {name: bundle.cluster(name) for name in bundle.resources()}
        self.pilot_manager = PilotManager(
            sim, clusters, bootstrap_s=agent_bootstrap_s,
            submit_retries=submit_retries, submit_backoff_s=submit_backoff_s,
            submit_jitter_frac=submit_jitter_frac, health=self.health,
        )
        #: default recovery policy for executions (None: no resubmission).
        self.recovery = recovery
        #: attached fault injector, if the run is under chaos (see
        #: :meth:`attach_faults`); its log is woven into every report.
        self.fault_injector = None
        self.reports: List[ExecutionReport] = []

    def attach_faults(self, injector, arm: bool = True):
        """Attach (and by default arm) a fault injector to this manager.

        Subsequent reports carry the injector's :class:`FaultLog` slice
        for their execution window, and the TTC decomposition counts the
        faults that landed inside the run.
        """
        self.fault_injector = injector
        if self.health is not None:
            # the registry sees every injected fault as it lands: observed
            # outages and link partitions trip breakers without waiting
            # for the failure threshold.
            injector.log.add_listener(self.health.on_fault_event)
        if arm:
            injector.arm()
        return injector

    # -- public API ------------------------------------------------------------------

    def run(
        self,
        skeleton: SkeletonAPI,
        config: Optional[PlannerConfig] = None,
        strategy: Optional[ExecutionStrategy] = None,
        adaptation: Optional[AdaptationPolicy] = None,
        recovery: Optional[RecoveryPolicy] = None,
    ) -> Process:
        """Start an execution; returns a Process whose value is the report.

        Either pass a :class:`PlannerConfig` (the planner derives the
        strategy, the normal path) or a fully resolved strategy. With an
        :class:`AdaptationPolicy`, the strategy may be revised during
        execution (backup pilots on stalled starts). With a
        :class:`RecoveryPolicy` (or one set on the manager), failed
        pilots are replaced up to the policy's resubmission budget.
        """
        return self.sim.process(
            self._run(skeleton, config, strategy, adaptation,
                      recovery or self.recovery),
            name=f"execute/{skeleton.app.name}",
        )

    def execute(
        self,
        skeleton: SkeletonAPI,
        config: Optional[PlannerConfig] = None,
        strategy: Optional[ExecutionStrategy] = None,
        adaptation: Optional[AdaptationPolicy] = None,
        timeout_s: Optional[float] = None,
        recovery: Optional[RecoveryPolicy] = None,
    ) -> ExecutionReport:
        """Blocking convenience: run the kernel until the execution ends."""
        proc = self.run(skeleton, config, strategy, adaptation, recovery)
        until = None if timeout_s is None else self.sim.now + timeout_s
        return self.sim.run_process(proc, until=until)

    # -- the enactment process ----------------------------------------------------------

    def _run(
        self,
        skeleton: SkeletonAPI,
        config: Optional[PlannerConfig],
        strategy: Optional[ExecutionStrategy],
        adaptation: Optional[AdaptationPolicy] = None,
        recovery: Optional[RecoveryPolicy] = None,
    ):
        t_start = self.sim.now
        app_name = skeleton.app.name
        log.debug("enactment of %s starts at t=%.0f", app_name, t_start)
        self.sim.trace.record(t_start, "execution", app_name, "START")
        tel = self.sim.telemetry
        em_track = f"em/{app_name}"
        #: the five enactment steps' spans (None entries while disabled).
        em_spans: List = []

        # Steps 1-2: application and resource information.
        with tel.span(
            "execution", "gather-information", track=em_track, app=app_name
        ) as sp:
            req = skeleton.requirements()
        em_spans.append(sp)

        # Step 3: strategy derivation. Under supervision, quarantined
        # resources are invisible to the planner; a pool with nothing
        # healthy left is a clear, immediate error — not a run that
        # deadlocks waiting on submissions the breakers will reject.
        with tel.span(
            "execution", "derive-strategy", track=em_track, app=app_name
        ) as sp:
            if self.health is not None:
                pool = self.bundle.resources()
                if not self.health.healthy(pool):
                    raise ExecutionError(
                        f"all {len(pool)} resources of bundle "
                        f"{self.bundle.name!r} are quarantined "
                        f"({', '.join(sorted(pool))}); wait for a breaker "
                        "cooldown or widen the bundle"
                    )
            if strategy is None:
                cfg = config
                if self.health is not None:
                    quarantined = self.health.quarantined(
                        self.bundle.resources()
                    )
                    if quarantined:
                        base = cfg or PlannerConfig()
                        cfg = replace(
                            base,
                            exclude=tuple(
                                sorted(set(base.exclude) | set(quarantined))
                            ),
                        )
                strategy = derive_strategy(req, self.bundle, cfg)
            elif self.health is not None and not self.health.healthy(
                strategy.resources
            ):
                raise ExecutionError(
                    "every resource of the given strategy is quarantined: "
                    f"{', '.join(sorted(strategy.resources))}"
                )
        em_spans.append(sp)
        self.sim.trace.record(
            self.sim.now, "execution", app_name, "STRATEGY",
            binding=strategy.binding.value,
            scheduler=strategy.unit_scheduler,
            n_pilots=strategy.n_pilots,
            pilot_cores=strategy.pilot_cores,
            walltime_min=strategy.pilot_walltime_min,
            resources=strategy.resources,
        )

        # Preparation: input files appear at the origin.
        with tel.span(
            "execution", "prepare-inputs", track=em_track, app=app_name
        ) as sp:
            skeleton.prepare(self.network)
        em_spans.append(sp)

        # Step 4: describe and instantiate pilots.
        with tel.span(
            "execution", "instantiate-pilots", track=em_track,
            app=app_name, n_pilots=strategy.n_pilots,
        ) as sp:
            descriptions = [
                ComputePilotDescription(
                    resource=r,
                    cores=strategy.pilot_cores,
                    runtime_min=strategy.pilot_walltime_min,
                    access_schema=self.access_schemas.get(r, "slurm"),
                )
                for r in strategy.resources
            ]
            pilots = self.pilot_manager.submit_pilots(descriptions)
        em_spans.append(sp)

        # Step 5: execute the application on the pilots. The span stays
        # open across the yield below: it covers submission through the
        # last unit turning final.
        step5 = tel.span(
            "execution", "execute-units", track=em_track,
            app=app_name, n_tasks=req.n_tasks,
        )
        em_spans.append(step5.__enter__())
        unit_manager = UnitManager(
            self.sim, self.network, scheduler=strategy.unit_scheduler,
            health=self.health,
        )
        unit_manager.add_pilots(pilots)
        concrete = skeleton.concrete
        unit_descs = [
            ComputeUnitDescription(
                name=t.uid,
                duration_s=t.duration,
                cores=t.cores,
                input_staging=tuple(f.name for f in t.inputs),
                output_staging=tuple((f.name, f.size_bytes) for f in t.outputs),
            )
            for t in concrete.all_tasks()
        ]
        depends = {t.uid: t.depends_on for t in concrete.all_tasks()}
        units = unit_manager.submit_units(unit_descs, depends_on=depends)

        # Recovery accounting and the all-pilots-dead guard. A FAILED
        # pilot may be replaced within the recovery budget; only when
        # every pilot is final *and* no replacement is pending are the
        # stranded units canceled, so the execution terminates with a
        # faithful failure report. Units already in STAGING_OUTPUT have
        # finished executing and complete without their pilot — they are
        # never canceled (they count as done, not as casualties).
        recoveries: List[RecoveryEvent] = []
        rec_state = {"used": 0, "pending": 0}

        def cancel_stranded_units():
            unit_manager.cancel_units([
                u for u in units
                if not u.is_final and u.state is not UnitState.STAGING_OUTPUT
            ])

        def resubmit(
            description: ComputePilotDescription, attempt: int, delay: float
        ) -> None:
            rec_state["pending"] -= 1
            if all(u.is_final for u in units):
                return  # nothing left to recover for
            if self.health is not None and self.health.is_quarantined(
                description.resource
            ):
                # The breaker isolated the original resource while the
                # backoff ran; reroute the replacement to the healthiest
                # alternative instead of burning the attempt on a
                # submission the pilot manager would fail fast.
                healthy = self.health.healthy(self.bundle.resources())
                if healthy:
                    ranked = [
                        name
                        for name, _ in self.bundle.rank_by_expected_wait(
                            cores=None
                        )
                        if name in healthy
                    ]
                    alt = ranked[0] if ranked else healthy[0]
                    self.sim.trace.record(
                        self.sim.now, "execution", app_name,
                        "RECOVERY-REROUTE",
                        quarantined=description.resource, resource=alt,
                    )
                    description = replace(description, resource=alt)
            replacement = self.pilot_manager.submit_pilots([description])[0]
            pilots.append(replacement)
            attach_guard(replacement)
            unit_manager.add_pilots(replacement)
            recoveries.append(RecoveryEvent(
                time=self.sim.now,
                resource=description.resource,
                attempt=attempt,
                backoff_s=delay,
            ))
            self.sim.trace.record(
                self.sim.now, "execution", app_name, "PILOT-RESUBMIT",
                resource=description.resource, attempt=attempt,
            )

        def on_pilot_final(pilot, state):
            if (
                state is PilotState.FAILED
                and recovery is not None
                and rec_state["used"] < recovery.max_resubmissions
                and not all(u.is_final for u in units)
            ):
                delay = recovery.delay(
                    rec_state["used"],
                    rng=self.sim.rng.get("recovery-jitter"),
                )
                rec_state["used"] += 1
                rec_state["pending"] += 1
                self.sim.trace.record(
                    self.sim.now, "execution", app_name, "RECOVERY-BACKOFF",
                    resource=pilot.resource, backoff_s=delay,
                )
                self.sim.call_in(
                    delay, resubmit, pilot.description, rec_state["used"], delay
                )
                return
            if all(p.is_final for p in pilots) and rec_state["pending"] == 0:
                cancel_stranded_units()

        def attach_guard(pilot):
            if self.health is not None:
                self.health.observe_pilot(pilot)
            pilot.add_callback(
                lambda p, state: (
                    on_pilot_final(p, state) if p.is_final else None
                )
            )

        for p in pilots:
            attach_guard(p)

        # Optional dynamic execution: revise the strategy while it runs.
        # Backup pilots join the `pilots` list and get the same guard.
        reinforcer = None
        if adaptation is not None:
            reinforcer = PilotReinforcer(
                self.sim, self.bundle, self.pilot_manager, unit_manager,
                strategy, pilots, adaptation, self.access_schemas,
                on_new_pilot=attach_guard, health=self.health,
            )

        # Health supervision: the watchdog frees units hung on a wedged
        # resource; the deadline supervisor enforces the TTC budget and
        # re-plans around quarantined resources; breaker re-closures poke
        # the unit scheduler so freed work flows again immediately.
        watchdog = None
        supervisor = None
        on_health_event = None
        sup = self.supervision
        if sup is not None and sup.watchdog_timeout_s is not None:
            watchdog = UnitWatchdog(
                self.sim, unit_manager, units, sup.watchdog_timeout_s,
                registry=self.health,
            )
        if sup is not None and sup.deadline_s is not None:

            def replan_fn(exclude):
                base = config or PlannerConfig()
                # clear the pins: a re-plan must be free to choose fewer
                # pilots on different resources than the original run
                cfg = replace(
                    base, resources=None, n_pilots=None,
                    exclude=tuple(sorted(set(base.exclude) | set(exclude))),
                )
                return derive_strategy(req, self.bundle, cfg)

            def submit_fn(resource, strat):
                desc = ComputePilotDescription(
                    resource=resource,
                    cores=strat.pilot_cores,
                    runtime_min=strat.pilot_walltime_min,
                    access_schema=self.access_schemas.get(resource, "slurm"),
                )
                pilot = self.pilot_manager.submit_pilots([desc])[0]
                pilots.append(pilot)
                attach_guard(pilot)
                unit_manager.add_pilots(pilot)
                return pilot

            supervisor = DeadlineSupervisor(
                self.sim, self.health, unit_manager, self.pilot_manager,
                self.bundle, units, pilots, sup.deadline_s,
                replan_fn, submit_fn,
                check_interval_s=sup.check_interval_s,
                max_replans=sup.max_replans,
            )
        if self.health is not None:

            def on_health_event(ev):
                if ev.kind in ("breaker-close", "breaker-half-open"):
                    unit_manager.poke()

            self.health.add_listener(on_health_event)

        yield unit_manager.wait_units(units)
        step5.__exit__(None, None, None)
        t_end = self.sim.now

        if reinforcer is not None:
            reinforcer.stop()
        if watchdog is not None:
            watchdog.stop()
        if supervisor is not None:
            supervisor.stop()
        if on_health_event is not None:
            self.health.remove_listener(on_health_event)
        # Cancel leftover pilots (do not waste allocation).
        self.pilot_manager.cancel_pilots(pilots)
        self.sim.trace.record(t_end, "execution", app_name, "END")

        fault_log = (
            self.fault_injector.log.between(t_start, t_end)
            if self.fault_injector is not None else None
        )
        health_log = (
            self.health.log.between(t_start, t_end)
            if self.health is not None else None
        )
        report = ExecutionReport(
            application=app_name,
            n_tasks=req.n_tasks,
            strategy=strategy,
            decomposition=decompose(
                pilots, units, t_start, t_end, fault_log=fault_log,
                health_log=health_log,
            ),
            pilots=pilots,
            units=units,
            adaptations=list(reinforcer.events) if reinforcer else [],
            recoveries=recoveries,
            fault_log=fault_log,
            health_log=health_log,
            replans=list(supervisor.replans) if supervisor else [],
            deadline_expired=supervisor.expired if supervisor else False,
            telemetry=(
                tel.execution_summary([s for s in em_spans if s is not None])
                if tel.enabled else None
            ),
        )
        self.reports.append(report)
        log.info("%s", report.summary())
        return report
