"""TTC decomposition from middleware traces (self-introspection).

The AIMES middleware records every state transition with a timestamp;
analysis then *derives* the time components of TTC from those records —
never from ad-hoc counters. The components, following the paper's
Figure 3:

* **Tw** — setup time: from the first pilot submission until the first
  pilot becomes active (the execution can start draining tasks then).
  ``tw_last`` (until the last activation) is also reported, since early
  binding's makespan is governed by it.
* **Tx** — execution span: from the first unit entering EXECUTING to the
  last unit leaving it.
* **Ts** — staging time: the union of all intervals during which at
  least one data transfer of this run was in flight (input or output).
* **Trp** — middleware overhead: the portion of TTC not covered by the
  union of Tw, Tx and Ts (scheduling passes, binding, bookkeeping).

The components overlap by design, so ``TTC <= Tw + Tx + Ts + Trp`` need
not hold; instead ``TTC = union(...) + Trp`` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..pilot import ComputePilot, ComputeUnit, PilotState, UnitState
from .metrics import Interval, merge_intervals, span, union_duration


@dataclass(frozen=True)
class TTCDecomposition:
    """The measured time components of one application execution."""

    t_start: float
    t_end: float
    tw: float                 # first-pilot setup time
    tw_last: float            # last-pilot setup time
    tx: float                 # execution span
    ts: float                 # staging (union of transfer intervals)
    trp: float                # middleware overhead (uncovered TTC)
    pilot_waits: Tuple[float, ...]    # per-pilot queue waits (NaN if never active)
    units_done: int
    units_failed: int
    restarts: int
    units_canceled: int = 0
    #: executing seconds thrown away because the attempt's pilot died
    #: before the unit could stage out (re-run work, the recovery cost).
    t_lost: float = 0.0
    #: injected faults that fell inside this execution's window.
    n_faults: int = 0
    #: summed per-resource quarantine seconds (breaker-open windows)
    #: overlapping this execution — time capacity was deliberately
    #: withheld by the health layer, the supervision analogue of t_lost.
    t_quarantined: float = 0.0
    #: units the watchdog canceled and requeued for lack of progress.
    units_rescheduled: int = 0

    @property
    def ttc(self) -> float:
        return self.t_end - self.t_start


class IntrospectionError(Exception):
    """Raised when traces are insufficient to decompose the execution."""


def unit_intervals(
    units: Sequence[ComputeUnit], start_state: str, end_states: Sequence[str]
) -> List[Interval]:
    """Per-attempt intervals from ``start_state`` to the next of ``end_states``.

    Restarted units contribute one interval per attempt: each entry into
    ``start_state`` is paired with the next entry into one of the end
    states *before* the state recurs. An attempt cut short by failure
    (the pilot died under the unit) contributes no interval here — the
    lost time is accounted separately by :func:`lost_intervals` — so Tx
    and Ts never silently absorb requeue gaps between attempts.
    """
    ends = set(end_states)
    out: List[Interval] = []
    for unit in units:
        entries = unit.history.as_list()
        for i, (state, t0) in enumerate(entries):
            if state != start_state:
                continue
            for later_state, t1 in entries[i + 1:]:
                if later_state == start_state:
                    break  # a new attempt began without closing this one
                if later_state in ends:
                    out.append((t0, t1))
                    break
    return out


def lost_intervals(units: Sequence[ComputeUnit]) -> List[Interval]:
    """EXECUTING intervals that ended in failure or cancellation.

    This is the re-run work a fault costs: compute that was burned on a
    pilot that died (or a unit that was canceled) before staging out.
    """
    terminal = {UnitState.FAILED.value, UnitState.CANCELED.value}
    out: List[Interval] = []
    for unit in units:
        entries = unit.history.as_list()
        for i, (state, t0) in enumerate(entries):
            if state != UnitState.EXECUTING.value:
                continue
            if i + 1 < len(entries):
                next_state, t1 = entries[i + 1]
                if next_state in terminal:
                    out.append((t0, t1))
    return out


def staging_intervals(units: Sequence[ComputeUnit]) -> List[Interval]:
    """Intervals each unit spent staging data (input and output)."""
    ins = unit_intervals(
        units, UnitState.STAGING_INPUT.value, (UnitState.PENDING_EXECUTION.value,)
    )
    outs = unit_intervals(
        units, UnitState.STAGING_OUTPUT.value, (UnitState.DONE.value,)
    )
    return ins + outs


def execution_intervals(units: Sequence[ComputeUnit]) -> List[Interval]:
    """Intervals each unit spent on pilot cores."""
    return unit_intervals(
        units, UnitState.EXECUTING.value, (UnitState.STAGING_OUTPUT.value,)
    )


def quarantine_seconds(health_log, t_start: float, t_end: float) -> float:
    """Summed per-resource breaker-open time overlapping [t_start, t_end].

    Windows are reconstructed from the health-event trace: a window
    opens at ``breaker-open`` and ends at the matching
    ``breaker-half-open`` (the only transition out of OPEN). A half-open
    with no preceding open in the slice belongs to a window that opened
    before the execution started; a window still open at the end of the
    slice is clipped at ``t_end``.
    """
    opens: dict = {}
    total = 0.0
    for ev in health_log:
        if ev.kind == "breaker-open":
            opens.setdefault(ev.target, ev.time)
        elif ev.kind == "breaker-half-open":
            t0 = opens.pop(ev.target, t_start)
            lo, hi = max(t0, t_start), min(ev.time, t_end)
            if hi > lo:
                total += hi - lo
    for t0 in opens.values():
        lo = max(t0, t_start)
        if t_end > lo:
            total += t_end - lo
    return total


def decompose(
    pilots: Sequence[ComputePilot],
    units: Sequence[ComputeUnit],
    t_start: float,
    t_end: float,
    fault_log=None,
    health_log=None,
) -> TTCDecomposition:
    """Derive the TTC decomposition for one application execution.

    ``fault_log`` (a :class:`~repro.faults.FaultLog`, when the run was
    executed under fault injection) contributes the count of injected
    faults inside the execution window, so reports carry the chaos
    context alongside the time components. ``health_log`` (a
    :class:`~repro.health.HealthEventLog`, when the run was supervised)
    contributes the quarantine time and watchdog reschedule count.
    """
    if t_end < t_start:
        raise IntrospectionError("t_end precedes t_start")
    if not pilots:
        raise IntrospectionError("no pilots to decompose")

    submits = [
        p.history.timestamp(PilotState.LAUNCHING.value) for p in pilots
    ]
    actives = [p.activated_at for p in pilots]
    valid_actives = [a for a in actives if a is not None]
    first_submit = min(s for s in submits if s is not None)
    if valid_actives:
        tw = min(valid_actives) - first_submit
        tw_last = max(valid_actives) - first_submit
    else:
        tw = tw_last = t_end - first_submit  # no pilot ever activated

    exec_ivals = execution_intervals(units)
    stage_ivals = staging_intervals(units)
    tx = span(exec_ivals)
    ts = union_duration(stage_ivals)

    # Trp: TTC time not covered by waiting, executing, or staging.
    covered = merge_intervals(
        [(first_submit, first_submit + tw)] + exec_ivals + stage_ivals
    )
    clipped = [
        (max(lo, t_start), min(hi, t_end))
        for lo, hi in covered
        if hi > t_start and lo < t_end
    ]
    trp = (t_end - t_start) - union_duration(clipped)

    pilot_waits = tuple(
        (a - s) if (a is not None and s is not None) else float("nan")
        for s, a in zip(submits, actives)
    )
    return TTCDecomposition(
        t_start=t_start,
        t_end=t_end,
        tw=tw,
        tw_last=tw_last,
        tx=tx,
        ts=ts,
        trp=max(0.0, trp),
        pilot_waits=pilot_waits,
        units_done=sum(1 for u in units if u.state is UnitState.DONE),
        units_failed=sum(1 for u in units if u.state is UnitState.FAILED),
        restarts=sum(u.restarts for u in units),
        units_canceled=sum(
            1 for u in units if u.state is UnitState.CANCELED
        ),
        # summed, not unioned: two units losing work concurrently both
        # have to re-run, so the recovery cost is additive.
        t_lost=sum(t1 - t0 for t0, t1 in lost_intervals(units)),
        n_faults=(
            len(fault_log.between(t_start, t_end)) if fault_log is not None else 0
        ),
        t_quarantined=(
            quarantine_seconds(
                health_log.between(t_start, t_end), t_start, t_end
            )
            if health_log is not None else 0.0
        ),
        units_rescheduled=(
            len(health_log.between(t_start, t_end).of_kind("watchdog-reschedule"))
            if health_log is not None else 0
        ),
    )
