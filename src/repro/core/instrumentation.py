"""TTC decomposition from middleware traces (self-introspection).

The AIMES middleware records every state transition with a timestamp;
analysis then *derives* the time components of TTC from those records —
never from ad-hoc counters. The components, following the paper's
Figure 3:

* **Tw** — setup time: from the first pilot submission until the first
  pilot becomes active (the execution can start draining tasks then).
  ``tw_last`` (until the last activation) is also reported, since early
  binding's makespan is governed by it.
* **Tx** — execution span: from the first unit entering EXECUTING to the
  last unit leaving it.
* **Ts** — staging time: the union of all intervals during which at
  least one data transfer of this run was in flight (input or output).
* **Trp** — middleware overhead: the portion of TTC not covered by the
  union of Tw, Tx and Ts (scheduling passes, binding, bookkeeping).

The components overlap by design, so ``TTC <= Tw + Tx + Ts + Trp`` need
not hold; instead ``TTC = union(...) + Trp`` exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..pilot import ComputePilot, ComputeUnit, PilotState, UnitState
from .metrics import Interval, merge_intervals, span, union_duration


@dataclass(frozen=True)
class TTCDecomposition:
    """The measured time components of one application execution."""

    t_start: float
    t_end: float
    tw: float                 # first-pilot setup time
    tw_last: float            # last-pilot setup time
    tx: float                 # execution span
    ts: float                 # staging (union of transfer intervals)
    trp: float                # middleware overhead (uncovered TTC)
    pilot_waits: Tuple[float, ...]    # per-pilot queue waits (NaN if never active)
    units_done: int
    units_failed: int
    restarts: int

    @property
    def ttc(self) -> float:
        return self.t_end - self.t_start


class IntrospectionError(Exception):
    """Raised when traces are insufficient to decompose the execution."""


def unit_intervals(
    units: Sequence[ComputeUnit], start_state: str, end_states: Sequence[str]
) -> List[Interval]:
    """Per-unit intervals from first ``start_state`` to first of ``end_states``."""
    out: List[Interval] = []
    for unit in units:
        t0 = unit.history.timestamp(start_state)
        if t0 is None:
            continue
        t1 = None
        for s in end_states:
            cand = unit.history.timestamp(s)
            if cand is not None and cand >= t0:
                t1 = cand if t1 is None else min(t1, cand)
        if t1 is not None:
            out.append((t0, t1))
    return out


def staging_intervals(units: Sequence[ComputeUnit]) -> List[Interval]:
    """Intervals each unit spent staging data (input and output)."""
    ins = unit_intervals(
        units, UnitState.STAGING_INPUT.value, (UnitState.PENDING_EXECUTION.value,)
    )
    outs = unit_intervals(
        units, UnitState.STAGING_OUTPUT.value, (UnitState.DONE.value,)
    )
    return ins + outs


def execution_intervals(units: Sequence[ComputeUnit]) -> List[Interval]:
    """Intervals each unit spent on pilot cores."""
    return unit_intervals(
        units, UnitState.EXECUTING.value, (UnitState.STAGING_OUTPUT.value,)
    )


def decompose(
    pilots: Sequence[ComputePilot],
    units: Sequence[ComputeUnit],
    t_start: float,
    t_end: float,
) -> TTCDecomposition:
    """Derive the TTC decomposition for one application execution."""
    if t_end < t_start:
        raise IntrospectionError("t_end precedes t_start")
    if not pilots:
        raise IntrospectionError("no pilots to decompose")

    submits = [
        p.history.timestamp(PilotState.LAUNCHING.value) for p in pilots
    ]
    actives = [p.activated_at for p in pilots]
    valid_actives = [a for a in actives if a is not None]
    first_submit = min(s for s in submits if s is not None)
    if valid_actives:
        tw = min(valid_actives) - first_submit
        tw_last = max(valid_actives) - first_submit
    else:
        tw = tw_last = t_end - first_submit  # no pilot ever activated

    exec_ivals = execution_intervals(units)
    stage_ivals = staging_intervals(units)
    tx = span(exec_ivals)
    ts = union_duration(stage_ivals)

    # Trp: TTC time not covered by waiting, executing, or staging.
    covered = merge_intervals(
        [(first_submit, first_submit + tw)] + exec_ivals + stage_ivals
    )
    clipped = [
        (max(lo, t_start), min(hi, t_end))
        for lo, hi in covered
        if hi > t_start and lo < t_end
    ]
    trp = (t_end - t_start) - union_duration(clipped)

    pilot_waits = tuple(
        (a - s) if (a is not None and s is not None) else float("nan")
        for s, a in zip(submits, actives)
    )
    return TTCDecomposition(
        t_start=t_start,
        t_end=t_end,
        tw=tw,
        tw_last=tw_last,
        tx=tx,
        ts=ts,
        trp=max(0.0, trp),
        pilot_waits=pilot_waits,
        units_done=sum(1 for u in units if u.state is UnitState.DONE),
        units_failed=sum(1 for u in units if u.state is UnitState.FAILED),
        restarts=sum(u.restarts for u in units),
    )
