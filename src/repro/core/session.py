"""Session persistence: store executions for offline analysis.

The AIMES middleware's value as a virtual laboratory comes from keeping
complete, analyzable records of every execution (the workflow RADICAL-
Analytics serves for RADICAL-Pilot). A :class:`Session` serializes an
:class:`~repro.core.execution_manager.ExecutionReport` — strategy,
decomposition, full pilot/unit state histories — to JSON, and reloads it
into lightweight record objects that the analytics functions accept
(they only need ``history``, ``cores``, and a few attributes).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..pilot.states import StateHistory

FORMAT_VERSION = 1


@dataclass
class EntityRecord:
    """A reloaded pilot or unit: history plus the analyzed attributes."""

    uid: str
    kind: str                     # "pilot" | "unit"
    cores: int
    attributes: Dict[str, Any]
    history: StateHistory

    # pilot-flavoured accessors (used by analytics/allocation_metrics)
    @property
    def activated_at(self) -> Optional[float]:
        return self.history.timestamp("ACTIVE")

    @property
    def resource(self) -> Optional[str]:
        return self.attributes.get("resource")

    @property
    def name(self) -> Optional[str]:
        return self.attributes.get("name")


def _entity_to_dict(uid, kind, cores, attributes, history) -> Dict[str, Any]:
    return {
        "uid": uid,
        "kind": kind,
        "cores": cores,
        "attributes": attributes,
        "history": history.as_list(),
    }


def report_to_session(report) -> Dict[str, Any]:
    """Serialize an ExecutionReport to a JSON-compatible session dict."""
    d = report.decomposition
    return {
        "format": FORMAT_VERSION,
        "application": report.application,
        "n_tasks": report.n_tasks,
        "strategy": {
            "binding": report.strategy.binding.value,
            "unit_scheduler": report.strategy.unit_scheduler,
            "n_pilots": report.strategy.n_pilots,
            "pilot_cores": report.strategy.pilot_cores,
            "pilot_walltime_min": report.strategy.pilot_walltime_min,
            "resources": list(report.strategy.resources),
            "decisions": [
                {
                    "name": dec.name,
                    "value": repr(dec.value),
                    "rationale": dec.rationale,
                }
                for dec in report.strategy.decisions
            ],
        },
        "decomposition": {
            "t_start": d.t_start, "t_end": d.t_end,
            "tw": d.tw, "tw_last": d.tw_last,
            "tx": d.tx, "ts": d.ts, "trp": d.trp,
            "units_done": d.units_done, "units_failed": d.units_failed,
            "restarts": d.restarts,
            "units_canceled": d.units_canceled,
            "t_lost": d.t_lost, "n_faults": d.n_faults,
            "t_quarantined": d.t_quarantined,
            "units_rescheduled": d.units_rescheduled,
        },
        "faults": (
            report.fault_log.to_list()
            if getattr(report, "fault_log", None) is not None else []
        ),
        "health": (
            report.health_log.to_list()
            if getattr(report, "health_log", None) is not None else []
        ),
        "deadline_expired": bool(getattr(report, "deadline_expired", False)),
        "telemetry": (
            report.telemetry.as_dict()
            if getattr(report, "telemetry", None) is not None else None
        ),
        "replans": [
            {
                "time": r.time,
                "quarantined": list(r.quarantined),
                "resources": list(r.resources),
                "submitted": list(r.submitted),
            }
            for r in getattr(report, "replans", [])
        ],
        "recoveries": [
            {
                "time": r.time, "resource": r.resource,
                "attempt": r.attempt, "backoff_s": r.backoff_s,
            }
            for r in getattr(report, "recoveries", [])
        ],
        "pilots": [
            _entity_to_dict(
                p.uid, "pilot", p.cores,
                {"resource": p.resource}, p.history,
            )
            for p in report.pilots
        ],
        "units": [
            _entity_to_dict(
                u.uid, "unit", u.cores,
                {"name": u.description.name, "restarts": u.restarts},
                u.history,
            )
            for u in report.units
        ],
    }


@dataclass
class Session:
    """A reloaded execution session."""

    application: str
    n_tasks: int
    strategy: Dict[str, Any]
    decomposition: Dict[str, float]
    pilots: List[EntityRecord] = field(default_factory=list)
    units: List[EntityRecord] = field(default_factory=list)
    faults: List[Dict[str, Any]] = field(default_factory=list)
    recoveries: List[Dict[str, Any]] = field(default_factory=list)
    health: List[Dict[str, Any]] = field(default_factory=list)
    replans: List[Dict[str, Any]] = field(default_factory=list)
    deadline_expired: bool = False
    #: telemetry summary dict (n_spans/metrics/digest/em_steps), or None
    #: for sessions recorded with the hub disabled / by older versions.
    telemetry: Optional[Dict[str, Any]] = None

    @property
    def ttc(self) -> float:
        return self.decomposition["t_end"] - self.decomposition["t_start"]


def session_from_dict(data: Dict[str, Any]) -> Session:
    """Rebuild a Session from :func:`report_to_session` output."""
    if data.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported session format {data.get('format')!r}"
        )

    def rebuild(raw) -> EntityRecord:
        history = StateHistory()
        for state, t in raw["history"]:
            history.append(state, t)
        return EntityRecord(
            uid=raw["uid"],
            kind=raw["kind"],
            cores=raw["cores"],
            attributes=raw["attributes"],
            history=history,
        )

    return Session(
        application=data["application"],
        n_tasks=data["n_tasks"],
        strategy=data["strategy"],
        decomposition=data["decomposition"],
        pilots=[rebuild(r) for r in data["pilots"]],
        units=[rebuild(r) for r in data["units"]],
        faults=list(data.get("faults", [])),
        recoveries=list(data.get("recoveries", [])),
        health=list(data.get("health", [])),
        replans=list(data.get("replans", [])),
        deadline_expired=bool(data.get("deadline_expired", False)),
        telemetry=data.get("telemetry"),
    )


def save_session(report, path: str) -> None:
    """Write an execution session to a JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report_to_session(report), fh, indent=1)


def load_session(path: str) -> Session:
    """Read an execution session from a JSON file."""
    with open(path, "r", encoding="utf-8") as fh:
        return session_from_dict(json.load(fh))
