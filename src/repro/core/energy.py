"""Energy accounting for execution strategies (paper §V).

The paper lists energy efficiency among the metrics future execution
strategies must weigh. We implement the standard node-power model used
in scheduling studies: an allocated core draws ``active_watts`` while a
unit executes on it and ``idle_watts`` while it sits allocated-but-idle
inside a pilot (the pilot holds the cores either way — that is the cost
of the placeholder pattern). Energy is attributed per pilot from the
instrumented histories, so strategies can be compared on joules as
directly as on TTC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..pilot import ComputePilot, ComputeUnit, PilotState, UnitState
from .metrics import Interval

#: defaults representative of 2015-era HPC nodes (per core).
DEFAULT_ACTIVE_WATTS = 12.0
DEFAULT_IDLE_WATTS = 6.0


@dataclass(frozen=True)
class EnergyEstimate:
    """Joules consumed by one execution's pilots."""

    active_core_s: float      # core-seconds executing units
    idle_core_s: float        # core-seconds allocated but idle
    active_joules: float
    idle_joules: float

    @property
    def total_joules(self) -> float:
        return self.active_joules + self.idle_joules

    @property
    def total_kwh(self) -> float:
        return self.total_joules / 3.6e6

    @property
    def idle_fraction(self) -> float:
        total = self.active_core_s + self.idle_core_s
        return self.idle_core_s / total if total else 0.0


def _pilot_active_window(
    pilot: ComputePilot, final_time: Optional[float]
) -> Optional[Interval]:
    t0 = pilot.activated_at
    if t0 is None:
        return None
    t1 = None
    for state in (PilotState.DONE, PilotState.CANCELED, PilotState.FAILED):
        cand = pilot.history.timestamp(state.value)
        if cand is not None:
            t1 = cand if t1 is None else min(t1, cand)
    if t1 is None:
        t1 = final_time if final_time is not None else t0
    return (t0, max(t0, t1))


def estimate_energy(
    pilots: Sequence[ComputePilot],
    units: Sequence[ComputeUnit],
    final_time: Optional[float] = None,
    active_watts: float = DEFAULT_ACTIVE_WATTS,
    idle_watts: float = DEFAULT_IDLE_WATTS,
) -> EnergyEstimate:
    """Attribute core-seconds and joules to the execution's pilots."""
    if active_watts < 0 or idle_watts < 0:
        raise ValueError("power draws must be non-negative")

    # Per-pilot busy core-seconds from the units that ran on it.
    busy_core_s: Dict[str, float] = {}
    for unit in units:
        if unit.pilot is None:
            continue
        t0 = unit.history.timestamp(UnitState.EXECUTING.value)
        t1 = unit.history.timestamp(UnitState.STAGING_OUTPUT.value)
        if t0 is None or t1 is None or t1 < t0:
            continue
        busy_core_s[unit.pilot.uid] = (
            busy_core_s.get(unit.pilot.uid, 0.0) + unit.cores * (t1 - t0)
        )

    active_core_s = 0.0
    idle_core_s = 0.0
    for pilot in pilots:
        window = _pilot_active_window(pilot, final_time)
        if window is None:
            continue
        allocated = pilot.cores * (window[1] - window[0])
        busy = min(busy_core_s.get(pilot.uid, 0.0), allocated)
        active_core_s += busy
        idle_core_s += allocated - busy

    return EnergyEstimate(
        active_core_s=active_core_s,
        idle_core_s=idle_core_s,
        active_joules=active_core_s * active_watts,
        idle_joules=idle_core_s * idle_watts,
    )


def report_energy(report, **kwargs) -> EnergyEstimate:
    """Convenience: energy straight from an ExecutionReport."""
    return estimate_energy(
        report.pilots, report.units,
        final_time=report.decomposition.t_end, **kwargs,
    )
