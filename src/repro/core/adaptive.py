"""Dynamic execution: strategies that change during execution.

The paper's future-work section plans to "study dynamic execution where
application strategies change during execution to maintain the coupling
between dynamic workloads and dynamic resources". This module implements
the first and most valuable such adaptation: **pilot reinforcement**.

If no pilot has become active within a deadline (all chosen queues turned
out to be slow — exactly the early-binding failure mode the paper
measures), the adaptive policy revises the strategy mid-flight: it
submits a *backup pilot* on the best-ranked resource not already used,
consulting the bundle's predictive interface at revision time, when the
queue-state information is fresher than it was at planning time. Each
revision is recorded as an explicit decision, keeping the Execution
Strategy abstraction's "decisions are explicit" property.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..bundle import ResourceBundle
from ..des import Simulation
from ..pilot import (
    ComputePilot,
    ComputePilotDescription,
    PilotManager,
    UnitManager,
)
from .strategy import Decision, ExecutionStrategy


@dataclass(frozen=True)
class AdaptationPolicy:
    """When and how to reinforce a struggling execution."""

    #: submit a backup pilot if no pilot is active after this long.
    activation_deadline_s: float = 1800.0
    #: at most this many backup pilots per execution.
    max_backup_pilots: int = 2
    #: re-arm the deadline after each backup submission.
    redeadline_s: float = 1800.0
    #: pilot succession: when an active pilot is within this many seconds
    #: of its walltime limit and work remains, submit a successor pilot on
    #: the same resource so tasks hop over instead of being stranded.
    #: None disables renewal.
    renew_before_s: Optional[float] = None
    #: at most this many successor pilots per execution.
    max_renewals: int = 2


@dataclass
class AdaptationEvent:
    """One mid-flight strategy revision."""

    time: float
    reason: str
    resource: str
    pilot_uid: str


class PilotReinforcer:
    """Watches an execution and submits backup pilots on stalled starts."""

    def __init__(
        self,
        sim: Simulation,
        bundle: ResourceBundle,
        pilot_manager: PilotManager,
        unit_manager: UnitManager,
        strategy: ExecutionStrategy,
        pilots: List[ComputePilot],
        policy: AdaptationPolicy,
        access_schemas: Optional[dict] = None,
        on_new_pilot=None,
        health=None,
    ) -> None:
        self.sim = sim
        self.bundle = bundle
        self.pilot_manager = pilot_manager
        self.unit_manager = unit_manager
        self.strategy = strategy
        self.pilots = pilots
        self.policy = policy
        self.access_schemas = access_schemas or {}
        #: a :class:`~repro.health.HealthRegistry`; when set, backup and
        #: successor pilots avoid quarantined resources.
        self.health = health
        #: called with each backup pilot (e.g. to attach failure guards).
        self.on_new_pilot = on_new_pilot
        self.events: List[AdaptationEvent] = []
        self._stopped = False
        self._renewed: set = set()
        self._renewals = 0
        sim.process(self._watch(), name="pilot-reinforcer")
        if policy.renew_before_s is not None:
            sim.process(self._renewal_watch(), name="pilot-renewer")

    def stop(self) -> None:
        self._stopped = True

    # -- internals ---------------------------------------------------------------

    def _any_active(self) -> bool:
        return any(p.is_active for p in self.pilots)

    def _used_resources(self) -> set:
        return {p.resource for p in self.pilots if not p.is_final}

    def _pick_backup_resource(self) -> Optional[str]:
        used = self._used_resources()
        for name, _wait in self.bundle.rank_by_expected_wait(
            cores=self.strategy.pilot_cores
        ):
            if name in used:
                continue
            if self.health is not None and self.health.is_quarantined(name):
                continue  # reinforcing with a sick resource helps nobody
            cap = self.bundle.query(name).compute.total_cores
            if self.strategy.pilot_cores <= cap:
                return name
        return None

    def _watch(self):
        deadline = self.policy.activation_deadline_s
        backups = 0
        while not self._stopped and backups < self.policy.max_backup_pilots:
            yield self.sim.timeout(deadline)
            if self._stopped or self._any_active():
                return
            resource = self._pick_backup_resource()
            if resource is None:
                return  # nowhere left to reinforce
            desc = ComputePilotDescription(
                resource=resource,
                cores=self.strategy.pilot_cores,
                runtime_min=self.strategy.pilot_walltime_min,
                access_schema=self.access_schemas.get(resource, "slurm"),
            )
            (pilot,) = self.pilot_manager.submit_pilots(desc)
            self.pilots.append(pilot)
            self.unit_manager.add_pilots(pilot)
            if self.on_new_pilot is not None:
                self.on_new_pilot(pilot)
            event = AdaptationEvent(
                time=self.sim.now,
                reason=(
                    f"no pilot active after {deadline:.0f}s; predicted "
                    f"best remaining queue is {resource}"
                ),
                resource=resource,
                pilot_uid=pilot.uid,
            )
            self.events.append(event)
            self.strategy.decisions.append(
                Decision(
                    name=f"backup_pilot_{backups + 1}",
                    value=resource,
                    rationale=event.reason,
                    depends_on=("resources",),
                )
            )
            self.sim.trace.record(
                self.sim.now, "execution", "adaptation", "BACKUP_PILOT",
                resource=resource, pilot=pilot.uid,
            )
            backups += 1
            deadline = self.policy.redeadline_s

    def _work_remaining(self) -> bool:
        return any(not u.is_final for u in self.unit_manager.units)

    def _renewal_watch(self):
        """Pilot succession: replace pilots about to hit their walltime."""
        horizon = self.policy.renew_before_s
        interval = max(30.0, horizon / 2.0)
        while not self._stopped:
            yield self.sim.timeout(interval)
            if self._stopped or self._renewals >= self.policy.max_renewals:
                return
            if not self._work_remaining():
                return
            now = self.sim.now
            for pilot in list(self.pilots):
                if not pilot.is_active or pilot.uid in self._renewed:
                    continue
                activated = pilot.activated_at
                if activated is None:
                    continue
                expected_end = activated + pilot.description.runtime_s
                if expected_end - now > horizon:
                    continue
                if self.health is not None and self.health.is_quarantined(
                    pilot.resource
                ):
                    continue  # no successor on a quarantined resource
                desc = ComputePilotDescription(
                    resource=pilot.resource,
                    cores=pilot.cores,
                    runtime_min=pilot.description.runtime_min,
                    access_schema=self.access_schemas.get(
                        pilot.resource, "slurm"
                    ),
                )
                (successor,) = self.pilot_manager.submit_pilots(desc)
                self._renewed.add(pilot.uid)
                self._renewals += 1
                self.pilots.append(successor)
                self.unit_manager.add_pilots(successor)
                if self.on_new_pilot is not None:
                    self.on_new_pilot(successor)
                event = AdaptationEvent(
                    time=now,
                    reason=(
                        f"{pilot.uid} within {horizon:.0f}s of its walltime "
                        "with work remaining; submitted successor"
                    ),
                    resource=pilot.resource,
                    pilot_uid=successor.uid,
                )
                self.events.append(event)
                self.strategy.decisions.append(
                    Decision(
                        name=f"renewal_{self._renewals}",
                        value=pilot.resource,
                        rationale=event.reason,
                        depends_on=("pilot_walltime_min",),
                    )
                )
                self.sim.trace.record(
                    now, "execution", "adaptation", "RENEWAL",
                    resource=pilot.resource, pilot=successor.uid,
                    predecessor=pilot.uid,
                )
                if self._renewals >= self.policy.max_renewals:
                    return
