"""The Execution Strategy abstraction.

An execution strategy is "the set of decisions made to execute an
application": binding of tasks to pilots, the unit scheduler, the number
of pilots, their size, their walltime, and the resources they target.
The abstraction makes these decisions *explicit* — each carries its
chosen value and the rationale — so alternative couplings can be
enumerated, compared, and measured.

The strategy is structured as the paper describes: a tree whose vertices
are decisions and whose edges are dependence relations (e.g. pilot size
depends on the number of pilots, which depends on the binding).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple


class Binding(str, enum.Enum):
    """When tasks are bound to pilots."""

    EARLY = "early"   # at submission, before pilots are active
    LATE = "late"     # on activation, to whichever pilot has capacity


@dataclass(frozen=True)
class Decision:
    """One vertex of the strategy's decision tree."""

    name: str
    value: object
    rationale: str = ""
    depends_on: Tuple[str, ...] = ()


@dataclass
class ExecutionStrategy:
    """A fully resolved coupling of an application to resources."""

    binding: Binding
    unit_scheduler: str              # "direct" | "backfill" | "round-robin"
    n_pilots: int
    pilot_cores: int
    pilot_walltime_min: float
    resources: Tuple[str, ...]       # target resource per pilot (len == n_pilots)
    decisions: List[Decision] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.n_pilots <= 0:
            raise ValueError("a strategy needs at least one pilot")
        if self.pilot_cores <= 0:
            raise ValueError("pilot_cores must be positive")
        if self.pilot_walltime_min <= 0:
            raise ValueError("pilot_walltime_min must be positive")
        if len(self.resources) != self.n_pilots:
            raise ValueError(
                f"strategy names {len(self.resources)} resources for "
                f"{self.n_pilots} pilots"
            )
        if self.binding is Binding.EARLY and self.unit_scheduler != "direct":
            raise ValueError("early binding requires the direct scheduler")
        if self.binding is Binding.LATE and self.unit_scheduler == "direct":
            raise ValueError("late binding cannot use the direct scheduler")

    @property
    def total_cores(self) -> int:
        return self.n_pilots * self.pilot_cores

    def describe(self) -> str:
        """Human-readable rendering of the decision tree."""
        lines = [
            f"ExecutionStrategy: {self.binding.value} binding, "
            f"{self.unit_scheduler} scheduler, {self.n_pilots} pilot(s) x "
            f"{self.pilot_cores} cores, walltime {self.pilot_walltime_min:.0f} min"
        ]
        for d in self.decisions:
            dep = f" (after {', '.join(d.depends_on)})" if d.depends_on else ""
            lines.append(f"  - {d.name} = {d.value!r}{dep}: {d.rationale}")
        return "\n".join(lines)

    def decision(self, name: str) -> Decision:
        for d in self.decisions:
            if d.name == name:
                return d
        raise KeyError(name)
