"""ASCII execution timelines (poor-man's Gantt charts).

The virtual laboratory needs a way to *look* at an execution without a
plotting stack: which pilot queued how long, when units flowed, where
the TTC went. `render_timeline` draws pilots and unit concurrency as
text, directly from the instrumented histories.

Example output::

    t=0s .................................................... t=5012s
    pilot.0001 [stampede-sim   ] ~~~~~~####################________
    pilot.0002 [gordon-sim     ] ~~~~~~~~~~~~~~############________
    units executing                  .:iIIIIIIIIIIIIiii:.

Legend: ``~`` queued, ``#`` active, ``_`` after the pilot ended;
the units row is a density ramp `` .:iI`` by executing-unit count.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..pilot import ComputePilot, ComputeUnit, PilotState
from .analytics import concurrency_series

#: density ramp for the unit-concurrency row.
_RAMP = " .:iI"


def _row(width: int, fill: str = " ") -> List[str]:
    return [fill] * width


def _mark(row: List[str], t0: float, t1: float, lo: float, hi: float,
          char: str) -> None:
    """Paint ``char`` over the cells covering [t0, t1] within [lo, hi]."""
    if hi <= lo or t1 < t0:
        return
    width = len(row)
    scale = width / (hi - lo)
    a = max(0, min(width - 1, int((t0 - lo) * scale)))
    b = max(0, min(width - 1, int((t1 - lo) * scale)))
    for i in range(a, b + 1):
        row[i] = char


#: one character per causal component on the critical-path row.
_PATH_CHARS = {
    "tw": "~", "tr": "^", "tx": "#", "ts": "s", "trp": "+", "idle": " ",
}


def render_timeline(
    pilots: Sequence[ComputePilot],
    units: Sequence[ComputeUnit],
    t_start: float,
    t_end: float,
    width: int = 64,
    fault_log=None,
    health_log=None,
    em_steps: Optional[Sequence] = None,
    critical_path: Optional[Sequence] = None,
) -> str:
    """Render one execution as an ASCII timeline.

    ``em_steps`` is an optional sequence of ``(name, t0, t1)`` rows —
    the enactment-step spans a telemetry-enabled run records — drawn as
    one ``=`` bar per step above the pilot rows. ``critical_path`` is an
    optional sequence of :class:`repro.telemetry.causality.PathSegment`
    rows, drawn as one final row with a per-component character
    (``~`` Tw, ``^`` Tr, ``#`` Tx, ``s`` staging, ``+`` overhead).
    """
    if t_end <= t_start:
        raise ValueError("t_end must exceed t_start")
    if width < 8:
        raise ValueError("width must be at least 8")
    lines = [
        f"t={t_start:.0f}s " + "." * width + f" t={t_end:.0f}s"
    ]

    if em_steps:
        label_w = len(pilots[0].uid) + 18 if pilots else 20
        for name, s0, s1 in em_steps:
            row = _row(width)
            _mark(row, s0, s1, t_start, t_end, "=")
            label = f"{f'step {name}':<{label_w}.{label_w}}"
            lines.append(f"{label} " + "".join(row))

    for pilot in pilots:
        row = _row(width)
        submit = pilot.history.timestamp(PilotState.LAUNCHING.value)
        active = pilot.activated_at
        final = None
        for state in (PilotState.DONE, PilotState.CANCELED, PilotState.FAILED):
            cand = pilot.history.timestamp(state.value)
            if cand is not None:
                final = cand if final is None else min(final, cand)
        if submit is not None:
            _mark(row, submit, (active if active is not None else
                                (final if final is not None else t_end)),
                  t_start, t_end, "~")
        if active is not None:
            _mark(row, active, final if final is not None else t_end,
                  t_start, t_end, "#")
        if final is not None and final < t_end:
            _mark(row, final, t_end, t_start, t_end, "_")
        label = f"{pilot.uid} [{pilot.resource:<15.15}]"
        lines.append(f"{label} " + "".join(row))

    # unit-concurrency density row
    series = concurrency_series(units)
    if series:
        row = _row(width)
        peak = max(level for _, level in series) or 1
        for (t0, level), (t1, _) in zip(series, series[1:]):
            idx = min(len(_RAMP) - 1,
                      1 + int((len(_RAMP) - 2) * level / peak)) if level else 0
            _mark(row, t0, t1, t_start, t_end, _RAMP[idx])
        pad = " " * (len(lines[-1]) - width - len("".join(row)) + len(row) * 0)
        label = f"{'units executing':<{len(pilots[0].uid) + 18 if pilots else 20}}"
        lines.append(f"{label} " + "".join(row))
        lines.append(f"(peak concurrency: {peak})")

    # fault-injection row: one X per enacted fault within the window
    if fault_log is not None and len(fault_log):
        row = _row(width)
        shown = 0
        for ev in fault_log:
            if t_start <= ev.time <= t_end:
                _mark(row, ev.time, ev.time, t_start, t_end, "X")
                shown += 1
        if shown:
            label_w = len(pilots[0].uid) + 18 if pilots else 20
            label = f"{'faults injected':<{label_w}}"
            lines.append(f"{label} " + "".join(row))

    # breaker rows: quarantine windows per resource ('Q' open, '?' half-
    # open probing), reconstructed from the health-event trace.
    if health_log is not None and len(health_log):
        windows: dict = {}
        opens: dict = {}
        probes: dict = {}
        for ev in health_log:
            if ev.kind == "breaker-open":
                opens.setdefault(ev.target, ev.time)
            elif ev.kind == "breaker-half-open":
                t0 = opens.pop(ev.target, t_start)
                windows.setdefault(ev.target, []).append((t0, ev.time, "Q"))
                probes[ev.target] = ev.time
            elif ev.kind == "breaker-close":
                t0 = probes.pop(ev.target, None)
                if t0 is not None:
                    windows.setdefault(ev.target, []).append(
                        (t0, ev.time, "?")
                    )
        for target, t0 in opens.items():
            windows.setdefault(target, []).append((t0, t_end, "Q"))
        for target, t0 in probes.items():
            windows.setdefault(target, []).append((t0, t_end, "?"))
        label_w = len(pilots[0].uid) + 18 if pilots else 20
        for target in sorted(windows):
            row = _row(width)
            for t0, t1, char in windows[target]:
                _mark(row, t0, t1, t_start, t_end, char)
            label = f"{f'breaker {target}':<{label_w}.{label_w}}"
            lines.append(f"{label} " + "".join(row))

    # critical-path row: which component gated the run, instant by
    # instant — the backward-walk chain rendered on the shared axis.
    if critical_path:
        row = _row(width)
        for seg in critical_path:
            char = _PATH_CHARS.get(seg.component, "?")
            if char != " ":
                _mark(row, seg.t0, seg.t1, t_start, t_end, char)
        label_w = len(pilots[0].uid) + 18 if pilots else 20
        label = f"{'critical path':<{label_w}}"
        lines.append(f"{label} " + "".join(row))
        lines.append("(path: ~ Tw  ^ Tr  # Tx  s staging  + overhead)")
    return "\n".join(lines)


def render_report_timeline(
    report, width: int = 64, critical_path: bool = True
) -> str:
    """Convenience: timeline straight from an ExecutionReport.

    Executions run under fault injection also show a fault row (one
    ``X`` per enacted fault inside the window); by default the causal
    critical path is computed and drawn as the final row.
    """
    d = report.decomposition
    tel = getattr(report, "telemetry", None)
    path = None
    if critical_path and d.t_end > d.t_start:
        path = report.attribution().critical_path
    return render_timeline(
        report.pilots, report.units, d.t_start, d.t_end, width=width,
        fault_log=getattr(report, "fault_log", None),
        health_log=getattr(report, "health_log", None),
        em_steps=tel.em_steps if tel is not None else None,
        critical_path=path,
    )
