"""Exception types for the discrete-event simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for all simulation kernel errors."""


class SchedulingError(SimulationError):
    """Raised when an event is scheduled in the past or re-scheduled."""


class CancelledError(SimulationError):
    """Raised inside a process when the operation it waits on is cancelled."""


class ProcessError(SimulationError):
    """Raised when interacting with a process in an illegal state."""


class Interrupt(SimulationError):
    """Raised inside a process that was interrupted by another process.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.des.process.Process.interrupt`.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause
