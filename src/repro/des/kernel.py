"""The discrete-event simulation kernel.

A :class:`Simulation` owns the simulated clock, the event queue, the trace
log, and the registry of seeded RNG streams. Everything in the substrate
(clusters, networks, pilots) is driven by one shared kernel so that the
whole middleware stack advances on a single, deterministic timeline.
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import Any, Callable, Generator, Iterable, Optional

from ..telemetry import TelemetryHub
from .calendar import make_event_queue
from .errors import SchedulingError, SimulationError
from .events import _CANCELLED, ScheduledEvent, Tracer
from .process import AllOf, AnyOf, Process, Signal, Timeout, Waitable
from .rng import RngStreams


class Simulation:
    """Deterministic discrete-event simulation kernel.

    ``event_queue`` selects the scheduling backend: ``"heap"`` (binary
    heap), ``"calendar"`` (calendar queue), or ``"auto"`` (heap that
    promotes itself to a calendar queue on large event populations).
    All backends pop in the identical ``(time, priority, seq)`` order,
    so the simulated history — and every digest derived from it — is
    backend-independent. Defaults to the ``REPRO_DES_QUEUE`` environment
    variable, falling back to ``"auto"``.
    """

    def __init__(
        self,
        seed: int = 0,
        start_time: float = 0.0,
        event_queue: Optional[str] = None,
    ) -> None:
        backend = event_queue or os.environ.get("REPRO_DES_QUEUE") or "auto"
        self.queue_backend = backend
        self._queue = make_event_queue(backend)
        self._now = float(start_time)
        self._running = False
        self.events_processed = 0
        self.rng = RngStreams(seed)
        self.trace = Tracer()
        self.telemetry = TelemetryHub(
            clock=lambda: self._now, run_id=f"sim-{seed}"
        )
        metrics = self.telemetry.metrics
        metrics.gauge("kernel.heap-size", lambda: len(self._queue))
        metrics.gauge(
            "kernel.events-processed", lambda: self.events_processed
        )
        metrics.gauge("kernel.virtual-time", lambda: self._now)
        # Deterministic queue counters: identical across backends and
        # across serial/parallel runs, so they may enter sampled
        # snapshots (and hence telemetry digests) safely.
        metrics.gauge("kernel.events-pushed", lambda: self._queue.pushed)
        metrics.gauge("kernel.events-popped", lambda: self._queue.popped)
        metrics.gauge("kernel.events-cancelled", lambda: self._queue.cancels)
        # Backend machinery state (compaction cadence differs between
        # heap and calendar): diagnostic, excluded from digests.
        metrics.gauge(
            "kernel.queue-compactions",
            lambda: self._queue.compactions,
            diagnostic=True,
        )
        metrics.gauge(
            "kernel.queue-resizes",
            lambda: getattr(self._queue, "resizes", 0),
            diagnostic=True,
        )
        metrics.gauge("rng.draws", lambda: self.rng.draws)
        metrics.gauge("rng.streams", lambda: len(self.rng))

    # -- clock ---------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling ----------------------------------------------------------

    def call_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at {time} < now ({self._now})"
            )
        return self._queue.push(time, callback, args, priority)

    def call_in(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        priority: int = 0,
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SchedulingError(f"negative delay: {delay}")
        return self._queue.push(self._now + delay, callback, args, priority)

    def cancel(self, event: ScheduledEvent) -> None:
        """Cancel a scheduled event (safe to call more than once)."""
        self._queue.cancel(event)

    # -- execution -----------------------------------------------------------

    def step(self) -> bool:
        """Dispatch the next event. Returns False if the queue is empty."""
        ev = self._queue.pop_until(float("inf"))
        if ev is None:
            return False
        if ev.time < self._now:
            raise SimulationError("event queue produced an event in the past")
        self._now = ev.time
        self.events_processed += 1
        prof = self.telemetry.profiler
        callback = ev.callback
        if prof is None:
            callback(*ev.args)
        else:
            w0 = perf_counter()
            callback(*ev.args)
            prof.record(callback, perf_counter() - w0)
        ev.release()
        return True

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue is empty or simulated ``until``.

        When ``until`` is given, events strictly after it remain queued and
        the clock is advanced to exactly ``until``. Returns the final time.
        """
        if self._running:
            raise SimulationError("run() is not re-entrant")
        if until is not None and until < self._now:
            raise SchedulingError(
                f"cannot run until {until} < now ({self._now})"
            )
        self._running = True
        # The dispatch loop is the hottest path in the system: campaign
        # repetitions pump tens of thousands of events through it, so it
        # inlines step() with the queue/telemetry lookups hoisted. The
        # profiler is re-read each event (it can be attached mid-run);
        # when absent, dispatch is two attribute loads plus the call.
        limit = float("inf") if until is None else until
        queue = self._queue
        pop_until = queue.pop_until
        telemetry = self.telemetry
        try:
            while True:
                ev = pop_until(limit)
                if ev is None:
                    break
                time = ev.time
                if time < self._now:
                    raise SimulationError(
                        "event queue produced an event in the past"
                    )
                self._now = time
                self.events_processed += 1
                prof = telemetry.profiler
                callback = ev.callback
                if prof is None:
                    callback(*ev.args)
                else:
                    w0 = perf_counter()
                    callback(*ev.args)
                    prof.record(callback, perf_counter() - w0)
                # inlined ev.release() - a method call per event adds up
                ev.callback = _CANCELLED
                ev.args = ()
            if until is not None:
                self._now = until
        finally:
            self._running = False
        return self._now

    def run_process(self, process: "Process", until: Optional[float] = None) -> Any:
        """Run until ``process`` completes; return its value or raise its error."""
        # Same inlined dispatch as run(); the extra per-event work is only
        # the ``triggered`` check and the optional deadline comparison.
        inf = float("inf")
        pop_until = self._queue.pop_until
        telemetry = self.telemetry
        while not process.triggered:
            if until is not None and self._now >= until:
                raise SimulationError(
                    f"process {process.name!r} did not finish by t={until}"
                )
            ev = pop_until(inf)
            if ev is None:
                raise SimulationError(
                    f"deadlock: event queue empty but process {process.name!r} "
                    "has not finished"
                )
            if ev.time < self._now:
                raise SimulationError(
                    "event queue produced an event in the past"
                )
            self._now = ev.time
            self.events_processed += 1
            prof = telemetry.profiler
            callback = ev.callback
            if prof is None:
                callback(*ev.args)
            else:
                w0 = perf_counter()
                callback(*ev.args)
                prof.record(callback, perf_counter() - w0)
            # inlined ev.release() - a method call per event adds up
            ev.callback = _CANCELLED
            ev.args = ()
        if process.ok:
            return process.value
        raise process.exception  # type: ignore[misc]

    # -- process & waitable factories ----------------------------------------

    def process(
        self,
        generator: Generator[Waitable, Any, Any],
        name: Optional[str] = None,
    ) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a waitable that fires after ``delay`` seconds."""
        return Timeout(self, delay, value)

    def event(self) -> Signal:
        """Create a one-shot signal waitable."""
        return Signal(self)

    def any_of(self, children: Iterable[Waitable]) -> AnyOf:
        """Waitable that fires when any child fires."""
        return AnyOf(self, children)

    def all_of(self, children: Iterable[Waitable]) -> AllOf:
        """Waitable that fires when all children have fired."""
        return AllOf(self, children)
