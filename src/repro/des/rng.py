"""Seeded random-number streams for reproducible simulations.

Each simulation component (a cluster's background workload, the skeleton
sampler, the transfer model, ...) draws from its own named stream. Streams
are spawned from a single root :class:`numpy.random.SeedSequence`, so:

* a campaign is fully reproducible from one integer seed, and
* adding draws to one component does not perturb any other component,
  which keeps paired experiment comparisons statistically clean.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def _stable_stream_key(name: str) -> int:
    """Map a stream name to a stable 64-bit integer (independent of PYTHONHASHSEED)."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngStreams:
    """Registry of named, independently seeded numpy Generators."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}
        #: stream fetches, the observable proxy for "how much randomness
        #: was consumed" reported by the telemetry gauge ``rng.draws``
        #: (numpy generators do not expose a portable draw count).
        self.draws = 0

    def get(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``.

        The stream's seed entropy combines the root seed and a stable hash
        of the name, so the same (seed, name) pair always yields the same
        stream regardless of creation order.
        """
        self.draws += 1
        gen = self._streams.get(name)
        if gen is None:
            ss = np.random.SeedSequence(
                entropy=self.seed, spawn_key=(_stable_stream_key(name),)
            )
            gen = np.random.default_rng(ss)
            self._streams[name] = gen
        return gen

    def spawn(self, name: str, index: int) -> np.random.Generator:
        """Return an indexed sub-stream, e.g. one per repetition."""
        return self.get(f"{name}/{index}")

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __len__(self) -> int:
        return len(self._streams)
