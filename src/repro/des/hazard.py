"""Hazard processes: seeded Poisson event streams on the kernel.

A hazard is a stochastic failure source: events arrive at exponentially
distributed intervals with a fixed rate. The fault-injection layer uses
hazards to model pilot/agent deaths and other misbehaviour whose *timing*
must be reproducible from a single RNG seed — the generator is supplied
by the caller (never drawn from the kernel's own streams), so a fault
plan's seed alone determines the hazard timeline.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Optional

from .errors import Interrupt
from .process import Process

if False:  # pragma: no cover - typing only
    from .kernel import Simulation


def hazard_process(
    sim: "Simulation",
    rate_per_s: float,
    action: Callable[[float], Any],
    rng,
    start: float = 0.0,
    stop: float = math.inf,
    name: Optional[str] = None,
) -> Process:
    """Fire ``action(now)`` at exponential intervals of mean ``1/rate``.

    The process sleeps until ``start`` (absolute simulated time), then
    repeatedly draws an inter-arrival gap from ``rng`` and fires. It ends
    when the next arrival would land after ``stop``, or when interrupted
    (the clean way to disarm a hazard mid-run).
    """
    if rate_per_s <= 0:
        raise ValueError(f"hazard rate must be positive, got {rate_per_s}")
    if stop < start:
        raise ValueError(f"hazard window stop {stop} precedes start {start}")

    def _run():
        try:
            if start > sim.now:
                yield sim.timeout(start - sim.now)
            while True:
                gap = float(rng.exponential(1.0 / rate_per_s))
                if sim.now + gap > stop:
                    return
                yield sim.timeout(gap)
                action(sim.now)
        except Interrupt:
            return  # disarmed

    return sim.process(_run(), name=name or f"hazard@{rate_per_s:g}/s")
