"""Discrete-event simulation kernel.

This package is the substrate's foundation: a deterministic event queue, a
simulated clock, generator-based processes, shared-resource primitives,
seeded RNG streams, and a trace log used for self-introspection by the
middleware layers above.
"""

from .errors import (
    CancelledError,
    Interrupt,
    ProcessError,
    SchedulingError,
    SimulationError,
)
from .calendar import (
    AdaptiveEventQueue,
    CalendarEventQueue,
    QUEUE_BACKENDS,
    make_event_queue,
)
from .events import EventQueue, ScheduledEvent, TraceRecord, Tracer
from .hazard import hazard_process
from .kernel import Simulation
from .process import AllOf, AnyOf, Process, Signal, Timeout, Waitable
from .resources import Acquisition, CapacityResource, Store
from .rng import RngStreams

__all__ = [
    "Acquisition",
    "AdaptiveEventQueue",
    "AllOf",
    "AnyOf",
    "CancelledError",
    "CalendarEventQueue",
    "CapacityResource",
    "EventQueue",
    "Interrupt",
    "QUEUE_BACKENDS",
    "Process",
    "ProcessError",
    "RngStreams",
    "ScheduledEvent",
    "SchedulingError",
    "Signal",
    "Simulation",
    "SimulationError",
    "Store",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "Waitable",
    "hazard_process",
    "make_event_queue",
]
