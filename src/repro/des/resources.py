"""Shared-resource primitives built on the process layer.

:class:`CapacityResource` models a pool of interchangeable units (e.g. CPU
cores inside a pilot agent): processes acquire some units, hold them, and
release them. :class:`Store` is an unbounded FIFO hand-off queue (e.g. the
late-binding pool of compute units waiting for any pilot slot).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Deque

from .errors import ProcessError
from .process import Signal, Waitable

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Simulation


class Acquisition(Signal):
    """Waitable handle for a pending or granted capacity request."""

    def __init__(self, resource: "CapacityResource", amount: int) -> None:
        super().__init__(resource.sim)
        self.resource = resource
        self.amount = amount
        self.granted = False

    def release(self) -> None:
        """Return the held units to the pool."""
        self.resource.release(self)

    def cancel(self) -> None:
        """Withdraw a not-yet-granted request."""
        self.resource._cancel(self)


class CapacityResource:
    """A counted pool of identical units with FIFO granting.

    Grants are strictly FIFO: a large request at the head blocks smaller
    requests behind it (no bypass), which models a conservative in-order
    slot allocator. Components that want backfill behaviour implement it a
    level above (see the pilot agent's backfill scheduler).
    """

    def __init__(self, sim: "Simulation", capacity: int, name: str = "resource") -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = int(capacity)
        self.in_use = 0
        self._waiting: Deque[Acquisition] = deque()

    @property
    def available(self) -> int:
        return self.capacity - self.in_use

    def acquire(self, amount: int = 1) -> Acquisition:
        """Request ``amount`` units; returns a waitable granted in FIFO order."""
        if amount <= 0:
            raise ValueError(f"acquire amount must be positive, got {amount}")
        if amount > self.capacity:
            raise ValueError(
                f"request for {amount} exceeds capacity {self.capacity} "
                f"of {self.name!r}"
            )
        req = Acquisition(self, amount)
        self._waiting.append(req)
        self._grant()
        return req

    def release(self, acquisition: Acquisition) -> None:
        """Return the units held by ``acquisition``."""
        if not acquisition.granted:
            raise ProcessError("cannot release an ungranted acquisition")
        acquisition.granted = False
        self.in_use -= acquisition.amount
        if self.in_use < 0:
            raise ProcessError(f"{self.name!r}: negative in_use after release")
        self._grant()

    def _cancel(self, acquisition: Acquisition) -> None:
        if acquisition.granted:
            raise ProcessError("cannot cancel a granted acquisition; release it")
        try:
            self._waiting.remove(acquisition)
        except ValueError:
            pass

    def _grant(self) -> None:
        while self._waiting and self._waiting[0].amount <= self.available:
            req = self._waiting.popleft()
            req.granted = True
            self.in_use += req.amount
            req.succeed(req)


class Store:
    """Unbounded FIFO hand-off queue between processes.

    ``put`` never blocks; ``get`` returns a waitable that fires with the
    oldest item once one is available. Matching is strictly FIFO on both
    sides, so consumers receive items in arrival order.
    """

    def __init__(self, sim: "Simulation", name: str = "store") -> None:
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Signal] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``, waking the oldest waiting getter if any."""
        self._items.append(item)
        self._match()

    def get(self) -> Waitable:
        """Return a waitable that fires with the next item."""
        sig = Signal(self.sim)
        self._getters.append(sig)
        self._match()
        return sig

    def peek_all(self) -> list[Any]:
        """Snapshot of queued items (oldest first), without removing them."""
        return list(self._items)

    def _match(self) -> None:
        while self._items and self._getters:
            sig = self._getters.popleft()
            if sig.triggered:  # cancelled getter
                continue
            sig.succeed(self._items.popleft())
