"""Event primitives for the discrete-event simulation kernel.

The kernel operates on a binary heap of :class:`ScheduledEvent` records.
Ties in simulated time are broken deterministically by a monotonically
increasing sequence number, so two runs with the same seeds replay the
exact same event order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from .errors import SchedulingError

#: Sentinel callback used for cancelled events still sitting in the heap.
_CANCELLED: Callable[..., None] = lambda *a, **k: None  # noqa: E731


@dataclass(order=True)
class ScheduledEvent:
    """A callback scheduled at a simulated time.

    Ordering is by ``(time, priority, seq)``; ``callback`` and ``args`` are
    excluded from comparisons.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[..., None] = field(compare=False)
    args: tuple = field(compare=False, default=())

    #: set to True when cancelled; the kernel skips cancelled entries lazily.
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the kernel will skip it.

        Cancelling an already-fired event is a no-op: the kernel clears the
        callback reference after dispatch, and we only flip a flag here.
        """
        self.cancelled = True
        self.callback = _CANCELLED
        self.args = ()


class EventQueue:
    """Deterministic priority queue of :class:`ScheduledEvent` records."""

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._seq = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple = (),
        priority: int = 0,
    ) -> ScheduledEvent:
        """Insert a callback at simulated ``time`` and return its handle."""
        if time != time:  # NaN guard
            raise SchedulingError("event time is NaN")
        ev = ScheduledEvent(time, priority, next(self._seq), callback, args)
        heapq.heappush(self._heap, ev)
        self._live += 1
        return ev

    def cancel(self, event: ScheduledEvent) -> None:
        """Lazily cancel ``event``; it stays in the heap but will be skipped."""
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def peek_time(self) -> Optional[float]:
        """Return the time of the next live event, or None if empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def pop(self) -> ScheduledEvent:
        """Remove and return the next live event."""
        self._drop_cancelled()
        if not self._heap:
            raise IndexError("pop from empty EventQueue")
        ev = heapq.heappop(self._heap)
        self._live -= 1
        return ev

    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)


@dataclass
class TraceRecord:
    """One timestamped entry in a simulation trace."""

    time: float
    category: str
    entity: str
    event: str
    data: dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Append-only, timestamped record log used for self-introspection.

    Every state transition in the middleware layers records a
    :class:`TraceRecord`. Analyses (TTC decomposition, overlap computation)
    are derived from these traces rather than from ad-hoc bookkeeping, which
    mirrors the instrumentation design of the AIMES middleware.
    """

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []
        self._enabled = True

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def record(
        self,
        time: float,
        category: str,
        entity: str,
        event: str,
        **data: Any,
    ) -> None:
        """Append one record (no-op when tracing is disabled)."""
        if self._enabled:
            self.records.append(TraceRecord(time, category, entity, event, data))

    def query(
        self,
        category: Optional[str] = None,
        entity: Optional[str] = None,
        event: Optional[str] = None,
    ) -> list[TraceRecord]:
        """Return records matching all provided filters, in time order."""
        out: list[TraceRecord] = []
        append = out.append
        for rec in self.records:
            if category is not None and rec.category != category:
                continue
            if entity is not None and rec.entity != entity:
                continue
            if event is not None and rec.event != event:
                continue
            append(rec)
        return out

    def first(self, **kw: Any) -> Optional[TraceRecord]:
        """First matching record or None."""
        recs = self.query(**kw)
        return recs[0] if recs else None

    def last(self, **kw: Any) -> Optional[TraceRecord]:
        """Last matching record or None."""
        recs = self.query(**kw)
        return recs[-1] if recs else None

    def clear(self) -> None:
        self.records.clear()
