"""Event primitives for the discrete-event simulation kernel.

The kernel operates on a binary heap of :class:`ScheduledEvent` records.
Ties in simulated time are broken deterministically by a monotonically
increasing sequence number, so two runs with the same seeds replay the
exact same event order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush
from typing import Any, Callable, Optional

from .errors import SchedulingError

#: Sentinel callback used for cancelled/fired events still holding a slot.
_CANCELLED: Callable[..., None] = lambda *a, **k: None  # noqa: E731

#: Heaps smaller than this are never compacted: draining the few dead
#: entries on pop is cheaper than rebuilding the heap.
_COMPACT_MIN = 64


class ScheduledEvent:
    """A callback scheduled at a simulated time.

    Ordering is by ``(time, priority, seq)``; ``callback`` and ``args``
    take no part in comparisons. Hand-rolled (slots plus a direct
    ``__lt__``) rather than a dataclass: heap sifts compare events
    hundreds of thousands of times per campaign repetition, and the
    generated tuple-building comparison dominated that profile.
    """

    __slots__ = (
        "time", "priority", "seq", "callback", "args", "cancelled", "fired",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., None],
        args: tuple = (),
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        #: True once cancelled; the kernel skips cancelled entries lazily.
        self.cancelled = False
        #: True once popped for dispatch; cancelling after that is a no-op.
        self.fired = False

    def __lt__(self, other: "ScheduledEvent") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "cancelled" if self.cancelled
            else "fired" if self.fired
            else "pending"
        )
        return (
            f"<ScheduledEvent t={self.time} priority={self.priority} "
            f"seq={self.seq} {state}>"
        )

    def cancel(self) -> None:
        """Mark the event so the kernel will skip it.

        Cancelling an already-fired event is a no-op: the kernel releases
        the callback reference after dispatch, and we only flip a flag here.
        """
        if self.fired:
            return
        self.cancelled = True
        self.callback = _CANCELLED
        self.args = ()

    def release(self) -> None:
        """Drop callback/args references after dispatch (memory hygiene)."""
        self.callback = _CANCELLED
        self.args = ()


class EventQueue:
    """Deterministic priority queue of :class:`ScheduledEvent` records.

    Heap entries are ``(time, priority, seq, event)`` tuples rather than
    the events themselves: tuple comparison resolves entirely in C, so
    heap sifts never call back into :meth:`ScheduledEvent.__lt__`. The
    ``seq`` component is unique, so comparison never reaches the event
    slot and the ordering is the same strict total order.

    Cancellation is lazy — dead entries keep their heap slot until they
    surface — but bounded: whenever cancelled entries outnumber live
    ones the heap is compacted, so a workload that schedules and cancels
    aggressively (watchdogs, outages, link churn) cannot retain an
    unbounded tail of dead events. Compaction cannot change pop order
    because event ordering is a strict total order on
    ``(time, priority, seq)``.
    """

    def __init__(self) -> None:
        self._heap: list[tuple] = []
        self._seq = 0  # plain int: += 1 beats next(count()) on the hot path
        self._live = 0
        self._cancelled = 0  # dead entries still occupying heap slots
        #: Set by AdaptiveEventQueue promotion: the calendar queue that
        #: adopted this heap's events. A ``pop_until`` reference hoisted
        #: before the promotion (the kernel hoists one per run) keeps
        #: working by forwarding to it once the heap is drained.
        self._redirect = None
        #: Cumulative counters surfaced through the telemetry registry.
        self.pushed = 0
        self.popped = 0
        self.cancels = 0
        self.compactions = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple = (),
        priority: int = 0,
    ) -> ScheduledEvent:
        """Insert a callback at simulated ``time`` and return its handle."""
        if time != time:  # NaN guard
            raise SchedulingError("event time is NaN")
        seq = self._seq
        self._seq = seq + 1
        ev = ScheduledEvent(time, priority, seq, callback, args)
        heappush(self._heap, (time, priority, seq, ev))
        self._live += 1
        self.pushed += 1
        return ev

    def cancel(self, event: ScheduledEvent) -> None:
        """Lazily cancel ``event``; it stays in the heap but will be skipped.

        Cancelling an already-cancelled or already-fired event is a no-op.
        """
        if event.cancelled or event.fired:
            return
        event.cancel()
        self._live -= 1
        self._cancelled += 1
        self.cancels += 1
        if self._cancelled > self._live and len(self._heap) >= _COMPACT_MIN:
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without dead entries (O(live), order-preserving)."""
        self._heap = [entry for entry in self._heap if not entry[3].cancelled]
        heapify(self._heap)
        self._cancelled = 0
        self.compactions += 1

    def peek_time(self) -> Optional[float]:
        """Return the time of the next live event, or None if empty."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heappop(heap)
            self._cancelled -= 1
        return heap[0][0] if heap else None

    def pop(self) -> ScheduledEvent:
        """Remove and return the next live event."""
        ev = self.pop_until(float("inf"))
        if ev is None:
            raise IndexError("pop from empty EventQueue")
        return ev

    def pop_until(self, limit: float) -> Optional[ScheduledEvent]:
        """Pop the next live event with ``time <= limit``, or None.

        The kernel's run loop uses this to merge the peek and the pop
        into a single pass over the heap head.
        """
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heappop(heap)
            self._cancelled -= 1
        if not heap or heap[0][0] > limit:
            redirect = self._redirect
            if redirect is not None:
                return redirect.pop_until(limit)
            return None
        ev = heappop(heap)[3]
        ev.fired = True
        self._live -= 1
        self.popped += 1
        return ev


@dataclass(slots=True)
class TraceRecord:
    """One timestamped entry in a simulation trace."""

    time: float
    category: str
    entity: str
    event: str
    data: dict[str, Any] = field(default_factory=dict)


class Tracer:
    """Append-only, timestamped record log used for self-introspection.

    Every state transition in the middleware layers records a
    :class:`TraceRecord`. Analyses (TTC decomposition, overlap computation)
    are derived from these traces rather than from ad-hoc bookkeeping, which
    mirrors the instrumentation design of the AIMES middleware.
    """

    def __init__(self) -> None:
        self.records: list[TraceRecord] = []
        self._enabled = True

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def record(
        self,
        time: float,
        category: str,
        entity: str,
        event: str,
        **data: Any,
    ) -> None:
        """Append one record (no-op when tracing is disabled)."""
        if self._enabled:
            self.records.append(TraceRecord(time, category, entity, event, data))

    def query(
        self,
        category: Optional[str] = None,
        entity: Optional[str] = None,
        event: Optional[str] = None,
    ) -> list[TraceRecord]:
        """Return records matching all provided filters, in time order."""
        out: list[TraceRecord] = []
        append = out.append
        for rec in self.records:
            if category is not None and rec.category != category:
                continue
            if entity is not None and rec.entity != entity:
                continue
            if event is not None and rec.event != event:
                continue
            append(rec)
        return out

    def first(self, **kw: Any) -> Optional[TraceRecord]:
        """First matching record or None."""
        recs = self.query(**kw)
        return recs[0] if recs else None

    def last(self, **kw: Any) -> Optional[TraceRecord]:
        """Last matching record or None."""
        recs = self.query(**kw)
        return recs[-1] if recs else None

    def clear(self) -> None:
        self.records.clear()
