"""Generator-based processes and waitable primitives.

This is a small, deterministic process layer in the style of SimPy:

* a :class:`Waitable` is anything a process can ``yield`` on;
* a :class:`Timeout` triggers after a simulated delay;
* a :class:`Signal` is a one-shot event triggered by user code;
* a :class:`Process` wraps a generator and is itself waitable, so
  processes can wait for each other.

All resumptions go through the kernel's event queue (never re-entrantly),
so process interleaving is a deterministic function of the event order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, Optional

from .errors import CancelledError, Interrupt, ProcessError

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Simulation

#: Priority used for process resumptions; lower than default so that plain
#: callbacks scheduled at the same instant run first (e.g. state bookkeeping
#: completes before a waiting process observes it).
RESUME_PRIORITY = 5


class Waitable:
    """Base class for things a process can wait on.

    A waitable triggers exactly once, either successfully (with a value) or
    with an exception. Callbacks added after triggering fire immediately via
    the event queue at the current simulated time.

    The hierarchy is slotted: waitables are allocated on the kernel hot
    path (every timeout and process resume creates one), and slot
    storage is measurably cheaper than per-instance dicts. Subclasses
    outside this module may still declare ad-hoc attributes — they get a
    __dict__ unless they declare __slots__ themselves.
    """

    __slots__ = ("sim", "triggered", "ok", "value", "exception", "_callbacks")

    def __init__(self, sim: "Simulation") -> None:
        self.sim = sim
        self.triggered = False
        self.ok: Optional[bool] = None
        self.value: Any = None
        self.exception: Optional[BaseException] = None
        self._callbacks: list[Callable[[Waitable], None]] = []

    def add_callback(self, fn: Callable[["Waitable"], None]) -> None:
        """Register ``fn`` to run when the waitable triggers."""
        if self.triggered:
            sim = self.sim
            # Direct queue push: call_at's past-time guard is vacuous for
            # an event scheduled at now, and resumptions are hot.
            sim._queue.push(sim._now, fn, (self,), RESUME_PRIORITY)
        else:
            self._callbacks.append(fn)

    def succeed(self, value: Any = None) -> "Waitable":
        """Trigger successfully, delivering ``value`` to waiters."""
        self._trigger(True, value, None)
        return self

    def fail(self, exception: BaseException) -> "Waitable":
        """Trigger with an exception, which is raised in each waiter."""
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._trigger(False, None, exception)
        return self

    def _trigger(self, ok: bool, value: Any, exc: Optional[BaseException]) -> None:
        if self.triggered:
            raise ProcessError(f"{self!r} already triggered")
        self.triggered = True
        self.ok = ok
        self.value = value
        self.exception = exc
        callbacks, self._callbacks = self._callbacks, []
        if callbacks:
            sim = self.sim
            push = sim._queue.push
            now = sim._now
            for fn in callbacks:
                push(now, fn, (self,), RESUME_PRIORITY)


class Signal(Waitable):
    """A one-shot event triggered explicitly by user code."""

    __slots__ = ()


class Timeout(Waitable):
    """A waitable that succeeds after ``delay`` simulated seconds."""

    __slots__ = ("delay", "_handle")

    def __init__(self, sim: "Simulation", delay: float, value: Any = None) -> None:
        super().__init__(sim)
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        self.delay = delay
        # Direct queue push; the non-negative check above subsumes
        # call_in's validation.
        self._handle = sim._queue.push(sim._now + delay, self._fire, (value,))

    def _fire(self, value: Any) -> None:
        if not self.triggered:
            self.succeed(value)

    def cancel(self) -> None:
        """Cancel the pending timeout; waiters get a CancelledError."""
        if not self.triggered:
            self.sim.cancel(self._handle)
            self.fail(CancelledError("timeout cancelled"))


class AnyOf(Waitable):
    """Succeeds as soon as any child waitable triggers.

    The value is a ``(waitable, value)`` pair for the first child to fire.
    A failing child fails the composite.
    """

    __slots__ = ("children",)

    def __init__(self, sim: "Simulation", children: Iterable[Waitable]) -> None:
        super().__init__(sim)
        self.children = list(children)
        if not self.children:
            raise ValueError("AnyOf requires at least one child")
        for child in self.children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Waitable) -> None:
        if self.triggered:
            return
        if child.ok:
            self.succeed((child, child.value))
        else:
            self.fail(child.exception)  # type: ignore[arg-type]


class AllOf(Waitable):
    """Succeeds when every child waitable has triggered successfully.

    The value is the list of child values in the original order. The first
    failing child fails the composite.
    """

    __slots__ = ("children", "_pending")

    def __init__(self, sim: "Simulation", children: Iterable[Waitable]) -> None:
        super().__init__(sim)
        self.children = list(children)
        self._pending = len(self.children)
        if self._pending == 0:
            self.succeed([])
            return
        for child in self.children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Waitable) -> None:
        if self.triggered:
            return
        if not child.ok:
            self.fail(child.exception)  # type: ignore[arg-type]
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([c.value for c in self.children])


class Process(Waitable):
    """A generator-based simulated process.

    The generator yields :class:`Waitable` objects; the process resumes with
    the waitable's value (or the waitable's exception raised at the yield
    point). When the generator returns, the process triggers with its return
    value.
    """

    __slots__ = ("name", "_generator", "_waiting_on")

    def __init__(
        self,
        sim: "Simulation",
        generator: Generator[Waitable, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        super().__init__(sim)
        if not hasattr(generator, "send"):
            raise ProcessError(f"Process requires a generator, got {generator!r}")
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Optional[Waitable] = None
        # Bootstrap: first resume happens via the event queue at `now`.
        sim._queue.push(sim._now, self._resume, (None, None), RESUME_PRIORITY)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current yield."""
        if self.triggered:
            raise ProcessError(f"cannot interrupt finished process {self.name}")
        target = self._waiting_on
        if target is not None and not target.triggered:
            # Detach from the waitable so a later trigger does not double-resume.
            try:
                target._callbacks.remove(self._on_wait_done)
            except ValueError:
                pass
        self._waiting_on = None
        self.sim.call_at(
            self.sim.now, self._resume, None, Interrupt(cause), priority=RESUME_PRIORITY
        )

    # -- internal machinery -------------------------------------------------

    def _on_wait_done(self, waitable: Waitable) -> None:
        if self.triggered or self._waiting_on is not waitable:
            return  # stale callback (interrupted in the meantime)
        self._waiting_on = None
        if waitable.ok:
            self._resume(waitable.value, None)
        else:
            self._resume(None, waitable.exception)

    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if self.triggered:
            return
        try:
            if exc is not None:
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as error:  # noqa: BLE001 - propagate to waiters
            self.fail(error)
            return
        if not isinstance(target, Waitable):
            self._generator.close()
            self.fail(
                ProcessError(
                    f"process {self.name!r} yielded non-waitable {target!r}"
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._on_wait_done)
