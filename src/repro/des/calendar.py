"""Calendar-queue event scheduling (Brown 1988) for the DES kernel.

A calendar queue hashes events into "day" buckets of a fixed time width;
popping scans forward from the current day, so enqueue and dequeue are
O(1) amortized instead of the O(log n) sifts of a binary heap. The
implementation here preserves the kernel's determinism contract exactly:
events pop in the same strict total order ``(time, priority, seq)`` as
:class:`~repro.des.events.EventQueue`, cancellation is lazy with bounded
compaction, and cancel-after-fire is a no-op.

Three classes:

- :class:`CalendarEventQueue` — the calendar queue proper, API-compatible
  with ``EventQueue`` (``push``/``pop``/``pop_until``/``cancel``/
  ``peek_time``/``len``).
- :class:`AdaptiveEventQueue` — starts as a binary heap and promotes
  itself to a calendar queue once the live event population crosses a
  threshold; small simulations keep the heap's low constant factor while
  large ones get O(1) scheduling.
- :func:`make_event_queue` — the factory the kernel flag maps through.

Buckets are resized (doubled/halved) as the live population crosses
``2 * nbuckets`` / ``nbuckets // 2`` so the average bucket occupancy
stays O(1); the bucket width is re-estimated from inter-event gaps at
each resize, following Brown's sampling rule.
"""

from __future__ import annotations

import math
from heapq import heappush
from typing import Callable, List, Optional, Tuple

from .errors import SchedulingError
from .events import _COMPACT_MIN, EventQueue, ScheduledEvent

#: Never shrink below this many buckets.
_MIN_BUCKETS = 8

#: Live-event population at which AdaptiveEventQueue swaps heap -> calendar.
_PROMOTE_AT = 4096

_INF = float("inf")


def _next_pow2(n: int) -> int:
    return 1 << max(3, (n - 1).bit_length())


class CalendarEventQueue:
    """Deterministic calendar queue of :class:`ScheduledEvent` records.

    Drop-in replacement for :class:`~repro.des.events.EventQueue`; see
    the module docstring for the algorithm. Events at ``+/-inf`` (legal
    in the heap, since only NaN is rejected) live in dedicated overflow
    lists because they have no finite day index.
    """

    def __init__(self) -> None:
        self._seq = 0  # plain int: += 1 beats next(count()) on the hot path
        self._nbuckets = _MIN_BUCKETS
        self._buckets: List[List[ScheduledEvent]] = [
            [] for _ in range(_MIN_BUCKETS)
        ]
        self._width = 1.0
        self._day = 0  # absolute day index of the scan cursor
        self._live = 0
        self._cancelled = 0  # dead entries still occupying bucket slots
        self._underflow: List[ScheduledEvent] = []  # time == -inf
        self._overflow: List[ScheduledEvent] = []  # time == +inf
        #: Cumulative counters surfaced through the telemetry registry.
        self.pushed = 0
        self.popped = 0
        self.cancels = 0
        self.compactions = 0
        self.resizes = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    # -- insertion ---------------------------------------------------------

    def push(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple = (),
        priority: int = 0,
    ) -> ScheduledEvent:
        """Insert a callback at simulated ``time`` and return its handle."""
        if time != time:  # NaN guard
            raise SchedulingError("event time is NaN")
        seq = self._seq
        self._seq = seq + 1
        ev = ScheduledEvent(time, priority, seq, callback, args)
        self._insert(ev)
        self._live += 1
        self.pushed += 1
        if self._live > self._nbuckets << 1:
            self._resize(self._nbuckets << 1)
        return ev

    def _insert(self, ev: ScheduledEvent) -> None:
        t = ev.time
        if math.isinf(t):
            (self._overflow if t > 0 else self._underflow).append(ev)
            return
        day = int(t // self._width)
        self._buckets[day % self._nbuckets].append(ev)
        if day < self._day:
            # An insertion behind the cursor (e.g. scheduling at the
            # current time after the cursor skipped ahead to a sparse
            # future day) rewinds the scan so the event is not orphaned.
            self._day = day

    # -- cancellation ------------------------------------------------------

    def cancel(self, event: ScheduledEvent) -> None:
        """Lazily cancel ``event``; it keeps its slot but will be skipped."""
        if event.cancelled or event.fired:
            return
        event.cancel()
        self._live -= 1
        self._cancelled += 1
        self.cancels += 1
        if (
            self._cancelled > self._live
            and self._live + self._cancelled >= _COMPACT_MIN
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop dead entries from every bucket (O(slots), order-free)."""
        for bucket in self._buckets:
            if bucket:
                bucket[:] = [ev for ev in bucket if not ev.cancelled]
        for aux in (self._underflow, self._overflow):
            if aux:
                aux[:] = [ev for ev in aux if not ev.cancelled]
        self._cancelled = 0
        self.compactions += 1

    # -- extraction --------------------------------------------------------

    def _locate_min(
        self,
    ) -> Optional[Tuple[ScheduledEvent, List[ScheduledEvent]]]:
        """Find the next live event and its container, advancing the cursor.

        Returns ``(event, bucket)`` or None when empty. Scans at most one
        "year" (nbuckets days) forward from the cursor before falling back
        to a direct search, per Brown's algorithm.
        """
        if self._live == 0:
            return None
        if self._underflow:
            best = None
            for ev in self._underflow:
                if not ev.cancelled and (best is None or ev < best):
                    best = ev
            if best is not None:
                return best, self._underflow
        buckets = self._buckets
        n = self._nbuckets
        w = self._width
        day = self._day
        for _ in range(n):
            bucket = buckets[day % n]
            if bucket:
                best = None
                dead = 0
                for ev in bucket:
                    if ev.cancelled:
                        dead += 1
                    elif ev.time // w == day and (best is None or ev < best):
                        best = ev
                if dead:
                    bucket[:] = [ev for ev in bucket if not ev.cancelled]
                    self._cancelled -= dead
                if best is not None:
                    self._day = day
                    return best, bucket
            day += 1
        # The coming year is empty: direct search for the global minimum.
        best = None
        home: Optional[List[ScheduledEvent]] = None
        for bucket in buckets:
            for ev in bucket:
                if not ev.cancelled and (best is None or ev < best):
                    best = ev
                    home = bucket
        if best is not None:
            self._day = int(best.time // w)
            return best, home  # type: ignore[return-value]
        for ev in self._overflow:
            if not ev.cancelled and (best is None or ev < best):
                best = ev
                home = self._overflow
        if best is None:
            return None
        return best, home  # type: ignore[return-value]

    def peek_time(self) -> Optional[float]:
        """Return the time of the next live event, or None if empty."""
        found = self._locate_min()
        return found[0].time if found else None

    def pop(self) -> ScheduledEvent:
        """Remove and return the next live event."""
        ev = self.pop_until(_INF)
        if ev is None:
            raise IndexError("pop from empty CalendarEventQueue")
        return ev

    def pop_until(self, limit: float) -> Optional[ScheduledEvent]:
        """Pop the next live event with ``time <= limit``, or None."""
        found = self._locate_min()
        if found is None:
            return None
        ev, bucket = found
        if ev.time > limit:
            return None
        bucket.remove(ev)
        ev.fired = True
        self._live -= 1
        self.popped += 1
        if self._live < self._nbuckets >> 1 and self._nbuckets > _MIN_BUCKETS:
            self._resize(self._nbuckets >> 1)
        return ev

    # -- sizing ------------------------------------------------------------

    def _finite_live(self) -> List[ScheduledEvent]:
        return [
            ev for bucket in self._buckets for ev in bucket if not ev.cancelled
        ]

    def _estimate_width(self, events: List[ScheduledEvent]) -> float:
        """Bucket width from the mean inter-event gap of a deterministic
        sample (Brown's rule: width ~ 3x the average separation)."""
        if len(events) < 2:
            return self._width
        sample = sorted(ev.time for ev in events[:64])
        gaps = [b - a for a, b in zip(sample, sample[1:]) if b > a]
        if not gaps:
            return self._width
        width = 3.0 * (sum(gaps) / len(gaps))
        if not (width > 0.0) or math.isinf(width):
            return self._width
        return max(width, 1e-9)

    def _resize(self, nbuckets: int) -> None:
        events = self._finite_live()
        self._width = self._estimate_width(events)
        self._nbuckets = nbuckets
        self._buckets = [[] for _ in range(nbuckets)]
        self._cancelled = 0
        if self._underflow:
            self._underflow = [
                ev for ev in self._underflow if not ev.cancelled
            ]
        if self._overflow:
            self._overflow = [ev for ev in self._overflow if not ev.cancelled]
        w = self._width
        min_day: Optional[int] = None
        for ev in events:
            day = int(ev.time // w)
            self._buckets[day % nbuckets].append(ev)
            if min_day is None or day < min_day:
                min_day = day
        self._day = min_day if min_day is not None else 0
        self.resizes += 1

    def _bulk_load(self, events: List[ScheduledEvent]) -> None:
        """Adopt ``events`` (live, un-fired) wholesale; used on promotion."""
        finite: List[ScheduledEvent] = []
        for ev in events:
            if math.isinf(ev.time):
                (self._overflow if ev.time > 0 else self._underflow).append(ev)
            else:
                finite.append(ev)
        self._live = len(events)
        self._nbuckets = _next_pow2(max(_MIN_BUCKETS, len(finite)))
        self._width = self._estimate_width(finite)
        self._buckets = [[] for _ in range(self._nbuckets)]
        w = self._width
        min_day: Optional[int] = None
        for ev in finite:
            day = int(ev.time // w)
            self._buckets[day % self._nbuckets].append(ev)
            if min_day is None or day < min_day:
                min_day = day
        self._day = min_day if min_day is not None else 0


class AdaptiveEventQueue:
    """Binary heap that promotes itself to a calendar queue under load.

    Pre-promotion there is no delegation overhead: ``cancel``,
    ``pop_until`` and ``peek_time`` are the heap's *bound methods*
    installed as instance attributes, and ``push`` inlines the heap
    insert plus the promotion check. When the live population first
    reaches ``promote_at`` the heap's pending events migrate into a
    :class:`CalendarEventQueue` (sharing the sequence counter, so
    tie-breaking is unaffected), the instance methods are rebound to the
    calendar's, and the drained heap forwards any stale hoisted
    ``pop_until`` reference (the kernel hoists one per run) to the
    calendar. Promotion cannot change pop order because the ordering is
    a strict total order on ``(time, priority, seq)``.
    """

    def __init__(self, promote_at: int = _PROMOTE_AT) -> None:
        impl = EventQueue()
        self._impl: object = impl
        self._promote_at = promote_at
        self.promotions = 0
        # Bound-method fast paths; instance attributes shadow the class.
        self.cancel = impl.cancel
        self.pop_until = impl.pop_until
        self.peek_time = impl.peek_time

    def __len__(self) -> int:
        return len(self._impl)  # type: ignore[arg-type]

    def __bool__(self) -> bool:
        return bool(self._impl)

    def push(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple = (),
        priority: int = 0,
    ) -> ScheduledEvent:
        # Inlined EventQueue.push plus the promotion trigger. After
        # promotion the calendar's own push is installed on the instance,
        # so this body only ever runs against the heap.
        impl: EventQueue = self._impl  # type: ignore[assignment]
        if time != time:  # NaN guard
            raise SchedulingError("event time is NaN")
        seq = impl._seq
        impl._seq = seq + 1
        ev = ScheduledEvent(time, priority, seq, callback, args)
        heappush(impl._heap, (time, priority, seq, ev))
        impl._live += 1
        impl.pushed += 1
        if impl._live >= self._promote_at:
            self._promote()
        return ev

    def _promote(self) -> None:
        heap: EventQueue = self._impl  # type: ignore[assignment]
        cal = CalendarEventQueue()
        cal._seq = heap._seq  # keep the (time, priority, seq) order intact
        cal.pushed = heap.pushed
        cal.popped = heap.popped
        cal.cancels = heap.cancels
        cal.compactions = heap.compactions
        cal._bulk_load(
            [entry[3] for entry in heap._heap if not entry[3].cancelled]
        )
        # Drain the heap and leave a forwarding pointer for any caller
        # still holding its pop_until.
        heap._heap.clear()
        heap._live = 0
        heap._cancelled = 0
        heap._redirect = cal
        self._impl = cal
        self.push = cal.push  # type: ignore[method-assign]
        self.cancel = cal.cancel
        self.pop_until = cal.pop_until
        self.peek_time = cal.peek_time
        self.promotions += 1

    def pop(self) -> ScheduledEvent:
        ev = self.pop_until(_INF)
        if ev is None:
            raise IndexError("pop from empty AdaptiveEventQueue")
        return ev

    # Counter passthroughs (the registry reads these via gauges).
    @property
    def pushed(self) -> int:
        return self._impl.pushed

    @property
    def popped(self) -> int:
        return self._impl.popped

    @property
    def cancels(self) -> int:
        return self._impl.cancels

    @property
    def compactions(self) -> int:
        return self._impl.compactions

    @property
    def resizes(self) -> int:
        return getattr(self._impl, "resizes", 0)


#: Queue backends selectable through ``Simulation(event_queue=...)`` or
#: the ``REPRO_DES_QUEUE`` environment variable.
QUEUE_BACKENDS = ("auto", "heap", "calendar")


def make_event_queue(backend: str = "auto"):
    """Build an event queue for ``backend`` (one of :data:`QUEUE_BACKENDS`)."""
    if backend == "auto":
        return AdaptiveEventQueue()
    if backend == "heap":
        return EventQueue()
    if backend == "calendar":
        return CalendarEventQueue()
    raise ValueError(
        f"unknown event queue backend {backend!r}; "
        f"expected one of {', '.join(QUEUE_BACKENDS)}"
    )
